"""Hazard labeling of simulation traces (Section IV-C2 of the paper).

A window of BG readings is marked hazardous when its LBGI or HBGI crosses the
high-risk threshold (LBGI > 5 for H1/hypoglycemia, HBGI > 9 for
H2/hyperglycemia) *and keeps increasing*, indicating a high chance of hypo-
or hyperglycemia.  The first hazardous sample defines the hazard occurrence
time ``th`` used by the Time-to-Hazard and reaction-time metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .risk import HBGI_THRESHOLD, LBGI_THRESHOLD, rolling_indices

__all__ = ["HazardType", "HazardLabel", "label_hazards", "DEFAULT_WINDOW"]

#: one hour of 5-minute samples
DEFAULT_WINDOW = 12


class HazardType(enum.IntEnum):
    """The paper's two APS hazards (Section IV-B)."""

    H1 = 1  # too much insulin -> hypoglycemia risk
    H2 = 2  # too little insulin -> hyperglycemia risk


@dataclass(frozen=True)
class HazardLabel:
    """Ground-truth hazard annotation of one simulation trace.

    Attributes
    ----------
    hazardous:
        Per-sample boolean ground truth ``G(t)``.
    hazard_type:
        Per-sample hazard type (0 = none, 1 = H1, 2 = H2).
    first_hazard:
        Sample index of hazard occurrence (``None`` if the trace is safe).
    first_type:
        Type of the first hazard (``None`` if safe).
    lbgi, hbgi:
        The rolling risk-index series used for the decision.
    """

    hazardous: np.ndarray
    hazard_type: np.ndarray
    first_hazard: Optional[int]
    first_type: Optional[HazardType]
    lbgi: np.ndarray
    hbgi: np.ndarray

    @property
    def any_hazard(self) -> bool:
        return self.first_hazard is not None

    def hazard_time(self, dt: float = 5.0) -> Optional[float]:
        """Hazard occurrence time ``th`` in minutes (None if safe)."""
        if self.first_hazard is None:
            return None
        return self.first_hazard * dt


def label_hazards(bg, window: int = DEFAULT_WINDOW,
                  lbgi_threshold: float = LBGI_THRESHOLD,
                  hbgi_threshold: float = HBGI_THRESHOLD) -> HazardLabel:
    """Label a BG trace with per-sample hazard ground truth.

    A sample is hazardous when the trailing-window LBGI (resp. HBGI) exceeds
    its threshold and is not decreasing — "crossed a high-risk threshold and
    kept increasing" in the paper's wording.
    """
    bg = np.asarray(bg, dtype=float)
    if bg.ndim != 1:
        raise ValueError(f"bg must be 1-D, got shape {bg.shape}")
    lbgi_series, hbgi_series = rolling_indices(bg, window)

    d_lbgi = np.diff(lbgi_series, prepend=lbgi_series[0])
    d_hbgi = np.diff(hbgi_series, prepend=hbgi_series[0])
    low_hazard = (lbgi_series > lbgi_threshold) & (d_lbgi >= 0)
    high_hazard = (hbgi_series > hbgi_threshold) & (d_hbgi >= 0)
    # a verdict needs a full window of readings: a single high starting
    # sample (e.g. init BG 200) is not yet a hazard unless the risk keeps
    # building over the first hour
    warmup = min(window - 1, len(bg))
    low_hazard[:warmup] = False
    high_hazard[:warmup] = False

    hazardous = low_hazard | high_hazard
    hazard_type = np.zeros(len(bg), dtype=int)
    # if both trip at the same sample (pathological swing), the larger
    # threshold exceedance wins
    both = low_hazard & high_hazard
    hazard_type[low_hazard] = int(HazardType.H1)
    hazard_type[high_hazard] = int(HazardType.H2)
    if both.any():
        l_exceed = lbgi_series - lbgi_threshold
        h_exceed = hbgi_series - hbgi_threshold
        hazard_type[both] = np.where(l_exceed[both] >= h_exceed[both],
                                     int(HazardType.H1), int(HazardType.H2))

    if hazardous.any():
        first = int(np.argmax(hazardous))
        first_type = HazardType(hazard_type[first])
    else:
        first, first_type = None, None
    return HazardLabel(hazardous=hazardous, hazard_type=hazard_type,
                       first_hazard=first, first_type=first_type,
                       lbgi=lbgi_series, hbgi=hbgi_series)
