"""Continuous hazard-proximity scoring for rare-event scenario search.

The labeler in :mod:`repro.hazards.labeling` answers a binary question —
did this trace cross a high-risk threshold and keep climbing?  A search
loop needs more: a *continuous* objective that still rises as a safe
scenario edges toward the failure boundary, so the proposal distribution
has a gradient to climb long before the first hazard is found (O'Kelly et
al., rare-event risk analysis of AP controllers).

The score has three stacked components, all derived from the same rolling
risk indices the paper thresholds:

1. **Excursion margin** — ``max_t max(LBGI(t) - 5, HBGI(t) - 9)``: how far
   the trace's worst one-hour window rose above (positive) or stayed below
   (negative) the high-risk thresholds.  Continuous everywhere, so even an
   all-safe population is rankable.
2. **Hazard bonus** — a fixed offset added when the trace is *labeled*
   hazardous (threshold crossed and still rising).  At comparable
   excursion depth this ranks a confirmed hazard strictly above a
   near-miss whose index touched the threshold while already recovering.
3. **Promptness** — hazards that materialise sooner after the fault
   activates (small time-to-hazard) score higher, mirroring the paper's
   TTH metric: early hazards are both more dangerous and harder for a
   monitor to pre-empt, so the search steers toward them.

Scores are pure functions of the trace, so they inherit the engines'
bit-determinism: the same scenario scores identically at any
``workers=``/``batch_size=``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .labeling import DEFAULT_WINDOW, label_hazards
from .risk import HBGI_THRESHOLD, LBGI_THRESHOLD, rolling_indices

__all__ = ["HazardScore", "excursion_margin", "score_trace", "HAZARD_BONUS"]

#: score offset separating labeled hazards from every near-miss
HAZARD_BONUS = 1.0


@dataclass(frozen=True)
class HazardScore:
    """Scored hazard proximity of one simulated trace.

    Attributes
    ----------
    score:
        The search objective (higher = closer to / deeper into hazard).
    margin:
        Worst-window risk-index excursion above the thresholds (negative
        while the trace stays safe).
    hazardous:
        The paper's binary ground-truth label.
    hazard_type:
        ``int(HazardType)`` of the first hazard (0 when safe).
    first_hazard:
        Sample index of hazard occurrence (``None`` when safe).
    time_to_hazard:
        Minutes from fault activation (or simulation start, for fault-free
        disturbance scenarios) to hazard occurrence; ``None`` when safe.
    """

    score: float
    margin: float
    hazardous: bool
    hazard_type: int
    first_hazard: Optional[int]
    time_to_hazard: Optional[float]


def excursion_margin(bg, window: int = DEFAULT_WINDOW) -> float:
    """Worst-window excursion of the rolling risk indices over thresholds.

    ``max_t max(LBGI(t) - LBGI_THRESHOLD, HBGI(t) - HBGI_THRESHOLD)`` —
    positive once either index has crossed its high-risk threshold
    anywhere in the trace, negative (distance-to-threshold) otherwise.
    """
    lbgi_series, hbgi_series = rolling_indices(bg, window)
    return float(np.maximum(lbgi_series - LBGI_THRESHOLD,
                            hbgi_series - HBGI_THRESHOLD).max())


def score_trace(trace, window: int = DEFAULT_WINDOW) -> HazardScore:
    """Hazard-proximity score of a :class:`~repro.simulation.trace.SimulationTrace`.

    Safe traces score their (negative-to-positive) excursion margin;
    labeled hazards additionally earn :data:`HAZARD_BONUS` plus a
    promptness term in ``(0, 1]`` that decays with time-to-hazard, so at
    equal excursion depth the elite set orders: fast hazards > slow
    hazards > near-misses > benign.

    Ground truth comes from the *true* glucose — faults corrupt the
    controller, never the plant or the labels — via the same
    :func:`~repro.hazards.labeling.label_hazards` rule the paper uses.
    """
    if window == DEFAULT_WINDOW:
        label = trace.hazard_label  # cached on the trace
    else:
        label = label_hazards(trace.true_bg, window)
    margin = float(np.maximum(label.lbgi - LBGI_THRESHOLD,
                              label.hbgi - HBGI_THRESHOLD).max())
    if not label.any_hazard:
        return HazardScore(score=margin, margin=margin, hazardous=False,
                           hazard_type=0, first_hazard=None,
                           time_to_hazard=None)
    # time-to-hazard measured from the fault activation when one exists;
    # meal/disturbance-only scenarios anchor at the start of the run
    start = trace.fault.start_step if trace.fault is not None else 0
    tth = max(label.first_hazard - start, 0) * trace.dt
    promptness = 1.0 / (1.0 + tth / 60.0)
    return HazardScore(score=margin + HAZARD_BONUS + promptness,
                       margin=margin, hazardous=True,
                       hazard_type=int(label.first_type),
                       first_hazard=label.first_hazard,
                       time_to_hazard=tth)
