"""Kovatchev blood-glucose risk index (Eq. 5 of the paper).

The symmetrised BG risk function maps glucose readings to a risk score that
treats hypo- and hyperglycemia comparably::

    risk(BG) = 10 * (1.509 * ((ln BG)^1.084 - 5.381))^2

The *sign* of the inner term splits the scale: negative for hypoglycemia
(BG below ~112.5 mg/dL) and positive for hyperglycemia.  Averaging the
negative-branch risks over a window yields the Low BG Index (LBGI), the
positive branch the High BG Index (HBGI) — the quantities the paper
thresholds (LBGI > 5, HBGI > 9) to label hazardous windows.
"""

from __future__ import annotations

import numpy as np

__all__ = ["risk", "signed_risk", "lbgi", "hbgi", "rolling_indices",
           "LBGI_THRESHOLD", "HBGI_THRESHOLD"]

#: high-risk thresholds from the paper (footnote 1, Section IV-C2)
LBGI_THRESHOLD = 5.0
HBGI_THRESHOLD = 9.0

# Kovatchev constants
_A = 1.509
_B = 1.084
_C = 5.381

#: glucose at which the risk function crosses zero (mg/dL)
RISK_ZERO_BG = float(np.exp(_C ** (1.0 / _B)))


def _inner(bg: np.ndarray) -> np.ndarray:
    bg = np.asarray(bg, dtype=float)
    if np.any(bg <= 0):
        raise ValueError("glucose values must be positive")
    return _A * (np.log(bg) ** _B - _C)


def risk(bg) -> np.ndarray | float:
    """Unsigned BG risk, Eq. 5.  Accepts scalars or arrays."""
    scalar = np.isscalar(bg)
    value = 10.0 * _inner(np.atleast_1d(bg)) ** 2
    return float(value[0]) if scalar else value


def signed_risk(bg) -> np.ndarray | float:
    """Risk with the hypo branch negative and the hyper branch positive."""
    scalar = np.isscalar(bg)
    inner = _inner(np.atleast_1d(bg))
    value = np.sign(inner) * 10.0 * inner ** 2
    return float(value[0]) if scalar else value


def lbgi(bg_window) -> float:
    """Low BG Index of a window: mean unsigned risk of hypo-branch samples.

    Samples on the hyper branch contribute zero, per the standard LBGI
    definition (Kovatchev et al.).
    """
    signed = np.atleast_1d(signed_risk(bg_window))
    low = np.where(signed < 0, -signed, 0.0)
    return float(np.mean(low))


def hbgi(bg_window) -> float:
    """High BG Index of a window: mean unsigned risk of hyper-branch samples."""
    signed = np.atleast_1d(signed_risk(bg_window))
    high = np.where(signed > 0, signed, 0.0)
    return float(np.mean(high))


def rolling_indices(bg, window: int):
    """Trailing-window LBGI/HBGI series over a BG trace.

    Parameters
    ----------
    bg:
        1-D array of glucose samples.
    window:
        Window length in samples (the paper uses one hour = 12 samples at
        5-minute cycles).  Early samples use the available prefix.

    Returns
    -------
    (lbgi_series, hbgi_series):
        Arrays of the same length as *bg*.
    """
    bg = np.asarray(bg, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1 sample, got {window}")
    signed = signed_risk(bg)
    low = np.where(signed < 0, -signed, 0.0)
    high = np.where(signed > 0, signed, 0.0)
    # trailing mean with growing prefix at the start
    csum_low = np.concatenate([[0.0], np.cumsum(low)])
    csum_high = np.concatenate([[0.0], np.cumsum(high)])
    idx = np.arange(1, len(bg) + 1)
    start = np.maximum(idx - window, 0)
    counts = idx - start
    lbgi_series = (csum_low[idx] - csum_low[start]) / counts
    hbgi_series = (csum_high[idx] - csum_high[start]) / counts
    return lbgi_series, hbgi_series
