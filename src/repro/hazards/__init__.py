"""BG risk index (Eq. 5), hazard labeling (Section IV-C2) and the
continuous hazard-proximity scoring used by the rare-event search."""

from .labeling import DEFAULT_WINDOW, HazardLabel, HazardType, label_hazards
from .scoring import HAZARD_BONUS, HazardScore, excursion_margin, score_trace
from .risk import (
    HBGI_THRESHOLD,
    LBGI_THRESHOLD,
    hbgi,
    lbgi,
    risk,
    rolling_indices,
    signed_risk,
)

__all__ = [
    "DEFAULT_WINDOW",
    "HazardLabel",
    "HazardType",
    "label_hazards",
    "HAZARD_BONUS",
    "HazardScore",
    "excursion_margin",
    "score_trace",
    "HBGI_THRESHOLD",
    "LBGI_THRESHOLD",
    "hbgi",
    "lbgi",
    "risk",
    "rolling_indices",
    "signed_risk",
]
