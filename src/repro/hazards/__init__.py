"""BG risk index (Eq. 5) and hazard labeling (Section IV-C2)."""

from .labeling import DEFAULT_WINDOW, HazardLabel, HazardType, label_hazards
from .risk import (
    HBGI_THRESHOLD,
    LBGI_THRESHOLD,
    hbgi,
    lbgi,
    risk,
    rolling_indices,
    signed_risk,
)

__all__ = [
    "DEFAULT_WINDOW",
    "HazardLabel",
    "HazardType",
    "label_hazards",
    "HBGI_THRESHOLD",
    "LBGI_THRESHOLD",
    "hbgi",
    "lbgi",
    "risk",
    "rolling_indices",
    "signed_risk",
]
