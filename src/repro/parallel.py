"""Generic forked-pool chunk protocol.

PR 1 built the parallel campaign executor around one idea: cut a
deterministic work list into contiguous chunks, fork a ``multiprocessing``
pool so unpicklable state (monitor factories, trained models, lazy
datasets) is *inherited* rather than serialised, and collect chunk results
strictly in submission order from a bounded in-flight window.  This module
hoists that machinery out of :mod:`repro.simulation.executor` so every
fan-out in the code base — campaign simulation, monitor replay, robustness
-sample mining — shares the exact same protocol and therefore the exact
same guarantee: worker count changes wall-clock time, never output.

It sits below both :mod:`repro.core` and :mod:`repro.simulation` and
imports neither, so either layer can parallelise without cycles.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import warnings
from collections import deque
from typing import (Any, Callable, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

__all__ = ["shard_indices", "partition_ranges", "ranges_defect",
           "fork_map_chunks", "resolve_workers", "resolve_batch_size",
           "iter_equal_length_groups"]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers=`` argument (None: ``REPRO_WORKERS`` env, or 1)."""
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "1"))
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_batch_size(batch_size: Optional[int]) -> int:
    """Normalise a ``batch_size=`` argument (None: ``REPRO_BATCH_SIZE`` env,
    or 1 = scalar execution).  Shared by the simulation engine, monitor
    replay and robustness-sample mining so one knob means one thing."""
    if batch_size is None:
        batch_size = int(os.environ.get("REPRO_BATCH_SIZE", "1"))
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return batch_size


def iter_equal_length_groups(items: Any, batch_size: int) -> Iterator[list]:
    """Group a stream into consecutive equal-``len()`` batches.

    The shared grouping rule of every lock-step batched path (monitor
    replay, robustness-sample mining): groups hold at most *batch_size*
    items and never mix lengths — a length change closes the current
    group — so concatenating the groups always reproduces the input
    order and every group stacks into one rectangular batch.  Streaming:
    at most one group is resident at a time.  Living here (below both
    :mod:`repro.core` and :mod:`repro.simulation`) keeps the
    parity-critical boundary rule in exactly one place.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    group: list = []
    for item in items:
        if group and (len(group) >= batch_size
                      or len(item) != len(group[0])):
            yield group
            group = []
        group.append(item)
    if group:
        yield group


def shard_indices(n: int, n_chunks: int) -> List[range]:
    """Cut ``range(n)`` into at most *n_chunks* contiguous index ranges.

    Boundaries depend only on ``(n, n_chunks)``, so sharding is
    deterministic; concatenating the ranges always reproduces ``range(n)``
    and chunk sizes differ by at most one.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    n_chunks = min(n_chunks, n) or 1
    base, extra = divmod(n, n_chunks)
    chunks: List[range] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def partition_ranges(n: int, n_chunks: int) -> List[Tuple[int, int]]:
    """:func:`shard_indices` as half-open ``(start, stop)`` tuples.

    The wire format of the chunk protocol: a ``(start, stop)`` pair is
    what crosses a process or host boundary (a distributed campaign
    worker's command line), so it must be plain data, deterministic in
    ``(n, n_chunks)`` alone, and independent of which host executes it —
    retrying a range on another machine re-derives the identical work
    slice.  Empty ranges are dropped, so ``n == 0`` partitions to ``[]``.
    """
    return [(r.start, r.stop) for r in shard_indices(n, n_chunks)
            if len(r)]


def ranges_defect(ranges: Iterable[Tuple[int, int]],
                  n: int) -> Optional[str]:
    """Explain how *ranges* fail to tile ``range(n)``; ``None`` if they do.

    The shared acceptance rule of every range-merging consumer (the
    distributed coordinator and the manifest merge): ranges must be
    well-formed half-open slices of ``[0, n)``, mutually disjoint, and
    covering.  Returns a human-readable defect description — naming the
    first overlap or gap — or ``None`` when the ranges are a perfect
    tiling.  Exact duplicates count as overlap; deduplicate first if
    duplicates are legitimate (idempotent re-delivery).
    """
    spans = sorted((int(a), int(b)) for a, b in ranges)
    for a, b in spans:
        if not 0 <= a < b <= n:
            return f"range [{a}, {b}) is not a well-formed slice of [0, {n})"
    cursor = 0
    for a, b in spans:
        if a < cursor:
            return f"ranges overlap on [{a}, {min(b, cursor)})"
        if a > cursor:
            return f"range [{cursor}, {a}) is missing"
        cursor = b
    if cursor != n:
        return f"range [{cursor}, {n}) is missing"
    return None


#: fork-inherited state for pool workers — set immediately before the pool
#: forks, cleared right after; never pickled, so unpicklable chunk
#: functions (closures over monitors, datasets, plans) travel for free.
#: The lock serialises the assign-then-fork critical section so two
#: threads fanning out concurrently can neither fork the other's work
#: list nor fork None.
_FORK_STATE: Optional[tuple] = None
_FORK_STATE_LOCK = threading.Lock()


def _fork_worker(chunk_index: int):
    fn, chunks = _FORK_STATE
    return fn(chunks[chunk_index])


def fork_map_chunks(fn: Callable[[Any], Any], chunks: Sequence[Any],
                    workers: int, start_method: str = "fork"
                    ) -> Iterator[Any]:
    """Yield ``fn(chunk)`` for every chunk, strictly in chunk order.

    With ``workers > 1`` and a platform that supports *start_method*, the
    chunks are fanned out over a forked pool; *fn* and the chunks are
    inherited by the workers (never pickled) while each **result** must be
    picklable.  Results are collected from a bounded window of in-flight
    tasks — at most ``2 * workers`` finished-but-unread chunks sit in the
    parent — so a slow consumer cannot make memory pile up and the yielded
    stream is element-wise identical to the serial loop.
    """
    chunks = list(chunks)
    if workers <= 1 or len(chunks) <= 1:
        for chunk in chunks:
            yield fn(chunk)
        return
    if start_method not in multiprocessing.get_all_start_methods():
        warnings.warn(
            f"start method {start_method!r} unavailable; falling back to "
            "serial execution", RuntimeWarning, stacklevel=3)
        for chunk in chunks:
            yield fn(chunk)
        return

    global _FORK_STATE
    ctx = multiprocessing.get_context(start_method)
    # fork pools spawn their workers eagerly in the constructor, so the
    # shared state only needs to exist across the assign-then-fork window
    with _FORK_STATE_LOCK:
        _FORK_STATE = (fn, chunks)
        try:
            pool = ctx.Pool(processes=min(workers, len(chunks)))
        finally:
            _FORK_STATE = None
    with pool:
        window = 2 * workers
        pending: deque = deque()
        indices = iter(range(len(chunks)))
        for i in itertools.islice(indices, window):
            pending.append(pool.apply_async(_fork_worker, (i,)))
        while pending:
            result = pending.popleft().get()
            for i in itertools.islice(indices, 1):
                pending.append(pool.apply_async(_fork_worker, (i,)))
            yield result
