"""Model-predictive-control baseline monitor (Section IV-C2 of the paper).

Uses the Bergman & Sherwin population model (the paper's Eq. 6)::

    dBG/dt = -(GEZI + IEFF) * BG + EGP + RA(t)

to predict the blood glucose that would result from executing the pump's
commanded insulin on the current state, and raises an alarm when the
prediction leaves the guideline range [70, 180] mg/dL.

The monitor carries its own three-compartment insulin-effect estimate driven
by the *commanded* insulin (the same IVP insulin chain), parameterised with
population-average constants — deliberately not patient-specific, which is
exactly the weakness the paper attributes to this baseline.
"""

from __future__ import annotations

from typing import Optional

from ..core.context import ContextVector
from ..core.monitor import MonitorVerdict, NO_ALERT, SafetyMonitor
from ..hazards import HazardType
from ..patients.base import UU_PER_UNIT

__all__ = ["MPCMonitor"]


class MPCMonitor(SafetyMonitor):
    """One-or-more-step-ahead BG prediction monitor.

    Parameters
    ----------
    gezi, egp, si, ci, tau1, tau2, p2:
        Bergman/IVP population constants (defaults: Kanderian means).
    horizon_steps:
        How many 5-minute steps to roll the model forward under the
        commanded insulin before checking the range.
    bg_low, bg_high:
        Alarm range (the guideline normal range).
    """

    name = "MPC"

    def __init__(self, gezi: float = 2.2e-3, egp: float = 1.33,
                 si: float = 7.1e-4, ci: float = 2010.0, tau1: float = 49.0,
                 tau2: float = 47.0, p2: float = 0.0106,
                 horizon_steps: int = 6, bg_low: float = 70.0,
                 bg_high: float = 180.0, dt: float = 5.0):
        if horizon_steps < 1:
            raise ValueError(f"horizon_steps must be >= 1, got {horizon_steps}")
        if bg_low >= bg_high:
            raise ValueError("bg_low must be below bg_high")
        self.gezi = gezi
        self.egp = egp
        self.si = si
        self.ci = ci
        self.tau1 = tau1
        self.tau2 = tau2
        self.p2 = p2
        self.horizon_steps = horizon_steps
        self.bg_low = float(bg_low)
        self.bg_high = float(bg_high)
        self.dt = float(dt)
        # internal insulin-effect state (population model, commanded insulin)
        self._isc = 0.0
        self._ip = 0.0
        self._ieff: Optional[float] = None

    def reset(self) -> None:
        self._isc = 0.0
        self._ip = 0.0
        self._ieff = None

    def _integrate(self, isc, ip, ieff, bg, insulin_uu_min, minutes):
        """Euler-integrate the population model for *minutes* at 1-min steps."""
        steps = max(int(round(minutes)), 1)
        for _ in range(steps):
            d_isc = insulin_uu_min / (self.tau1 * self.ci) - isc / self.tau1
            d_ip = (isc - ip) / self.tau2
            d_ieff = -self.p2 * ieff + self.p2 * self.si * ip
            d_bg = -(self.gezi + max(ieff, 0.0)) * bg + self.egp
            isc += d_isc
            ip += d_ip
            ieff += d_ieff
            bg = max(bg + d_bg, 1.0)
        return isc, ip, ieff, bg

    def observe(self, ctx: ContextVector) -> MonitorVerdict:
        if self._ieff is None:
            # initialise the insulin chain at the steady state that holds the
            # first observed BG (the monitor's best population-level guess)
            ieff0 = max(self.egp / max(ctx.bg, 1.0) - self.gezi, 0.0)
            ip0 = ieff0 / self.si
            self._isc, self._ip, self._ieff = ip0, ip0, ieff0

        insulin_uu_min = (ctx.rate / 60.0 + ctx.bolus / self.dt) * UU_PER_UNIT
        # roll the model forward under the commanded insulin
        isc, ip, ieff, bg = self._isc, self._ip, self._ieff, ctx.bg
        isc, ip, ieff, bg = self._integrate(isc, ip, ieff, bg,
                                            insulin_uu_min,
                                            self.horizon_steps * self.dt)
        predicted = bg

        # advance the internal state by one cycle (what actually got commanded)
        self._isc, self._ip, self._ieff, _ = self._integrate(
            self._isc, self._ip, self._ieff, ctx.bg, insulin_uu_min, self.dt)

        if predicted < self.bg_low:
            return MonitorVerdict(alert=True, hazard=HazardType.H1,
                                  triggered=("mpc-low",))
        if predicted > self.bg_high:
            return MonitorVerdict(alert=True, hazard=HazardType.H2,
                                  triggered=("mpc-high",))
        return NO_ALERT
