"""Model-predictive-control baseline monitor (Section IV-C2 of the paper).

Uses the Bergman & Sherwin population model (the paper's Eq. 6)::

    dBG/dt = -(GEZI + IEFF) * BG + EGP + RA(t)

to predict the blood glucose that would result from executing the pump's
commanded insulin on the current state, and raises an alarm when the
prediction leaves the guideline range [70, 180] mg/dL.

The monitor carries its own three-compartment insulin-effect estimate driven
by the *commanded* insulin (the same IVP insulin chain), parameterised with
population-average constants — deliberately not patient-specific, which is
exactly the weakness the paper attributes to this baseline.

The batched path (:meth:`MPCMonitor.observe_batch`) carries the insulin
chain as per-column state vectors and Euler-integrates the population
model for a whole replay batch at once; every arithmetic step transcribes
the scalar :meth:`MPCMonitor._integrate` expression order (the ``max``
clamps become ``np.where`` with the exact Python-``max`` tie semantics),
so the predictions — and therefore the verdicts — are element-wise
identical to the scalar loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.context import ContextVector
from ..core.monitor import MonitorVerdict, NO_ALERT, SafetyMonitor
from ..hazards import HazardType
from ..patients.base import UU_PER_UNIT

__all__ = ["MPCMonitor"]


class MPCMonitor(SafetyMonitor):
    """One-or-more-step-ahead BG prediction monitor.

    Parameters
    ----------
    gezi, egp, si, ci, tau1, tau2, p2:
        Bergman/IVP population constants (defaults: Kanderian means).
    horizon_steps:
        How many 5-minute steps to roll the model forward under the
        commanded insulin before checking the range.
    bg_low, bg_high:
        Alarm range (the guideline normal range).
    """

    name = "MPC"

    def __init__(self, gezi: float = 2.2e-3, egp: float = 1.33,
                 si: float = 7.1e-4, ci: float = 2010.0, tau1: float = 49.0,
                 tau2: float = 47.0, p2: float = 0.0106,
                 horizon_steps: int = 6, bg_low: float = 70.0,
                 bg_high: float = 180.0, dt: float = 5.0):
        if horizon_steps < 1:
            raise ValueError(f"horizon_steps must be >= 1, got {horizon_steps}")
        if bg_low >= bg_high:
            raise ValueError("bg_low must be below bg_high")
        self.gezi = gezi
        self.egp = egp
        self.si = si
        self.ci = ci
        self.tau1 = tau1
        self.tau2 = tau2
        self.p2 = p2
        self.horizon_steps = horizon_steps
        self.bg_low = float(bg_low)
        self.bg_high = float(bg_high)
        self.dt = float(dt)
        # internal insulin-effect state (population model, commanded insulin)
        self._isc = 0.0
        self._ip = 0.0
        self._ieff: Optional[float] = None

    def reset(self) -> None:
        self._isc = 0.0
        self._ip = 0.0
        self._ieff = None

    def _integrate(self, isc, ip, ieff, bg, insulin_uu_min, minutes):
        """Euler-integrate the population model for *minutes* at 1-min steps."""
        steps = max(int(round(minutes)), 1)
        for _ in range(steps):
            d_isc = insulin_uu_min / (self.tau1 * self.ci) - isc / self.tau1
            d_ip = (isc - ip) / self.tau2
            d_ieff = -self.p2 * ieff + self.p2 * self.si * ip
            d_bg = -(self.gezi + max(ieff, 0.0)) * bg + self.egp
            isc += d_isc
            ip += d_ip
            ieff += d_ieff
            bg = max(bg + d_bg, 1.0)
        return isc, ip, ieff, bg

    def observe(self, ctx: ContextVector) -> MonitorVerdict:
        if self._ieff is None:
            # initialise the insulin chain at the steady state that holds the
            # first observed BG (the monitor's best population-level guess)
            ieff0 = max(self.egp / max(ctx.bg, 1.0) - self.gezi, 0.0)
            ip0 = ieff0 / self.si
            self._isc, self._ip, self._ieff = ip0, ip0, ieff0

        insulin_uu_min = (ctx.rate / 60.0 + ctx.bolus / self.dt) * UU_PER_UNIT
        # roll the model forward under the commanded insulin
        isc, ip, ieff, bg = self._isc, self._ip, self._ieff, ctx.bg
        isc, ip, ieff, bg = self._integrate(isc, ip, ieff, bg,
                                            insulin_uu_min,
                                            self.horizon_steps * self.dt)
        predicted = bg

        # advance the internal state by one cycle (what actually got commanded)
        self._isc, self._ip, self._ieff, _ = self._integrate(
            self._isc, self._ip, self._ieff, ctx.bg, insulin_uu_min, self.dt)

        if predicted < self.bg_low:
            return MonitorVerdict(alert=True, hazard=HazardType.H1,
                                  triggered=("mpc-low",))
        if predicted > self.bg_high:
            return MonitorVerdict(alert=True, hazard=HazardType.H2,
                                  triggered=("mpc-high",))
        return NO_ALERT

    def _integrate_columns(self, isc, ip, ieff, bg, insulin_uu_min, minutes):
        """:meth:`_integrate` over ``(B,)`` state vectors.

        Identical expression order; ``max(x, c)`` (Python: ``c`` only when
        ``c > x``) becomes ``np.where(x < c, c, x)``, which preserves the
        tie behaviour exactly.
        """
        steps = max(int(round(minutes)), 1)
        for _ in range(steps):
            d_isc = insulin_uu_min / (self.tau1 * self.ci) - isc / self.tau1
            d_ip = (isc - ip) / self.tau2
            d_ieff = -self.p2 * ieff + self.p2 * self.si * ip
            ieff_pos = np.where(ieff < 0.0, 0.0, ieff)
            d_bg = -(self.gezi + ieff_pos) * bg + self.egp
            isc = isc + d_isc
            ip = ip + d_ip
            ieff = ieff + d_ieff
            bg_next = bg + d_bg
            bg = np.where(bg_next < 1.0, 1.0, bg_next)
        return isc, ip, ieff, bg

    def observe_batch(self, batch) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`observe` over a context batch, in two passes.

        Every column starts from the freshly-reset state (chain
        initialised at the first observed BG of that column), exactly as
        offline replay resets the monitor per trace.  The one-cycle state
        advance is inherently sequential, so pass one walks the time axis
        recording per-cycle state snapshots; the expensive horizon
        *predictions* are independent across cycles, so pass two rolls
        them all forward at once over flattened ``(n_steps * B,)``
        vectors — elementwise arithmetic, hence bit-identical to
        predicting cycle by cycle.  The monitor's own scalar state is not
        touched.
        """
        n_steps, n_cols = batch.shape
        alerts = np.zeros((n_steps, n_cols), dtype=bool)
        hazards = np.zeros((n_steps, n_cols), dtype=int)
        if n_steps == 0:
            return alerts, hazards
        # per-column steady-state initialisation at the first reading
        bg0 = batch.bg[0]
        bg0_floor = np.where(bg0 < 1.0, 1.0, bg0)
        ieff = self.egp / bg0_floor - self.gezi
        ieff = np.where(ieff < 0.0, 0.0, ieff)
        ip = ieff / self.si
        isc = ip.copy()
        insulin_uu_min = (batch.rate / 60.0
                          + batch.bolus / self.dt) * UU_PER_UNIT
        # pass one: advance the insulin chain cycle by cycle, snapshotting
        # the pre-advance state the scalar observe() predicts from
        isc_at = np.empty((n_steps, n_cols))
        ip_at = np.empty((n_steps, n_cols))
        ieff_at = np.empty((n_steps, n_cols))
        for step in range(n_steps):
            isc_at[step], ip_at[step], ieff_at[step] = isc, ip, ieff
            isc, ip, ieff, _ = self._integrate_columns(
                isc, ip, ieff, batch.bg[step], insulin_uu_min[step], self.dt)
        # pass two: all (cycle, column) horizon rollouts in one flat batch
        _, _, _, predicted = self._integrate_columns(
            isc_at.ravel(), ip_at.ravel(), ieff_at.ravel(),
            np.ascontiguousarray(batch.bg).ravel(), insulin_uu_min.ravel(),
            self.horizon_steps * self.dt)
        predicted = predicted.reshape(n_steps, n_cols)
        low = predicted < self.bg_low
        high = predicted > self.bg_high
        alerts[:] = low | high
        h1, h2 = int(HazardType.H1), int(HazardType.H2)
        hazards[:] = np.where(low, h1, np.where(high, h2, 0))
        return alerts, hazards
