"""Medical-guidelines baseline monitor (Table III of the paper).

A DAMON-style data-authenticity monitor built from generic clinical rules,
with no knowledge of the controller or patient:

- phi1: BG must stay in the normal range [70, 180] mg/dL;
- phi2: BG must not change too fast (per-cycle delta in (-5, 3) mg/dL);
- phi3: once BG drops below its 10th percentile ``lambda_10``, the controller
  must bring it back within ``alpha`` minutes;
- phi4: symmetric for the 90th percentile ``lambda_90``.

Violations on the low side predict H1, on the high side H2.

The batched path (:meth:`GuidelineMonitor.observe_batch`) advances one
time loop with the phi3/phi4 excursion timers held as per-column vectors,
so a whole replay batch is evaluated in ``n_steps`` numpy steps instead of
``n_steps x B`` Python cycles — with verdicts element-wise identical to
the scalar loop (comparisons and exact float arithmetic only).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..core.context import ContextVector
from ..core.monitor import MonitorVerdict, NO_ALERT, SafetyMonitor
from ..hazards import HazardType

__all__ = ["GuidelineMonitor"]


class GuidelineMonitor(SafetyMonitor):
    """Table III rule monitor.

    Parameters
    ----------
    bg_low, bg_high:
        The phi1 normal range (mg/dL).
    delta_low, delta_high:
        The phi2 per-cycle change bounds (mg/dL per 5-minute cycle).
    lambda_10, lambda_90:
        Percentile thresholds for phi3/phi4; refine with :meth:`fit` from
        fault-free traces.
    alpha:
        Recovery deadline for phi3/phi4 in minutes (paper suggests 25).
    """

    name = "Guideline"

    def __init__(self, bg_low: float = 70.0, bg_high: float = 180.0,
                 delta_low: float = -5.0, delta_high: float = 3.0,
                 lambda_10: float = 90.0, lambda_90: float = 160.0,
                 alpha: float = 25.0):
        if bg_low >= bg_high:
            raise ValueError("bg_low must be below bg_high")
        if delta_low >= delta_high:
            raise ValueError("delta_low must be below delta_high")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.bg_low = float(bg_low)
        self.bg_high = float(bg_high)
        self.delta_low = float(delta_low)
        self.delta_high = float(delta_high)
        self.lambda_10 = float(lambda_10)
        self.lambda_90 = float(lambda_90)
        self.alpha = float(alpha)
        self._below_since: Optional[float] = None
        self._above_since: Optional[float] = None

    def fit(self, traces: Iterable) -> "GuidelineMonitor":
        """Set lambda_10/lambda_90 from the BG distribution of *traces*."""
        values = np.concatenate([trace.cgm for trace in traces])
        if values.size == 0:
            raise ValueError("cannot fit percentiles on empty traces")
        self.lambda_10 = float(np.percentile(values, 10))
        self.lambda_90 = float(np.percentile(values, 90))
        return self

    def reset(self) -> None:
        self._below_since = None
        self._above_since = None

    def observe(self, ctx: ContextVector) -> MonitorVerdict:
        triggered = []
        hazard: Optional[HazardType] = None

        # phi1: normal range
        if ctx.bg < self.bg_low:
            triggered.append("phi1-low")
            hazard = HazardType.H1
        elif ctx.bg > self.bg_high:
            triggered.append("phi1-high")
            hazard = HazardType.H2

        # phi2: rate of change per cycle (bg_rate is per minute)
        delta = ctx.bg_rate * 5.0
        if delta < self.delta_low:
            triggered.append("phi2-fall")
            hazard = hazard or HazardType.H1
        elif delta > self.delta_high:
            triggered.append("phi2-rise")
            hazard = hazard or HazardType.H2

        # phi3: recovery deadline below the 10th percentile
        if ctx.bg < self.lambda_10:
            if self._below_since is None:
                self._below_since = ctx.t
            elif ctx.t - self._below_since > self.alpha:
                triggered.append("phi3")
                hazard = hazard or HazardType.H1
        else:
            self._below_since = None

        # phi4: recovery deadline above the 90th percentile
        if ctx.bg > self.lambda_90:
            if self._above_since is None:
                self._above_since = ctx.t
            elif ctx.t - self._above_since > self.alpha:
                triggered.append("phi4")
                hazard = hazard or HazardType.H2
        else:
            self._above_since = None

        if triggered:
            return MonitorVerdict(alert=True, hazard=hazard,
                                  triggered=tuple(triggered))
        return NO_ALERT

    def observe_batch(self, batch) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`observe` over a context batch.

        One time loop; the ``_below_since``/``_above_since`` timers become
        ``(B,)`` vectors (NaN = unset).  The hazard precedence replays the
        scalar ``hazard or ...`` chain: phi1 first, then phi2/phi3/phi4
        only where no earlier rule already set a type.  The monitor's own
        scalar timers are not touched.
        """
        n_steps, n_cols = batch.shape
        alerts = np.zeros((n_steps, n_cols), dtype=bool)
        hazards = np.zeros((n_steps, n_cols), dtype=int)
        h1, h2 = int(HazardType.H1), int(HazardType.H2)
        below_since = np.full(n_cols, np.nan)
        above_since = np.full(n_cols, np.nan)
        for step in range(n_steps):
            bg = batch.bg[step]
            t = batch.t[step]

            phi1_low = bg < self.bg_low
            phi1_high = bg > self.bg_high
            delta = batch.bg_rate[step] * 5.0
            phi2_fall = delta < self.delta_low
            phi2_rise = delta > self.delta_high

            under = bg < self.lambda_10
            below_set = ~np.isnan(below_since)
            phi3 = under & below_set & (t - below_since > self.alpha)
            below_since = np.where(
                under, np.where(below_set, below_since, t), np.nan)

            over = bg > self.lambda_90
            above_set = ~np.isnan(above_since)
            phi4 = over & above_set & (t - above_since > self.alpha)
            above_since = np.where(
                over, np.where(above_set, above_since, t), np.nan)

            hazard = np.where(phi1_low, h1, np.where(phi1_high, h2, 0))
            for cond, code in ((phi2_fall, h1), (phi2_rise, h2),
                               (phi3, h1), (phi4, h2)):
                hazard = np.where((hazard == 0) & cond, code, hazard)
            alerts[step] = (phi1_low | phi1_high | phi2_fall | phi2_rise
                            | phi3 | phi4)
            hazards[step] = hazard
        return alerts, hazards
