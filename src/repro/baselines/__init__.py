"""Baseline monitors: medical guidelines (Table III) and MPC (Eq. 6)."""

from .guideline import GuidelineMonitor
from .mpc import MPCMonitor

__all__ = ["GuidelineMonitor", "MPCMonitor"]
