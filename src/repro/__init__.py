"""Reproduction of "Data-driven Design of Context-aware Monitors for Hazard
Prediction in Artificial Pancreas Systems" (Zhou et al., DSN 2021).

Public API map
--------------
- :mod:`repro.stl` — bounded-time STL engine (AST, semantics, parser);
- :mod:`repro.patients` — IVP (Glucosym) and Dalla Man S2013 (UVA-Padova)
  virtual patients, CGM sensor, insulin pump;
- :mod:`repro.controllers` — OpenAPS (oref0) port, Basal-Bolus, PID, IOB;
- :mod:`repro.simulation` — closed loop, scenarios, traces, campaign runner,
  offline monitor replay;
- :mod:`repro.fi` — fault models (Table II), injector, 882-scenario campaign;
- :mod:`repro.hazards` — Kovatchev risk index (Eq. 5), hazard labeling;
- :mod:`repro.core` — the paper's contribution: safety-context specification
  (Table I rules), TMEE threshold learning (Eq. 3/4), CAWT/CAWOT monitors,
  Algorithm 1 mitigation;
- :mod:`repro.baselines` — Guideline (Table III) and MPC (Eq. 6) monitors;
- :mod:`repro.ml` — from-scratch DT / MLP / LSTM baseline monitors;
- :mod:`repro.metrics` — Section V-D metrics;
- :mod:`repro.experiments` — one module per table/figure of the evaluation.
"""

__version__ = "1.0.0"

__all__ = [
    "stl",
    "patients",
    "controllers",
    "simulation",
    "fi",
    "hazards",
    "core",
    "baselines",
    "ml",
    "metrics",
    "experiments",
]
