"""Alert deduplication and escalation for the serving layer.

A monitor that predicts a hazard keeps predicting it on nearly every
subsequent cycle until the excursion resolves — useful for mitigation,
useless as a notification stream.  Production CGM alerting (e.g. the
TypeOneZen Dexcom-share loop this layer is modelled on) therefore dedups
repeat alerts inside a wall-clock window; we use the same 2-hour default.

Semantics, per ``(user, monitor)`` stream:

- the first raw alert **emits** an :class:`AlertEvent`;
- later raw alerts are **suppressed** while ``t - last_emit < window``
  (a raw alert at exactly ``t - last_emit == window`` emits again);
- a raw alert whose hazard *differs* from the last emitted hazard emits
  immediately (H1 vs H2 is a clinically different situation, never
  deduped away);
- once the consecutive-alert streak since the last emission reaches
  ``escalate_after`` ticks, one escalation event (``escalated=True``)
  emits early, carrying the suppressed count — a sustained excursion
  should not stay silent for the whole window.  At most one escalation
  per dedup window; the window timer restarts at the escalation.
- a silent tick resets the streak but **not** the window timer (dedup is
  wall-clock, not streak-based).

The raw per-tick alert vectors are untouched by all of this — the serving
parity contract is checked on raw streams; dedup is strictly downstream.
The bulk entry point (:meth:`AlertManager.observe_tick`) only walks the
alerted columns plus the streams that need a streak reset, so quiet fleets
cost nothing per tick regardless of user count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

__all__ = ["AlertEvent", "AlertManager", "DEFAULT_DEDUP_WINDOW_MINUTES"]

#: TypeOneZen's notification dedup window (minutes)
DEFAULT_DEDUP_WINDOW_MINUTES = 120.0


@dataclass(frozen=True)
class AlertEvent:
    """One emitted (post-dedup) notification.

    Attributes
    ----------
    t:
        Tick time stamp in minutes.
    user_id, monitor:
        The alerting stream.
    hazard:
        Predicted hazard-type code.
    suppressed:
        Raw alerts deduped since the previous emission on this stream.
    streak:
        Consecutive alerted ticks (including this one) at emit time.
    escalated:
        True when this event fired early because the streak reached the
        escalation threshold inside the dedup window.
    """

    t: float
    user_id: Hashable
    monitor: str
    hazard: int
    suppressed: int = 0
    streak: int = 1
    escalated: bool = False


@dataclass
class _StreamState:
    last_emit_t: float
    last_emit_hazard: int
    suppressed: int = 0          # raw alerts deduped since the last emit
    streak: int = 1              # consecutive alerted ticks (reporting)
    streak_since_emit: int = 0   # consecutive alerted ticks since the emit
    escalated_in_window: bool = False


@dataclass
class AlertManager:
    """Stateful dedup/escalation over per-tick raw alert streams.

    Parameters
    ----------
    window:
        Dedup window in minutes (see module docstring for the exact
        boundary semantics).
    escalate_after:
        Consecutive alerted ticks that force one early re-emission;
        ``None`` disables escalation.
    """

    window: float = DEFAULT_DEDUP_WINDOW_MINUTES
    escalate_after: Optional[int] = 24
    #: raw alerts whose wall clock ran *backwards* relative to the
    #: stream's last emission (clock skew): the timestamp is clamped to
    #: the last emit time for window arithmetic instead of silently
    #: reopening (negative elapsed) or corrupting the dedup window, and
    #: each occurrence is counted here for operators
    clock_skew_events: int = 0
    #: monitor name -> user id -> stream state
    _streams: Dict[str, Dict[Hashable, _StreamState]] = field(
        default_factory=dict, repr=False)

    def __post_init__(self):
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.escalate_after is not None and self.escalate_after < 2:
            raise ValueError("escalate_after must be >= 2 (1 would re-emit "
                             "every tick) or None")

    def observe(self, t: float, user_id: Hashable, monitor: str,
                alert: bool, hazard: int) -> Optional[AlertEvent]:
        """Feed one raw tick verdict; returns the emitted event or None."""
        streams = self._streams.setdefault(monitor, {})
        state = streams.get(user_id)
        if not alert:
            if state is not None:
                state.streak = 0
                state.streak_since_emit = 0
            return None
        if state is None:
            streams[user_id] = _StreamState(last_emit_t=t,
                                            last_emit_hazard=hazard)
            return AlertEvent(t=t, user_id=user_id, monitor=monitor,
                              hazard=hazard)
        if t < state.last_emit_t:
            # non-monotone wall clock on this stream: clamp rather than
            # let a negative elapsed time warp the dedup window (a skewed
            # source could otherwise suppress alerts for up to 2x window)
            self.clock_skew_events += 1
            t = state.last_emit_t
        state.streak += 1
        state.streak_since_emit += 1
        escalate = (self.escalate_after is not None
                    and not state.escalated_in_window
                    and state.streak_since_emit >= self.escalate_after)
        if (t - state.last_emit_t >= self.window
                or hazard != state.last_emit_hazard or escalate):
            event = AlertEvent(t=t, user_id=user_id, monitor=monitor,
                               hazard=hazard, suppressed=state.suppressed,
                               streak=state.streak, escalated=escalate)
            state.last_emit_t = t
            state.last_emit_hazard = hazard
            state.suppressed = 0
            state.streak_since_emit = 0
            state.escalated_in_window = escalate
            return event
        state.suppressed += 1
        return None

    def observe_tick(self, t: float, monitor: str,
                     user_ids: Sequence[Hashable], alerts: np.ndarray,
                     hazards: np.ndarray) -> List[AlertEvent]:
        """Feed one monitor's whole tick column; returns emitted events.

        Equivalent to calling :meth:`observe` once per user, but only the
        alerted columns (plus existing streams whose streak must reset)
        are visited — the silent majority costs nothing.  Users absent
        from *user_ids* are untouched (a user that skips a tick neither
        alerts nor breaks its streak).
        """
        events: List[AlertEvent] = []
        alerted = np.flatnonzero(alerts)
        alerted_users = set()
        for j in alerted:
            user_id = user_ids[j]
            alerted_users.add(user_id)
            event = self.observe(t, user_id, monitor, True, int(hazards[j]))
            if event is not None:
                events.append(event)
        streams = self._streams.get(monitor)
        if streams and len(streams) > len(alerted_users):
            stale = [user_id for user_id, state in streams.items()
                     if state.streak and user_id not in alerted_users]
            if stale:
                present = set(user_ids)
                for user_id in stale:
                    if user_id in present:
                        state = streams[user_id]
                        state.streak = 0
                        state.streak_since_emit = 0
        return events

    def drop_user(self, user_id: Hashable) -> None:
        """Forget every stream of a disconnected user."""
        for streams in self._streams.values():
            streams.pop(user_id, None)

    @property
    def n_streams(self) -> int:
        return sum(len(streams) for streams in self._streams.values())
