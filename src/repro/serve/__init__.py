"""Online monitor serving: registry, per-user context rings, tick-batched
evaluation, alert dedup/escalation and a deterministic load generator.

The production half of the reproduction: trained monitors load once from a
:class:`MonitorRegistry` and evaluate every connected user per tick as one
``ContextBatch`` column batch, with raw alert streams element-wise
identical to offline :func:`~repro.simulation.replay.replay_campaign`
(see :mod:`repro.serve.service` and ``docs/monitor_service.md``).
"""

from .alerts import AlertEvent, AlertManager, DEFAULT_DEDUP_WINDOW_MINUTES
from .loadgen import LoadGenerator, LoadReport, run_load
from .registry import MonitorRegistry, RegistryError
from .ring import ContextRing
from .service import (DEFAULT_WINDOW_TICKS, MonitorService, TickBatch,
                      TickResult, replay_log)

__all__ = [
    "AlertEvent",
    "AlertManager",
    "DEFAULT_DEDUP_WINDOW_MINUTES",
    "DEFAULT_WINDOW_TICKS",
    "ContextRing",
    "LoadGenerator",
    "LoadReport",
    "MonitorRegistry",
    "MonitorService",
    "RegistryError",
    "TickBatch",
    "TickResult",
    "replay_log",
    "run_load",
]
