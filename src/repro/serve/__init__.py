"""Online monitor serving: registry, per-user context rings, tick-batched
evaluation, alert dedup/escalation, a deterministic load generator, and
crash safety (write-ahead journal + snapshots + bit-exact recovery).

The production half of the reproduction: trained monitors load once from a
:class:`MonitorRegistry` and evaluate every connected user per tick as one
``ContextBatch`` column batch, with raw alert streams element-wise
identical to offline :func:`~repro.simulation.replay.replay_campaign`
(see :mod:`repro.serve.service` and ``docs/monitor_service.md``).
Malformed rows are quarantined (:class:`RejectedTick`) instead of raising
mid-tick, and with a ``persist_dir`` the service survives hard kills via
:mod:`repro.serve.persist` — faults injected by :mod:`repro.serve.chaos`.
"""

from .alerts import AlertEvent, AlertManager, DEFAULT_DEDUP_WINDOW_MINUTES
from .loadgen import LoadGenerator, LoadReport, run_load
from .persist import (JournalCorruptError, PersistenceError, RecoveryReport,
                      SnapshotError, TickJournal)
from .registry import MonitorRegistry, RegistryError
from .ring import ContextRing
from .service import (DEFAULT_WINDOW_TICKS, REJECT_REASONS, MonitorService,
                      RejectedTick, TickBatch, TickResult, replay_log)

__all__ = [
    "AlertEvent",
    "AlertManager",
    "DEFAULT_DEDUP_WINDOW_MINUTES",
    "DEFAULT_WINDOW_TICKS",
    "ContextRing",
    "JournalCorruptError",
    "LoadGenerator",
    "LoadReport",
    "MonitorRegistry",
    "MonitorService",
    "PersistenceError",
    "RecoveryReport",
    "RegistryError",
    "REJECT_REASONS",
    "RejectedTick",
    "SnapshotError",
    "TickBatch",
    "TickJournal",
    "TickResult",
    "replay_log",
    "run_load",
]
