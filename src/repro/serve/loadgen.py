"""Deterministic load generator and throughput measurement for the service.

Synthesises a fleet of plausible CGM/insulin streams — a mean-reverting
glucose random walk with occasional boluses, fully vectorized and seeded —
and drives a :class:`~repro.serve.service.MonitorService` tick by tick
while timing **only** the service's :meth:`~repro.serve.service.
MonitorService.process` calls.  The report carries the two numbers the
bench gate tracks: sustained throughput (user-ticks per second of service
time) and the p99 per-tick latency.

Everything is deterministic in the seed: two generators with the same
``(n_users, seed)`` produce identical tick streams, so bench runs are
reproducible and regressions are attributable to the code, not the load.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Tuple

import numpy as np

from ..controllers import ControlAction
from .service import MonitorService, TickBatch

__all__ = ["LoadGenerator", "LoadReport", "run_load"]


@dataclass(frozen=True)
class LoadReport:
    """Measured service throughput under synthetic load."""

    n_users: int
    n_ticks: int
    service_seconds: float
    users_per_sec: float
    p50_tick_ms: float
    p99_tick_ms: float
    max_tick_ms: float
    n_raw_alerts: int
    n_events: int

    def summary(self) -> str:
        return (f"{self.n_users} users x {self.n_ticks} ticks: "
                f"{self.users_per_sec:,.0f} user-ticks/s sustained, "
                f"p50 {self.p50_tick_ms:.2f} ms, "
                f"p99 {self.p99_tick_ms:.2f} ms per tick "
                f"({self.n_raw_alerts} raw alerts -> "
                f"{self.n_events} notifications)")


class LoadGenerator:
    """Seeded synthetic fleet: one call per tick, vectorized over users.

    Glucose follows a per-user mean-reverting random walk around a
    per-user setpoint inside the normal range; IOB decays toward a basal
    equilibrium and jumps on the occasional synthetic bolus.  The
    commanded action is KEEP except on bolus ticks (INCREASE) — plausible
    enough to exercise every monitor's arithmetic without drowning the
    alert path (a small excursion fraction still alerts).
    """

    def __init__(self, n_users: int, seed: int = 0, dt: float = 5.0,
                 bolus_rate: float = 0.01):
        if n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")
        self.n_users = int(n_users)
        self.dt = float(dt)
        self.bolus_rate = float(bolus_rate)
        self.user_ids: Tuple[str, ...] = tuple(
            f"user-{i}" for i in range(self.n_users))
        self._rng = np.random.default_rng(seed)
        self._setpoint = self._rng.uniform(100.0, 160.0, self.n_users)
        self._bg = self._setpoint + self._rng.normal(0.0, 10.0, self.n_users)
        self._iob = self._rng.uniform(0.5, 2.0, self.n_users)
        self._basal = self._rng.uniform(0.8, 1.6, self.n_users)
        self._tick_index = 0

    def tick(self) -> TickBatch:
        """The next cycle's :class:`~repro.serve.service.TickBatch`."""
        rng = self._rng
        n = self.n_users
        t = self._tick_index * self.dt
        self._tick_index += 1
        # mean-reverting glucose walk (keeps most users in range, with a
        # drifting tail that genuinely alerts)
        pull = 0.08 * (self._setpoint - self._bg)
        self._bg = self._bg + pull + rng.normal(0.0, 2.0, n)
        bolus_mask = rng.random(n) < self.bolus_rate
        bolus = np.where(bolus_mask, rng.uniform(0.5, 3.0, n), 0.0)
        self._iob = np.maximum(
            0.0, self._iob * 0.97 + bolus + self._basal * (self.dt / 60.0)
            * 0.03)
        iob_rate = rng.normal(0.0, 0.01, n)
        action = np.where(bolus_mask, int(ControlAction.INCREASE),
                          int(ControlAction.KEEP))
        return TickBatch(t=t, user_ids=self.user_ids, cgm=self._bg.copy(),
                         iob=self._iob.copy(), iob_rate=iob_rate,
                         rate=self._basal.copy(), bolus=bolus,
                         action=action)


def run_load(service: MonitorService, n_users: int, n_ticks: int,
             seed: int = 0, warmup_ticks: int = 1) -> LoadReport:
    """Drive *service* with a synthetic fleet and measure throughput.

    ``warmup_ticks`` extra untimed cycles run first (slot allocation,
    ring growth and clone creation all happen on first sight of the
    fleet and should not pollute the steady-state numbers).
    """
    if n_ticks < 1:
        raise ValueError(f"n_ticks must be >= 1, got {n_ticks}")
    if warmup_ticks < 0:
        raise ValueError(f"warmup_ticks must be >= 0, got {warmup_ticks}")
    generator = LoadGenerator(n_users, seed=seed, dt=service.dt)
    for _ in range(warmup_ticks):
        service.process(generator.tick())
    latencies: List[float] = []
    n_raw_alerts = 0
    n_events = 0
    for _ in range(n_ticks):
        tick = generator.tick()
        start = perf_counter()
        result = service.process(tick)
        latencies.append(perf_counter() - start)
        n_raw_alerts += int(sum(flags.sum() for flags in
                                result.alerts.values()))
        n_events += len(result.events)
    seconds = float(sum(latencies))
    ms = np.asarray(latencies) * 1e3
    return LoadReport(
        n_users=n_users, n_ticks=n_ticks, service_seconds=seconds,
        users_per_sec=n_users * n_ticks / seconds if seconds > 0 else
        float("inf"),
        p50_tick_ms=float(np.percentile(ms, 50)),
        p99_tick_ms=float(np.percentile(ms, 99)),
        max_tick_ms=float(ms.max()),
        n_raw_alerts=n_raw_alerts, n_events=n_events)
