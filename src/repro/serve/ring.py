"""Columnar per-user ring buffers for context history.

The serving layer keeps, for every connected user, a bounded window of the
most recent context rows (the :data:`~repro.simulation.features.
FEATURE_NAMES` layout plus the time stamp and the raw action code).  One
naive deque per user would turn every tick into ``B`` Python appends; this
module instead holds *all* users in one ``(capacity, width, n_slots)``
array, so a tick appends one row for every active user in a single fancy-
indexed scatter — the same columnar philosophy as the lock-step engine.

Each slot carries its own monotonically-growing append count; the physical
row of logical append ``i`` is ``i % capacity``, so wraparound never moves
data and :meth:`ContextRing.window` can always recover the chronological
view with one modular index expression.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ContextRing"]


class ContextRing:
    """A fixed-capacity ring of context rows per user slot.

    Parameters
    ----------
    capacity:
        Rows retained per slot (older rows are overwritten).
    width:
        Row width (the serving layer uses ``2 + len(FEATURE_NAMES)``:
        time stamp, action code, then the feature row).
    n_slots:
        Initial slot count; :meth:`ensure_slots` grows on demand
        (geometrically, so connecting users is amortised O(1)).
    """

    def __init__(self, capacity: int, width: int, n_slots: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if n_slots < 0:
            raise ValueError(f"n_slots must be >= 0, got {n_slots}")
        self.capacity = int(capacity)
        self.width = int(width)
        self._data = np.zeros((self.capacity, self.width, n_slots))
        self._counts = np.zeros(n_slots, dtype=np.int64)

    @property
    def n_slots(self) -> int:
        return self._data.shape[2]

    def ensure_slots(self, n: int) -> None:
        """Grow the ring to hold at least *n* slots (never shrinks)."""
        current = self.n_slots
        if n <= current:
            return
        grown = max(n, 2 * current, 8)
        data = np.zeros((self.capacity, self.width, grown))
        data[:, :, :current] = self._data
        counts = np.zeros(grown, dtype=np.int64)
        counts[:current] = self._counts
        self._data = data
        self._counts = counts

    def clear_slot(self, slot: int) -> None:
        """Reset one slot for reuse by a new user."""
        self._counts[slot] = 0
        self._data[:, :, slot] = 0.0

    def count(self, slot: int) -> int:
        """Rows currently held in *slot* (saturates at capacity)."""
        return int(min(self._counts[slot], self.capacity))

    def append(self, rows: np.ndarray, slots: np.ndarray) -> None:
        """Append one row per slot in a single vectorized scatter.

        ``rows`` is ``(width, k)`` column-major (one column per slot in
        ``slots``); duplicate slots are rejected — a slot ticks at most
        once per cycle.
        """
        slots = np.asarray(slots, dtype=np.intp)
        rows = np.asarray(rows, dtype=float)
        if rows.shape != (self.width, len(slots)):
            raise ValueError(
                f"rows must be (width, k) = ({self.width}, {len(slots)}), "
                f"got {rows.shape}")
        if len(np.unique(slots)) != len(slots):
            raise ValueError("duplicate slots in one append")
        positions = self._counts[slots] % self.capacity
        self._data[positions, :, slots] = rows.T
        self._counts[slots] += 1

    def export_state(self) -> dict:
        """Snapshot payload: copies of the backing array and counters.

        Consumed by the serving layer's crash-recovery snapshots
        (:mod:`repro.serve.persist`); restoring via :meth:`restore_state`
        reproduces the ring bit for bit, including wraparound position.
        """
        return {"capacity": self.capacity, "width": self.width,
                "data": self._data.copy(), "counts": self._counts.copy()}

    def restore_state(self, state: dict) -> None:
        """Install :meth:`export_state` output (shape-checked)."""
        data = np.asarray(state["data"], dtype=float)
        counts = np.asarray(state["counts"], dtype=np.int64)
        if (int(state["capacity"]) != self.capacity
                or int(state["width"]) != self.width
                or data.shape[:2] != (self.capacity, self.width)
                or counts.shape != (data.shape[2],)):
            raise ValueError(
                f"ring state (capacity={state['capacity']}, "
                f"width={state['width']}, data {data.shape}, counts "
                f"{counts.shape}) does not fit ring {self!r}")
        self._data = data
        self._counts = counts

    def window(self, slot: int) -> np.ndarray:
        """The chronological ``(count, width)`` view of *slot*.

        Oldest retained row first; allocates a fresh array (the ring is
        free to keep overwriting).
        """
        total = int(self._counts[slot])
        n = min(total, self.capacity)
        start = (total - n) % self.capacity
        idx = (start + np.arange(n)) % self.capacity
        return self._data[idx, :, slot]

    def last(self, slot: int) -> np.ndarray:
        """The most recently appended ``(width,)`` row of *slot*."""
        total = int(self._counts[slot])
        if total == 0:
            raise ValueError(f"slot {slot} holds no rows yet")
        return self._data[(total - 1) % self.capacity, :, slot].copy()

    def __repr__(self) -> str:
        return (f"ContextRing(capacity={self.capacity}, width={self.width}, "
                f"n_slots={self.n_slots})")
