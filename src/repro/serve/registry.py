"""Persistent registry of trained monitors for the serving layer.

Training is offline and expensive; serving must load the resulting
monitor state **once** per process and share it read-only across every
connected user.  :class:`MonitorRegistry` is that boundary: an ordered
``name -> monitor`` collection that knows how to persist each supported
monitor kind to a directory (JSON manifest + one ``.npz`` of arrays per
array-bearing monitor) and rebuild it bit-identically:

- **context-aware** (CAWT/CAWOT): learned thresholds + BGT, via the
  :meth:`~repro.core.monitor.ContextAwareMonitor.export_state` hook;
- **dt**: the preorder ``node_arrays`` flattening, rebuilt through
  :meth:`~repro.ml.tree.DecisionTreeClassifier.from_node_arrays`;
- **mlp** / **lstm**: scaler + layer parameters via the classifier's
  ``export_params`` / ``load_params`` hooks, plus the architecture
  hyperparameters needed to rebuild the layer stack;
- **guideline** / **mpc**: pure constructor parameters (JSON only).

Unsupported monitor types are refused loudly at :meth:`~MonitorRegistry.
save` time — a monitor must never round-trip as an empty shell.  The
round-trip is exact: a reloaded registry's verdicts are element-wise
identical to the originals (the registry test suite checks this through
:func:`repro.ml.training.monitor_state` equality and replayed alerts).
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from ..baselines import GuidelineMonitor, MPCMonitor
from ..core.monitor import ContextAwareMonitor, SafetyMonitor
from ..ml.monitors import DTMonitor, LSTMMonitor, MLPMonitor
from ..ml.nn import LSTMClassifier, MLPClassifier
from ..ml.tree import DecisionTreeClassifier

__all__ = ["MonitorRegistry", "RegistryError", "REGISTRY_SCHEMA_VERSION"]

REGISTRY_SCHEMA_VERSION = 1
MANIFEST_NAME = "registry.json"

#: GuidelineMonitor / MPCMonitor constructor parameters persisted verbatim
_GUIDELINE_PARAMS = ("bg_low", "bg_high", "delta_low", "delta_high",
                     "lambda_10", "lambda_90", "alpha")
_MPC_PARAMS = ("gezi", "egp", "si", "ci", "tau1", "tau2", "p2",
               "horizon_steps", "bg_low", "bg_high", "dt")


class RegistryError(RuntimeError):
    """A monitor cannot be persisted or a saved registry is unreadable."""


def _slug(name: str, taken) -> str:
    base = re.sub(r"[^A-Za-z0-9_-]+", "_", name).strip("_") or "monitor"
    slug = base
    n = 2
    while slug in taken:
        slug = f"{base}_{n}"
        n += 1
    taken.add(slug)
    return slug


class MonitorRegistry:
    """An ordered, read-only collection of named serving monitors."""

    def __init__(self, monitors: Mapping[str, SafetyMonitor]):
        if not monitors:
            raise RegistryError("a registry needs at least one monitor")
        self._monitors: Dict[str, SafetyMonitor] = dict(monitors)

    # mapping surface ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._monitors)

    def __iter__(self) -> Iterator[str]:
        return iter(self._monitors)

    def __getitem__(self, name: str) -> SafetyMonitor:
        return self._monitors[name]

    def items(self) -> Iterator[Tuple[str, SafetyMonitor]]:
        return iter(self._monitors.items())

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._monitors)

    def __repr__(self) -> str:
        return f"MonitorRegistry({', '.join(self._monitors)})"

    # persistence -------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist every monitor to *directory* (created if missing)."""
        os.makedirs(directory, exist_ok=True)
        taken: set = set()
        entries = []
        for name, monitor in self._monitors.items():
            kind, config, arrays = _export(monitor)
            arrays_file: Optional[str] = None
            if arrays:
                arrays_file = _slug(name, taken) + ".npz"
                np.savez(os.path.join(directory, arrays_file), **arrays)
            entries.append({"name": name, "kind": kind, "config": config,
                            "arrays": arrays_file})
        manifest = {"schema": REGISTRY_SCHEMA_VERSION, "monitors": entries}
        path = os.path.join(directory, MANIFEST_NAME)
        with open(path + ".tmp", "w") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        os.replace(path + ".tmp", path)

    @classmethod
    def load(cls, directory: str) -> "MonitorRegistry":
        """Rebuild a saved registry; every monitor loads exactly once."""
        path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.isfile(path):
            raise RegistryError(f"no registry manifest at {path}")
        try:
            with open(path) as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"unreadable registry manifest: {exc}") from exc
        schema = manifest.get("schema")
        if schema != REGISTRY_SCHEMA_VERSION:
            raise RegistryError(
                f"registry schema {schema!r} != {REGISTRY_SCHEMA_VERSION}")
        monitors: Dict[str, SafetyMonitor] = {}
        for entry in manifest.get("monitors", []):
            name, kind = entry.get("name"), entry.get("kind")
            arrays: Dict[str, np.ndarray] = {}
            if entry.get("arrays"):
                arrays_path = os.path.join(directory, entry["arrays"])
                if not os.path.isfile(arrays_path):
                    raise RegistryError(f"missing arrays file {arrays_path}")
                # a truncated/corrupted .npz surfaces as a zipfile or
                # pickle error deep inside numpy — re-raise as the typed
                # registry failure so callers never half-load a fleet
                try:
                    with np.load(arrays_path) as data:
                        arrays = {key: data[key] for key in data.files}
                except RegistryError:
                    raise
                except Exception as exc:
                    raise RegistryError(
                        f"corrupt arrays file {arrays_path} for monitor "
                        f"{name!r}: {exc}") from exc
            try:
                monitors[name] = _rebuild(kind, entry["config"], arrays)
            except RegistryError:
                raise
            except (KeyError, ValueError, TypeError) as exc:
                raise RegistryError(
                    f"cannot rebuild monitor {name!r} of kind {kind!r}: "
                    f"manifest/arrays mismatch ({exc!r})") from exc
        return cls(monitors)


# ----------------------------------------------------------------------
# per-kind export / rebuild
# ----------------------------------------------------------------------

def _export(monitor: SafetyMonitor):
    """``(kind, json_config, arrays)`` of one monitor; loud on unknowns."""
    if isinstance(monitor, ContextAwareMonitor):
        return "context-aware", monitor.export_state(), {}
    if isinstance(monitor, GuidelineMonitor):
        return "guideline", {p: getattr(monitor, p)
                             for p in _GUIDELINE_PARAMS}, {}
    if isinstance(monitor, MPCMonitor):
        return "mpc", {p: getattr(monitor, p) for p in _MPC_PARAMS}, {}
    if isinstance(monitor, DTMonitor):
        features, thresholds, counts = monitor.model.node_arrays()
        config = {"multiclass": monitor.multiclass,
                  "bg_target": monitor.bg_target,
                  "max_depth": monitor.model.max_depth,
                  "min_samples_split": monitor.model.min_samples_split,
                  "min_samples_leaf": monitor.model.min_samples_leaf,
                  "max_thresholds": monitor.model.max_thresholds}
        arrays = {"features": features, "thresholds": thresholds,
                  "counts": counts, "classes": monitor.model.classes_}
        return "dt", config, arrays
    if isinstance(monitor, MLPMonitor):
        model = monitor.model
        config = {"multiclass": monitor.multiclass,
                  "bg_target": monitor.bg_target,
                  "hidden": list(model.hidden), "dropout": model.dropout,
                  "n_classes": model.n_classes,
                  "in_shape": [int(model.scaler.mean.shape[-1])]}
        return "mlp", config, _param_arrays(model)
    if isinstance(monitor, LSTMMonitor):
        model = monitor.model
        config = {"multiclass": monitor.multiclass,
                  "bg_target": monitor.bg_target, "k": monitor.k,
                  "hidden": list(model.hidden),
                  "n_classes": model.n_classes,
                  "in_shape": [monitor.k,
                               int(model.scaler.mean.shape[-1])]}
        return "lstm", config, _param_arrays(model)
    raise RegistryError(
        f"monitor {monitor.name!r} of type {type(monitor).__name__} has no "
        "registry serialization; supported kinds: context-aware, "
        "guideline, mpc, dt, mlp, lstm")


def _param_arrays(model) -> Dict[str, np.ndarray]:
    return {f"p{i}": p for i, p in enumerate(model.export_params())}


def _load_params(arrays: Dict[str, np.ndarray]):
    try:
        return [arrays[f"p{i}"] for i in range(len(arrays))]
    except KeyError as exc:
        raise RegistryError(f"corrupt parameter arrays: missing {exc}") from exc


def _rebuild(kind: str, config: Dict, arrays: Dict[str, np.ndarray]
             ) -> SafetyMonitor:
    if kind == "context-aware":
        return ContextAwareMonitor.from_state(config)
    if kind == "guideline":
        return GuidelineMonitor(**{p: config[p] for p in _GUIDELINE_PARAMS})
    if kind == "mpc":
        return MPCMonitor(**{p: config[p] for p in _MPC_PARAMS})
    if kind == "dt":
        model = DecisionTreeClassifier.from_node_arrays(
            arrays["features"], arrays["thresholds"], arrays["counts"],
            arrays["classes"], max_depth=int(config["max_depth"]),
            min_samples_split=int(config["min_samples_split"]),
            min_samples_leaf=int(config["min_samples_leaf"]),
            max_thresholds=int(config["max_thresholds"]))
        return DTMonitor(model, multiclass=bool(config["multiclass"]),
                         bg_target=float(config["bg_target"]))
    if kind == "mlp":
        model = MLPClassifier(hidden=tuple(config["hidden"]),
                              n_classes=int(config["n_classes"]),
                              dropout=float(config["dropout"]))
        model.load_params(tuple(config["in_shape"]), _load_params(arrays))
        return MLPMonitor(model, multiclass=bool(config["multiclass"]),
                          bg_target=float(config["bg_target"]))
    if kind == "lstm":
        model = LSTMClassifier(hidden=tuple(config["hidden"]),
                               n_classes=int(config["n_classes"]))
        model.load_params(tuple(config["in_shape"]), _load_params(arrays))
        return LSTMMonitor(model, k=int(config["k"]),
                           multiclass=bool(config["multiclass"]),
                           bg_target=float(config["bg_target"]))
    raise RegistryError(f"unknown monitor kind {kind!r} in saved registry")
