"""Crash-safe persistence for the online monitor service.

A monitor service that forgets its per-user context windows, alert dedup
timers and stateful monitor clones on restart silently stops protecting
every user on the box until their windows refill.  This module gives
:class:`~repro.serve.service.MonitorService` the two classic
write-ahead-logging primitives that make restarts invisible:

- **a tick journal** (:class:`TickJournal`): an append-only,
  CRC32-framed, fsync'd record stream of every state-changing input
  (ticks, explicit connects/disconnects).  Records are framed as
  ``length | crc32 | payload`` with a per-segment monotone sequence
  number inside the payload, so a *torn or truncated tail* (the record a
  crash interrupted mid-write) is detected, reported and cleanly
  discarded — while corruption *before* the tail (bit rot, an operator
  truncating the wrong file) is never silently absorbed: it raises
  :class:`JournalCorruptError`.
- **atomic snapshots** (:func:`write_snapshot` / :func:`read_snapshot`):
  the full service state (ring arrays, slot map, alert streams, stateful
  per-user monitor runtime blobs, tick/degraded-mode counters) written
  to a temporary file, fsync'd, then :func:`os.replace`-d into place —
  a snapshot either exists completely or not at all.  Half-written or
  corrupted snapshot files raise :class:`SnapshotError` on load.

Recovery (:meth:`~repro.serve.service.MonitorService.recover`) composes
the two: load the newest snapshot, replay the journal records written
after it through the ordinary ``process()`` path, and truncate any torn
tail so appending can resume.  Because ``process`` is a deterministic
function of (state, tick), the recovered service's subsequent alert
stream is **element-wise identical** to an uninterrupted run — the same
parity discipline every other scaling mechanism in this repo honours
(see ``docs/monitor_service.md``).  The journal is written *ahead* of
the in-memory state change; combined with the service's stale-timestamp
quarantine this makes tick delivery idempotent: a tick that was
journaled but never acknowledged is applied by replay, and the sender's
retry is quarantined instead of double-counted.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PersistenceError", "JournalCorruptError", "SnapshotError",
    "TickJournal", "JournalReadResult", "read_journal",
    "write_snapshot", "read_snapshot", "RecoveryReport",
    "list_segments", "list_snapshots", "segment_path", "snapshot_path",
    "CONFIG_NAME", "REGISTRY_DIRNAME", "PERSIST_SCHEMA_VERSION",
]

#: bump when the journal/snapshot payload layout changes — old state
#: directories must be refused loudly, never half-understood
PERSIST_SCHEMA_VERSION = 1

CONFIG_NAME = "service.json"
REGISTRY_DIRNAME = "registry"

_JOURNAL_MAGIC = b"RPWJ"
_SNAPSHOT_MAGIC = b"RPSS"
_HEADER = struct.Struct("<4sI")          # magic, schema version
_FRAME = struct.Struct("<II")            # payload length, crc32(payload)
_SNAP_HEADER = struct.Struct("<4sIQI")   # magic, version, length, crc32


class PersistenceError(RuntimeError):
    """Base of the crash-safety error family: journal, snapshot or state
    directory cannot be written, read or trusted."""


class JournalCorruptError(PersistenceError):
    """A journal segment is corrupted *before* its tail — data that was
    once durable can no longer be read back, which recovery must report
    rather than silently skip."""


class SnapshotError(PersistenceError):
    """A snapshot file is missing, truncated, or fails its checksum."""


# ----------------------------------------------------------------------
# directory layout
# ----------------------------------------------------------------------

def segment_path(directory: str, seq: int) -> str:
    """Journal segment *seq* of a state directory."""
    return os.path.join(directory, f"journal-{seq:08d}.wal")


def snapshot_path(directory: str, seq: int) -> str:
    """Snapshot that precedes journal segment *seq*."""
    return os.path.join(directory, f"snapshot-{seq:08d}.ckpt")


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(seq, path)`` of every journal segment, ascending."""
    return _list(directory, "journal-", ".wal")


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(seq, path)`` of every snapshot, ascending."""
    return _list(directory, "snapshot-", ".ckpt")


def _list(directory: str, prefix: str, suffix: str) -> List[Tuple[int, str]]:
    found = []
    for name in os.listdir(directory):
        if name.startswith(prefix) and name.endswith(suffix):
            stem = name[len(prefix):-len(suffix)]
            if stem.isdigit():
                found.append((int(stem), os.path.join(directory, name)))
    return sorted(found)


def _fsync_directory(directory: str) -> None:
    """Durably record a rename/creation in the directory entry itself."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# the write-ahead tick journal
# ----------------------------------------------------------------------

class TickJournal:
    """One append-only journal segment with CRC-framed records.

    Every :meth:`append` writes ``length | crc32 | pickle((seq, kind,
    payload))`` in one call and (by default) ``fdatasync``-s, so a
    record either survives a crash whole or is detected as a torn tail
    on the next recovery.  Callers overlapping durability with
    computation append with ``sync=False`` (the bytes reach the kernel
    immediately and background writeback starts) and call :meth:`sync`
    before acknowledging the record — write-ahead ordering is preserved
    as long as no acknowledgement outruns the sync.  Opening an
    existing segment validates the header and resumes appending after
    its last valid record — callers must first run
    :func:`read_journal`, which truncates a torn tail in place.
    """

    def __init__(self, path: str, fsync: bool = True,
                 next_seq: Optional[int] = None):
        self.path = path
        self.fsync = bool(fsync)
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        self._fh = open(path, "ab")
        if not exists:
            self._fh.write(_HEADER.pack(_JOURNAL_MAGIC,
                                        PERSIST_SCHEMA_VERSION))
            self._sync()
            self._seq = 0
        else:
            if next_seq is None:
                result = read_journal(path)
                next_seq = result.next_seq
            self._seq = int(next_seq)

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended record will carry."""
        return self._seq

    def append(self, kind: str, payload: object, sync: bool = True) -> None:
        """Append one ``(kind, payload)`` record, durable by default.

        With ``sync=False`` the record is flushed to the kernel but not
        yet to stable storage — the caller must :meth:`sync` before
        acknowledging it.
        """
        if self._fh.closed:
            raise PersistenceError(f"journal {self.path} is closed")
        blob = pickle.dumps((self._seq, kind, payload),
                            protocol=pickle.HIGHEST_PROTOCOL)
        # one write call per record: frame + payload concatenated, so a
        # crash can tear at most the single append in flight
        self._fh.write(_FRAME.pack(len(blob), zlib.crc32(blob)) + blob)
        if sync:
            self._sync()
        else:
            self._fh.flush()
        self._seq += 1

    def sync(self) -> None:
        """Force every appended record to stable storage."""
        if self._fh.closed:
            raise PersistenceError(f"journal {self.path} is closed")
        self._sync()

    def _sync(self) -> None:
        self._fh.flush()
        if self.fsync:
            if hasattr(os, "fdatasync"):
                os.fdatasync(self._fh.fileno())
            else:  # pragma: no cover - non-POSIX
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._sync()
            self._fh.close()

    def __enter__(self) -> "TickJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class JournalReadResult:
    """Everything :func:`read_journal` learned about one segment."""

    records: List[Tuple[str, object]]
    #: sequence number the next append to this segment must carry
    next_seq: int
    #: file offset just past the last valid record (truncation point)
    valid_end: int
    #: bytes of torn/truncated tail discarded past ``valid_end``
    torn_tail_bytes: int


def read_journal(path: str, truncate_tail: bool = False
                 ) -> JournalReadResult:
    """Read every valid record of one journal segment.

    A record that the file ends inside — or whose checksum fails *and*
    whose frame extends exactly to the end of the file — is a **torn
    tail**: the crash interrupted its write, the service never
    acknowledged it, so it is discarded (and physically truncated when
    ``truncate_tail`` is set, so appending can safely resume).  A
    checksum failure with more bytes *after* the frame, a bad header, or
    a sequence-number gap means data that was once durable is gone:
    :class:`JournalCorruptError`.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise JournalCorruptError(f"unreadable journal {path}: {exc}") from exc
    if len(data) < _HEADER.size:
        raise JournalCorruptError(
            f"journal {path} is shorter than its header "
            f"({len(data)} < {_HEADER.size} bytes)")
    magic, version = _HEADER.unpack_from(data, 0)
    if magic != _JOURNAL_MAGIC:
        raise JournalCorruptError(f"journal {path} has bad magic {magic!r}")
    if version != PERSIST_SCHEMA_VERSION:
        raise JournalCorruptError(
            f"journal {path} has schema {version}, this build reads "
            f"{PERSIST_SCHEMA_VERSION}")

    records: List[Tuple[str, object]] = []
    offset = _HEADER.size
    valid_end = offset
    expected_seq = 0
    torn = 0
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            torn = len(data) - valid_end          # truncated frame header
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            torn = len(data) - valid_end          # truncated payload
            break
        blob = data[start:end]
        if zlib.crc32(blob) != crc:
            if end == len(data):
                torn = len(data) - valid_end      # torn final record
                break
            raise JournalCorruptError(
                f"journal {path}: checksum mismatch at offset {offset} "
                f"with {len(data) - end} bytes of later records — "
                "mid-journal corruption, not a torn tail")
        try:
            seq, kind, payload = pickle.loads(blob)
        except Exception as exc:
            if end == len(data):
                torn = len(data) - valid_end
                break
            raise JournalCorruptError(
                f"journal {path}: undecodable record at offset {offset} "
                f"with later records present: {exc}") from exc
        if seq != expected_seq:
            raise JournalCorruptError(
                f"journal {path}: sequence gap at offset {offset} "
                f"(record {seq}, expected {expected_seq}) — records were "
                "lost or reordered")
        records.append((kind, payload))
        expected_seq += 1
        offset = end
        valid_end = end
    if torn and truncate_tail:
        with open(path, "r+b") as fh:
            fh.truncate(valid_end)
            fh.flush()
            os.fsync(fh.fileno())
    return JournalReadResult(records=records, next_seq=expected_seq,
                             valid_end=valid_end, torn_tail_bytes=torn)


# ----------------------------------------------------------------------
# atomic snapshots
# ----------------------------------------------------------------------

def write_snapshot(path: str, state: object) -> None:
    """Atomically persist *state* (any picklable object) to *path*.

    Written to ``path + ".tmp"`` first, fsync'd, then renamed over the
    final name and the directory entry fsync'd — a crash at any point
    leaves either the previous snapshot or the complete new one, never a
    half-written file under the final name.
    """
    blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(_SNAP_HEADER.pack(_SNAPSHOT_MAGIC, PERSIST_SCHEMA_VERSION,
                                   len(blob), zlib.crc32(blob)))
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_directory(os.path.dirname(path) or ".")


def read_snapshot(path: str) -> object:
    """Load and verify a snapshot written by :func:`write_snapshot`.

    Raises :class:`SnapshotError` on a missing file, bad magic or
    schema, truncation, or checksum mismatch — a snapshot is either
    verifiably whole or refused.
    """
    try:
        with open(path, "rb") as fh:
            header = fh.read(_SNAP_HEADER.size)
            if len(header) < _SNAP_HEADER.size:
                raise SnapshotError(
                    f"snapshot {path} is shorter than its header")
            magic, version, length, crc = _SNAP_HEADER.unpack(header)
            if magic != _SNAPSHOT_MAGIC:
                raise SnapshotError(
                    f"snapshot {path} has bad magic {magic!r}")
            if version != PERSIST_SCHEMA_VERSION:
                raise SnapshotError(
                    f"snapshot {path} has schema {version}, this build "
                    f"reads {PERSIST_SCHEMA_VERSION}")
            blob = fh.read(length + 1)
    except OSError as exc:
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc
    if len(blob) != length:
        raise SnapshotError(
            f"snapshot {path} is truncated or padded "
            f"({len(blob)} payload bytes, header promised {length})")
    if zlib.crc32(blob) != crc:
        raise SnapshotError(f"snapshot {path} fails its checksum — the "
                            "file is corrupted")
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise SnapshotError(
            f"snapshot {path} passed its checksum but cannot be "
            f"decoded: {exc}") from exc


# ----------------------------------------------------------------------
# service config + recovery report
# ----------------------------------------------------------------------

def write_config(directory: str, config: Dict[str, object]) -> None:
    """Atomically write the service-construction config file."""
    path = os.path.join(directory, CONFIG_NAME)
    blob = json.dumps({"schema": PERSIST_SCHEMA_VERSION, **config},
                      indent=1, sort_keys=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_directory(directory)


def read_config(directory: str) -> Dict[str, object]:
    path = os.path.join(directory, CONFIG_NAME)
    if not os.path.isfile(path):
        raise PersistenceError(
            f"no service config at {path} — not a service state directory")
    try:
        with open(path, encoding="utf-8") as fh:
            config = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(
            f"unreadable service config {path}: {exc}") from exc
    if config.get("schema") != PERSIST_SCHEMA_VERSION:
        raise PersistenceError(
            f"service config schema {config.get('schema')!r} != "
            f"{PERSIST_SCHEMA_VERSION}")
    return config


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`MonitorService.recover` call found and did."""

    directory: str
    #: journal segment sequence the recovered snapshot preceded
    #: (-1 when no snapshot existed and replay started from scratch)
    snapshot_seq: int
    #: ticks the snapshot already contained
    snapshot_ticks: int
    #: journal segments replayed after the snapshot
    segments_replayed: int
    #: journal records replayed (ticks + connects + disconnects)
    records_replayed: int
    #: tick records among the replayed records
    ticks_replayed: int
    #: torn/truncated tail bytes discarded (and truncated) per segment
    torn_tail_bytes: int = 0

    def summary(self) -> str:
        source = (f"snapshot {self.snapshot_seq} ({self.snapshot_ticks} "
                  "ticks)" if self.snapshot_seq >= 0 else "no snapshot")
        tail = (f", discarded a {self.torn_tail_bytes}-byte torn tail"
                if self.torn_tail_bytes else "")
        return (f"recovered from {source} + {self.ticks_replayed} journaled "
                f"tick(s) across {self.segments_replayed} segment(s){tail}")


# pickled-ndarray helpers used by the service snapshot ------------------

def dumps_state(obj: object) -> bytes:
    """Canonical state-blob serialization (used by the monitor
    runtime-state hooks and the snapshot payload)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def loads_state(blob: bytes) -> object:
    return pickle.loads(blob)


def payload_size(state: object) -> int:
    """Serialized size of a state object (diagnostics/benchmarks)."""
    buffer = io.BytesIO()
    pickle.dump(state, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    return buffer.tell()


@dataclass
class PersistenceStats:
    """Counters a persisted service keeps about its own durability work."""

    records_journaled: int = 0
    snapshots_written: int = 0
    last_snapshot_ticks: int = -1
    journal_bytes: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
