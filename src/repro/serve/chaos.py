"""Fault-injection harness for the crash-safe serving layer.

The persistence layer's claims — bit-exact recovery, torn tails cleanly
discarded, corruption never silently absorbed — are only as good as the
faults they were tested against.  This module provides the injection
primitives and drivers the chaos suite (``tests/serve/test_chaos.py``)
and CI's crash-recovery smoke use:

- :func:`drive` / :func:`results_equal` — run a seeded synthetic fleet
  through a service and compare two result streams element-wise
  (alerts, hazards, events and quarantined rows all participate);
- :func:`crash_recovery_run` — process ticks up to a kill point,
  abandon the service (the in-process stand-in for ``kill -9``: the
  journal is written ahead of state, so everything an acknowledged tick
  needs is already on disk), :meth:`~repro.serve.service.MonitorService.
  recover`, and continue — returning the stitched result stream;
- byte-level corruptors: :func:`tear_journal_tail` (simulate a write cut
  mid-record), :func:`corrupt_journal_middle` (bit rot before the tail),
  :func:`corrupt_snapshot` and :func:`half_written_snapshot`;
- :func:`skewed_ticks` — a tick stream whose wall clock jumps backwards,
  for exercising the alert manager's clock-skew clamp.

Every injection point must end in one of exactly two outcomes: recovery
whose continued stream is element-wise identical to an uninterrupted
run, or a loud typed :class:`~repro.serve.persist.PersistenceError`.
Anything else — silent truncation, near-miss streams, a quiet fall-back
to older state — is a harness failure.
"""

from __future__ import annotations

import os
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .loadgen import LoadGenerator
from .persist import list_segments, list_snapshots, snapshot_path
from .service import MonitorService, TickBatch, TickResult

__all__ = [
    "fleet_ticks", "drive", "results_equal", "crash_recovery_run",
    "tear_journal_tail", "corrupt_journal_middle", "corrupt_snapshot",
    "half_written_snapshot", "skewed_ticks",
]


# ----------------------------------------------------------------------
# deterministic workloads
# ----------------------------------------------------------------------

def fleet_ticks(n_users: int, n_ticks: int, seed: int = 0,
                dt: float = 5.0) -> List[TickBatch]:
    """A seeded synthetic fleet's tick stream, materialised up front.

    Uses :class:`~repro.serve.loadgen.LoadGenerator` (mean-reverting BG
    walks, occasional boluses) so the stream is reproducible tick for
    tick — the precondition for comparing interrupted and uninterrupted
    runs at all.
    """
    generator = LoadGenerator(n_users=n_users, seed=seed, dt=dt)
    return [generator.tick() for _ in range(n_ticks)]


def skewed_ticks(ticks: Sequence[TickBatch], skew_at: int,
                 skew_minutes: float) -> List[TickBatch]:
    """Copy of *ticks* whose wall clock jumps back by *skew_minutes*
    from tick index *skew_at* onward (NTP step / gateway clock reset)."""
    skewed = []
    for i, tick in enumerate(ticks):
        t = tick.t - skew_minutes if i >= skew_at else tick.t
        skewed.append(TickBatch(t=t, user_ids=tick.user_ids, cgm=tick.cgm,
                                iob=tick.iob, iob_rate=tick.iob_rate,
                                rate=tick.rate, bolus=tick.bolus,
                                action=tick.action))
    return skewed


def drive(service: MonitorService,
          ticks: Sequence[TickBatch]) -> List[TickResult]:
    """Process every tick, returning the full result stream."""
    return [service.process(tick) for tick in ticks]


# ----------------------------------------------------------------------
# stream comparison — the parity yardstick
# ----------------------------------------------------------------------

def results_equal(a: Sequence[TickResult], b: Sequence[TickResult],
                  check_events: bool = True) -> Tuple[bool, str]:
    """Element-wise comparison of two result streams.

    Returns ``(True, "")`` when every tick matches — timestamps, user
    order, every monitor's raw alert/hazard vectors, quarantined rows,
    and (unless ``check_events=False``) the deduplicated event lists.
    On mismatch, returns ``(False, description)`` pointing at the first
    divergence, so a chaos failure names the tick and surface that broke.
    """
    if len(a) != len(b):
        return False, f"stream lengths differ: {len(a)} vs {len(b)}"
    for i, (ra, rb) in enumerate(zip(a, b)):
        if ra.t != rb.t:
            return False, f"tick {i}: t {ra.t} vs {rb.t}"
        if ra.user_ids != rb.user_ids:
            return False, f"tick {i}: user_ids differ"
        if set(ra.alerts) != set(rb.alerts):
            return False, (f"tick {i}: monitor sets differ: "
                           f"{sorted(ra.alerts)} vs {sorted(rb.alerts)}")
        for name in ra.alerts:
            if not np.array_equal(ra.alerts[name], rb.alerts[name]):
                return False, f"tick {i}: alerts[{name!r}] differ"
            if not np.array_equal(ra.hazards[name], rb.hazards[name]):
                return False, f"tick {i}: hazards[{name!r}] differ"
        if list(ra.rejected) != list(rb.rejected):
            return False, f"tick {i}: rejected rows differ"
        if check_events and list(ra.events) != list(rb.events):
            return False, f"tick {i}: emitted events differ"
    return True, ""


# ----------------------------------------------------------------------
# the crash/recover driver
# ----------------------------------------------------------------------

def crash_recovery_run(monitors, ticks: Sequence[TickBatch],
                       directory: str, kill_after: int,
                       snapshot_every: Optional[int] = None,
                       window: int = 24, dt: float = 5.0,
                       connect_first: Sequence[Hashable] = (),
                       disconnect_at: Optional[Tuple[int, Hashable]] = None,
                       ) -> Tuple[List[TickResult], MonitorService]:
    """Run *ticks* with a kill after *kill_after* of them, then recover.

    A fresh persisted service processes ticks ``0..kill_after-1`` and is
    then abandoned without ``close()`` — the in-process equivalent of a
    hard kill, since the journal is flushed/fsync'd ahead of every state
    change.  :meth:`MonitorService.recover` rebuilds from the directory
    and processes the remaining ticks.  Returns the stitched result
    stream (pre-kill + post-recovery) and the recovered service, for
    comparison against an uninterrupted reference via
    :func:`results_equal`.

    ``connect_first`` pre-connects users explicitly (journaled connect
    records); ``disconnect_at=(k, uid)`` disconnects *uid* right before
    tick *k* — both exercise membership replay.
    """
    service = MonitorService(monitors, dt=dt, window=window,
                             persist_dir=directory,
                             snapshot_every=snapshot_every)
    for uid in connect_first:
        service.connect(uid)
    results: List[TickResult] = []
    for i, tick in enumerate(ticks[:kill_after]):
        if disconnect_at is not None and disconnect_at[0] == i:
            service.disconnect(disconnect_at[1])
        results.append(service.process(tick))
    # hard kill: no close(), no snapshot — the WAL alone must carry it
    del service
    recovered = MonitorService.recover(directory)
    for i, tick in enumerate(ticks[kill_after:], start=kill_after):
        if disconnect_at is not None and disconnect_at[0] == i:
            recovered.disconnect(disconnect_at[1])
        results.append(recovered.process(tick))
    return results, recovered


# ----------------------------------------------------------------------
# byte-level fault injectors
# ----------------------------------------------------------------------

def _newest_segment(directory: str) -> str:
    segments = list_segments(directory)
    if not segments:
        raise ValueError(f"no journal segments in {directory}")
    return segments[-1][1]


def tear_journal_tail(directory: str, n_bytes: int) -> str:
    """Cut the last *n_bytes* off the newest journal segment — what a
    crash mid-``write`` leaves behind.  Returns the torn path."""
    path = _newest_segment(directory)
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(max(0, size - n_bytes))
    return path


def corrupt_journal_middle(directory: str, offset_from_start: int = None,
                           ) -> str:
    """Flip a byte *before* the newest segment's final record — bit rot
    that recovery must refuse (:class:`~repro.serve.persist.
    JournalCorruptError`), never skip.  Returns the corrupted path."""
    path = _newest_segment(directory)
    size = os.path.getsize(path)
    offset = (offset_from_start if offset_from_start is not None
              else min(size - 1, max(8, size // 3)))
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))
    return path


def corrupt_snapshot(directory: str, offset: int = None) -> str:
    """Flip a byte inside the newest snapshot's payload; loading it must
    raise :class:`~repro.serve.persist.SnapshotError`."""
    snapshots = list_snapshots(directory)
    if not snapshots:
        raise ValueError(f"no snapshots in {directory}")
    path = snapshots[-1][1]
    size = os.path.getsize(path)
    offset = offset if offset is not None else size // 2
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))
    return path


def half_written_snapshot(directory: str, seq: int = 9999) -> str:
    """Drop a half-written ``.tmp`` snapshot in the directory — what a
    crash mid-snapshot leaves.  Recovery must ignore it entirely (only
    the atomic rename publishes a snapshot).  Returns the tmp path."""
    path = snapshot_path(directory, seq) + ".tmp"
    with open(path, "wb") as fh:
        fh.write(b"RPSS\x01\x00\x00\x00partial garbage the rename never "
                 b"published")
    return path
