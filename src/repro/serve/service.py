"""The online monitor service: per-tick batched evaluation of live users.

One :class:`MonitorService` holds the whole fleet: users connect, stream
(CGM, IOB, command) ticks at the control cadence, and every tick is
evaluated against every registry monitor **as one column batch** — the
``(1, B)`` :class:`~repro.simulation.features.ContextBatch` shape the
lock-step simulation engine already drives ``observe_batch`` with, so one
process scales to 10^5+ users per tick instead of B Python loops.

Monitor lifecycle mirrors :class:`repro.simulation.vector._MonitorBatch`:

- **stateless** monitors (CAWT/CAWOT, DT, MLP) live once in the registry,
  shared read-only, and see the whole fleet in one ``observe_batch`` call
  per tick;
- **stateful** monitors (Guideline, MPC, LSTM, custom) are
  :meth:`~repro.core.monitor.SafetyMonitor.clone`-d per connected user at
  connect time and driven through scalar ``observe``.

**Parity contract.**  The service computes each user's BG rate from
consecutive ticks — ``(cgm - previous_cgm) / dt``, zero on the user's
first tick — which is float-for-float the backward difference
:func:`~repro.simulation.features.context_matrix` computes offline.
Everything downstream is the shared ``ContextBatch`` arithmetic, so
feeding a recorded campaign through :func:`replay_log` (one trace = one
user, via :func:`~repro.simulation.store.iter_trace_ticks`) produces raw
alert streams **element-wise identical** to offline
:func:`~repro.simulation.replay.replay_campaign` — the assertion CI's
serving smoke makes at multiple batch sizes.  Dedup/escalation
(:mod:`repro.serve.alerts`) is strictly downstream of the raw streams and
never part of the parity surface.

**Degraded-mode ingestion.**  A deployment's inputs misbehave: sensors
emit NaN or negative glucose, gateways duplicate rows or re-deliver old
ticks, frontends send users that never connected.  ``process`` never
raises mid-tick on any of these — malformed rows are quarantined into a
structured :class:`RejectedTick` side channel (``TickResult.rejected``
plus a bounded :attr:`MonitorService.dead_letters` log and per-reason
counters) while every *healthy* row is evaluated exactly as if the bad
rows had never been sent, and :attr:`MonitorService.health` reports
``"DEGRADED"`` while rejects are recent.  Stale-timestamp quarantine
doubles as the idempotency guard that makes at-least-once tick delivery
(and journal redelivery after crash recovery) safe.

**Crash safety.**  With ``persist_dir=`` set, every state-changing input
(tick, explicit connect/disconnect) is appended to a CRC-framed, fsync'd
write-ahead journal *before* it mutates in-memory state, and
:meth:`MonitorService.snapshot` atomically checkpoints the full service
state (ring, slot map, alert streams, stateful clone runtimes, counters)
and rotates the journal.  :meth:`MonitorService.recover` restores
snapshot + journal replay to a state whose subsequent alert stream is
element-wise identical to a run that never crashed — mechanics and
failure taxonomy in :mod:`repro.serve.persist`.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import (Deque, Dict, Hashable, List, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..core.monitor import SafetyMonitor
from ..simulation.features import ContextBatch, FEATURE_NAMES
from ..simulation.store import iter_trace_ticks
from .alerts import AlertEvent, AlertManager, DEFAULT_DEDUP_WINDOW_MINUTES
from .persist import (CONFIG_NAME, REGISTRY_DIRNAME, JournalCorruptError,
                      PersistenceError,
                      RecoveryReport, TickJournal, list_segments,
                      list_snapshots, read_config, read_journal,
                      read_snapshot, segment_path, snapshot_path,
                      write_config, write_snapshot)
from .registry import MonitorRegistry
from .ring import ContextRing

__all__ = ["TickBatch", "TickResult", "RejectedTick", "MonitorService",
           "replay_log", "DEFAULT_WINDOW_TICKS", "REJECT_REASONS"]

#: ring-buffer context rows retained per user (2 hours at 5-minute cadence)
DEFAULT_WINDOW_TICKS = 24

#: ring row layout: time stamp, action code, then the feature row
_RING_WIDTH = 2 + len(FEATURE_NAMES)

#: every reason a row can be quarantined with (``RejectedTick.reason``)
REJECT_REASONS = ("bad-time", "bad-glucose", "bad-channel",
                  "duplicate-user", "unknown-user", "stale-timestamp")


@dataclass(frozen=True)
class TickBatch:
    """One ingest cycle: the raw channel vectors of every ticking user.

    Exactly the wire format a streaming frontend would deliver — no
    derived quantities (the service computes the BG rate itself, which is
    what keeps it on the offline parity contract).  All arrays are
    ``(B,)`` with ``B == len(user_ids)``.
    """

    t: float
    user_ids: Tuple[Hashable, ...]
    cgm: np.ndarray
    iob: np.ndarray
    iob_rate: np.ndarray
    rate: np.ndarray
    bolus: np.ndarray
    action: np.ndarray

    def __post_init__(self):
        n = len(self.user_ids)
        for name in ("cgm", "iob", "iob_rate", "rate", "bolus", "action"):
            value = getattr(self, name)
            if np.shape(value) != (n,):
                raise ValueError(
                    f"{name} must have shape ({n},) to match user_ids, "
                    f"got {np.shape(value)}")


@dataclass(frozen=True)
class RejectedTick:
    """One quarantined ingest row: who, when, and why.

    ``reason`` is one of :data:`REJECT_REASONS`; ``value`` carries the
    offending number when the reason has one (the bad glucose reading,
    the stale timestamp).  Rejected rows never reach the monitors, the
    ring, or the alert streams — the row simply didn't happen, exactly
    as if the user had skipped the tick.
    """

    t: float
    user_id: Hashable
    reason: str
    value: Optional[float] = None


@dataclass(frozen=True)
class TickResult:
    """Everything one :meth:`MonitorService.process` call produced.

    ``alerts[name]`` / ``hazards[name]`` are the raw ``(B,)`` per-monitor
    verdict vectors in ``user_ids`` order (the parity surface; rejected
    rows read False/0); ``events`` are the post-dedup notifications that
    actually fired; ``rejected`` the rows quarantined by degraded-mode
    validation.
    """

    t: float
    user_ids: Tuple[Hashable, ...]
    alerts: Dict[str, np.ndarray]
    hazards: Dict[str, np.ndarray]
    events: List[AlertEvent] = field(default_factory=list)
    rejected: List[RejectedTick] = field(default_factory=list)


class MonitorService:
    """Event-loop monitor evaluation over a fleet of streaming users.

    Parameters
    ----------
    monitors:
        A :class:`~repro.serve.registry.MonitorRegistry` or a plain
        ``name -> monitor`` mapping (wrapped into one).  Loaded once,
        shared read-only across all users.
    dt:
        Control period in minutes; every connected user ticks at this
        cadence (the paper's loops run at 5).
    window:
        Context-history rows retained per user in the ring buffer.
    dedup_window, escalate_after:
        Alert notification policy, see :class:`~repro.serve.alerts.
        AlertManager`.
    auto_connect:
        When True (default) unknown users connect on first sight; when
        False their rows are quarantined as ``unknown-user`` instead.
    dead_letter_capacity:
        Most recent :class:`RejectedTick` entries retained in
        :attr:`dead_letters` (older entries roll off; the per-reason
        counters never reset).
    health_window:
        Processed ticks without a reject required before
        :attr:`health` returns to ``"OK"``.
    persist_dir:
        When set, enables crash safety: the directory receives the
        service config, a write-ahead tick journal and (on
        :meth:`snapshot`) atomic state snapshots.  Must be empty or
        fresh — a directory already holding persisted state is refused
        with :class:`~repro.serve.persist.PersistenceError` (use
        :meth:`recover`).
    fsync:
        Whether journal appends fdatasync before returning (leave True
        in production; False trades durability of the last few ticks
        for speed, e.g. in tests).
    snapshot_every:
        Auto-snapshot cadence in processed ticks (None disables; call
        :meth:`snapshot` manually).
    """

    def __init__(self, monitors: Union[MonitorRegistry,
                                       Mapping[str, SafetyMonitor]],
                 dt: float = 5.0, window: int = DEFAULT_WINDOW_TICKS,
                 dedup_window: float = DEFAULT_DEDUP_WINDOW_MINUTES,
                 escalate_after: Optional[int] = 24,
                 auto_connect: bool = True, dead_letter_capacity: int = 256,
                 health_window: int = 12,
                 persist_dir: Optional[str] = None, fsync: bool = True,
                 snapshot_every: Optional[int] = None):
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if dead_letter_capacity < 1:
            raise ValueError(f"dead_letter_capacity must be >= 1, got "
                             f"{dead_letter_capacity}")
        if health_window < 1:
            raise ValueError(f"health_window must be >= 1, got "
                             f"{health_window}")
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1 or None, got "
                             f"{snapshot_every}")
        if not isinstance(monitors, MonitorRegistry):
            monitors = MonitorRegistry(monitors)
        self.registry = monitors
        self.dt = float(dt)
        self.window = int(window)
        self.auto_connect = bool(auto_connect)
        self.health_window = int(health_window)
        self._stateless = [(name, monitor) for name, monitor
                           in monitors.items() if monitor.stateless]
        self._stateful = [(name, monitor) for name, monitor
                          in monitors.items() if not monitor.stateless]
        self.alert_manager = AlertManager(window=dedup_window,
                                          escalate_after=escalate_after)
        self._ring = ContextRing(self.window, _RING_WIDTH)
        self._slots: Dict[Hashable, int] = {}
        self._free: List[int] = []
        self._last_cgm = np.zeros(0)
        self._seen = np.zeros(0, dtype=bool)
        #: wall-clock of each slot's last applied tick (idempotency guard)
        self._last_t = np.full(0, -np.inf)
        #: per-stateful-monitor, per-slot clone (None on free slots)
        self._clones: Dict[str, List[Optional[SafetyMonitor]]] = {
            name: [] for name, _ in self._stateful}
        self._ticks_processed = 0
        # degraded-mode bookkeeping
        self.dead_letters: Deque[RejectedTick] = deque(
            maxlen=int(dead_letter_capacity))
        self.rejected_total = 0
        self.rejected_by_reason: Dict[str, int] = {}
        self._recent_rejects: Deque[bool] = deque(maxlen=self.health_window)
        # crash-safety plumbing (inert without persist_dir)
        self.persist_dir: Optional[str] = None
        self.fsync = bool(fsync)
        self.snapshot_every = snapshot_every
        self.snapshots_written = 0
        self.recovery_report: Optional[RecoveryReport] = None
        self._journal: Optional[TickJournal] = None
        self._journal_uids: Optional[Tuple[Hashable, ...]] = None
        self._segment_seq = 0
        self._replaying = False
        # fleets usually tick with a stable user set; memoise the
        # user_ids -> slots resolution on tuple identity
        self._cached_ids: Optional[Tuple[Hashable, ...]] = None
        self._cached_slots: Optional[np.ndarray] = None
        if persist_dir is not None:
            self._init_persistence(persist_dir)

    # ------------------------------------------------------------------
    # fleet membership
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return len(self._slots)

    @property
    def ticks_processed(self) -> int:
        return self._ticks_processed

    @property
    def health(self) -> str:
        """``"DEGRADED"`` while any of the last ``health_window``
        processed ticks quarantined rows, ``"OK"`` otherwise."""
        return "DEGRADED" if any(self._recent_rejects) else "OK"

    @property
    def clock_skew_events(self) -> int:
        """Raw alerts whose wall clock ran backwards on their stream
        (clamped, never silently absorbed — see
        :class:`~repro.serve.alerts.AlertManager`)."""
        return self.alert_manager.clock_skew_events

    def connect(self, user_id: Hashable) -> None:
        """Register a user (idempotent); allocates its slot and per-user
        stateful monitor clones."""
        if user_id in self._slots:
            return
        self._journal_record("connect", user_id)
        self._connect(user_id)

    def _connect(self, user_id: Hashable) -> None:
        if user_id in self._slots:
            return
        if self._free:
            slot = self._free.pop()
            self._ring.clear_slot(slot)
        else:
            slot = len(self._slots) + len(self._free)
            self._ring.ensure_slots(slot + 1)
            self._grow_state(self._ring.n_slots)
        self._slots[user_id] = slot
        self._last_cgm[slot] = 0.0
        self._seen[slot] = False
        self._last_t[slot] = -np.inf
        for name, monitor in self._stateful:
            self._clones[name][slot] = monitor.clone()
        self._cached_ids = None

    def disconnect(self, user_id: Hashable) -> None:
        """Drop a user: frees and scrubs its slot, clones and alert
        streams — a later user recycling the slot can never inherit a
        stale context window or dedup timer."""
        if user_id not in self._slots:
            raise KeyError(f"unknown user {user_id!r}")
        self._journal_record("disconnect", user_id)
        self._disconnect(user_id)

    def _disconnect(self, user_id: Hashable) -> None:
        slot = self._slots.pop(user_id, None)
        if slot is None:
            raise KeyError(f"unknown user {user_id!r}")
        self._free.append(slot)
        # scrub at disconnect time (and again defensively at recycle in
        # _connect): the ring rows, BG memory and last-tick stamp all
        # belong to the departed user
        self._ring.clear_slot(slot)
        self._last_cgm[slot] = 0.0
        self._seen[slot] = False
        self._last_t[slot] = -np.inf
        for clones in self._clones.values():
            clones[slot] = None
        self.alert_manager.drop_user(user_id)
        self._cached_ids = None

    def _grow_state(self, n: int) -> None:
        if n <= len(self._seen):
            return
        last_cgm = np.zeros(n)
        last_cgm[:len(self._last_cgm)] = self._last_cgm
        seen = np.zeros(n, dtype=bool)
        seen[:len(self._seen)] = self._seen
        last_t = np.full(n, -np.inf)
        last_t[:len(self._last_t)] = self._last_t
        self._last_cgm, self._seen, self._last_t = last_cgm, seen, last_t
        for clones in self._clones.values():
            clones.extend([None] * (n - len(clones)))

    # ------------------------------------------------------------------
    # degraded-mode validation helpers
    # ------------------------------------------------------------------
    def _reject(self, rejected: List[RejectedTick], t: float,
                user_id: Hashable, reason: str,
                value: Optional[float]) -> None:
        entry = RejectedTick(t=float(t), user_id=user_id, reason=reason,
                             value=value)
        rejected.append(entry)
        self.dead_letters.append(entry)
        self.rejected_total += 1
        self.rejected_by_reason[reason] = (
            self.rejected_by_reason.get(reason, 0) + 1)

    def _resolve_or_reject(self, user_ids: Tuple[Hashable, ...], t: float,
                           rejected: List[RejectedTick],
                           ok: Optional[np.ndarray]
                           ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Slot-resolve every row, quarantining duplicate/unknown ids.

        Cache-miss path only (a cached tuple already proved unique and
        fully connected).  Returns the full ``(B,)`` slot vector (entries
        of rejected rows are placeholders, masked out by *ok*) and the
        possibly-updated keep mask.
        """
        n = len(user_ids)
        seen_ids: set = set()
        bad_rows: List[Tuple[int, str]] = []
        for j, uid in enumerate(user_ids):
            if uid in seen_ids:
                bad_rows.append((j, "duplicate-user"))
                continue
            seen_ids.add(uid)
            if uid not in self._slots:
                if self.auto_connect:
                    self._connect(uid)
                else:
                    bad_rows.append((j, "unknown-user"))
        if bad_rows:
            if ok is None:
                ok = np.ones(n, dtype=bool)
            for j, reason in bad_rows:
                if ok[j]:  # first rejection reason wins
                    self._reject(rejected, t, user_ids[j], reason, None)
                ok[j] = False
            slots = np.fromiter((self._slots.get(u, 0) for u in user_ids),
                                dtype=np.intp, count=n)
            return slots, ok  # degenerate batch: never cached
        slots = np.fromiter((self._slots[u] for u in user_ids),
                            dtype=np.intp, count=n)
        self._cached_ids = user_ids
        self._cached_slots = slots
        return slots, ok

    def _empty_result(self, tick: TickBatch,
                      rejected: List[RejectedTick]) -> TickResult:
        """Finish a tick none of whose rows survived validation."""
        n = len(tick.user_ids)
        alerts = {name: np.zeros(n, dtype=bool)
                  for name, _ in (*self._stateless, *self._stateful)}
        hazards = {name: np.zeros(n, dtype=int)
                   for name, _ in (*self._stateless, *self._stateful)}
        self._ticks_processed += 1
        self._recent_rejects.append(True)
        self._maybe_snapshot()
        self._journal_sync()
        return TickResult(t=tick.t, user_ids=tick.user_ids, alerts=alerts,
                          hazards=hazards, events=[], rejected=rejected)

    # ------------------------------------------------------------------
    # the tick hot path
    # ------------------------------------------------------------------
    def process(self, tick: TickBatch) -> TickResult:
        """Evaluate one ingest cycle for every ticking user.

        Unknown users auto-connect on first sight (``auto_connect``).
        Users absent from the tick simply don't advance (their next BG
        rate spans the gap).  Malformed rows **never raise mid-tick**:
        they are quarantined into ``TickResult.rejected`` with a reason
        from :data:`REJECT_REASONS` and every healthy row is processed
        exactly as if the bad rows had never been sent.  With a
        ``persist_dir``, the raw tick is journaled before any state
        changes (write-ahead) — validation is deterministic, so journal
        replay re-derives the same quarantine decisions.
        """
        self._journal_tick(tick)
        user_ids = tick.user_ids
        n = len(user_ids)
        rejected: List[RejectedTick] = []

        if not np.isfinite(tick.t):
            for uid in user_ids:
                self._reject(rejected, tick.t, uid, "bad-time",
                             float(tick.t))
            return self._empty_result(tick, rejected)

        cgm = np.asarray(tick.cgm, dtype=float)
        # vectorized value screens — a handful of (B,) comparisons, so
        # the all-healthy fleet stays on the zero-copy fast path
        glucose_ok = np.isfinite(cgm) & (cgm >= 0.0)
        value_ok = glucose_ok
        for channel in (tick.iob, tick.iob_rate, tick.rate, tick.bolus,
                        tick.action):
            value_ok = value_ok & np.isfinite(
                np.asarray(channel, dtype=float))
        ok: Optional[np.ndarray] = None
        if not value_ok.all():
            ok = value_ok
            for j in np.flatnonzero(~value_ok):
                if not glucose_ok[j]:
                    self._reject(rejected, tick.t, user_ids[j],
                                 "bad-glucose", float(cgm[j]))
                else:
                    self._reject(rejected, tick.t, user_ids[j],
                                 "bad-channel", None)

        if user_ids is self._cached_ids:
            slots = self._cached_slots
        else:
            slots, ok = self._resolve_or_reject(user_ids, tick.t,
                                                rejected, ok)

        # stale / re-delivered ticks: a slot that already applied a tick
        # at time >= t must not apply this one (at-least-once delivery
        # and post-recovery redelivery both land here)
        if ok is None:
            stale = self._seen[slots] & (tick.t <= self._last_t[slots])
            if stale.any():
                ok = ~stale
                for j in np.flatnonzero(stale):
                    self._reject(rejected, tick.t, user_ids[j],
                                 "stale-timestamp", float(tick.t))
        else:
            alive = np.flatnonzero(ok)
            stale_local = (self._seen[slots[alive]]
                           & (tick.t <= self._last_t[slots[alive]]))
            for j in alive[stale_local]:
                self._reject(rejected, tick.t, user_ids[j],
                             "stale-timestamp", float(tick.t))
                ok[j] = False

        keep: Optional[np.ndarray] = None
        if ok is not None:
            keep = np.flatnonzero(ok)
            if len(keep) == 0:
                return self._empty_result(tick, rejected)
            kept_ids: Tuple[Hashable, ...] = tuple(user_ids[j] for j in keep)
            kept_slots = slots[keep]
            kept_cgm = cgm[keep]
            kept_iob = np.asarray(tick.iob, dtype=float)[keep]
            kept_iob_rate = np.asarray(tick.iob_rate, dtype=float)[keep]
            kept_rate = np.asarray(tick.rate, dtype=float)[keep]
            kept_bolus = np.asarray(tick.bolus, dtype=float)[keep]
            kept_action = np.asarray(tick.action)[keep]
        else:
            kept_ids = user_ids
            kept_slots = slots
            kept_cgm = cgm
            kept_iob, kept_iob_rate = tick.iob, tick.iob_rate
            kept_rate, kept_bolus = tick.rate, tick.bolus
            kept_action = tick.action

        # the offline backward difference, computed live: zero on a
        # user's first tick, (cgm - previous) / dt afterwards — identical
        # float arithmetic to context_matrix, which is the parity anchor
        bg_rate = np.where(self._seen[kept_slots],
                           (kept_cgm - self._last_cgm[kept_slots]) / self.dt,
                           0.0)
        batch = ContextBatch.from_tick(
            t=tick.t, bg=kept_cgm, bg_rate=bg_rate, iob=kept_iob,
            iob_rate=kept_iob_rate, rate=kept_rate, bolus=kept_bolus,
            action=kept_action, dt=self.dt)

        alerts: Dict[str, np.ndarray] = {}
        hazards: Dict[str, np.ndarray] = {}
        for name, monitor in self._stateless:
            monitor_alerts, monitor_hazards = monitor.observe_batch(batch)
            alerts[name] = monitor_alerts[0]
            hazards[name] = monitor_hazards[0]
        if self._stateful:
            n_cols = batch.shape[1]
            contexts = [next(batch.iter_column(b)) for b in range(n_cols)]
            for name, _ in self._stateful:
                clones = self._clones[name]
                monitor_alerts = np.zeros(n_cols, dtype=bool)
                monitor_hazards = np.zeros(n_cols, dtype=int)
                for b, slot in enumerate(kept_slots):
                    verdict = clones[slot].observe(contexts[b])
                    if verdict.alert:
                        monitor_alerts[b] = True
                        monitor_hazards[b] = int(verdict.hazard)
                alerts[name] = monitor_alerts
                hazards[name] = monitor_hazards

        rows = np.concatenate(
            [batch.t, np.asarray(kept_action).reshape(1, -1).astype(float),
             batch.features[0]], axis=0)
        self._ring.append(rows, kept_slots)
        self._last_cgm[kept_slots] = kept_cgm
        self._seen[kept_slots] = True
        self._last_t[kept_slots] = tick.t

        events: List[AlertEvent] = []
        for name in alerts:
            events.extend(self.alert_manager.observe_tick(
                tick.t, name, kept_ids, alerts[name], hazards[name]))

        if keep is not None:
            # scatter the healthy-subset verdicts back to (B,) — rejected
            # rows read exactly like silent ones
            for name in alerts:
                full_alerts = np.zeros(n, dtype=bool)
                full_alerts[keep] = alerts[name]
                full_hazards = np.zeros(n, dtype=int)
                full_hazards[keep] = hazards[name]
                alerts[name] = full_alerts
                hazards[name] = full_hazards

        self._ticks_processed += 1
        self._recent_rejects.append(bool(rejected))
        self._maybe_snapshot()
        self._journal_sync()
        return TickResult(t=tick.t, user_ids=user_ids, alerts=alerts,
                          hazards=hazards, events=events, rejected=rejected)

    # ------------------------------------------------------------------
    # per-user introspection
    # ------------------------------------------------------------------
    def context_window(self, user_id: Hashable) -> ContextBatch:
        """The user's retained context history as a ``(m, 1)`` batch.

        Rebuilt from the ring buffer by folding single-cycle batches
        through :meth:`~repro.simulation.features.ContextBatch.append` —
        the incremental form of ``from_traces``, so the rows are exactly
        what the monitors saw.
        """
        slot = self._slots.get(user_id)
        if slot is None:
            raise KeyError(f"unknown user {user_id!r}")
        rows = self._ring.window(slot)
        if len(rows) == 0:
            raise ValueError(f"user {user_id!r} has no ticks yet")
        window: Optional[ContextBatch] = None
        for row in rows:
            one = ContextBatch.from_tick(
                t=float(row[0]), bg=row[2:3], bg_rate=row[3:4],
                iob=row[4:5], iob_rate=row[5:6], rate=row[6:7],
                bolus=row[7:8], action=np.array([int(row[1])]), dt=self.dt)
            window = one if window is None else window.append(one)
        return window

    # ------------------------------------------------------------------
    # crash safety: journal, snapshot, recover
    # ------------------------------------------------------------------
    def _init_persistence(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        if (os.path.exists(os.path.join(directory, CONFIG_NAME))
                or list_segments(directory) or list_snapshots(directory)):
            raise PersistenceError(
                f"{directory} already holds persisted service state; use "
                "MonitorService.recover() to restore it, or point "
                "persist_dir at an empty directory")
        registry_saved = True
        try:
            self.registry.save(os.path.join(directory, REGISTRY_DIRNAME))
        except Exception:
            # a registry carrying unsupported monitor kinds cannot be
            # auto-persisted; recover() will require monitors= instead
            registry_saved = False
        write_config(directory, {
            "dt": self.dt, "window": self.window,
            "dedup_window": self.alert_manager.window,
            "escalate_after": self.alert_manager.escalate_after,
            "auto_connect": self.auto_connect,
            "dead_letter_capacity": self.dead_letters.maxlen,
            "health_window": self.health_window,
            "registry_saved": registry_saved})
        self.persist_dir = directory
        self._segment_seq = 0
        self._journal = TickJournal(segment_path(directory, 0),
                                    fsync=self.fsync)

    def _journal_record(self, kind: str, payload: object) -> None:
        if self._journal is not None and not self._replaying:
            self._journal.append(kind, payload)

    def _journal_tick(self, tick: TickBatch) -> None:
        if self._journal is None or self._replaying:
            return
        # a stable fleet sends the same roster every tick, and re-pickling
        # B id strings per record is the largest journal cost at fleet
        # scale — a roster equal to the previous record's in this segment
        # is written as None ("same as the previous tick record")
        ids = tick.user_ids
        same = ids is self._journal_uids or ids == self._journal_uids
        # sync=False: the record reaches the kernel now and background
        # writeback overlaps the monitor evaluation; _journal_sync()
        # makes it durable before the tick result is returned, so no
        # acknowledgement ever outruns the write-ahead log
        self._journal.append("tick", {
            "t": tick.t, "user_ids": None if same else ids,
            "cgm": tick.cgm, "iob": tick.iob, "iob_rate": tick.iob_rate,
            "rate": tick.rate, "bolus": tick.bolus, "action": tick.action},
            sync=False)
        self._journal_uids = ids

    def _journal_sync(self) -> None:
        if self._journal is not None and not self._replaying:
            self._journal.sync()

    def _maybe_snapshot(self) -> None:
        if (self._journal is not None and not self._replaying
                and self.snapshot_every
                and self._ticks_processed % self.snapshot_every == 0):
            self.snapshot()

    def _export_snapshot_state(self) -> Dict[str, object]:
        clones = {
            name: [None if clone is None else clone.export_runtime()
                   for clone in clone_list]
            for name, clone_list in self._clones.items()}
        return {
            "ring": self._ring.export_state(),
            "slots": dict(self._slots),
            "free": list(self._free),
            "last_cgm": self._last_cgm.copy(),
            "seen": self._seen.copy(),
            "last_t": self._last_t.copy(),
            "clones": clones,
            "alert_manager": self.alert_manager,
            "ticks_processed": self._ticks_processed,
            "rejected_total": self.rejected_total,
            "rejected_by_reason": dict(self.rejected_by_reason),
            "dead_letters": list(self.dead_letters),
            "recent_rejects": list(self._recent_rejects),
        }

    def _install_snapshot(self, state: Dict[str, object]) -> None:
        try:
            self._ring.restore_state(state["ring"])
            self._slots = dict(state["slots"])
            self._free = list(state["free"])
            self._last_cgm = np.array(state["last_cgm"], dtype=float)
            self._seen = np.array(state["seen"], dtype=bool)
            self._last_t = np.array(state["last_t"], dtype=float)
            clone_blobs = state["clones"]
            clones: Dict[str, List[Optional[SafetyMonitor]]] = {}
            for name, monitor in self._stateful:
                if name not in clone_blobs:
                    raise KeyError(f"no clone state for stateful monitor "
                                   f"{name!r}")
                restored: List[Optional[SafetyMonitor]] = []
                for blob in clone_blobs[name]:
                    if blob is None:
                        restored.append(None)
                    else:
                        clone = monitor.clone()
                        clone.restore_runtime(blob)
                        restored.append(clone)
                clones[name] = restored
            self._clones = clones
            self.alert_manager = state["alert_manager"]
            self._ticks_processed = int(state["ticks_processed"])
            self.rejected_total = int(state["rejected_total"])
            self.rejected_by_reason = dict(state["rejected_by_reason"])
            self.dead_letters = deque(state["dead_letters"],
                                      maxlen=self.dead_letters.maxlen)
            self._recent_rejects = deque(state["recent_rejects"],
                                         maxlen=self.health_window)
        except (KeyError, ValueError, TypeError) as exc:
            raise PersistenceError(
                f"snapshot state does not fit this service: {exc}") from exc
        self._cached_ids = None
        self._cached_slots = None

    def snapshot(self) -> str:
        """Atomically checkpoint the full service state; returns the path.

        Rotates the journal: ticks after the snapshot land in a fresh
        segment, and segments/snapshots the new checkpoint supersedes are
        pruned.  Crash-safe at every step — the snapshot appears via
        tmp-file + rename, and the old journal is only pruned after the
        new checkpoint is durable.
        """
        if self._journal is None:
            raise PersistenceError(
                "service has no persist_dir; nothing to snapshot")
        next_seq = self._segment_seq + 1
        path = snapshot_path(self.persist_dir, next_seq)
        write_snapshot(path, self._export_snapshot_state())
        self._journal.close()
        self._journal = TickJournal(segment_path(self.persist_dir, next_seq),
                                    fsync=self.fsync)
        # every segment is self-contained: its first tick record must
        # carry the full roster, never a reference into a pruned segment
        self._journal_uids = None
        self._segment_seq = next_seq
        for seq, old in list_snapshots(self.persist_dir):
            if seq < next_seq:
                os.remove(old)
        for seq, old in list_segments(self.persist_dir):
            if seq < next_seq:
                os.remove(old)
        self.snapshots_written += 1
        return path

    def close(self) -> None:
        """Flush and close the journal.  Further ``process`` calls on a
        persisted service raise; non-persisted services are unaffected."""
        if self._journal is not None:
            self._journal.close()

    @classmethod
    def recover(cls, directory: str,
                monitors: Optional[Union[MonitorRegistry,
                                         Mapping[str, SafetyMonitor]]] = None,
                fsync: bool = True, snapshot_every: Optional[int] = None
                ) -> "MonitorService":
        """Restore a persisted service: newest snapshot + journal replay.

        The recovered service's subsequent alert stream is element-wise
        identical to a run that never crashed.  A torn tail on the final
        journal segment (the record the crash interrupted) is discarded,
        truncated away and reported in :attr:`recovery_report`; any other
        damage — corrupted snapshot, mid-journal corruption, missing
        segment — raises the matching
        :class:`~repro.serve.persist.PersistenceError` subtype instead of
        silently serving from partial state.

        ``monitors`` defaults to the registry auto-saved at persist time;
        pass it explicitly when the registry held non-serializable kinds.
        """
        config = read_config(directory)
        if monitors is None:
            if not config.get("registry_saved"):
                raise PersistenceError(
                    f"{directory} was persisted without a serializable "
                    "registry; pass monitors= to recover()")
            monitors = MonitorRegistry.load(
                os.path.join(directory, REGISTRY_DIRNAME))
        escalate = config["escalate_after"]
        service = cls(
            monitors, dt=float(config["dt"]), window=int(config["window"]),
            dedup_window=float(config["dedup_window"]),
            escalate_after=None if escalate is None else int(escalate),
            auto_connect=bool(config["auto_connect"]),
            dead_letter_capacity=int(config["dead_letter_capacity"]),
            health_window=int(config["health_window"]))
        service._recover_state(directory, fsync=fsync,
                               snapshot_every=snapshot_every)
        return service

    def _recover_state(self, directory: str, fsync: bool,
                       snapshot_every: Optional[int]) -> None:
        snapshots = list_snapshots(directory)
        start_seq = 0
        snapshot_seq = -1
        snapshot_ticks = 0
        if snapshots:
            snapshot_seq, snapshot_file = snapshots[-1]
            # a corrupt newest snapshot is a loud failure, not a silent
            # fall-back to an older fleet state
            self._install_snapshot(read_snapshot(snapshot_file))
            snapshot_ticks = self._ticks_processed
            start_seq = snapshot_seq
        replay_segments = [(seq, path) for seq, path
                           in list_segments(directory) if seq >= start_seq]
        records_replayed = 0
        ticks_replayed = 0
        torn_bytes = 0
        last_next_seq = 0
        expected_seq = start_seq
        self._replaying = True
        try:
            for i, (seq, path) in enumerate(replay_segments):
                if seq != expected_seq:
                    raise JournalCorruptError(
                        f"{directory}: journal segments jump from "
                        f"{expected_seq} to {seq} — a segment is missing")
                expected_seq += 1
                is_last = i == len(replay_segments) - 1
                result = read_journal(path, truncate_tail=is_last)
                if result.torn_tail_bytes and not is_last:
                    raise JournalCorruptError(
                        f"{path} has a torn tail but later segments exist "
                        "— mid-history truncation, not a crash tail")
                if is_last:
                    torn_bytes = result.torn_tail_bytes
                    last_next_seq = result.next_seq
                segment_uids = None  # roster references never cross segments
                for kind, payload in result.records:
                    records_replayed += 1
                    if kind == "tick":
                        if payload["user_ids"] is None:
                            if segment_uids is None:
                                raise JournalCorruptError(
                                    f"{path}: tick record references the "
                                    "previous roster, but no roster-bearing "
                                    "record precedes it in this segment")
                            payload = {**payload, "user_ids": segment_uids}
                        else:
                            segment_uids = payload["user_ids"]
                        self.process(TickBatch(**payload))
                        ticks_replayed += 1
                    elif kind == "connect":
                        self._connect(payload)
                    elif kind == "disconnect":
                        self._disconnect(payload)
                    else:
                        raise JournalCorruptError(
                            f"{path}: unknown record kind {kind!r}")
        finally:
            self._replaying = False
        self.persist_dir = directory
        self.fsync = bool(fsync)
        self.snapshot_every = snapshot_every
        self._segment_seq = (replay_segments[-1][0] if replay_segments
                             else start_seq)
        tail_path = segment_path(directory, self._segment_seq)
        if os.path.exists(tail_path):
            self._journal = TickJournal(tail_path, fsync=self.fsync,
                                        next_seq=last_next_seq)
        else:
            self._journal = TickJournal(tail_path, fsync=self.fsync)
        self.recovery_report = RecoveryReport(
            directory=directory, snapshot_seq=snapshot_seq,
            snapshot_ticks=snapshot_ticks,
            segments_replayed=len(replay_segments),
            records_replayed=records_replayed,
            ticks_replayed=ticks_replayed, torn_tail_bytes=torn_bytes)


def replay_log(monitors: Union[MonitorRegistry, Mapping[str, SafetyMonitor]],
               traces: Sequence, window: int = DEFAULT_WINDOW_TICKS,
               service: Optional[MonitorService] = None
               ) -> Dict[str, List[np.ndarray]]:
    """Feed a recorded campaign through a service, trace = user.

    The replay-from-log driver: adapts *traces* into the live tick stream
    (:func:`~repro.simulation.store.iter_trace_ticks`), processes every
    tick, and reassembles per-trace raw alert streams in
    :func:`~repro.simulation.replay.replay_campaign` format (``name ->
    [per-trace boolean alert array]``) — so offline and served replay are
    directly comparable, and CI asserts them element-wise identical.

    Pass ``service=`` to drive an existing (e.g. crash-recovered)
    service instead of a fresh one: ticks the service already applied
    are quarantined by the stale-timestamp guard (reading False in the
    returned streams), and the remainder continues the recovered state —
    at-least-once redelivery of the whole log is safe.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("cannot replay zero traces")
    dts = {float(trace.dt) for trace in traces}
    if len(dts) != 1:
        raise ValueError(f"traces must share one control period, got "
                         f"{sorted(dts)}")
    dt = dts.pop()
    if service is None:
        service = MonitorService(monitors, dt=dt, window=window)
    elif service.dt != dt:
        raise ValueError(f"service.dt={service.dt} does not match the "
                         f"traces' dt={dt}")
    user_ids = tuple(f"trace-{i}" for i in range(len(traces)))
    per_tick: Dict[str, List[np.ndarray]] = {name: [] for name
                                             in service.registry.names}
    for trace_tick in iter_trace_ticks(traces):
        tick = TickBatch(t=trace_tick.t, user_ids=user_ids,
                         cgm=trace_tick.cgm, iob=trace_tick.iob,
                         iob_rate=trace_tick.iob_rate, rate=trace_tick.rate,
                         bolus=trace_tick.bolus, action=trace_tick.action)
        result = service.process(tick)
        for name, flags in result.alerts.items():
            per_tick[name].append(flags)
    return {name: list(np.stack(columns, axis=0).T)
            for name, columns in per_tick.items()}
