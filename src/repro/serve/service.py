"""The online monitor service: per-tick batched evaluation of live users.

One :class:`MonitorService` holds the whole fleet: users connect, stream
(CGM, IOB, command) ticks at the control cadence, and every tick is
evaluated against every registry monitor **as one column batch** — the
``(1, B)`` :class:`~repro.simulation.features.ContextBatch` shape the
lock-step simulation engine already drives ``observe_batch`` with, so one
process scales to 10^5+ users per tick instead of B Python loops.

Monitor lifecycle mirrors :class:`repro.simulation.vector._MonitorBatch`:

- **stateless** monitors (CAWT/CAWOT, DT, MLP) live once in the registry,
  shared read-only, and see the whole fleet in one ``observe_batch`` call
  per tick;
- **stateful** monitors (Guideline, MPC, LSTM, custom) are
  :meth:`~repro.core.monitor.SafetyMonitor.clone`-d per connected user at
  connect time and driven through scalar ``observe``.

**Parity contract.**  The service computes each user's BG rate from
consecutive ticks — ``(cgm - previous_cgm) / dt``, zero on the user's
first tick — which is float-for-float the backward difference
:func:`~repro.simulation.features.context_matrix` computes offline.
Everything downstream is the shared ``ContextBatch`` arithmetic, so
feeding a recorded campaign through :func:`replay_log` (one trace = one
user, via :func:`~repro.simulation.store.iter_trace_ticks`) produces raw
alert streams **element-wise identical** to offline
:func:`~repro.simulation.replay.replay_campaign` — the assertion CI's
serving smoke makes at multiple batch sizes.  Dedup/escalation
(:mod:`repro.serve.alerts`) is strictly downstream of the raw streams and
never part of the parity surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.monitor import SafetyMonitor
from ..simulation.features import ContextBatch, FEATURE_NAMES
from ..simulation.store import iter_trace_ticks
from .alerts import AlertEvent, AlertManager, DEFAULT_DEDUP_WINDOW_MINUTES
from .registry import MonitorRegistry
from .ring import ContextRing

__all__ = ["TickBatch", "TickResult", "MonitorService", "replay_log",
           "DEFAULT_WINDOW_TICKS"]

#: ring-buffer context rows retained per user (2 hours at 5-minute cadence)
DEFAULT_WINDOW_TICKS = 24

#: ring row layout: time stamp, action code, then the feature row
_RING_WIDTH = 2 + len(FEATURE_NAMES)


@dataclass(frozen=True)
class TickBatch:
    """One ingest cycle: the raw channel vectors of every ticking user.

    Exactly the wire format a streaming frontend would deliver — no
    derived quantities (the service computes the BG rate itself, which is
    what keeps it on the offline parity contract).  All arrays are
    ``(B,)`` with ``B == len(user_ids)``.
    """

    t: float
    user_ids: Tuple[Hashable, ...]
    cgm: np.ndarray
    iob: np.ndarray
    iob_rate: np.ndarray
    rate: np.ndarray
    bolus: np.ndarray
    action: np.ndarray

    def __post_init__(self):
        n = len(self.user_ids)
        for name in ("cgm", "iob", "iob_rate", "rate", "bolus", "action"):
            value = getattr(self, name)
            if np.shape(value) != (n,):
                raise ValueError(
                    f"{name} must have shape ({n},) to match user_ids, "
                    f"got {np.shape(value)}")


@dataclass(frozen=True)
class TickResult:
    """Everything one :meth:`MonitorService.process` call produced.

    ``alerts[name]`` / ``hazards[name]`` are the raw ``(B,)`` per-monitor
    verdict vectors in ``user_ids`` order (the parity surface);
    ``events`` are the post-dedup notifications that actually fired.
    """

    t: float
    user_ids: Tuple[Hashable, ...]
    alerts: Dict[str, np.ndarray]
    hazards: Dict[str, np.ndarray]
    events: List[AlertEvent] = field(default_factory=list)


class MonitorService:
    """Event-loop monitor evaluation over a fleet of streaming users.

    Parameters
    ----------
    monitors:
        A :class:`~repro.serve.registry.MonitorRegistry` or a plain
        ``name -> monitor`` mapping (wrapped into one).  Loaded once,
        shared read-only across all users.
    dt:
        Control period in minutes; every connected user ticks at this
        cadence (the paper's loops run at 5).
    window:
        Context-history rows retained per user in the ring buffer.
    dedup_window, escalate_after:
        Alert notification policy, see :class:`~repro.serve.alerts.
        AlertManager`.
    """

    def __init__(self, monitors: Union[MonitorRegistry,
                                       Mapping[str, SafetyMonitor]],
                 dt: float = 5.0, window: int = DEFAULT_WINDOW_TICKS,
                 dedup_window: float = DEFAULT_DEDUP_WINDOW_MINUTES,
                 escalate_after: Optional[int] = 24):
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not isinstance(monitors, MonitorRegistry):
            monitors = MonitorRegistry(monitors)
        self.registry = monitors
        self.dt = float(dt)
        self.window = int(window)
        self._stateless = [(name, monitor) for name, monitor
                           in monitors.items() if monitor.stateless]
        self._stateful = [(name, monitor) for name, monitor
                          in monitors.items() if not monitor.stateless]
        self.alert_manager = AlertManager(window=dedup_window,
                                          escalate_after=escalate_after)
        self._ring = ContextRing(self.window, _RING_WIDTH)
        self._slots: Dict[Hashable, int] = {}
        self._free: List[int] = []
        self._last_cgm = np.zeros(0)
        self._seen = np.zeros(0, dtype=bool)
        #: per-stateful-monitor, per-slot clone (None on free slots)
        self._clones: Dict[str, List[Optional[SafetyMonitor]]] = {
            name: [] for name, _ in self._stateful}
        self._ticks_processed = 0
        # fleets usually tick with a stable user set; memoise the
        # user_ids -> slots resolution on tuple identity
        self._cached_ids: Optional[Tuple[Hashable, ...]] = None
        self._cached_slots: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # fleet membership
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return len(self._slots)

    @property
    def ticks_processed(self) -> int:
        return self._ticks_processed

    def connect(self, user_id: Hashable) -> None:
        """Register a user (idempotent); allocates its slot and per-user
        stateful monitor clones."""
        if user_id in self._slots:
            return
        if self._free:
            slot = self._free.pop()
            self._ring.clear_slot(slot)
        else:
            slot = len(self._slots) + len(self._free)
            self._ring.ensure_slots(slot + 1)
            self._grow_state(self._ring.n_slots)
        self._slots[user_id] = slot
        self._last_cgm[slot] = 0.0
        self._seen[slot] = False
        for name, monitor in self._stateful:
            self._clones[name][slot] = monitor.clone()
        self._cached_ids = None

    def disconnect(self, user_id: Hashable) -> None:
        """Drop a user: frees its slot, clones and alert streams."""
        slot = self._slots.pop(user_id, None)
        if slot is None:
            raise KeyError(f"unknown user {user_id!r}")
        self._free.append(slot)
        for clones in self._clones.values():
            clones[slot] = None
        self.alert_manager.drop_user(user_id)
        self._cached_ids = None

    def _grow_state(self, n: int) -> None:
        if n <= len(self._seen):
            return
        last_cgm = np.zeros(n)
        last_cgm[:len(self._last_cgm)] = self._last_cgm
        seen = np.zeros(n, dtype=bool)
        seen[:len(self._seen)] = self._seen
        self._last_cgm, self._seen = last_cgm, seen
        for clones in self._clones.values():
            clones.extend([None] * (n - len(clones)))

    def _resolve_slots(self, user_ids: Tuple[Hashable, ...]) -> np.ndarray:
        if user_ids is self._cached_ids:
            return self._cached_slots
        for user_id in user_ids:
            if user_id not in self._slots:
                self.connect(user_id)
        if len(set(user_ids)) != len(user_ids):
            raise ValueError("duplicate user ids in one tick")
        slots = np.fromiter((self._slots[u] for u in user_ids),
                            dtype=np.intp, count=len(user_ids))
        self._cached_ids = user_ids
        self._cached_slots = slots
        return slots

    # ------------------------------------------------------------------
    # the tick hot path
    # ------------------------------------------------------------------
    def process(self, tick: TickBatch) -> TickResult:
        """Evaluate one ingest cycle for every ticking user.

        Unknown users auto-connect on first sight.  Users absent from the
        tick simply don't advance (their next BG rate spans the gap).
        """
        slots = self._resolve_slots(tick.user_ids)
        cgm = np.asarray(tick.cgm, dtype=float)
        # the offline backward difference, computed live: zero on a
        # user's first tick, (cgm - previous) / dt afterwards — identical
        # float arithmetic to context_matrix, which is the parity anchor
        bg_rate = np.where(self._seen[slots],
                           (cgm - self._last_cgm[slots]) / self.dt, 0.0)
        batch = ContextBatch.from_tick(
            t=tick.t, bg=cgm, bg_rate=bg_rate, iob=tick.iob,
            iob_rate=tick.iob_rate, rate=tick.rate, bolus=tick.bolus,
            action=tick.action, dt=self.dt)

        alerts: Dict[str, np.ndarray] = {}
        hazards: Dict[str, np.ndarray] = {}
        for name, monitor in self._stateless:
            monitor_alerts, monitor_hazards = monitor.observe_batch(batch)
            alerts[name] = monitor_alerts[0]
            hazards[name] = monitor_hazards[0]
        if self._stateful:
            n_cols = batch.shape[1]
            contexts = [next(batch.iter_column(b)) for b in range(n_cols)]
            for name, _ in self._stateful:
                clones = self._clones[name]
                monitor_alerts = np.zeros(n_cols, dtype=bool)
                monitor_hazards = np.zeros(n_cols, dtype=int)
                for b, slot in enumerate(slots):
                    verdict = clones[slot].observe(contexts[b])
                    if verdict.alert:
                        monitor_alerts[b] = True
                        monitor_hazards[b] = int(verdict.hazard)
                alerts[name] = monitor_alerts
                hazards[name] = monitor_hazards

        rows = np.concatenate([batch.t, tick.action.reshape(1, -1).astype(float),
                               batch.features[0]], axis=0)
        self._ring.append(rows, slots)
        self._last_cgm[slots] = cgm
        self._seen[slots] = True

        events: List[AlertEvent] = []
        for name in alerts:
            events.extend(self.alert_manager.observe_tick(
                tick.t, name, tick.user_ids, alerts[name], hazards[name]))
        self._ticks_processed += 1
        return TickResult(t=tick.t, user_ids=tick.user_ids, alerts=alerts,
                          hazards=hazards, events=events)

    # ------------------------------------------------------------------
    # per-user introspection
    # ------------------------------------------------------------------
    def context_window(self, user_id: Hashable) -> ContextBatch:
        """The user's retained context history as a ``(m, 1)`` batch.

        Rebuilt from the ring buffer by folding single-cycle batches
        through :meth:`~repro.simulation.features.ContextBatch.append` —
        the incremental form of ``from_traces``, so the rows are exactly
        what the monitors saw.
        """
        slot = self._slots.get(user_id)
        if slot is None:
            raise KeyError(f"unknown user {user_id!r}")
        rows = self._ring.window(slot)
        if len(rows) == 0:
            raise ValueError(f"user {user_id!r} has no ticks yet")
        window: Optional[ContextBatch] = None
        for row in rows:
            one = ContextBatch.from_tick(
                t=float(row[0]), bg=row[2:3], bg_rate=row[3:4],
                iob=row[4:5], iob_rate=row[5:6], rate=row[6:7],
                bolus=row[7:8], action=np.array([int(row[1])]), dt=self.dt)
            window = one if window is None else window.append(one)
        return window


def replay_log(monitors: Union[MonitorRegistry, Mapping[str, SafetyMonitor]],
               traces: Sequence, window: int = DEFAULT_WINDOW_TICKS
               ) -> Dict[str, List[np.ndarray]]:
    """Feed a recorded campaign through a fresh service, trace = user.

    The replay-from-log driver: adapts *traces* into the live tick stream
    (:func:`~repro.simulation.store.iter_trace_ticks`), processes every
    tick, and reassembles per-trace raw alert streams in
    :func:`~repro.simulation.replay.replay_campaign` format (``name ->
    [per-trace boolean alert array]``) — so offline and served replay are
    directly comparable, and CI asserts them element-wise identical.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("cannot replay zero traces")
    dts = {float(trace.dt) for trace in traces}
    if len(dts) != 1:
        raise ValueError(f"traces must share one control period, got "
                         f"{sorted(dts)}")
    service = MonitorService(monitors, dt=dts.pop(), window=window)
    user_ids = tuple(f"trace-{i}" for i in range(len(traces)))
    per_tick: Dict[str, List[np.ndarray]] = {name: [] for name
                                             in service.registry.names}
    for trace_tick in iter_trace_ticks(traces):
        tick = TickBatch(t=trace_tick.t, user_ids=user_ids,
                         cgm=trace_tick.cgm, iob=trace_tick.iob,
                         iob_rate=trace_tick.iob_rate, rate=trace_tick.rate,
                         bolus=trace_tick.bolus, action=trace_tick.action)
        result = service.process(tick)
        for name, flags in result.alerts.items():
            per_tick[name].append(flags)
    return {name: list(np.stack(columns, axis=0).T)
            for name, columns in per_tick.items()}
