"""ML substrate for the baseline monitors: CART tree, numpy MLP and LSTM,
memory-mapped dataset materialisation and the parallel training-job layer."""

from .datasets import (
    FEATURE_NAMES,
    build_point_dataset,
    build_window_dataset,
    context_features,
    point_labels,
    trace_features,
)
from .memmap import MemmapDatasetError, NpyStreamWriter, open_memmap_array
from .monitors import (
    DTMonitor,
    LSTMMonitor,
    MLPMonitor,
    train_dt_monitor,
    train_lstm_monitor,
    train_mlp_monitor,
)
from .nn import Adam, LSTMClassifier, LSTMLayer, MLPClassifier, Standardizer
from .training import (
    TrainedMonitor,
    TrainingJob,
    job_dataset,
    job_grid,
    monitor_state,
    run_training_jobs,
    select_job_traces,
    train_job,
)
from .tree import DecisionTreeClassifier

__all__ = [
    "MemmapDatasetError",
    "NpyStreamWriter",
    "open_memmap_array",
    "TrainedMonitor",
    "TrainingJob",
    "job_dataset",
    "job_grid",
    "monitor_state",
    "run_training_jobs",
    "select_job_traces",
    "train_job",
    "FEATURE_NAMES",
    "build_point_dataset",
    "build_window_dataset",
    "context_features",
    "point_labels",
    "trace_features",
    "DTMonitor",
    "LSTMMonitor",
    "MLPMonitor",
    "train_dt_monitor",
    "train_lstm_monitor",
    "train_mlp_monitor",
    "Adam",
    "LSTMClassifier",
    "LSTMLayer",
    "MLPClassifier",
    "Standardizer",
    "DecisionTreeClassifier",
]
