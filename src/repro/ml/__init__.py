"""ML substrate for the baseline monitors: CART tree, numpy MLP and LSTM."""

from .datasets import (
    FEATURE_NAMES,
    build_point_dataset,
    build_window_dataset,
    context_features,
    point_labels,
    trace_features,
)
from .monitors import (
    DTMonitor,
    LSTMMonitor,
    MLPMonitor,
    train_dt_monitor,
    train_lstm_monitor,
    train_mlp_monitor,
)
from .nn import Adam, LSTMClassifier, LSTMLayer, MLPClassifier, Standardizer
from .tree import DecisionTreeClassifier

__all__ = [
    "FEATURE_NAMES",
    "build_point_dataset",
    "build_window_dataset",
    "context_features",
    "point_labels",
    "trace_features",
    "DTMonitor",
    "LSTMMonitor",
    "MLPMonitor",
    "train_dt_monitor",
    "train_lstm_monitor",
    "train_mlp_monitor",
    "Adam",
    "LSTMClassifier",
    "LSTMLayer",
    "MLPClassifier",
    "Standardizer",
    "DecisionTreeClassifier",
]
