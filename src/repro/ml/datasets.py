"""Dataset construction for the ML baseline monitors (Eqs. 7 and 8).

The DT/MLP monitors classify single cycles: input ``(x_t, u_t)``, output
"will any hazard occur at a future time of this simulation?" (Eq. 7).  The
LSTM monitor consumes sliding windows of ``k`` cycles (Eq. 8).  Labels come
from the ground-truth hazard annotation of each trace; the multi-class
variant (Section VI-1) predicts the *type* of the upcoming hazard instead of
a binary flag.

Both builders scale two ways, independently:

- ``workers=``: the trace sequence is cut into deterministic contiguous
  chunks and feature/label extraction fans out over the shared forked-pool
  protocol (:mod:`repro.parallel`); per-chunk blocks are concatenated in
  chunk order, so the stacked ``(X, y)`` is element-wise identical to the
  serial path for every worker count.
- ``mmap_dir=``: instead of stacking in RAM, blocks are streamed into
  ``X.npy`` / ``y.npy`` under the directory (via
  :class:`~repro.ml.memmap.NpyStreamWriter`) and reopened with
  ``mmap_mode="r"`` — training sets larger than memory become page-faulted
  files, and forked training workers share the physical pages instead of
  pickling matrices.  A finished directory is reused as-is on the next
  call (its ``meta.json`` sidecar must answer the same request), so the
  extraction cost is paid once per campaign.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..parallel import fork_map_chunks, resolve_workers, shard_indices
from ..simulation.features import FEATURE_NAMES, context_matrix, context_row
from .memmap import (MemmapDatasetError, NpyStreamWriter, open_memmap_array,
                     meta_path, read_meta, write_meta)

__all__ = ["FEATURE_NAMES", "trace_features", "point_labels",
           "build_point_dataset", "build_window_dataset", "context_features"]


def trace_features(trace) -> np.ndarray:
    """Per-cycle feature matrix ``(n, len(FEATURE_NAMES))`` of a trace.

    Delegates to the shared
    :func:`~repro.simulation.features.context_matrix`, so training data is
    cycle-for-cycle identical to the context stream replay (and the live
    loop) feeds the monitors.
    """
    return context_matrix(trace)


def context_features(ctx) -> np.ndarray:
    """The same feature layout computed from a runtime ContextVector."""
    return context_row(ctx)


def point_labels(trace, multiclass: bool = False) -> np.ndarray:
    """Eq. 7 labels: positive when a hazard occurs at any future time.

    Binary: 1 where some ground-truth hazardous sample exists at ``t' >= t``.
    Multi-class: 0 = safe, otherwise the type (1 = H1, 2 = H2) of the nearest
    hazardous sample at or after ``t``.
    """
    label = trace.hazard_label
    hazardous = label.hazardous.astype(bool)
    n = len(hazardous)
    if not multiclass:
        # suffix-any via reversed cumulative maximum
        return np.maximum.accumulate(hazardous[::-1])[::-1].astype(int)
    out = np.zeros(n, dtype=int)
    upcoming = 0
    for t in range(n - 1, -1, -1):
        if hazardous[t]:
            upcoming = int(label.hazard_type[t])
        out[t] = upcoming
    return out


# ----------------------------------------------------------------------
# per-chunk extraction kernels
# ----------------------------------------------------------------------
#
# These are the only places features and labels are stacked — the serial
# path hands them the whole trace stream, the parallel path one contiguous
# chunk per task and the mmap path streams their blocks to disk — so
# worker count and backing store can change wall-clock time and residency,
# never a single matrix element.

def _point_chunk(traces: Iterable,
                 multiclass: bool) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    for trace in traces:
        xs.append(trace_features(trace))
        ys.append(point_labels(trace, multiclass=multiclass))
    return xs, ys


def _window_chunk(traces: Iterable, k: int, multiclass: bool
                  ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    for trace in traces:
        features = trace_features(trace)
        labels = point_labels(trace, multiclass=multiclass)
        if len(features) < k:
            continue  # too short to yield a full window (paper: 30 min)
        windows = np.lib.stride_tricks.sliding_window_view(
            features, (k, features.shape[1])).squeeze(axis=1)
        xs.append(windows.copy())
        ys.append(labels[k - 1:])
    return xs, ys


def _iter_blocks(traces, workers: int, extract):
    """Yield per-chunk ``(x_blocks, y_blocks)`` in deterministic order."""
    workers = resolve_workers(workers)
    if workers <= 1:
        yield extract(traces)
        return
    if not hasattr(traces, "__getitem__"):
        traces = list(traces)
    chunks = shard_indices(len(traces), workers * 4)

    def extract_chunk(index_range):
        # concatenate inside the worker so only two arrays travel back
        xs, ys = extract(traces[i] for i in index_range)
        if not xs:
            return None
        return np.concatenate(xs), np.concatenate(ys)

    for result in fork_map_chunks(extract_chunk, chunks, workers):
        if result is not None:
            yield [result[0]], [result[1]]


def _stack_blocks(blocks, empty_message: str) -> Tuple[np.ndarray, np.ndarray]:
    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    for x_blocks, y_blocks in blocks:
        xs.extend(x_blocks)
        ys.extend(y_blocks)
    if not xs:
        raise ValueError(empty_message)
    return np.concatenate(xs), np.concatenate(ys)


# ----------------------------------------------------------------------
# memory-mapped materialisation
# ----------------------------------------------------------------------

def _dataset_request(kind: str, k: Optional[int], multiclass: bool) -> dict:
    """The identity a mmap directory must answer (stored in meta.json)."""
    return {"kind": kind, "k": k, "multiclass": bool(multiclass),
            "n_features": len(FEATURE_NAMES)}


def _reopen(directory: str, request: dict,
            n_traces: Optional[int] = None
            ) -> Tuple[np.ndarray, np.ndarray]:
    meta = read_meta(directory)
    for key, expected in request.items():
        if meta.get(key) != expected:
            raise MemmapDatasetError(
                f"dataset at {directory} answers "
                f"{ {k: meta.get(k) for k in request} }, not the requested "
                f"{request}; point mmap_dir elsewhere or remove it")
    # the request describes the *shape* of the extraction, not which traces
    # fed it — the caller owns directory naming per trace selection (see
    # the builder docstrings) — but a trace-count mismatch is always a
    # wrong-directory symptom we can catch for free
    if (n_traces is not None and meta.get("n_traces") is not None
            and meta["n_traces"] != n_traces):
        raise MemmapDatasetError(
            f"dataset at {directory} was built from {meta['n_traces']} "
            f"traces but this request supplies {n_traces}; it answers a "
            "different trace selection — point mmap_dir elsewhere or "
            "remove it")
    X = open_memmap_array(os.path.join(directory, "X.npy"))
    y = open_memmap_array(os.path.join(directory, "y.npy"))
    if len(X) != meta["n_rows"] or len(y) != meta["n_rows"]:
        raise MemmapDatasetError(
            f"dataset at {directory} holds {len(X)} X / {len(y)} y rows "
            f"but its sidecar records {meta['n_rows']} (arrays replaced "
            "or truncated)")
    return X, y


def _materialize(traces, directory: str, workers: int, extract,
                 request: dict, row_shape: Tuple[int, ...],
                 empty_message: str) -> Tuple[np.ndarray, np.ndarray]:
    """Stream blocks into ``<directory>/{X,y}.npy`` and reopen mapped.

    The sidecar is written only after both arrays are complete, so an
    interrupted build leaves a directory :func:`read_meta` rejects; a
    *finished* directory short-circuits the build entirely.
    """
    n_traces = len(traces) if hasattr(traces, "__len__") else None
    if os.path.exists(meta_path(directory)):
        return _reopen(directory, request, n_traces)
    os.makedirs(directory, exist_ok=True)
    leftovers = [name for name in ("X.npy", "y.npy")
                 if os.path.exists(os.path.join(directory, name))]
    if leftovers:
        raise MemmapDatasetError(
            f"{directory} holds {'/'.join(leftovers)} but no meta sidecar — "
            "the remains of an interrupted build; remove the directory and "
            "rerun")
    with NpyStreamWriter(os.path.join(directory, "X.npy"),
                         row_shape) as x_writer, \
            NpyStreamWriter(os.path.join(directory, "y.npy"), (),
                            dtype=np.int64) as y_writer:
        for x_blocks, y_blocks in _iter_blocks(traces, workers, extract):
            for block in x_blocks:
                x_writer.append(block)
            for block in y_blocks:
                y_writer.append(block)
        if x_writer.n_rows == 0:
            raise ValueError(empty_message)
        n_rows = x_writer.n_rows
    write_meta(directory, dict(request, n_rows=n_rows, n_traces=n_traces))
    return _reopen(directory, request, n_traces)


# ----------------------------------------------------------------------
# public builders
# ----------------------------------------------------------------------

def build_point_dataset(traces: Iterable, multiclass: bool = False,
                        workers: Optional[int] = None,
                        mmap_dir: Optional[str] = None
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Stacked (X, y) over all cycles of all traces (Eq. 7).

    With *mmap_dir* the matrices live in ``.npy`` files under that
    directory and come back memory-mapped read-only; otherwise they are
    in-memory arrays.  Either way the values are element-wise identical
    for every ``workers`` count.

    A finished *mmap_dir* is reused without re-extraction, so the caller
    must dedicate one directory per trace selection (as
    ``run_training_jobs`` does via ``TrainingJob.dataset_slug()``); a
    directory answering a different request shape or trace count is
    rejected, but two same-sized selections are indistinguishable.
    """
    def extract(chunk):
        return _point_chunk(chunk, multiclass)

    if mmap_dir is not None:
        return _materialize(
            traces, mmap_dir, workers, extract,
            _dataset_request("point", None, multiclass),
            (len(FEATURE_NAMES),), "no traces supplied")
    return _stack_blocks(_iter_blocks(traces, workers, extract),
                         "no traces supplied")


def build_window_dataset(traces: Iterable, k: int = 6,
                         multiclass: bool = False,
                         workers: Optional[int] = None,
                         mmap_dir: Optional[str] = None
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Sliding-window (X, y) with ``X[i]`` of shape (k, D) (Eq. 8).

    The window at position ``t`` covers cycles ``[t-k+1, t]`` and carries the
    label of cycle ``t``; the first ``k-1`` cycles of each trace yield no
    sample (the paper's LSTM needs 30 minutes of history) and traces shorter
    than ``k`` yield none at all.  See :func:`build_point_dataset` for the
    ``workers`` / ``mmap_dir`` contract.
    """
    if k < 1:
        raise ValueError(f"window k must be >= 1, got {k}")

    def extract(chunk):
        return _window_chunk(chunk, k, multiclass)

    empty = "no traces long enough for the window size"
    if mmap_dir is not None:
        return _materialize(
            traces, mmap_dir, workers, extract,
            _dataset_request("window", k, multiclass),
            (k, len(FEATURE_NAMES)), empty)
    return _stack_blocks(_iter_blocks(traces, workers, extract), empty)
