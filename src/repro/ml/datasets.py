"""Dataset construction for the ML baseline monitors (Eqs. 7 and 8).

The DT/MLP monitors classify single cycles: input ``(x_t, u_t)``, output
"will any hazard occur at a future time of this simulation?" (Eq. 7).  The
LSTM monitor consumes sliding windows of ``k`` cycles (Eq. 8).  Labels come
from the ground-truth hazard annotation of each trace; the multi-class
variant (Section VI-1) predicts the *type* of the upcoming hazard instead of
a binary flag.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ..simulation.features import FEATURE_NAMES, context_matrix, context_row

__all__ = ["FEATURE_NAMES", "trace_features", "point_labels",
           "build_point_dataset", "build_window_dataset", "context_features"]


def trace_features(trace) -> np.ndarray:
    """Per-cycle feature matrix ``(n, len(FEATURE_NAMES))`` of a trace.

    Delegates to the shared
    :func:`~repro.simulation.features.context_matrix`, so training data is
    cycle-for-cycle identical to the context stream replay (and the live
    loop) feeds the monitors.
    """
    return context_matrix(trace)


def context_features(ctx) -> np.ndarray:
    """The same feature layout computed from a runtime ContextVector."""
    return context_row(ctx)


def point_labels(trace, multiclass: bool = False) -> np.ndarray:
    """Eq. 7 labels: positive when a hazard occurs at any future time.

    Binary: 1 where some ground-truth hazardous sample exists at ``t' >= t``.
    Multi-class: 0 = safe, otherwise the type (1 = H1, 2 = H2) of the nearest
    hazardous sample at or after ``t``.
    """
    label = trace.hazard_label
    hazardous = label.hazardous.astype(bool)
    n = len(hazardous)
    if not multiclass:
        # suffix-any via reversed cumulative maximum
        return np.maximum.accumulate(hazardous[::-1])[::-1].astype(int)
    out = np.zeros(n, dtype=int)
    upcoming = 0
    for t in range(n - 1, -1, -1):
        if hazardous[t]:
            upcoming = int(label.hazard_type[t])
        out[t] = upcoming
    return out


def build_point_dataset(traces: Iterable,
                        multiclass: bool = False) -> Tuple[np.ndarray, np.ndarray]:
    """Stacked (X, y) over all cycles of all traces (Eq. 7)."""
    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    for trace in traces:
        xs.append(trace_features(trace))
        ys.append(point_labels(trace, multiclass=multiclass))
    if not xs:
        raise ValueError("no traces supplied")
    return np.concatenate(xs), np.concatenate(ys)


def build_window_dataset(traces: Iterable, k: int = 6,
                         multiclass: bool = False) -> Tuple[np.ndarray, np.ndarray]:
    """Sliding-window (X, y) with ``X[i]`` of shape (k, D) (Eq. 8).

    The window at position ``t`` covers cycles ``[t-k+1, t]`` and carries the
    label of cycle ``t``; the first ``k-1`` cycles of each trace yield no
    sample (the paper's LSTM needs 30 minutes of history).
    """
    if k < 1:
        raise ValueError(f"window k must be >= 1, got {k}")
    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    for trace in traces:
        features = trace_features(trace)
        labels = point_labels(trace, multiclass=multiclass)
        n = len(features)
        if n < k:
            continue
        windows = np.lib.stride_tricks.sliding_window_view(
            features, (k, features.shape[1])).squeeze(axis=1)
        xs.append(windows.copy())
        ys.append(labels[k - 1:])
    if not xs:
        raise ValueError("no traces long enough for the window size")
    return np.concatenate(xs), np.concatenate(ys)
