"""CART decision-tree classifier (numpy, from scratch).

Stands in for the scikit-learn decision tree the paper uses as an ML
baseline monitor.  Standard CART: greedy binary splits minimising weighted
Gini impurity, with depth / minimum-samples regularisation.  Supports
multi-class targets (binary safe/unsafe and the Section VI multi-class
hazard-type variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    counts: Optional[np.ndarray] = None  # class counts at leaves

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier:
    """Greedy CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split:
        Do not split nodes smaller than this.
    min_samples_leaf:
        Both children of a split must keep at least this many samples.
    max_thresholds:
        Cap on candidate thresholds per feature per node (quantile-based
        subsampling keeps training fast on large campaigns).
    """

    def __init__(self, max_depth: int = 8, min_samples_split: int = 10,
                 min_samples_leaf: int = 5, max_thresholds: int = 64):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self._root: Optional[_Node] = None
        self._flat: Optional[tuple] = None
        self.classes_: Optional[np.ndarray] = None
        self.n_nodes_ = 0

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, X, y) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self.n_nodes_ = 0
        self._flat = None
        self._root = self._build(X, y_enc, depth=0)
        return self

    def _class_counts(self, y_enc: np.ndarray) -> np.ndarray:
        return np.bincount(y_enc, minlength=len(self.classes_))

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        self.n_nodes_ += 1
        counts = self._class_counts(y)
        node = _Node(counts=counts)
        if (depth >= self.max_depth or len(y) < self.min_samples_split
                or _gini(counts) == 0.0):
            return node
        split = self._best_split(X, y, counts)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray,
                    counts: np.ndarray):
        best_gain = 1e-12
        best = None
        parent_impurity = _gini(counts)
        n = len(y)
        for feature in range(X.shape[1]):
            column = X[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_col = column[order]
            sorted_y = y[order]
            # candidate boundaries: positions where the value changes
            change = np.flatnonzero(np.diff(sorted_col) > 0) + 1
            if change.size == 0:
                continue
            if change.size > self.max_thresholds:
                idx = np.linspace(0, change.size - 1, self.max_thresholds)
                change = change[idx.astype(int)]
            # cumulative class counts along the sorted order
            one_hot = np.zeros((n, len(self.classes_)))
            one_hot[np.arange(n), sorted_y] = 1.0
            csum = np.cumsum(one_hot, axis=0)
            left_counts = csum[change - 1]
            right_counts = counts - left_counts
            n_left = change.astype(float)
            n_right = n - n_left
            valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                p_left = left_counts / n_left[:, None]
                p_right = right_counts / n_right[:, None]
            gini_left = 1.0 - np.sum(p_left ** 2, axis=1)
            gini_right = 1.0 - np.sum(p_right ** 2, axis=1)
            weighted = (n_left * gini_left + n_right * gini_right) / n
            weighted[~valid] = np.inf
            best_idx = int(np.argmin(weighted))
            gain = parent_impurity - weighted[best_idx]
            if gain > best_gain:
                boundary = change[best_idx]
                threshold = (sorted_col[boundary - 1] + sorted_col[boundary]) / 2.0
                best_gain = gain
                best = (feature, float(threshold))
        return best

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def _leaf(self, x: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def predict_proba(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.empty((len(X), len(self.classes_)))
        for i, x in enumerate(X):
            counts = self._leaf(x).counts
            out[i] = counts / counts.sum()
        return out

    def _flat_tree(self) -> tuple:
        """Child-indexed flat view for vectorized traversal (cached per
        fit): ``(features, thresholds, left, right, predictions)``.

        Built from the same preorder layout as :meth:`node_arrays` — the
        left child of an interior node is the next preorder index, the
        right child follows the left subtree — with the per-node class
        prediction precomputed exactly as :meth:`predict_proba` +
        ``argmax`` would resolve it at a leaf.
        """
        if self._flat is None:
            features, thresholds, counts = self.node_arrays()
            n = len(features)
            left = np.full(n, -1, dtype=np.intp)
            right = np.full(n, -1, dtype=np.intp)
            # reconstruct children from preorder: interior nodes wait on
            # the stack, first arrival is the left child, second (after
            # the left subtree completes) the right
            stack = [0] if features[0] >= 0 else []
            for i in range(1, n):
                parent = stack[-1]
                if left[parent] < 0:
                    left[parent] = i
                else:
                    right[parent] = i
                    stack.pop()
                if features[i] >= 0:
                    stack.append(i)
            proba = counts / counts.sum(axis=1, keepdims=True)
            predictions = self.classes_[np.argmax(proba, axis=1)]
            self._flat = (features, thresholds, left, right, predictions)
        return self._flat

    def predict(self, X) -> np.ndarray:
        """Predicted class per row, via one vectorized level-by-level
        traversal of the flat tree — element-wise identical to the
        per-row :meth:`_leaf` walk (the split comparisons are exact) at
        any batch size, which is what lets the batched monitor replay
        call it on whole context stacks."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        features, thresholds, left, right, predictions = self._flat_tree()
        index = np.zeros(len(X), dtype=np.intp)
        active = np.flatnonzero(features[index] >= 0)
        while active.size:
            node = index[active]
            go_left = X[active, features[node]] <= thresholds[node]
            index[active] = np.where(go_left, left[node], right[node])
            active = active[features[index[active]] >= 0]
        return predictions[index]

    def node_arrays(self):
        """Preorder flattening of the fitted tree into three arrays:
        ``(features, thresholds, counts)`` with one row per node (leaves
        carry feature -1).  Two trees are structurally identical iff all
        three are element-wise equal — the exact-equality form the
        training parity suite compares."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        features, thresholds, counts = [], [], []

        def visit(node: _Node) -> None:
            features.append(node.feature)
            thresholds.append(node.threshold)
            counts.append(node.counts)
            if not node.is_leaf:
                visit(node.left)
                visit(node.right)

        visit(self._root)
        return (np.asarray(features), np.asarray(thresholds),
                np.stack(counts))

    @classmethod
    def from_node_arrays(cls, features, thresholds, counts, classes,
                         **hyperparams) -> "DecisionTreeClassifier":
        """Rebuild a fitted tree from :meth:`node_arrays` output.

        The inverse of the preorder flattening: interior nodes (feature
        >= 0) take the next preorder node as their left child and the one
        after their left subtree as the right, exactly like
        :meth:`_flat_tree`.  ``from_node_arrays(*tree.node_arrays(),
        tree.classes_)`` predicts bit-identically to ``tree`` — the
        round-trip the serving registry relies on.
        """
        features = np.asarray(features, dtype=int)
        thresholds = np.asarray(thresholds, dtype=float)
        counts = np.asarray(counts)  # dtype preserved for exact round-trips
        if not (len(features) == len(thresholds) == len(counts)):
            raise ValueError("node array length mismatch")
        if len(features) == 0:
            raise ValueError("cannot rebuild a tree from zero nodes")
        tree = cls(**hyperparams)
        tree.classes_ = np.asarray(classes)
        if counts.shape[1] != len(tree.classes_):
            raise ValueError(
                f"counts have {counts.shape[1]} classes, classes_ has "
                f"{len(tree.classes_)}")
        nodes = [_Node(feature=int(f), threshold=float(th), counts=c)
                 for f, th, c in zip(features, thresholds, counts)]
        stack = [nodes[0]] if features[0] >= 0 else []
        for i in range(1, len(nodes)):
            if not stack:
                raise ValueError("malformed preorder: node without a parent")
            parent = stack[-1]
            if parent.left is None:
                parent.left = nodes[i]
            else:
                parent.right = nodes[i]
                stack.pop()
            if features[i] >= 0:
                stack.append(nodes[i])
        if stack:
            raise ValueError("malformed preorder: unclosed interior nodes")
        tree._root = nodes[0]
        tree.n_nodes_ = len(nodes)
        return tree

    @property
    def depth_(self) -> int:
        def depth(node, d):
            if node is None or node.is_leaf:
                return d
            return max(depth(node.left, d + 1), depth(node.right, d + 1))
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return depth(self._root, 0)
