"""Trainable classifiers assembled from the layer zoo.

- :class:`MLPClassifier`: the paper's MLP monitor architecture — two hidden
  layers (256, 128) with ReLU, dropout regularisation, a softmax head,
  trained with Adam and early stopping on a held-out validation split
  (Section V-C4).
- :class:`LSTMClassifier`: the paper's stacked LSTM monitor — LSTM(128) ->
  LSTM(64) over k-step windows, softmax head over the last hidden state.
- :class:`Standardizer`: per-feature z-scoring shared by both.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .layers import Dense, Dropout, Layer, ReLU
from .losses import softmax, softmax_cross_entropy
from .lstm import LSTMLayer
from .optim import Adam

__all__ = ["Standardizer", "MLPClassifier", "LSTMClassifier"]


class Standardizer:
    """Per-feature z-scoring; tolerant of constant features."""

    def __init__(self):
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "Standardizer":
        flat = X.reshape(-1, X.shape[-1])
        self.mean = flat.mean(axis=0)
        std = flat.std(axis=0)
        self.std = np.where(std < 1e-9, 1.0, std)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("standardizer is not fitted")
        return (X - self.mean) / self.std


class _BaseClassifier:
    """Shared minibatch training loop with early stopping."""

    def __init__(self, n_classes: int, lr: float, batch_size: int,
                 max_epochs: int, patience: int, seed: Optional[int]):
        if n_classes < 2:
            raise ValueError(f"need >= 2 classes, got {n_classes}")
        if batch_size < 1 or max_epochs < 1 or patience < 1:
            raise ValueError("batch_size, max_epochs and patience must be >= 1")
        self.n_classes = n_classes
        self.lr = lr
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.rng = np.random.default_rng(seed)
        self.scaler = Standardizer()
        self.layers: List[Layer] = []
        self.history: List[Tuple[float, float]] = []  # (train, val) loss

    # subclass hooks -----------------------------------------------------
    def _build(self, in_shape: Tuple[int, ...]) -> None:
        raise NotImplementedError

    def _forward(self, X: np.ndarray, training: bool) -> np.ndarray:
        out = X
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def _backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    # training -----------------------------------------------------------
    def fit(self, X, y, val_fraction: float = 0.1) -> "_BaseClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) < 10:
            raise ValueError("need at least 10 samples to train")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ValueError("labels out of range for n_classes")
        self.scaler.fit(X)
        X = self.scaler.transform(X)
        self._build(X.shape[1:])

        n_val = max(int(len(X) * val_fraction), 1)
        order = self.rng.permutation(len(X))
        val_idx, train_idx = order[:n_val], order[n_val:]
        X_train, y_train = X[train_idx], y[train_idx]
        X_val, y_val = X[val_idx], y[val_idx]

        params: List[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.params)
        optimizer = Adam(params, lr=self.lr)

        best_val = np.inf
        best_weights = [p.copy() for p in params]
        stall = 0
        self.history = []
        for _ in range(self.max_epochs):
            perm = self.rng.permutation(len(X_train))
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, len(X_train), self.batch_size):
                idx = perm[start:start + self.batch_size]
                logits = self._forward(X_train[idx], training=True)
                loss, grad = softmax_cross_entropy(logits, y_train[idx])
                self._backward(grad)
                grads: List[np.ndarray] = []
                for layer in self.layers:
                    grads.extend(layer.grads)
                optimizer.step(grads)
                epoch_loss += loss
                n_batches += 1
            val_logits = self._forward(X_val, training=False)
            val_loss, _ = softmax_cross_entropy(val_logits, y_val)
            self.history.append((epoch_loss / max(n_batches, 1), val_loss))
            if val_loss < best_val - 1e-5:
                best_val = val_loss
                best_weights = [p.copy() for p in params]
                stall = 0
            else:
                stall += 1
                if stall >= self.patience:
                    break
        for p, best in zip(params, best_weights):
            p[...] = best
        return self

    # persistence --------------------------------------------------------
    def export_params(self) -> List[np.ndarray]:
        """Flat list of fitted arrays: scaler mean, scaler std, then every
        layer parameter in forward order — the layout
        :func:`repro.ml.training.monitor_state` compares and the serving
        registry persists."""
        if not self.layers:
            raise RuntimeError("model is not fitted")
        params = [self.scaler.mean, self.scaler.std]
        for layer in self.layers:
            params.extend(layer.params)
        return params

    def load_params(self, in_shape: Tuple[int, ...],
                    params: Sequence[np.ndarray]) -> "_BaseClassifier":
        """Rebuild a fitted model from :meth:`export_params` output.

        Builds the layer stack for *in_shape* (the post-scaling feature
        shape ``X.shape[1:]`` seen by :meth:`fit`), then copies every
        array into place with strict count/shape checks — the inverse of
        :meth:`export_params`, so a round-tripped model predicts
        bit-identically to the original.
        """
        params = [np.asarray(p, dtype=float) for p in params]
        if len(params) < 2:
            raise ValueError("need at least scaler mean and std")
        self.scaler.mean = params[0]
        self.scaler.std = params[1]
        self._build(tuple(in_shape))
        targets: List[np.ndarray] = []
        for layer in self.layers:
            targets.extend(layer.params)
        saved = params[2:]
        if len(saved) != len(targets):
            raise ValueError(
                f"parameter count mismatch: saved {len(saved)}, model "
                f"expects {len(targets)}")
        for target, value in zip(targets, saved):
            if target.shape != value.shape:
                raise ValueError(
                    f"parameter shape mismatch: saved {value.shape}, model "
                    f"expects {target.shape}")
            target[...] = value
        return self

    # inference ----------------------------------------------------------
    def predict_proba(self, X) -> np.ndarray:
        if not self.layers:
            raise RuntimeError("model is not fitted")
        X = self.scaler.transform(np.asarray(X, dtype=float))
        return softmax(self._forward(X, training=False))

    def predict(self, X) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1)

    def predict_rows(self, X) -> np.ndarray:
        """Per-row class predictions, bit-identical to calling
        :meth:`predict` on each row separately.

        Whole-matrix BLAS matmuls round differently per batch shape, so a
        monitor replayed in batches cannot just stack its cycles into one
        ``predict`` call; this keeps the scalar one-row-per-matmul call
        pattern but hoists the batch-invariant work (input coercion,
        standardisation) out of the loop and reads the class straight off
        the logits — ``softmax`` is strictly monotone and tie-preserving,
        so ``argmax(logits)`` equals ``argmax(predict_proba)`` exactly.
        """
        if not self.layers:
            raise RuntimeError("model is not fitted")
        X = self.scaler.transform(np.asarray(X, dtype=float))
        out = np.empty(len(X), dtype=np.intp)
        for i in range(len(X)):
            logits = self._forward(X[i:i + 1], training=False)
            out[i] = np.argmax(logits[0])
        return out


class MLPClassifier(_BaseClassifier):
    """The paper's MLP monitor: Dense(256)-ReLU-Dense(128)-ReLU-softmax."""

    def __init__(self, hidden: Sequence[int] = (256, 128), n_classes: int = 2,
                 lr: float = 1e-3, dropout: float = 0.2, batch_size: int = 256,
                 max_epochs: int = 40, patience: int = 5,
                 seed: Optional[int] = None):
        super().__init__(n_classes, lr, batch_size, max_epochs, patience, seed)
        if not hidden:
            raise ValueError("need at least one hidden layer")
        self.hidden = tuple(hidden)
        self.dropout = dropout

    def _build(self, in_shape: Tuple[int, ...]) -> None:
        (in_dim,) = in_shape
        self.layers = []
        prev = in_dim
        for width in self.hidden:
            self.layers.append(Dense(prev, width, rng=self.rng))
            self.layers.append(ReLU())
            if self.dropout > 0:
                self.layers.append(Dropout(self.dropout, rng=self.rng))
            prev = width
        self.layers.append(Dense(prev, self.n_classes, rng=self.rng))


class _LastStep(Layer):
    """Select the final time step of an (n, T, H) sequence."""

    def __init__(self):
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x[:, -1, :]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        full = np.zeros(self._shape)
        full[:, -1, :] = grad
        return full


class LSTMClassifier(_BaseClassifier):
    """The paper's LSTM monitor: stacked LSTM(128, 64) over k-step windows."""

    def __init__(self, hidden: Sequence[int] = (128, 64), n_classes: int = 2,
                 lr: float = 1e-3, batch_size: int = 256, max_epochs: int = 30,
                 patience: int = 4, seed: Optional[int] = None):
        super().__init__(n_classes, lr, batch_size, max_epochs, patience, seed)
        if not hidden:
            raise ValueError("need at least one LSTM layer")
        self.hidden = tuple(hidden)

    def _build(self, in_shape: Tuple[int, ...]) -> None:
        (_, in_dim) = in_shape  # (T, D)
        self.layers = []
        prev = in_dim
        for width in self.hidden:
            self.layers.append(LSTMLayer(prev, width, rng=self.rng))
            prev = width
        self.layers.append(_LastStep())
        self.layers.append(Dense(prev, self.n_classes, rng=self.rng))
