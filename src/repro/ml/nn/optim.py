"""Adam optimizer (Kingma & Ba), numpy implementation.

The paper trains its neural monitors with Adam at learning rate 0.001
(Section V-C4); this is the standard bias-corrected variant.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["Adam"]


class Adam:
    """Adam over a fixed list of parameter arrays (updated in place)."""

    def __init__(self, params: List[np.ndarray], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]
        self._t = 0

    def step(self, grads: List[np.ndarray]) -> None:
        """Apply one update given gradients aligned with ``params``."""
        if len(grads) != len(self.params):
            raise ValueError(
                f"expected {len(self.params)} gradient arrays, got {len(grads)}")
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
