"""LSTM layer with backpropagation through time (numpy, from scratch).

Implements the standard LSTM cell (gates ordered input, forget, candidate,
output; forget-gate bias initialised to 1) over batched sequences, exactly
what the paper's two-layer stacked LSTM monitor needs: input windows of
k = 6 five-minute cycles, hidden sizes 128 and 64 (Section V-C4).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .layers import Layer

__all__ = ["LSTMLayer"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class LSTMLayer(Layer):
    """Batched LSTM over full sequences.

    ``forward`` maps ``(n, T, in_dim)`` to ``(n, T, hidden)``; ``backward``
    accepts the gradient of the full hidden sequence (callers that only use
    the last step pass zeros elsewhere).
    """

    def __init__(self, in_dim: int, hidden: int,
                 rng: Optional[np.random.Generator] = None):
        if in_dim < 1 or hidden < 1:
            raise ValueError("layer dimensions must be positive")
        rng = rng or np.random.default_rng()
        scale = 1.0 / np.sqrt(in_dim + hidden)
        self.hidden = hidden
        self.Wx = rng.normal(0.0, scale, size=(in_dim, 4 * hidden))
        self.Wh = rng.normal(0.0, scale, size=(hidden, 4 * hidden))
        self.b = np.zeros(4 * hidden)
        self.b[hidden:2 * hidden] = 1.0  # forget-gate bias
        self.gWx = np.zeros_like(self.Wx)
        self.gWh = np.zeros_like(self.Wh)
        self.gb = np.zeros_like(self.b)
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(f"LSTM input must be (n, T, d), got shape {x.shape}")
        n, T, _ = x.shape
        H = self.hidden
        h = np.zeros((n, H))
        c = np.zeros((n, H))
        h_seq = np.zeros((n, T, H))
        caches = []
        for t in range(T):
            gates = x[:, t, :] @ self.Wx + h @ self.Wh + self.b
            i = _sigmoid(gates[:, 0 * H:1 * H])
            f = _sigmoid(gates[:, 1 * H:2 * H])
            g = np.tanh(gates[:, 2 * H:3 * H])
            o = _sigmoid(gates[:, 3 * H:4 * H])
            c_next = f * c + i * g
            tanh_c = np.tanh(c_next)
            h_next = o * tanh_c
            caches.append((x[:, t, :], h, c, i, f, g, o, c_next, tanh_c))
            h, c = h_next, c_next
            h_seq[:, t, :] = h
        self._cache = (caches, x.shape)
        return h_seq

    def backward(self, grad: np.ndarray) -> np.ndarray:
        caches, x_shape = self._cache
        n, T, _ = x_shape
        H = self.hidden
        self.gWx[...] = 0.0
        self.gWh[...] = 0.0
        self.gb[...] = 0.0
        grad_x = np.zeros(x_shape)
        dh_next = np.zeros((n, H))
        dc_next = np.zeros((n, H))
        for t in range(T - 1, -1, -1):
            x_t, h_prev, c_prev, i, f, g, o, c_next, tanh_c = caches[t]
            dh = grad[:, t, :] + dh_next
            do = dh * tanh_c
            dc = dc_next + dh * o * (1.0 - tanh_c ** 2)
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dc_next = dc * f
            d_gates = np.concatenate([
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g ** 2),
                do * o * (1.0 - o),
            ], axis=1)
            self.gWx += x_t.T @ d_gates
            self.gWh += h_prev.T @ d_gates
            self.gb += d_gates.sum(axis=0)
            grad_x[:, t, :] = d_gates @ self.Wx.T
            dh_next = d_gates @ self.Wh.T
        return grad_x

    @property
    def params(self) -> List[np.ndarray]:
        return [self.Wx, self.Wh, self.b]

    @property
    def grads(self) -> List[np.ndarray]:
        return [self.gWx, self.gWh, self.gb]
