"""Classification losses (numpy).

The paper trains its MLP/LSTM monitors with sparse categorical
cross-entropy over softmax outputs; this module provides the numerically
stable fused softmax + cross-entropy with its gradient.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["softmax", "softmax_cross_entropy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray,
                          targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean sparse categorical cross-entropy and gradient w.r.t. logits.

    Parameters
    ----------
    logits:
        (n, k) unnormalised scores.
    targets:
        (n,) integer class labels in [0, k).
    """
    n, k = logits.shape
    targets = np.asarray(targets)
    if targets.shape != (n,):
        raise ValueError(f"targets must have shape ({n},), got {targets.shape}")
    if targets.min() < 0 or targets.max() >= k:
        raise ValueError("target labels out of range")
    probs = softmax(logits)
    eps = 1e-12
    loss = float(-np.mean(np.log(probs[np.arange(n), targets] + eps)))
    grad = probs.copy()
    grad[np.arange(n), targets] -= 1.0
    return loss, grad / n
