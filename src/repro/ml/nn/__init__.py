"""From-scratch numpy neural networks (layers, LSTM, Adam, classifiers)."""

from .layers import Dense, Dropout, Layer, ReLU
from .losses import softmax, softmax_cross_entropy
from .lstm import LSTMLayer
from .model import LSTMClassifier, MLPClassifier, Standardizer
from .optim import Adam

__all__ = [
    "Dense",
    "Dropout",
    "Layer",
    "ReLU",
    "softmax",
    "softmax_cross_entropy",
    "LSTMLayer",
    "LSTMClassifier",
    "MLPClassifier",
    "Standardizer",
    "Adam",
]
