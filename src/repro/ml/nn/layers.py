"""Feed-forward neural-network layers (numpy, from scratch).

Minimal layer zoo needed for the paper's MLP baseline monitor: dense
(fully-connected) layers, ReLU, and inverted dropout.  Each layer exposes
``forward``/``backward`` plus its parameter and gradient arrays for the
optimizer.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["Layer", "Dense", "ReLU", "Dropout"]


class Layer:
    """Base layer: stateless by default."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> List[np.ndarray]:
        return []

    @property
    def grads(self) -> List[np.ndarray]:
        return []


class Dense(Layer):
    """Affine layer ``y = x W + b`` with He-normal initialisation."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: Optional[np.random.Generator] = None):
        if in_dim < 1 or out_dim < 1:
            raise ValueError("layer dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.W = rng.normal(0.0, np.sqrt(2.0 / in_dim), size=(in_dim, out_dim))
        self.b = np.zeros(out_dim)
        self.gW = np.zeros_like(self.W)
        self.gb = np.zeros_like(self.b)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.gW[...] = self._x.T @ grad
        self.gb[...] = grad.sum(axis=0)
        return grad @ self.W.T

    @property
    def params(self) -> List[np.ndarray]:
        return [self.W, self.b]

    @property
    def grads(self) -> List[np.ndarray]:
        return [self.gW, self.gb]


class ReLU(Layer):
    def __init__(self):
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class Dropout(Layer):
    """Inverted dropout: active only during training."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng or np.random.default_rng()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask
