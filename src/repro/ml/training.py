"""Parallel training jobs for the ML baseline monitors.

The paper's Table VI/VIII results come from training *many independent*
classifiers: one per model kind, per cross-validation fold, per patient,
per head type.  Each fit is serial, but the fits themselves share nothing —
exactly the shape the forked-pool chunk protocol of :mod:`repro.parallel`
already scales campaign simulation and monitor replay with.  This module
closes that last serial hot path:

- :class:`TrainingJob` names one fit — model kind x fold x patient x
  hyperparameters — as a frozen value object.  Its training data selection
  (:func:`select_job_traces`) and its RNG seed (:meth:`TrainingJob.job_seed`,
  derived from the job's identity, never from its position in a worker's
  queue) depend only on the job itself, which is what makes the fan-out
  deterministic: ``workers=N`` produces element-wise identical monitors to
  the serial loop, for every N.
- :func:`run_training_jobs` materialises each job's dataset once in the
  parent — optionally memory-mapped under ``mmap_root`` (see
  :mod:`repro.ml.memmap`), in which case forked workers share the physical
  pages — and fans the fits out in deterministic chunks.  Jobs that need
  the same dataset (DT and MLP over the same split) share one
  materialisation.
- :func:`monitor_state` flattens any trained monitor into a canonical list
  of arrays, so "these two training runs produced the same monitor" is an
  exact ``np.array_equal`` check — the contract the parity suite and the
  CI smoke enforce.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.monitor import SafetyMonitor
from ..parallel import fork_map_chunks, resolve_workers, shard_indices
from ..simulation.store import TraceDataset, TraceDatasetView
from .datasets import build_point_dataset, build_window_dataset
from .monitors import DTMonitor, LSTMMonitor, MLPMonitor
from .nn import LSTMClassifier, MLPClassifier
from .tree import DecisionTreeClassifier

__all__ = ["TrainingJob", "TrainedMonitor", "run_training_jobs",
           "train_job", "select_job_traces", "job_dataset", "monitor_state",
           "job_grid"]

#: model kind -> (monitor display name, needs window dataset)
_KINDS: Dict[str, Tuple[str, bool]] = {
    "dt": ("DT", False),
    "mlp": ("MLP", False),
    "lstm": ("LSTM", True),
}


@dataclass(frozen=True)
class TrainingJob:
    """One independent monitor fit: kind x patient x fold x hyperparams.

    ``patient_id=None`` trains on every patient; ``fold=None`` trains on
    the full selection, otherwise on the round-robin *training* side of
    the ``fold``-th of ``folds`` splits (the same membership
    :func:`~repro.simulation.batch.kfold_split` produces).  ``hyperparams``
    is a sorted tuple of ``(name, value)`` pairs passed to the underlying
    classifier constructor — build jobs with :meth:`make` to get the
    normalisation for free.
    """

    kind: str
    patient_id: Optional[str] = None
    fold: Optional[int] = None
    folds: Optional[int] = None
    multiclass: bool = False
    bg_target: float = 120.0
    seed: int = 0
    window: int = 6  # LSTM input window k
    hyperparams: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown model kind {self.kind!r}; available: "
                f"{sorted(_KINDS)}")
        if self.fold is not None:
            if self.folds is None or self.folds < 2:
                raise ValueError(
                    f"fold={self.fold} needs folds >= 2, got {self.folds}")
            if not 0 <= self.fold < self.folds:
                raise ValueError(
                    f"fold must be in [0, {self.folds}), got {self.fold}")
        if self.window < 1:
            raise ValueError(f"window k must be >= 1, got {self.window}")

    @classmethod
    def make(cls, kind: str, *, patient_id: Optional[str] = None,
             fold: Optional[int] = None, folds: Optional[int] = None,
             multiclass: bool = False, bg_target: float = 120.0,
             seed: int = 0, window: int = 6, **hyperparams) -> "TrainingJob":
        """Build a job with keyword hyperparameters, e.g.
        ``TrainingJob.make("mlp", fold=0, folds=4, max_epochs=10)``."""
        return cls(kind=kind.lower(), patient_id=patient_id, fold=fold,
                   folds=folds, multiclass=multiclass, bg_target=bg_target,
                   seed=seed, window=window,
                   hyperparams=tuple(sorted(hyperparams.items())))

    @property
    def monitor_name(self) -> str:
        """Display name of the trained monitor ("DT" / "MLP" / "LSTM")."""
        return _KINDS[self.kind][0]

    @property
    def needs_window(self) -> bool:
        return _KINDS[self.kind][1]

    def job_seed(self) -> int:
        """Deterministic RNG seed derived from the job's identity.

        Two jobs differing in any identity field train from different
        seeds; the *same* job trains from the same seed in every process,
        chunk layout and worker count — the root of the serial/parallel
        parity guarantee.  (The DT has no RNG and ignores this.)
        """
        doc = [self.seed, self.kind, self.patient_id, self.fold, self.folds,
               self.multiclass, self.window,
               [[name, repr(value)] for name, value in self.hyperparams]]
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return int.from_bytes(
            hashlib.sha256(blob.encode("utf-8")).digest()[:4], "little")

    def dataset_key(self) -> tuple:
        """Identity of the training matrix this job consumes.  DT and MLP
        jobs over the same selection share one dataset."""
        kind = "window" if self.needs_window else "point"
        k = self.window if self.needs_window else None
        return (kind, k, self.multiclass, self.patient_id, self.fold,
                self.folds)

    def dataset_slug(self) -> str:
        """Filesystem-safe directory name for the job's mmap dataset."""
        kind, k, multiclass, patient, fold, folds = self.dataset_key()
        return "-".join([
            kind if k is None else f"{kind}{k}",
            "mc" if multiclass else "bin",
            f"p{patient}" if patient is not None else "pall",
            "full" if fold is None else f"f{fold}of{folds}",
        ])


@dataclass
class TrainedMonitor:
    """Outcome of one training job."""

    job: TrainingJob
    monitor: SafetyMonitor
    n_samples: int
    n_features: int

    @property
    def name(self) -> str:
        return self.job.monitor_name


def select_job_traces(job: TrainingJob, traces: Sequence) -> Sequence:
    """The training traces of *job* within the full campaign sequence.

    Patient filtering and the round-robin fold split stay *lazy* on
    :class:`~repro.simulation.store.TraceDataset` sequences (index views,
    no shard loads); plain sequences come back as lists.  The resulting
    membership and order match ``kfold_split(patient_traces, folds,
    fold)[0]`` exactly, so the job API trains on the same data the
    hand-rolled experiment loops did.
    """
    if job.patient_id is not None:
        if isinstance(traces, TraceDataset):
            traces = traces.by_patient(job.patient_id)
        else:
            traces = [t for t in traces if t.patient_id == job.patient_id]
    if job.fold is None:
        return traces
    keep = [i for i in range(len(traces)) if i % job.folds != job.fold]
    if isinstance(traces, (TraceDataset, TraceDatasetView)):
        return traces.subset(keep)
    return [traces[i] for i in keep]


def job_dataset(job: TrainingJob, traces: Sequence,
                mmap_root: Optional[str] = None,
                workers: Optional[int] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Build (or reopen) the training matrix of one job.

    With *mmap_root*, the matrix lives under
    ``<mmap_root>/<job.dataset_slug()>/`` and comes back memory-mapped;
    an existing finished directory is reused without re-extracting.
    """
    selected = select_job_traces(job, traces)
    mmap_dir = (os.path.join(mmap_root, job.dataset_slug())
                if mmap_root is not None else None)
    if job.needs_window:
        return build_window_dataset(selected, k=job.window,
                                    multiclass=job.multiclass,
                                    workers=workers, mmap_dir=mmap_dir)
    return build_point_dataset(selected, multiclass=job.multiclass,
                               workers=workers, mmap_dir=mmap_dir)


def train_job(job: TrainingJob, X: np.ndarray, y: np.ndarray
              ) -> TrainedMonitor:
    """Fit one job on an already-built dataset.

    The single place model construction happens — the serial loop, the
    forked workers and ad-hoc callers all come through here, which is what
    guarantees a job trains identically wherever it runs.
    """
    hyper = dict(job.hyperparams)
    n_classes = 3 if job.multiclass else 2
    if job.kind == "dt":
        model = DecisionTreeClassifier(**hyper).fit(X, y)
        monitor: SafetyMonitor = DTMonitor(model, multiclass=job.multiclass,
                                           bg_target=job.bg_target)
    elif job.kind == "mlp":
        model = MLPClassifier(n_classes=n_classes, seed=job.job_seed(),
                              **hyper).fit(X, y)
        monitor = MLPMonitor(model, multiclass=job.multiclass,
                             bg_target=job.bg_target)
    else:  # lstm
        model = LSTMClassifier(n_classes=n_classes, seed=job.job_seed(),
                               **hyper).fit(X, y)
        monitor = LSTMMonitor(model, k=job.window, multiclass=job.multiclass,
                              bg_target=job.bg_target)
    return TrainedMonitor(job=job, monitor=monitor, n_samples=len(X),
                          n_features=int(X.shape[-1]))


def run_training_jobs(jobs: Sequence[TrainingJob], traces: Sequence,
                      workers: Optional[int] = None,
                      mmap_root: Optional[str] = None,
                      chunks_per_worker: int = 1) -> List[TrainedMonitor]:
    """Train every job, fanned out over the forked-pool protocol.

    Parameters
    ----------
    jobs:
        The fits to run; results come back in job order.
    traces:
        The full campaign sequence every job selects its training data
        from (lazy :class:`~repro.simulation.store.TraceDataset` supported
        and preferred at scale).
    workers:
        Process count (None: ``REPRO_WORKERS`` env, or 1).  Datasets are
        materialised once in the parent before the pool forks, so workers
        inherit the matrices — memory-mapped pages when *mmap_root* is
        set — instead of being sent pickled copies; only the (small)
        trained monitors travel back.
    mmap_root:
        Directory for memory-mapped dataset materialisation; None keeps
        the matrices in (shared, copy-on-write) memory.  The backing
        store never changes a matrix element (see
        :func:`~repro.ml.datasets.build_point_dataset`), so trained
        monitors are identical with or without it; a finished directory
        is reused as-is on the next call.

    The result is element-wise identical — every weight, every split
    threshold — for every worker count, because each job's data selection
    and seed derive from the job alone (:meth:`TrainingJob.job_seed`).
    """
    jobs = list(jobs)
    if chunks_per_worker < 1:
        raise ValueError(
            f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
    if not jobs:
        return []
    workers = resolve_workers(workers)
    datasets: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}
    for job in jobs:
        key = job.dataset_key()
        if key not in datasets:
            datasets[key] = job_dataset(job, traces, mmap_root=mmap_root,
                                        workers=workers)

    def train_chunk(index_range) -> List[TrainedMonitor]:
        return [train_job(jobs[i], *datasets[jobs[i].dataset_key()])
                for i in index_range]

    results: List[TrainedMonitor] = []
    chunks = shard_indices(len(jobs), workers * chunks_per_worker)
    for chunk in fork_map_chunks(train_chunk, chunks, workers):
        results.extend(chunk)
    return results


def monitor_state(monitor: SafetyMonitor) -> List[np.ndarray]:
    """Canonical array flattening of a trained ML monitor.

    Two monitors are the *same trained model* iff their states are
    element-wise equal — decision trees compare node-by-node in preorder,
    the neural monitors compare scaler statistics plus every parameter
    array.  This is the equality the serial/parallel parity suite (and the
    CI training smoke) asserts.
    """
    model = monitor.model
    if isinstance(model, DecisionTreeClassifier):
        features, thresholds, counts = model.node_arrays()
        return [features, thresholds, counts,
                np.asarray(model.classes_, dtype=float)]
    state = [np.asarray(model.scaler.mean), np.asarray(model.scaler.std)]
    for layer in model.layers:
        state.extend(layer.params)
    return state


def job_grid(kinds: Sequence[str], *, folds: Optional[int] = None,
             fold_values: Sequence[Optional[int]] = (None,),
             patient_ids: Sequence[Optional[str]] = (None,),
             **common) -> List[TrainingJob]:
    """Cartesian job grid: every kind x fold x patient combination."""
    return [TrainingJob.make(kind, patient_id=pid, fold=fold, folds=folds,
                             **common)
            for pid in patient_ids for fold in fold_values for kind in kinds]
