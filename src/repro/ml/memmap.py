"""Streaming ``.npy`` writers and memory-mapped dataset directories.

The ML monitors train on feature matrices stacked over every cycle of every
campaign trace; at the paper's full scale (882 injections x 10 patients x
150 cycles) a single point dataset is ~10M rows and the window dataset is k
times that.  Materialising those in RAM per training job — and pickling
them into every worker — is the scaling wall this module removes:

- :class:`NpyStreamWriter` writes a standard ``.npy`` file row-block by
  row-block without knowing the row count up front.  The header is written
  once with the row count padded to a fixed width and patched in place on
  close, so the result is a byte-valid array any ``np.load`` can read —
  including with ``mmap_mode="r"``.
- :func:`open_memmap_array` reopens such a file as a read-only
  ``np.memmap``, turning shard loads into page faults: forked training
  workers inherit the mapping and *share* the physical pages instead of
  each holding (or being pickled) a private copy.
- :func:`read_meta` / :func:`write_meta` manage the ``meta.json`` sidecar
  that makes a dataset directory self-describing (and lets a rebuild
  detect that an existing directory answers a *different* dataset
  request).  Like the campaign store's manifest, the sidecar is written
  last and atomically: a directory without one is an interrupted build,
  never silently trusted.

The dataset-specific builders (:func:`repro.ml.datasets.build_point_dataset`
/ ``build_window_dataset`` with ``mmap_dir=``) sit on top of these
primitives.
"""

from __future__ import annotations

import json
import os
from typing import Mapping, Tuple

import numpy as np
from numpy.lib import format as npy_format

__all__ = ["MemmapDatasetError", "NpyStreamWriter", "open_memmap_array",
           "META_NAME", "meta_path", "read_meta", "write_meta"]

#: bump when the sidecar layout or array schema changes
MEMMAP_SCHEMA_VERSION = 1

META_NAME = "meta.json"

_MAGIC = b"\x93NUMPY\x01\x00"

#: fixed character width the row count is padded to inside the header dict,
#: so the placeholder and the final header are byte-for-byte the same size
#: (wide enough for any int64 count)
_COUNT_WIDTH = 21


class MemmapDatasetError(RuntimeError):
    """A memory-mapped dataset is missing, corrupted, or answers a
    different dataset request than the caller's."""


def meta_path(directory: str) -> str:
    return os.path.join(directory, META_NAME)


class NpyStreamWriter:
    """Append row blocks to a growing ``.npy`` file.

    The npy format stores the array shape inside its header, which normally
    forces writers to know the row count up front.  This writer reserves a
    fixed-width row-count field instead: the header is laid down immediately
    (so appends are plain sequential writes) and patched with the final
    count on :meth:`close`.  Only C-order appends along axis 0 are
    supported; every block must match the writer's ``row_shape``/``dtype``.

    Use as a context manager: on an exception the partial file is removed,
    so a crashed build can never masquerade as a complete array.
    """

    def __init__(self, path: str, row_shape: Tuple[int, ...],
                 dtype=np.float64):
        self.path = path
        self.row_shape = tuple(int(s) for s in row_shape)
        self.dtype = np.dtype(dtype)
        if self.dtype.hasobject:
            raise ValueError("object dtypes cannot be memory-mapped")
        self.n_rows = 0
        self._closed = False
        self._fh = open(path, "wb")
        self._fh.write(self._header_bytes(0))

    def _header_bytes(self, n_rows: int) -> bytes:
        descr = npy_format.dtype_to_descr(self.dtype)
        count = str(int(n_rows)).ljust(_COUNT_WIDTH)
        dims = "".join(f", {d}" for d in self.row_shape) or ","
        header = (f"{{'descr': {descr!r}, 'fortran_order': False, "
                  f"'shape': ({count}{dims}), }}").encode("latin1")
        # total header (magic + length word + dict + newline) padded to a
        # 64-byte multiple, as the npy spec recommends for mmap alignment
        pad = -(len(_MAGIC) + 2 + len(header) + 1) % 64
        header += b" " * pad + b"\n"
        return _MAGIC + len(header).to_bytes(2, "little") + header

    def append(self, block: np.ndarray) -> None:
        """Append ``block`` (shape ``(m, *row_shape)``) to the array."""
        if self._closed:
            raise MemmapDatasetError(f"writer for {self.path} is closed")
        block = np.asarray(block)
        if block.shape[1:] != self.row_shape:
            raise ValueError(
                f"block rows have shape {block.shape[1:]}, writer expects "
                f"{self.row_shape}")
        self._fh.write(np.ascontiguousarray(block, dtype=self.dtype).tobytes())
        self.n_rows += len(block)

    def abort(self) -> None:
        """Discard the write and remove the partial file."""
        if self._closed:
            return
        self._closed = True
        self._fh.close()
        if os.path.exists(self.path):
            os.remove(self.path)

    def close(self) -> None:
        """Patch the final row count into the header and finish the file."""
        if self._closed:
            return
        self._fh.flush()
        self._fh.seek(0)
        self._fh.write(self._header_bytes(self.n_rows))
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "NpyStreamWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def open_memmap_array(path: str) -> np.ndarray:
    """Reopen a ``.npy`` file as a read-only memory map.

    Corruption surfaces here, not as downstream garbage: a mangled header
    (bad magic, unparsable dict) and a truncated payload (header promises
    more rows than the file holds) both raise :class:`MemmapDatasetError`.
    """
    if not os.path.exists(path):
        raise MemmapDatasetError(f"missing dataset array {path}")
    try:
        return np.load(path, mmap_mode="r", allow_pickle=False)
    except (ValueError, OSError) as exc:
        raise MemmapDatasetError(
            f"corrupted dataset array {path}: {exc}") from exc


def read_meta(directory: str) -> Mapping:
    """Load and validate the ``meta.json`` sidecar of a dataset directory."""
    path = meta_path(directory)
    if not os.path.exists(path):
        raise MemmapDatasetError(
            f"no dataset sidecar at {path}; either this is not a dataset "
            "directory or a build was interrupted — remove it and rebuild")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise MemmapDatasetError(
            f"unreadable dataset sidecar at {path}: {exc}") from exc
    version = meta.get("schema_version")
    if version != MEMMAP_SCHEMA_VERSION:
        raise MemmapDatasetError(
            f"dataset at {directory} has schema version {version!r}; this "
            f"reader supports {MEMMAP_SCHEMA_VERSION}")
    return meta


def write_meta(directory: str, meta: Mapping) -> None:
    """Atomically write the sidecar that finalises a dataset directory."""
    doc = {"schema_version": MEMMAP_SCHEMA_VERSION}
    doc.update(meta)
    tmp = meta_path(directory) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
    os.replace(tmp, meta_path(directory))
