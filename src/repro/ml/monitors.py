"""ML baseline monitors: DT, MLP and LSTM wrapped as safety monitors.

Each monitor embeds a trained classifier and implements the same
:class:`~repro.core.monitor.SafetyMonitor` interface as the context-aware
monitor, so the evaluation harness treats them interchangeably.

Binary classifiers can only flag a command as unsafe; the hazard *type*
needed by the mitigation algorithm is then inferred from the glucose context
(below target -> H1, above -> H2).  The multi-class variants predict the
type directly (the Section VI-1 comparison).

Batched replay: the point monitors override
:meth:`~repro.core.monitor.SafetyMonitor.observe_batch` to classify whole
context columns at once — the DT through its vectorized flat-tree
``predict`` (exact comparisons, batch-size invariant), the MLP through
per-row ``predict`` calls (BLAS matmuls round differently per batch
shape, so the scalar call pattern is kept) with the context assembly and
hazard inference vectorized.  The LSTM is stateful over sliding windows
and keeps the base-class column-loop fallback.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Tuple

import numpy as np

from ..core.context import ContextVector
from ..core.monitor import MonitorVerdict, NO_ALERT, SafetyMonitor
from ..hazards import HazardType
from .datasets import build_point_dataset, build_window_dataset, context_features
from .nn import LSTMClassifier, MLPClassifier
from .tree import DecisionTreeClassifier

__all__ = ["DTMonitor", "MLPMonitor", "LSTMMonitor",
           "train_dt_monitor", "train_mlp_monitor", "train_lstm_monitor"]


def _infer_hazard(prediction: int, bg: float, bg_target: float,
                  multiclass: bool) -> HazardType:
    if multiclass:
        return HazardType(prediction)
    return HazardType.H1 if bg < bg_target else HazardType.H2


class _PointMonitor(SafetyMonitor):
    """Monitor over single-cycle features (DT and MLP)."""

    #: single-cycle classifiers carry no cross-cycle state, so the live
    #: lock-step engine may evaluate them per tick via observe_batch
    stateless = True

    def __init__(self, model, name: str, multiclass: bool = False,
                 bg_target: float = 120.0):
        self.model = model
        self.name = name
        self.multiclass = multiclass
        self.bg_target = bg_target

    def observe(self, ctx: ContextVector) -> MonitorVerdict:
        features = context_features(ctx).reshape(1, -1)
        prediction = int(self.model.predict(features)[0])
        if prediction == 0:
            return NO_ALERT
        hazard = _infer_hazard(prediction, ctx.bg, self.bg_target,
                               self.multiclass)
        return MonitorVerdict(alert=True, hazard=hazard,
                              triggered=(self.name.lower(),))

    def _predict_rows(self, features: np.ndarray) -> np.ndarray:
        """Per-row class predictions for an ``(n_rows, D)`` feature stack.

        Default: one ``predict`` call per row — the exact call pattern of
        :meth:`observe`, so any model is bit-identical to the scalar path
        by construction (a whole-matrix BLAS matmul is *not*: its
        rounding depends on the batch shape).  Models whose ``predict``
        is batch-size invariant override with a single call.  Rows are
        independent, so callers may stack any number of columns into one
        matrix without changing a single prediction.
        """
        out = np.empty(len(features), dtype=int)
        for i in range(len(features)):
            out[i] = int(self.model.predict(features[i:i + 1])[0])
        return out

    def observe_batch(self, batch) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`observe` over a context batch: every column's
        feature matrix stacked into one row-major call to
        :meth:`_predict_rows` (column b occupies row block b, the same
        per-row evaluations as a column loop in the same order — rows are
        independent, so wide live batches like the online service's
        ``(1, n_users)`` tick cost one call, not ``n_users`` Python
        iterations), hazard inference as array arithmetic."""
        n_steps, n_cols = batch.shape
        stacked = np.ascontiguousarray(
            np.moveaxis(batch.features, 2, 0)).reshape(n_steps * n_cols, -1)
        prediction = self._predict_rows(stacked).reshape(n_cols, n_steps).T
        alerts = prediction != 0
        h1, h2 = int(HazardType.H1), int(HazardType.H2)
        if self.multiclass:
            hazards = np.where(alerts, prediction, 0)
        else:
            hazards = np.where(
                alerts, np.where(batch.bg < self.bg_target, h1, h2), 0)
        return alerts, hazards


class DTMonitor(_PointMonitor):
    def __init__(self, model: DecisionTreeClassifier, multiclass: bool = False,
                 bg_target: float = 120.0):
        super().__init__(model, "DT", multiclass, bg_target)

    def _predict_rows(self, features: np.ndarray) -> np.ndarray:
        # the flat-tree predict is batch-size invariant (pure threshold
        # comparisons), so the whole column classifies in one call
        return self.model.predict(features).astype(int, copy=False)


class MLPMonitor(_PointMonitor):
    def __init__(self, model: MLPClassifier, multiclass: bool = False,
                 bg_target: float = 120.0):
        super().__init__(model, "MLP", multiclass, bg_target)

    def _predict_rows(self, features: np.ndarray) -> np.ndarray:
        # row-wise matmuls with the batch-invariant work hoisted out (see
        # MLPClassifier.predict_rows for why whole-matrix BLAS is unsafe)
        return self.model.predict_rows(features).astype(int, copy=False)


class LSTMMonitor(SafetyMonitor):
    """Monitor over sliding windows of the last ``k`` cycles."""

    def __init__(self, model: LSTMClassifier, k: int = 6,
                 multiclass: bool = False, bg_target: float = 120.0):
        if k < 1:
            raise ValueError(f"window k must be >= 1, got {k}")
        self.model = model
        self.k = k
        self.multiclass = multiclass
        self.bg_target = bg_target
        self.name = "LSTM"
        self._buffer: deque = deque(maxlen=k)

    def reset(self) -> None:
        self._buffer.clear()

    def observe(self, ctx: ContextVector) -> MonitorVerdict:
        self._buffer.append(context_features(ctx))
        if len(self._buffer) < self.k:
            return NO_ALERT  # not enough history yet
        window = np.stack(self._buffer)[None, :, :]
        prediction = int(self.model.predict(window)[0])
        if prediction == 0:
            return NO_ALERT
        hazard = _infer_hazard(prediction, ctx.bg, self.bg_target,
                               self.multiclass)
        return MonitorVerdict(alert=True, hazard=hazard, triggered=("lstm",))


# ----------------------------------------------------------------------
# training helpers
# ----------------------------------------------------------------------

def train_dt_monitor(traces: Iterable, multiclass: bool = False,
                     bg_target: float = 120.0,
                     workers: Optional[int] = None,
                     mmap_dir: Optional[str] = None,
                     **tree_kwargs) -> DTMonitor:
    """Fit a decision tree on the campaign traces (Eq. 7 dataset).

    ``workers`` fans dataset extraction out over the forked pool and
    ``mmap_dir`` materialises the matrices memory-mapped on disk (see
    :func:`~repro.ml.datasets.build_point_dataset`); both leave the fitted
    model element-wise unchanged.  To train *many* monitors in parallel,
    use :func:`repro.ml.training.run_training_jobs` instead.
    """
    X, y = build_point_dataset(traces, multiclass=multiclass,
                               workers=workers, mmap_dir=mmap_dir)
    model = DecisionTreeClassifier(**tree_kwargs).fit(X, y)
    return DTMonitor(model, multiclass=multiclass, bg_target=bg_target)


def train_mlp_monitor(traces: Iterable, multiclass: bool = False,
                      bg_target: float = 120.0, seed: Optional[int] = 0,
                      workers: Optional[int] = None,
                      mmap_dir: Optional[str] = None,
                      **mlp_kwargs) -> MLPMonitor:
    """Fit the paper's 256-128 MLP (``workers``/``mmap_dir`` as for
    :func:`train_dt_monitor`)."""
    X, y = build_point_dataset(traces, multiclass=multiclass,
                               workers=workers, mmap_dir=mmap_dir)
    n_classes = 3 if multiclass else 2
    model = MLPClassifier(n_classes=n_classes, seed=seed, **mlp_kwargs).fit(X, y)
    return MLPMonitor(model, multiclass=multiclass, bg_target=bg_target)


def train_lstm_monitor(traces: Iterable, k: int = 6, multiclass: bool = False,
                       bg_target: float = 120.0, seed: Optional[int] = 0,
                       workers: Optional[int] = None,
                       mmap_dir: Optional[str] = None,
                       **lstm_kwargs) -> LSTMMonitor:
    """Fit the paper's stacked LSTM(128, 64) on k-cycle windows
    (``workers``/``mmap_dir`` as for :func:`train_dt_monitor`)."""
    X, y = build_window_dataset(traces, k=k, multiclass=multiclass,
                                workers=workers, mmap_dir=mmap_dir)
    n_classes = 3 if multiclass else 2
    model = LSTMClassifier(n_classes=n_classes, seed=seed, **lstm_kwargs).fit(X, y)
    return LSTMMonitor(model, k=k, multiclass=multiclass, bg_target=bg_target)
