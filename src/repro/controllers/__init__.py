"""APS controllers: oref0-style OpenAPS port, Basal-Bolus protocol, PID.

All controllers share the :class:`~repro.controllers.base.Controller`
interface and classify their raw commands into the paper's four control
actions u1..u4 (:class:`~repro.controllers.base.ControlAction`).
"""

from .base import ControlAction, Controller, ControllerDecision, classify_action
from .basal_bolus import BasalBolusController
from .iob import InsulinActivityCurve, IOBCalculator
from .openaps import OpenAPSController
from .pid import PIDController

__all__ = [
    "ControlAction",
    "Controller",
    "ControllerDecision",
    "classify_action",
    "BasalBolusController",
    "InsulinActivityCurve",
    "IOBCalculator",
    "OpenAPSController",
    "PIDController",
]
