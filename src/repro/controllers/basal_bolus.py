"""Basal-Bolus controller — the paper's second platform controller.

Implements the hospital basal-bolus insulin protocol the paper pairs with the
UVA-Padova T1DS2013 simulator: a fixed scheduled basal rate plus periodic
correction boluses computed with the patient's correction factor
(``(BG - target) / ISF``), with a refractory period between corrections, a
reduced basal below a conservative threshold and a low-glucose suspend.
"""

from __future__ import annotations

from typing import Optional

from .base import Controller, ControllerDecision
from .iob import InsulinActivityCurve, IOBCalculator

__all__ = ["BasalBolusController"]


class BasalBolusController(Controller):
    """Scheduled basal + correction boluses.

    Parameters
    ----------
    basal:
        Scheduled basal rate (U/h), typically the patient's steady-state
        basal.
    isf:
        Correction (sensitivity) factor, mg/dL per U.
    target:
        Correction target (mg/dL).
    correction_threshold:
        BG above which a correction bolus is considered.
    correction_interval:
        Minimum minutes between corrections (refractory period).
    reduce_threshold:
        BG below which the basal is halved (gentle insulin decrease).
    suspend_threshold:
        BG below which delivery stops entirely.
    max_bolus:
        Cap on a single correction bolus (U).
    """

    def __init__(self, basal: float, isf: float = 50.0, target: float = 120.0,
                 correction_threshold: float = 150.0,
                 correction_interval: float = 120.0,
                 reduce_threshold: float = 110.0,
                 suspend_threshold: float = 80.0,
                 max_bolus: float = 3.0, dia: float = 300.0, peak: float = 75.0):
        super().__init__("basal-bolus", basal)
        if isf <= 0:
            raise ValueError(f"ISF must be positive, got {isf}")
        if not suspend_threshold < reduce_threshold < correction_threshold:
            raise ValueError(
                "thresholds must satisfy suspend < reduce < correction, got "
                f"{suspend_threshold}, {reduce_threshold}, {correction_threshold}")
        self.isf = float(isf)
        self.target = float(target)
        self.correction_threshold = float(correction_threshold)
        self.correction_interval = float(correction_interval)
        self.reduce_threshold = float(reduce_threshold)
        self.suspend_threshold = float(suspend_threshold)
        self.max_bolus = float(max_bolus)
        self._iob_calc = IOBCalculator(InsulinActivityCurve(dia=dia, peak=peak),
                                       basal_offset=basal)
        self._last_correction: Optional[float] = None
        self._last_iob = 0.0
        self._cycle = 5.0

    def decide(self, glucose: float, t: float) -> ControllerDecision:
        if glucose <= 0:
            raise ValueError(f"glucose reading must be positive, got {glucose}")
        iob = self._internal_iob(self._iob_calc.iob(t))
        iob_rate = (iob - self._last_iob) / self._cycle if t > 0 else 0.0

        rate = self.scheduled_basal
        bolus = 0.0
        if glucose < self.suspend_threshold:
            rate = 0.0
        elif glucose < self.reduce_threshold:
            rate = self.scheduled_basal / 2.0
        elif glucose > self.correction_threshold and self._correction_due(t):
            # correct down to target, discounting insulin already on board
            bolus = (glucose - self.target) / self.isf - iob
            bolus = min(max(bolus, 0.0), self.max_bolus)
            if bolus > 0:
                self._last_correction = t

        decision = ControllerDecision(
            basal=rate,
            bolus=bolus,
            action=self.classify(rate, bolus),
            glucose=glucose,
            iob=iob,
            iob_rate=iob_rate,
            info={"correction_due": float(self._correction_due(t))},
        )
        self._last_iob = iob
        return decision

    def _correction_due(self, t: float) -> bool:
        return (self._last_correction is None
                or t - self._last_correction >= self.correction_interval)

    def notify_delivery(self, basal_u_h: float, bolus_u: float, t: float,
                        duration: float) -> None:
        self._cycle = duration
        self._iob_calc.record(basal_u_h, bolus_u, t, duration)

    def reset(self) -> None:
        self._iob_calc.reset()
        self._last_correction = None
        self._last_iob = 0.0
