"""Insulin-on-board (IOB) bookkeeping with exponential activity curves.

OpenAPS (oref0) models subcutaneous insulin decay with an exponential
activity curve parameterised by the duration of insulin action (DIA) and the
activity peak time.  For a unit bolus at time 0 the activity (U/min) and
remaining IOB fraction are::

    tau = tp * (1 - tp/td) / (1 - 2*tp/td)
    a   = 2 * tau / td
    S   = 1 / (1 - a + (1 + a) * exp(-td/tau))

    activity(t) = (S / tau^2) * t * (1 - t/td) * exp(-t/tau)
    iob(t)      = 1 - S * (1 - a) *
                  ((t^2 / (tau*td*(1-a)) - t/tau - 1) * exp(-t/tau) + 1)

with ``td`` the DIA and ``tp`` the peak time (minutes).  These are the same
curves oref0 uses; the controller and the context-aware monitor both consume
the resulting IOB and its rate of change (the paper's ``IOB`` and ``IOB'``
context variables, Section IV-B).

Deliveries are recorded as (time, units) impulses; a constant basal over a
control cycle is recorded as one impulse at the cycle midpoint, which is
accurate to first order for 5-minute cycles.

The curve constants ``(tau, a, S)`` are computed once per curve and cached —
they used to be recomputed on *every* activity/IOB evaluation, which
dominated the closed loop's profile.  For batch evaluation the curve offers
vectorized ``activity_at``/``iob_fraction_at`` and the calculator a
vectorized :meth:`IOBCalculator.iob_at`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import List, Tuple

import numpy as np

__all__ = ["InsulinActivityCurve", "IOBCalculator"]


@dataclass(frozen=True)
class InsulinActivityCurve:
    """Exponential insulin activity curve (oref0 style).

    Parameters
    ----------
    dia:
        Duration of insulin action in minutes (default 5 h).
    peak:
        Activity peak time in minutes (default 75, rapid-acting insulin).
    """

    dia: float = 300.0
    peak: float = 75.0

    def __post_init__(self):
        if self.dia <= 0:
            raise ValueError(f"DIA must be positive, got {self.dia}")
        if not 0 < self.peak < self.dia / 2.0:
            raise ValueError(
                f"peak must be in (0, DIA/2) = (0, {self.dia / 2}), got {self.peak}")

    @cached_property
    def _constants(self) -> Tuple[float, float, float]:
        """``(tau, a, S)`` — computed once per curve instance and cached
        (``cached_property`` writes through the instance ``__dict__``, which
        is legal on a frozen dataclass)."""
        td, tp = self.dia, self.peak
        tau = tp * (1.0 - tp / td) / (1.0 - 2.0 * tp / td)
        a = 2.0 * tau / td
        s = 1.0 / (1.0 - a + (1.0 + a) * math.exp(-td / tau))
        return tau, a, s

    def activity(self, minutes: float) -> float:
        """Insulin activity (fraction/min) *minutes* after a unit bolus."""
        if minutes <= 0 or minutes >= self.dia:
            return 0.0
        tau, _, s = self._constants
        return (s / tau ** 2) * minutes * (1.0 - minutes / self.dia) * math.exp(-minutes / tau)

    def iob_fraction(self, minutes: float) -> float:
        """Fraction of a unit bolus still on board after *minutes*."""
        if minutes <= 0:
            return 1.0
        if minutes >= self.dia:
            return 0.0
        tau, a, s = self._constants
        td = self.dia
        frac = 1.0 - s * (1.0 - a) * (
            (minutes ** 2 / (tau * td * (1.0 - a)) - minutes / tau - 1.0)
            * math.exp(-minutes / tau) + 1.0)
        return min(max(frac, 0.0), 1.0)

    def activity_at(self, minutes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`activity` over an array of elapsed minutes.

        Uses ``np.exp`` internally, so individual elements can differ from
        the scalar method in the final ulp of the exponential; structurally
        the curves are identical.
        """
        minutes = np.asarray(minutes, dtype=float)
        tau, _, s = self._constants
        with np.errstate(over="ignore"):
            act = (s / tau ** 2) * minutes * (1.0 - minutes / self.dia) \
                * np.exp(-minutes / tau)
        return np.where((minutes <= 0) | (minutes >= self.dia), 0.0, act)

    def iob_fraction_at(self, minutes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`iob_fraction` (same ulp caveat as
        :meth:`activity_at`)."""
        minutes = np.asarray(minutes, dtype=float)
        tau, a, s = self._constants
        td = self.dia
        with np.errstate(over="ignore"):
            frac = 1.0 - s * (1.0 - a) * (
                (minutes ** 2 / (tau * td * (1.0 - a)) - minutes / tau - 1.0)
                * np.exp(-minutes / tau) + 1.0)
        frac = np.minimum(np.maximum(frac, 0.0), 1.0)
        return np.where(minutes <= 0, 1.0,
                        np.where(minutes >= td, 0.0, frac))


class IOBCalculator:
    """Tracks insulin deliveries and evaluates IOB / activity over time.

    Parameters
    ----------
    curve:
        The decay curve to use.
    basal_offset:
        Scheduled basal rate (U/h) subtracted from deliveries when computing
        *net* IOB, oref0-style.  The default 0 yields gross IOB, which is
        what the Basal-Bolus platform uses; either convention works for the
        monitors because thresholds are learned per patient.
    """

    def __init__(self, curve: InsulinActivityCurve | None = None,
                 basal_offset: float = 0.0):
        if basal_offset < 0:
            raise ValueError(f"basal_offset must be >= 0, got {basal_offset}")
        self.curve = curve or InsulinActivityCurve()
        self.basal_offset = float(basal_offset)
        self._deliveries: List[Tuple[float, float]] = []  # (time, units)

    def record(self, basal_u_h: float, bolus_u: float, t: float,
               duration: float) -> None:
        """Record delivery over ``[t, t+duration)`` minutes."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        net_rate = basal_u_h - self.basal_offset
        units = net_rate * duration / 60.0 + bolus_u
        if units != 0.0:
            self._deliveries.append((t + duration / 2.0, units))
        self._prune(t)

    def _prune(self, now: float) -> None:
        horizon = now - self.curve.dia
        self._deliveries = [(tm, u) for tm, u in self._deliveries if tm >= horizon]

    def iob(self, t: float) -> float:
        """Insulin on board (U) at time *t* minutes."""
        return sum(u * self.curve.iob_fraction(t - tm)
                   for tm, u in self._deliveries if tm <= t)

    def iob_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized IOB over an array of query *times* (minutes).

        One pass per recorded delivery, accumulated in recording order, so
        ``iob_at(ts)[i]`` agrees with ``iob(ts[i])`` for every element (up
        to the final ulp of the vectorized exponential).
        """
        times = np.asarray(times, dtype=float)
        total = np.zeros_like(times)
        for tm, u in self._deliveries:
            frac = self.curve.iob_fraction_at(times - tm)
            total += np.where(times >= tm, u * frac, 0.0)
        return total

    def activity(self, t: float) -> float:
        """Total insulin activity (U/min) at time *t*."""
        return sum(u * self.curve.activity(t - tm)
                   for tm, u in self._deliveries if tm <= t)

    def iob_rate(self, t: float) -> float:
        """dIOB/dt (U/min) at *t*: decay only, i.e. minus the activity."""
        return -self.activity(t)

    def reset(self) -> None:
        self._deliveries = []
