"""PID controller — an extension platform beyond the paper's two controllers.

Classic proportional-integral-derivative control of glucose around a target,
mapped onto the same basal-rate command interface.  Not used in the paper's
tables; included to exercise the claim (Section IV-B) that the generated
UCAS/monitor logic transfers across controllers sharing the same functional
specification.
"""

from __future__ import annotations

from typing import Optional

from .base import Controller, ControllerDecision
from .iob import InsulinActivityCurve, IOBCalculator

__all__ = ["PIDController"]


class PIDController(Controller):
    """PID basal-rate controller.

    Parameters
    ----------
    basal:
        Scheduled basal (U/h) — the PID output is a correction around it.
    kp, ki, kd:
        PID gains in U/h per mg/dL (and per minute for ki/kd).
    target:
        Glucose set point (mg/dL).
    max_basal:
        Output cap (U/h).
    suspend_threshold:
        Low-glucose suspend (mg/dL).
    """

    def __init__(self, basal: float, kp: float = 0.02, ki: float = 5e-5,
                 kd: float = 0.2, target: float = 120.0,
                 max_basal: Optional[float] = None,
                 suspend_threshold: float = 70.0,
                 integral_limit: float = 2000.0):
        super().__init__("pid", basal)
        if target <= 0:
            raise ValueError(f"target must be positive, got {target}")
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self.target = float(target)
        self.max_basal = float(max_basal) if max_basal is not None else 4.0 * basal
        self.suspend_threshold = float(suspend_threshold)
        self.integral_limit = float(integral_limit)
        self._iob_calc = IOBCalculator(InsulinActivityCurve())
        self._integral = 0.0
        self._last_glucose: Optional[float] = None
        self._last_iob = 0.0
        self._cycle = 5.0

    def decide(self, glucose: float, t: float) -> ControllerDecision:
        if glucose <= 0:
            raise ValueError(f"glucose reading must be positive, got {glucose}")
        iob = self._internal_iob(self._iob_calc.iob(t))
        iob_rate = (iob - self._last_iob) / self._cycle if t > 0 else 0.0

        error = glucose - self.target
        derivative = 0.0
        if self._last_glucose is not None:
            derivative = (glucose - self._last_glucose) / self._cycle
        self._integral += error * self._cycle
        self._integral = min(max(self._integral, -self.integral_limit),
                             self.integral_limit)

        rate = (self.scheduled_basal + self.kp * error
                + self.ki * self._integral + self.kd * derivative)
        if glucose < self.suspend_threshold:
            rate = 0.0
        rate = min(max(rate, 0.0), self.max_basal)

        decision = ControllerDecision(
            basal=rate,
            bolus=0.0,
            action=self.classify(rate),
            glucose=glucose,
            iob=iob,
            iob_rate=iob_rate,
            info={"error": error, "integral": self._integral,
                  "derivative": derivative},
        )
        self._last_glucose = glucose
        self._last_iob = iob
        return decision

    def notify_delivery(self, basal_u_h: float, bolus_u: float, t: float,
                        duration: float) -> None:
        self._cycle = duration
        self._iob_calc.record(basal_u_h, bolus_u, t, duration)

    def reset(self) -> None:
        self._iob_calc.reset()
        self._integral = 0.0
        self._last_glucose = None
        self._last_iob = 0.0
