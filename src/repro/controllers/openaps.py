"""Python port of the OpenAPS (oref0) ``determine-basal`` core logic.

The paper's primary platform runs the OpenAPS reference-design control loop:
every 5 minutes the controller projects an *eventual* blood glucose from the
current reading, the insulin on board, the insulin activity and the recent
deviation between observed and insulin-explained BG change, then sets a
temporary basal rate to steer the eventual BG to target.

This port keeps the decision structure of ``oref0/lib/determine-basal``:

- ``bgi``: expected BG change this cycle from insulin activity alone,
  ``-activity * isf * 5`` (mg/dL per 5 min);
- ``deviation``: 30-minute extrapolation of the difference between the
  observed delta and ``bgi``;
- ``eventualBG = bg - iob * isf + deviation``;
- low-glucose suspend below a hard threshold;
- low-temp when eventual BG is below target (down to zero),
  high-temp when above, with ``max_basal``/``max_iob`` safety caps.

Profile-management, autosens and CGM-cleaning plumbing of the JavaScript
implementation are out of scope (DESIGN.md §3).
"""

from __future__ import annotations

from typing import Optional

from .base import Controller, ControllerDecision
from .iob import InsulinActivityCurve, IOBCalculator

__all__ = ["OpenAPSController"]


class OpenAPSController(Controller):
    """oref0-style temp-basal controller.

    Parameters
    ----------
    basal:
        Scheduled (profile) basal rate in U/h.
    isf:
        Insulin sensitivity factor, mg/dL per U.
    target:
        BG target in mg/dL (the paper's ``BGT``).
    max_basal:
        Safety cap on the temp-basal rate (U/h); oref0 defaults to a small
        multiple of the scheduled basal.
    max_iob:
        Cap on *net* IOB (insulin on board beyond the scheduled basal, the
        oref0 convention) in units; no high-temp above it.
    suspend_threshold:
        Low-glucose suspend threshold in mg/dL.
    dia, peak:
        Insulin activity curve parameters (minutes).
    """

    def __init__(self, basal: float, isf: float = 50.0, target: float = 120.0,
                 max_basal: Optional[float] = None, max_iob: float = 10.0,
                 suspend_threshold: float = 70.0, dia: float = 300.0,
                 peak: float = 75.0):
        super().__init__("openaps", basal)
        if isf <= 0:
            raise ValueError(f"ISF must be positive, got {isf}")
        if target <= 0:
            raise ValueError(f"target must be positive, got {target}")
        self.isf = float(isf)
        self.target = float(target)
        self.max_basal = float(max_basal) if max_basal is not None else 4.0 * basal
        self.max_iob = float(max_iob)
        self.suspend_threshold = float(suspend_threshold)
        self._iob_calc = IOBCalculator(InsulinActivityCurve(dia=dia, peak=peak),
                                       basal_offset=basal)
        self._last_glucose: Optional[float] = None
        self._last_iob = 0.0
        self._cycle = 5.0  # minutes, set from notify_delivery

    # ------------------------------------------------------------------
    # control law
    # ------------------------------------------------------------------
    def decide(self, glucose: float, t: float) -> ControllerDecision:
        if glucose <= 0:
            raise ValueError(f"glucose reading must be positive, got {glucose}")
        iob = self._internal_iob(self._iob_calc.iob(t))
        activity = self._iob_calc.activity(t)
        iob_rate = (iob - self._last_iob) / self._cycle if t > 0 else 0.0

        delta = 0.0 if self._last_glucose is None else glucose - self._last_glucose
        bgi = -activity * self.isf * self._cycle
        deviation = (30.0 / self._cycle) * (delta - bgi)
        eventual_bg = glucose - iob * self.isf + deviation
        naive_eventual = glucose - iob * self.isf

        rate = self._temp_basal(glucose, eventual_bg, naive_eventual, iob)

        decision = ControllerDecision(
            basal=rate,
            bolus=0.0,
            action=self.classify(rate),
            glucose=glucose,
            iob=iob,
            iob_rate=iob_rate,
            info={
                "eventual_bg": eventual_bg,
                "naive_eventual_bg": naive_eventual,
                "deviation": deviation,
                "bgi": bgi,
                "activity": activity,
                "delta": delta,
            },
        )
        self._last_glucose = glucose
        self._last_iob = iob
        return decision

    def _temp_basal(self, glucose: float, eventual_bg: float,
                    naive_eventual: float, iob: float) -> float:
        """Core determine-basal rate selection."""
        # low-glucose suspend: hard zero temp
        if glucose < self.suspend_threshold:
            return 0.0
        if eventual_bg < self.target:
            # low temp: remove the projected surplus over the next hour —
            # cutting insulin is safe, so the low side reacts at full gain
            insulin_req = (eventual_bg - self.target) / self.isf  # negative units
            rate = self.scheduled_basal + insulin_req
            # if both projections are very low, stop outright
            if naive_eventual < self.suspend_threshold:
                return 0.0
            return max(rate, 0.0)
        # eventual BG at/above target: spread the correction over two hours
        # (half gain) to stay stable against the body's insulin-action lag
        insulin_req = (eventual_bg - self.target) / self.isf  # positive units
        if iob + insulin_req > self.max_iob:
            insulin_req = max(self.max_iob - iob, 0.0)
        rate = self.scheduled_basal + insulin_req * (60.0 / 120.0)
        return min(max(rate, 0.0), self.max_basal)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def notify_delivery(self, basal_u_h: float, bolus_u: float, t: float,
                        duration: float) -> None:
        self._cycle = duration
        self._iob_calc.record(basal_u_h, bolus_u, t, duration)

    def reset(self) -> None:
        self._iob_calc.reset()
        self._last_glucose = None
        self._last_iob = 0.0
