"""Controller interface and the paper's four-way control-action taxonomy.

The safety-context framework classifies every controller output into one of
four discrete control actions (Table I of the paper)::

    u1 = decrease_insulin    u2 = increase_insulin
    u3 = stop_insulin        u4 = keep_insulin

relative to the patient's scheduled basal rate.  Controllers return a
:class:`ControllerDecision` carrying both the raw command (basal rate +
bolus) and bookkeeping values (IOB, its rate of change) that monitors consume
as context channels.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = ["ControlAction", "ControllerDecision", "Controller", "classify_action"]

#: rate difference (U/h) below which a command counts as "keep"
ACTION_TOLERANCE = 0.01


class ControlAction(enum.IntEnum):
    """The paper's discrete control actions u1..u4."""

    DECREASE = 1   # u1: less insulin than scheduled basal
    INCREASE = 2   # u2: more insulin than scheduled basal
    STOP = 3       # u3: zero insulin
    KEEP = 4       # u4: scheduled basal

    @property
    def channel(self) -> str:
        """Trace channel name (``u1`` .. ``u4``)."""
        return f"u{int(self)}"

    @classmethod
    def channels(cls):
        """All four channel names, in index order."""
        return tuple(a.channel for a in cls)


def classify_action(rate_u_h: float, bolus_u: float, reference_u_h: float,
                    tolerance: float = ACTION_TOLERANCE) -> ControlAction:
    """Classify a raw command against the scheduled basal *reference*.

    A bolus always counts as increasing insulin; a zero rate without bolus is
    a stop; otherwise the rate is compared to the reference basal.
    """
    if bolus_u > 0:
        return ControlAction.INCREASE
    if rate_u_h <= tolerance:
        return ControlAction.STOP
    if rate_u_h < reference_u_h - tolerance:
        return ControlAction.DECREASE
    if rate_u_h > reference_u_h + tolerance:
        return ControlAction.INCREASE
    return ControlAction.KEEP


@dataclass
class ControllerDecision:
    """One control-cycle output of an APS controller.

    Attributes
    ----------
    basal:
        Commanded basal rate (U/h) for the next cycle.
    bolus:
        Commanded bolus (U) for this cycle.
    action:
        Discrete classification of the command (u1..u4).
    glucose:
        The glucose reading the decision was based on (mg/dL) — possibly
        corrupted by fault injection.
    iob:
        Controller's insulin-on-board estimate (U) at decision time.
    iob_rate:
        Estimated dIOB/dt (U/min).
    info:
        Free-form diagnostic values (controller-specific).
    """

    basal: float
    bolus: float
    action: ControlAction
    glucose: float
    iob: float
    iob_rate: float
    info: Dict[str, float] = field(default_factory=dict)


class Controller(abc.ABC):
    """Abstract APS controller operating on CGM readings.

    The closed loop calls :meth:`decide` once per control cycle with the CGM
    reading; the controller updates its internal bookkeeping (delivery
    history, IOB) via :meth:`notify_delivery` after the pump executes the
    (possibly monitor-corrected) command.
    """

    def __init__(self, name: str, scheduled_basal: float):
        if scheduled_basal < 0:
            raise ValueError(f"scheduled basal must be >= 0, got {scheduled_basal}")
        self.name = name
        self.scheduled_basal = float(scheduled_basal)
        #: fault-injection hook on the controller's internal IOB estimate
        #: (set by the simulation loop; None in normal operation)
        self.iob_tamper: "Optional[Callable[[float], float]]" = None

    def _internal_iob(self, iob: float) -> float:
        """The controller's IOB estimate, possibly corrupted by injected
        faults on internal state (Section IV-C1 threat model)."""
        return self.iob_tamper(iob) if self.iob_tamper is not None else iob

    @abc.abstractmethod
    def decide(self, glucose: float, t: float) -> ControllerDecision:
        """Compute the command for the cycle starting at time *t* minutes."""

    @abc.abstractmethod
    def notify_delivery(self, basal_u_h: float, bolus_u: float, t: float,
                        duration: float) -> None:
        """Record what the pump actually delivered over ``[t, t+duration)``."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear history for a fresh simulation."""

    def classify(self, rate_u_h: float, bolus_u: float = 0.0) -> ControlAction:
        return classify_action(rate_u_h, bolus_u, self.scheduled_basal)
