"""The APS Safety Context Specification of Table I — all 12 STL rules.

Each rule forbids (or, for rule 10, mandates) one control action in one
region of the ``(BG, BG', IOB, IOB')`` context space, with a learnable
threshold ``beta_i`` on IOB (rules 1-9, 11, 12) or BG (rule 10):

====  =============================================================  ======
rule  context  =>  consequence                                       hazard
====  =============================================================  ======
 1    BG>BGT & BG'>0 & IOB'<0 & IOB<b1   => !u1 (decrease)            H2
 2    BG>BGT & BG'>0 & IOB'=0 & IOB<b2   => !u1                       H2
 3    BG>BGT & BG'<0 & IOB'>0 & IOB<b3   => !u1                       H2
 4    BG>BGT & BG'<0 & IOB'<0 & IOB<b4   => !u1                       H2
 5    BG>BGT & BG'<0 & IOB'=0 & IOB<b5   => !u1                       H2
 6    BG<BGT & BG'<0 & IOB'>0 & IOB>b6   => !u2 (increase)            H1
 7    BG<BGT & BG'<0 & IOB'<0 & IOB>b7   => !u2                       H1
 8    BG<BGT & BG'<0 & IOB'=0 & IOB>b8   => !u2                       H1
 9    BG>BGT & IOB<b9                    => !u3 (stop)                H2
10    BG<b21                             =>  u3                       H1
11    BG>BGT & BG'>0 & IOB'<=0 & IOB<b10 => !u4 (keep)                H2
12    BG<BGT & BG'<0 & IOB'>=0 & IOB>b11 => !u4                       H1
====  =============================================================  ======

Rules are evaluated two ways, guaranteed equivalent by tests:

- :meth:`APSRule.violated` — fast pointwise check on a
  :class:`~repro.core.context.ContextVector` (the runtime monitor path);
- :meth:`APSRule.formula` / the :class:`~repro.core.scs.UCASEntry` — full
  STL objects for offline checking and threshold learning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..controllers import ControlAction
from ..hazards import HazardType
from ..stl import And, Formula, Param, Predicate
from .context import ContextVector
from .scs import SafetyContextSpec, UCASEntry

__all__ = ["APSRule", "aps_rules", "aps_scs", "default_thresholds",
           "rate_mask", "BG_TARGET", "IOB_RATE_EPS"]

#: the paper's BGT (BG target value) in mg/dL
BG_TARGET = 120.0

#: |IOB'| below this counts as "IOB' = 0" (U/min)
IOB_RATE_EPS = 1e-3

#: CAWOT defaults: thresholds that do not constrain IOB (rules fire on
#: context alone), and the clinical 70 mg/dL hypo threshold for rule 10.
DEFAULT_IOB_UPPER = 6.0   # for "IOB < beta" rules: any IOB below max-IOB
DEFAULT_IOB_LOWER = 0.0   # for "IOB > beta" rules: any positive IOB
DEFAULT_BG_LOW = 70.0     # rule 10


@dataclass(frozen=True)
class APSRule:
    """One Table I rule with its learnable-threshold metadata.

    Attributes
    ----------
    index:
        Table I row number (1-12).
    param:
        Name of the learnable threshold (``beta1`` .. ``beta11``, ``beta21``).
    mu_channel:
        Which context variable the threshold bounds (``IOB`` or ``BG``).
    direction:
        ``"lt"`` when the rule context requires ``mu < beta`` (learning
        pushes beta just above hazardous samples), ``"gt"`` for ``mu > beta``.
    action:
        The control action the rule constrains.
    hazard:
        Hazard predicted when the rule is violated.
    required:
        True when the action is mandated rather than forbidden (rule 10).
    bg_side:
        ``"above"``/``"below"`` BGT, or None (rule 10 uses the threshold).
    bg_rate / iob_rate:
        Sign constraints: ``"pos"``, ``"neg"``, ``"zero"``, ``"nonpos"``,
        ``"nonneg"`` or None.
    default:
        CAWOT default threshold.
    """

    index: int
    param: str
    mu_channel: str
    direction: str
    action: ControlAction
    hazard: HazardType
    required: bool
    bg_side: Optional[str]
    bg_rate: Optional[str]
    iob_rate: Optional[str]
    default: float

    # ------------------------------------------------------------------
    # fast pointwise evaluation (runtime monitor path)
    # ------------------------------------------------------------------
    def context_holds(self, ctx: ContextVector, threshold: float,
                      bg_target: float = BG_TARGET) -> bool:
        """Does ``rho(mu(x))`` (including the threshold predicate) hold?"""
        if self.bg_side == "above" and not ctx.bg > bg_target:
            return False
        if self.bg_side == "below" and not ctx.bg < bg_target:
            return False
        if not _rate_ok(ctx.bg_rate, self.bg_rate, 0.0):
            return False
        if not _rate_ok(ctx.iob_rate, self.iob_rate, IOB_RATE_EPS):
            return False
        mu = ctx.iob if self.mu_channel == "IOB" else ctx.bg
        if self.direction == "lt":
            return mu < threshold
        return mu > threshold

    def violated(self, ctx: ContextVector, threshold: float,
                 bg_target: float = BG_TARGET) -> bool:
        """Rule violation at this cycle: context holds and the action is
        forbidden (or a required action was not taken)."""
        if not self.context_holds(ctx, threshold, bg_target):
            return False
        if self.required:
            return ctx.action != self.action
        return ctx.action == self.action

    def violated_mask(self, bg: np.ndarray, bg_rate: np.ndarray,
                      iob: np.ndarray, iob_rate: np.ndarray,
                      action: np.ndarray, threshold: float,
                      bg_target: float = BG_TARGET) -> np.ndarray:
        """Vectorized :meth:`violated` over aligned context arrays.

        All inputs share one shape (*action* holds the integer
        :class:`~repro.controllers.ControlAction` codes); the returned
        boolean mask is element-wise identical to calling
        :meth:`violated` per entry — the predicates are pure comparisons,
        so there is no rounding to diverge.
        """
        mask = np.ones(np.shape(bg), dtype=bool)
        if self.bg_side == "above":
            mask &= bg > bg_target
        elif self.bg_side == "below":
            mask &= bg < bg_target
        mask &= rate_mask(bg_rate, self.bg_rate, 0.0)
        mask &= rate_mask(iob_rate, self.iob_rate, IOB_RATE_EPS)
        mu = iob if self.mu_channel == "IOB" else bg
        mask &= (mu < threshold) if self.direction == "lt" \
            else (mu > threshold)
        if self.required:
            mask &= action != int(self.action)
        else:
            mask &= action == int(self.action)
        return mask

    # ------------------------------------------------------------------
    # STL view
    # ------------------------------------------------------------------
    def context_formula(self, bg_target: float = BG_TARGET) -> Formula:
        """The rule context as an STL conjunction with a Param threshold."""
        parts = []
        if self.bg_side == "above":
            parts.append(Predicate("BG", ">", bg_target))
        elif self.bg_side == "below":
            parts.append(Predicate("BG", "<", bg_target))
        parts.extend(_rate_predicates("BG'", self.bg_rate, 0.0))
        parts.extend(_rate_predicates("IOB'", self.iob_rate, IOB_RATE_EPS))
        op = "<" if self.direction == "lt" else ">"
        parts.append(Predicate(self.mu_channel, op, Param(self.param, self.default)))
        return parts[0] if len(parts) == 1 else And(parts)

    def ucas_entry(self, bg_target: float = BG_TARGET) -> UCASEntry:
        return UCASEntry(name=f"rule{self.index}",
                         context=self.context_formula(bg_target),
                         action=self.action, hazard=self.hazard,
                         required=self.required)

    def formula(self, bg_target: float = BG_TARGET, t0: float = 0.0,
                te: Optional[float] = None) -> Formula:
        """The full Eq. 1 formula ``G[t0,te](context -> consequence)``."""
        return self.ucas_entry(bg_target).to_stl(t0, te)


def rate_mask(values: np.ndarray, constraint: Optional[str],
              eps: float) -> np.ndarray:
    """Vectorized :func:`_rate_ok`: the sign-constraint mask over an array
    of rate values (shared by the batched monitor, sample mining and
    threshold learning so the constraint has exactly one reading)."""
    if constraint is None:
        return np.ones(np.shape(values), dtype=bool)
    if constraint == "pos":
        return values > eps
    if constraint == "neg":
        return values < -eps
    if constraint == "zero":
        return (values >= -eps) & (values <= eps)
    if constraint == "nonpos":
        return values <= eps
    if constraint == "nonneg":
        return values >= -eps
    raise ValueError(f"unknown rate constraint {constraint!r}")


def _rate_ok(value: float, constraint: Optional[str], eps: float) -> bool:
    if constraint is None:
        return True
    if constraint == "pos":
        return value > eps
    if constraint == "neg":
        return value < -eps
    if constraint == "zero":
        return -eps <= value <= eps
    if constraint == "nonpos":
        return value <= eps
    if constraint == "nonneg":
        return value >= -eps
    raise ValueError(f"unknown rate constraint {constraint!r}")


def _rate_predicates(channel: str, constraint: Optional[str], eps: float):
    if constraint is None:
        return []
    if constraint == "pos":
        return [Predicate(channel, ">", eps)]
    if constraint == "neg":
        return [Predicate(channel, "<", -eps)]
    if constraint == "zero":
        return [Predicate(channel, ">=", -eps), Predicate(channel, "<=", eps)]
    if constraint == "nonpos":
        return [Predicate(channel, "<=", eps)]
    if constraint == "nonneg":
        return [Predicate(channel, ">=", -eps)]
    raise ValueError(f"unknown rate constraint {constraint!r}")


_U1, _U2, _U3, _U4 = (ControlAction.DECREASE, ControlAction.INCREASE,
                      ControlAction.STOP, ControlAction.KEEP)
_H1, _H2 = HazardType.H1, HazardType.H2

#: (index, param, mu, dir, action, hazard, required, bg_side, bg_rate, iob_rate, default)
_RULE_TABLE: Tuple[tuple, ...] = (
    (1, "beta1", "IOB", "lt", _U1, _H2, False, "above", "pos", "neg", DEFAULT_IOB_UPPER),
    (2, "beta2", "IOB", "lt", _U1, _H2, False, "above", "pos", "zero", DEFAULT_IOB_UPPER),
    (3, "beta3", "IOB", "lt", _U1, _H2, False, "above", "neg", "pos", DEFAULT_IOB_UPPER),
    (4, "beta4", "IOB", "lt", _U1, _H2, False, "above", "neg", "neg", DEFAULT_IOB_UPPER),
    (5, "beta5", "IOB", "lt", _U1, _H2, False, "above", "neg", "zero", DEFAULT_IOB_UPPER),
    (6, "beta6", "IOB", "gt", _U2, _H1, False, "below", "neg", "pos", DEFAULT_IOB_LOWER),
    (7, "beta7", "IOB", "gt", _U2, _H1, False, "below", "neg", "neg", DEFAULT_IOB_LOWER),
    (8, "beta8", "IOB", "gt", _U2, _H1, False, "below", "neg", "zero", DEFAULT_IOB_LOWER),
    (9, "beta9", "IOB", "lt", _U3, _H2, False, "above", None, None, DEFAULT_IOB_UPPER),
    (10, "beta21", "BG", "lt", _U3, _H1, True, None, None, None, DEFAULT_BG_LOW),
    (11, "beta10", "IOB", "lt", _U4, _H2, False, "above", "pos", "nonpos", DEFAULT_IOB_UPPER),
    (12, "beta11", "IOB", "gt", _U4, _H1, False, "below", "neg", "nonneg", DEFAULT_IOB_LOWER),
)


def aps_rules() -> Tuple[APSRule, ...]:
    """All 12 Table I rules."""
    return tuple(APSRule(index=i, param=p, mu_channel=mu, direction=d,
                         action=a, hazard=h, required=req, bg_side=side,
                         bg_rate=bgr, iob_rate=iobr, default=dflt)
                 for i, p, mu, d, a, h, req, side, bgr, iobr, dflt in _RULE_TABLE)


def aps_scs(bg_target: float = BG_TARGET) -> SafetyContextSpec:
    """The full APS Safety Context Specification as UCAS entries."""
    return SafetyContextSpec(ucas=tuple(r.ucas_entry(bg_target) for r in aps_rules()))


def default_thresholds() -> Dict[str, float]:
    """CAWOT thresholds: every rule at its clinical/default value."""
    return {rule.param: rule.default for rule in aps_rules()}
