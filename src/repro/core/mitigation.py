"""Hazard mitigation — Algorithm 1 of the paper.

When the monitor flags an unsafe control action, the mitigator replaces the
commanded insulin before it reaches the pump:

- predicted **H1** (too much insulin): command zero insulin;
- predicted **H2** (too little insulin): command a corrective insulin dose.

For H2 the paper notes that a context-dependent function ``f(rho(mu(x)), u)``
should choose the dose, but its experiments use a *fixed maximum insulin
value* so context-aware and non-context-aware monitors can be compared
fairly; :class:`FixedMitigator` implements that, and
:class:`ProportionalMitigator` implements a context-dependent ``f`` as the
documented extension.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple

from ..hazards import HazardType
from .context import ContextVector
from .monitor import MonitorVerdict

__all__ = ["Mitigator", "FixedMitigator", "ProportionalMitigator"]


class Mitigator(abc.ABC):
    """Maps (verdict, context, command) to a corrected command."""

    @abc.abstractmethod
    def correct(self, verdict: MonitorVerdict, ctx: ContextVector) -> Tuple[float, float]:
        """Return the corrected ``(basal_u_h, bolus_u)`` command."""

    def reset(self) -> None:
        """Clear per-simulation state (default: stateless).

        Campaigns reuse one mitigator across every scenario of a patient;
        the closed loop calls this at the start of each run so a stateful
        strategy can never leak decisions from one scenario into the next.
        """


@dataclass
class FixedMitigator(Mitigator):
    """Algorithm 1 with the paper's fixed H2 correction.

    Attributes
    ----------
    max_rate:
        The fixed maximum insulin rate (U/h) commanded on predicted H2.
    """

    max_rate: float = 5.0

    def __post_init__(self):
        if self.max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {self.max_rate}")

    def correct(self, verdict: MonitorVerdict, ctx: ContextVector) -> Tuple[float, float]:
        if not verdict.alert:
            return ctx.rate, ctx.bolus
        if verdict.hazard == HazardType.H1:
            return 0.0, 0.0
        return self.max_rate, 0.0


@dataclass
class ProportionalMitigator(Mitigator):
    """Context-dependent ``f(rho(mu(x)), u)`` for H2 (extension).

    Doses insulin proportionally to the glucose excess over target,
    discounted by insulin already on board — gentler than the fixed maximum
    and less likely to cause rebound hypoglycemia.
    """

    isf: float = 50.0        # mg/dL per U
    bg_target: float = 120.0
    max_rate: float = 5.0
    horizon_h: float = 2.0   # spread the correction over this many hours

    def __post_init__(self):
        if self.isf <= 0 or self.max_rate <= 0 or self.horizon_h <= 0:
            raise ValueError("isf, max_rate and horizon_h must be positive")

    def correct(self, verdict: MonitorVerdict, ctx: ContextVector) -> Tuple[float, float]:
        if not verdict.alert:
            return ctx.rate, ctx.bolus
        if verdict.hazard == HazardType.H1:
            return 0.0, 0.0
        needed_units = max((ctx.bg - self.bg_target) / self.isf - ctx.iob, 0.0)
        rate = min(needed_units / self.horizon_h, self.max_rate)
        return rate, 0.0
