"""Hazard mitigation — Algorithm 1 of the paper.

When the monitor flags an unsafe control action, the mitigator replaces the
commanded insulin before it reaches the pump:

- predicted **H1** (too much insulin): command zero insulin;
- predicted **H2** (too little insulin): command a corrective insulin dose.

For H2 the paper notes that a context-dependent function ``f(rho(mu(x)), u)``
should choose the dose, but its experiments use a *fixed maximum insulin
value* so context-aware and non-context-aware monitors can be compared
fairly; :class:`FixedMitigator` implements that, and
:class:`ProportionalMitigator` implements a context-dependent ``f`` as the
documented extension.  :class:`PredictiveMitigator` is a second strategy
family in the KnowSafe style (see PAPERS.md): a short-horizon glucose
prediction feeds the corrective dose, and a knowledge rule (predicted
glucose below a suspend threshold) can veto insulin even on a predicted H2.

Mitigators additionally expose a *columnar* evaluation path
(:meth:`Mitigator.correct_mask`) used by the lock-step simulation engine
(:mod:`repro.simulation.vector`): all alerted rows of a live tick are
corrected in one vectorized call.  The base class returns ``None`` —
"no columnar form" — which makes the engine fall back to a per-row scalar
loop over cloned mitigators, so custom (including stateful) strategies stay
correct with zero work.  See ``docs/mitigation.md`` for the exact-parity
contract an override must honour.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..hazards import HazardType
from .context import ContextVector
from .monitor import MonitorVerdict

__all__ = ["Mitigator", "FixedMitigator", "ProportionalMitigator",
           "PredictiveMitigator"]


class Mitigator(abc.ABC):
    """Maps (verdict, context, command) to a corrected command."""

    @abc.abstractmethod
    def correct(self, verdict: MonitorVerdict, ctx: ContextVector) -> Tuple[float, float]:
        """Return the corrected ``(basal_u_h, bolus_u)`` command."""

    def reset(self) -> None:
        """Clear per-simulation state (default: stateless).

        Campaigns reuse one mitigator across every scenario of a patient;
        the closed loop calls this at the start of each run so a stateful
        strategy can never leak decisions from one scenario into the next.
        The lock-step engine relies on the same contract: a batched run's
        per-row mitigator clones are ``reset`` before their run, so a
        ``reset`` that fully clears state makes batching invisible.
        """

    def correct_mask(self, alerts: np.ndarray, hazards: np.ndarray,
                     tick) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Columnar :meth:`correct` over one live control cycle.

        Parameters
        ----------
        alerts:
            ``(B,)`` boolean alert flags for the tick.
        hazards:
            ``(B,)`` integer hazard-type codes (0 when silent).
        tick:
            A ``(1, B)`` :class:`~repro.simulation.features.ContextBatch`
            holding the cycle's context — ``tick.rate[0]``/
            ``tick.bolus[0]`` are the commanded values that must pass
            through unchanged on non-alert rows.

        Returns
        -------
        ``(rate, bolus)`` full-width ``(B,)`` corrected command vectors,
        or ``None`` (the default) when the strategy has no columnar form —
        the engine then falls back to a per-row scalar loop: one
        ``deepcopy`` of this mitigator per batch row, each ``reset`` at
        run start and driven through :meth:`correct` for its own alerts,
        which *is* the scalar definition.

        **Contract**: an override must be stateless (a pure function of
        the tick) and must transcribe the scalar :meth:`correct`
        arithmetic with identical operation order, selecting branches via
        ``np.where`` — so batched and scalar mitigation are element-wise
        identical for any batch composition.  Stateful strategies must
        keep the ``None`` default.
        """
        return None


@dataclass
class FixedMitigator(Mitigator):
    """Algorithm 1 with the paper's fixed H2 correction.

    Attributes
    ----------
    max_rate:
        The fixed maximum insulin rate (U/h) commanded on predicted H2.
    """

    max_rate: float = 5.0

    def __post_init__(self):
        if self.max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {self.max_rate}")

    def correct(self, verdict: MonitorVerdict, ctx: ContextVector) -> Tuple[float, float]:
        if not verdict.alert:
            return ctx.rate, ctx.bolus
        if verdict.hazard == HazardType.H1:
            return 0.0, 0.0
        return self.max_rate, 0.0

    def correct_mask(self, alerts: np.ndarray, hazards: np.ndarray,
                     tick) -> Tuple[np.ndarray, np.ndarray]:
        h1 = hazards == int(HazardType.H1)
        rate = np.where(alerts, np.where(h1, 0.0, self.max_rate),
                        tick.rate[0])
        bolus = np.where(alerts, 0.0, tick.bolus[0])
        return rate, bolus


@dataclass
class ProportionalMitigator(Mitigator):
    """Context-dependent ``f(rho(mu(x)), u)`` for H2 (extension).

    Doses insulin proportionally to the glucose excess over target,
    discounted by insulin already on board — gentler than the fixed maximum
    and less likely to cause rebound hypoglycemia.
    """

    isf: float = 50.0        # mg/dL per U
    bg_target: float = 120.0
    max_rate: float = 5.0
    horizon_h: float = 2.0   # spread the correction over this many hours

    def __post_init__(self):
        if self.isf <= 0 or self.max_rate <= 0 or self.horizon_h <= 0:
            raise ValueError("isf, max_rate and horizon_h must be positive")

    def correct(self, verdict: MonitorVerdict, ctx: ContextVector) -> Tuple[float, float]:
        if not verdict.alert:
            return ctx.rate, ctx.bolus
        if verdict.hazard == HazardType.H1:
            return 0.0, 0.0
        needed_units = max((ctx.bg - self.bg_target) / self.isf - ctx.iob, 0.0)
        rate = min(needed_units / self.horizon_h, self.max_rate)
        return rate, 0.0

    def correct_mask(self, alerts: np.ndarray, hazards: np.ndarray,
                     tick) -> Tuple[np.ndarray, np.ndarray]:
        # the scalar correct, transcribed: same expressions in the same
        # order, branch selection via np.where (elementwise maximum /
        # minimum round identically at any batch width)
        needed_units = np.maximum(
            (tick.bg[0] - self.bg_target) / self.isf - tick.iob[0], 0.0)
        corrective = np.minimum(needed_units / self.horizon_h, self.max_rate)
        h1 = hazards == int(HazardType.H1)
        rate = np.where(alerts, np.where(h1, 0.0, corrective), tick.rate[0])
        bolus = np.where(alerts, 0.0, tick.bolus[0])
        return rate, bolus


@dataclass
class PredictiveMitigator(Mitigator):
    """Rule + prediction mitigation in the KnowSafe style (second family).

    KnowSafe (PAPERS.md) combines domain knowledge rules with data-driven
    prediction to pick the corrective action.  This strategy does the
    lightweight analogue on the monitor's own context: a linear
    short-horizon glucose forecast ``bg + bg' * horizon_min`` chooses the
    H2 dose, and a knowledge rule vetoes *any* insulin — even on a
    predicted H2 — when the forecast falls below ``suspend_bg`` (dosing
    into a predicted drop risks rebound hypoglycemia).  H1 alerts suspend
    insulin exactly like Algorithm 1.

    Attributes
    ----------
    isf:
        Insulin sensitivity (mg/dL per U) used to size the correction.
    bg_target:
        Glucose target the forecast excess is measured against.
    horizon_min:
        Forecast horizon in minutes; the H2 dose is spread over it.
    max_rate:
        Cap on the corrective insulin rate (U/h).
    suspend_bg:
        Forecast threshold (mg/dL) below which the knowledge rule
        commands zero insulin regardless of the predicted hazard.
    """

    isf: float = 50.0
    bg_target: float = 120.0
    horizon_min: float = 30.0
    max_rate: float = 5.0
    suspend_bg: float = 90.0

    def __post_init__(self):
        if self.isf <= 0 or self.max_rate <= 0 or self.horizon_min <= 0:
            raise ValueError("isf, max_rate and horizon_min must be positive")

    def correct(self, verdict: MonitorVerdict, ctx: ContextVector) -> Tuple[float, float]:
        if not verdict.alert:
            return ctx.rate, ctx.bolus
        predicted = ctx.bg + ctx.bg_rate * self.horizon_min
        if verdict.hazard == HazardType.H1 or predicted < self.suspend_bg:
            return 0.0, 0.0
        needed_units = max((predicted - self.bg_target) / self.isf - ctx.iob,
                           0.0)
        rate = min(needed_units * (60.0 / self.horizon_min), self.max_rate)
        return rate, 0.0

    def correct_mask(self, alerts: np.ndarray, hazards: np.ndarray,
                     tick) -> Tuple[np.ndarray, np.ndarray]:
        predicted = tick.bg[0] + tick.bg_rate[0] * self.horizon_min
        needed_units = np.maximum(
            (predicted - self.bg_target) / self.isf - tick.iob[0], 0.0)
        corrective = np.minimum(needed_units * (60.0 / self.horizon_min),
                                self.max_rate)
        suspend = (hazards == int(HazardType.H1)) \
            | (predicted < self.suspend_bg)
        rate = np.where(alerts, np.where(suspend, 0.0, corrective),
                        tick.rate[0])
        bolus = np.where(alerts, 0.0, tick.bolus[0])
        return rate, bolus
