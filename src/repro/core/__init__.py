"""The paper's primary contribution: safety-context specification, STL
threshold learning, the context-aware monitor (CAWT/CAWOT) and hazard
mitigation."""

from .context import CONTEXT_CHANNELS, ContextVector, Region
from .learning import (
    LOSSES,
    LearningResult,
    RuleSamples,
    ThresholdFit,
    learn_fold_thresholds,
    learn_thresholds,
    mae_loss,
    mine_rule_samples,
    mse_loss,
    telex_loss,
    tmee_loss,
)
from .mitigation import (FixedMitigator, Mitigator, PredictiveMitigator,
                         ProportionalMitigator)
from .monitor import (
    NO_ALERT,
    ContextAwareMonitor,
    MonitorVerdict,
    SafetyMonitor,
    cawot_monitor,
    cawt_monitor,
)
from .rules import (
    APSRule,
    BG_TARGET,
    IOB_RATE_EPS,
    aps_rules,
    aps_scs,
    default_thresholds,
)
from .scs import HMSEntry, SafetyContextSpec, UCASEntry

__all__ = [
    "CONTEXT_CHANNELS",
    "ContextVector",
    "Region",
    "LOSSES",
    "LearningResult",
    "RuleSamples",
    "ThresholdFit",
    "learn_fold_thresholds",
    "learn_thresholds",
    "mae_loss",
    "mine_rule_samples",
    "mse_loss",
    "telex_loss",
    "tmee_loss",
    "FixedMitigator",
    "Mitigator",
    "PredictiveMitigator",
    "ProportionalMitigator",
    "NO_ALERT",
    "ContextAwareMonitor",
    "MonitorVerdict",
    "SafetyMonitor",
    "cawot_monitor",
    "cawt_monitor",
    "APSRule",
    "BG_TARGET",
    "IOB_RATE_EPS",
    "aps_rules",
    "aps_scs",
    "default_thresholds",
    "HMSEntry",
    "SafetyContextSpec",
    "UCASEntry",
]
