"""System context for the safety-monitor framework (Section III-A).

The monitor infers a multi-dimensional *context* from the controller's
input-output interface: the paper's transformations
``mu(x_t) = (BG, dBG/dt, IOB, dIOB/dt)`` plus the commanded insulin action.
:class:`ContextVector` is that inference for one control cycle; it is
produced by the closed loop (:mod:`repro.simulation.loop`) and consumed by
every monitor implementation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from ..controllers import ControlAction

__all__ = ["ContextVector", "Region", "CONTEXT_CHANNELS"]

#: trace channel names of the context variables (matching Table I notation)
CONTEXT_CHANNELS = ("BG", "BG'", "IOB", "IOB'")


class Region(enum.Enum):
    """The paper's three mutually exclusive state-space regions."""

    SAFE = "X*"
    POSSIBLY_HAZARDOUS = "X*<h"
    HAZARDOUS = "Xh"


@dataclass(frozen=True)
class ContextVector:
    """System context at one control cycle.

    Attributes
    ----------
    t:
        Time in minutes.
    bg:
        CGM glucose reading (mg/dL) — the monitor's fault-free sensor view.
    bg_rate:
        dBG/dt estimate (mg/dL per minute).
    iob:
        Insulin on board (U), estimated from delivered insulin.
    iob_rate:
        dIOB/dt estimate (U per minute).
    rate:
        Commanded basal rate (U/h) under scrutiny (post fault injection).
    bolus:
        Commanded bolus (U) under scrutiny.
    action:
        Discrete classification of the command (u1..u4).
    """

    t: float
    bg: float
    bg_rate: float
    iob: float
    iob_rate: float
    rate: float
    bolus: float
    action: ControlAction

    def channels(self) -> Dict[str, float]:
        """Values of the mu(x) channels plus the one-hot action channels."""
        values = {
            "BG": self.bg,
            "BG'": self.bg_rate,
            "IOB": self.iob,
            "IOB'": self.iob_rate,
            "rate": self.rate,
            "bolus": self.bolus,
        }
        for act in ControlAction:
            values[act.channel] = 1.0 if act == self.action else 0.0
        return values

    def features(self) -> tuple:
        """Numeric feature vector (used by the ML baseline monitors)."""
        return (self.bg, self.bg_rate, self.iob, self.iob_rate,
                self.rate, self.bolus, float(int(self.action)))
