"""Safety-monitor interface and the context-aware (CAWT/CAWOT) monitor.

Monitors are wrappers around the controller's input-output interface
(Fig. 1a): each control cycle they receive the inferred system context
(:class:`~repro.core.context.ContextVector`, built by the closed loop from
the fault-free sensor stream and the commanded insulin) and return a
:class:`MonitorVerdict` — whether the command is an unsafe control action and
which hazard it predicts.

The context-aware monitor evaluates the 12 Table I rules each cycle.  With
thresholds learned from data (:mod:`repro.core.learning`) it is the paper's
**CAWT** monitor; with the clinical defaults it is the **CAWOT** baseline.

Monitors additionally expose a *batched* evaluation path
(:meth:`SafetyMonitor.observe_batch`) used by offline replay
(:mod:`repro.simulation.vector_replay`) and — for monitors that declare
themselves :attr:`~SafetyMonitor.stateless` — by the live lock-step
simulation engine (:mod:`repro.simulation.vector`), one single-cycle
batch per tick: a whole stack of context streams is evaluated column-wise
in lock step, with verdicts element-wise identical to calling
:meth:`~SafetyMonitor.observe` cycle by cycle.  The base class provides a
column-loop fallback so every custom monitor keeps working unchanged;
monitors whose arithmetic vectorizes exactly override it.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..hazards import HazardType
from .context import ContextVector
from .rules import APSRule, BG_TARGET, aps_rules, default_thresholds

__all__ = ["MonitorVerdict", "SafetyMonitor", "ContextAwareMonitor",
           "cawt_monitor", "cawot_monitor", "NO_ALERT"]


@dataclass(frozen=True)
class MonitorVerdict:
    """Outcome of one monitor evaluation.

    Attributes
    ----------
    alert:
        True when the monitor flags the commanded action as unsafe.
    hazard:
        Predicted hazard type (None when no alert).
    triggered:
        Names of the triggered rules (empty for non-rule monitors).
    """

    alert: bool
    hazard: Optional[HazardType] = None
    triggered: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.alert and self.hazard is None:
            raise ValueError("an alert must carry a predicted hazard type")


#: the quiescent verdict
NO_ALERT = MonitorVerdict(alert=False)


class SafetyMonitor(abc.ABC):
    """Base class of all safety monitors (context-aware, baselines, ML)."""

    name: str = "monitor"

    #: True when :meth:`observe` is a pure function of its context — no
    #: cross-cycle state, so ``observe_batch`` on a single-cycle ``(1, B)``
    #: batch equals ``B`` independent scalar calls.  The lock-step
    #: simulation engine (:mod:`repro.simulation.vector`) uses this to
    #: evaluate the monitor column-wise each live tick; stateful monitors
    #: (Guideline, MPC, LSTM, anything with a meaningful :meth:`reset`)
    #: must leave it False and are driven through per-row scalar clones
    #: instead.  Subclasses of a stateless monitor that *add* state must
    #: set it back to False.
    stateless: bool = False

    @abc.abstractmethod
    def observe(self, ctx: ContextVector) -> MonitorVerdict:
        """Evaluate one control cycle."""

    def reset(self) -> None:
        """Clear per-simulation state (default: stateless)."""

    def clone(self) -> "SafetyMonitor":
        """An independent reset copy of this monitor.

        The canonical way to give a stateful monitor its own per-row /
        per-user state: both the lock-step simulation engine
        (:mod:`repro.simulation.vector`) and the online serving layer
        (:mod:`repro.serve`) call this once per column or connected user.
        The default — a :func:`copy.deepcopy` followed by :meth:`reset` —
        is exactly the scalar loop's run-start semantics; monitors whose
        state is expensive to copy may override with something cheaper as
        long as the clone is observationally a fresh instance.
        """
        clone = copy.deepcopy(self)
        clone.reset()
        return clone

    def export_state(self) -> Dict[str, object]:
        """JSON-able construction state for the serving registry.

        Monitors that can be persisted by
        :class:`repro.serve.registry.MonitorRegistry` override this (and
        the registry knows how to rebuild them); the base implementation
        refuses loudly so an unsupported monitor never round-trips as an
        empty shell.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support registry state export")

    def export_runtime(self) -> Dict[str, object]:
        """The monitor's *runtime* (cross-cycle) state, picklable.

        Distinct from :meth:`export_state`, which captures construction
        parameters: this captures what :meth:`observe` has accumulated so
        far — an excursion timer, an LSTM hidden state — so the serving
        layer's crash-recovery snapshots (:mod:`repro.serve.persist`) can
        restore a per-user clone mid-stream and keep its subsequent
        verdicts element-wise identical to an uninterrupted run.

        The default captures the full instance ``__dict__`` (correct for
        any monitor whose state lives in instance attributes, which is
        all of the in-tree kinds); monitors carrying unpicklable or
        oversized attributes may override with something narrower, paired
        with :meth:`restore_runtime`.
        """
        return dict(self.__dict__)

    def restore_runtime(self, state: Dict[str, object]) -> None:
        """Install :meth:`export_runtime` output on a fresh clone."""
        self.__dict__.update(state)

    def observe_batch(self, batch) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate a lock-step stack of recorded context streams.

        Parameters
        ----------
        batch:
            A :class:`~repro.simulation.features.ContextBatch`: ``B``
            equal-length context streams stacked time-major, exposing
            ``shape == (n_steps, B)``, the ``(n_steps, B)`` channel
            matrices ``bg``/``bg_rate``/``iob``/``iob_rate``/``rate``/
            ``bolus``/``action``/``t``, and per-column access
            (``iter_column``, ``column_features``).

        Returns
        -------
        ``(alerts, hazards)``: an ``(n_steps, B)`` boolean alert matrix
        and the matching integer hazard-type codes (0 when silent) — the
        batched form of :class:`MonitorVerdict` (per-rule ``triggered``
        names are not materialised on this path).

        **Contract**: every column is evaluated as if the monitor had
        been freshly :meth:`reset` and fed the column's cycles through
        :meth:`observe` one by one — so batched and scalar replay are
        element-wise identical for any batch composition.  This default
        implementation *is* that definition (a per-column scalar loop),
        which keeps user-defined monitors correct with zero work;
        vectorized overrides (context-aware rules, DT/MLP, Guideline,
        MPC) must preserve it bit for bit, and stateful overrides must
        carry their state as per-column vectors rather than scalar
        attributes.  The monitor's own scalar state is left reset.
        """
        n_steps, n_cols = batch.shape
        alerts = np.zeros((n_steps, n_cols), dtype=bool)
        hazards = np.zeros((n_steps, n_cols), dtype=int)
        for b in range(n_cols):
            self.reset()
            for t, ctx in enumerate(batch.iter_column(b)):
                verdict = self.observe(ctx)
                alerts[t, b] = verdict.alert
                hazards[t, b] = (0 if verdict.hazard is None
                                 else int(verdict.hazard))
        self.reset()
        return alerts, hazards


class ContextAwareMonitor(SafetyMonitor):
    """The paper's context-aware monitor over the Table I rules.

    Parameters
    ----------
    thresholds:
        Mapping of rule parameter name (``beta1``..``beta11``, ``beta21``)
        to threshold value.  Missing entries fall back to the rule defaults.
        Pass learned thresholds for **CAWT**; pass nothing for **CAWOT**.
    bg_target:
        The BGT constant of Table I.
    rules:
        Rule subset to monitor (defaults to all 12).
    """

    #: pure rule comparisons per cycle — no cross-cycle state
    stateless = True

    def __init__(self, thresholds: Optional[Dict[str, float]] = None,
                 bg_target: float = BG_TARGET,
                 rules: Optional[Sequence[APSRule]] = None,
                 name: str = "context-aware"):
        self.rules = tuple(rules) if rules is not None else aps_rules()
        self.bg_target = float(bg_target)
        merged = default_thresholds()
        if thresholds:
            unknown = set(thresholds) - set(merged)
            if unknown:
                raise KeyError(f"unknown rule parameters: {sorted(unknown)}")
            merged.update(thresholds)
        self.thresholds = merged
        self.name = name

    def observe(self, ctx: ContextVector) -> MonitorVerdict:
        triggered = []
        hazard: Optional[HazardType] = None
        for rule in self.rules:
            if rule.violated(ctx, self.thresholds[rule.param], self.bg_target):
                triggered.append(f"rule{rule.index}")
                # first triggered rule determines the predicted hazard; all
                # rules constraining the same action agree on the hazard type
                if hazard is None:
                    hazard = rule.hazard
        if triggered:
            return MonitorVerdict(alert=True, hazard=hazard,
                                  triggered=tuple(triggered))
        return NO_ALERT

    def observe_batch(self, batch) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized rule evaluation over a whole context batch.

        Each Table I rule becomes one :meth:`~repro.core.rules.APSRule.
        violated_mask` call over the ``(n_steps, B)`` channel matrices;
        the predicted hazard comes from the first triggered rule in rule
        order, exactly like :meth:`observe`.  Pure comparisons — no
        rounding — so the verdicts match the scalar loop bit for bit.
        """
        bg, bg_rate = batch.bg, batch.bg_rate
        iob, iob_rate, action = batch.iob, batch.iob_rate, batch.action
        alerts = np.zeros(batch.shape, dtype=bool)
        hazards = np.zeros(batch.shape, dtype=int)
        for rule in self.rules:
            mask = rule.violated_mask(bg, bg_rate, iob, iob_rate, action,
                                      self.thresholds[rule.param],
                                      self.bg_target)
            # first triggered rule determines the predicted hazard (the
            # scalar loop's `if hazard is None` in rule order)
            hazards = np.where(mask & ~alerts, int(rule.hazard), hazards)
            alerts |= mask
        return alerts, hazards

    def with_thresholds(self, thresholds: Dict[str, float],
                        name: Optional[str] = None) -> "ContextAwareMonitor":
        """A copy of this monitor with (partially) replaced thresholds."""
        merged = dict(self.thresholds)
        merged.update(thresholds)
        return ContextAwareMonitor(thresholds=merged, bg_target=self.bg_target,
                                   rules=self.rules, name=name or self.name)

    def export_state(self) -> Dict[str, object]:
        """Thresholds + BGT + name — everything needed to rebuild the
        monitor over the full Table I rule set.  Custom rule subsets are
        refused (a silently-dropped subset would change verdicts)."""
        if self.rules != aps_rules():
            raise NotImplementedError(
                "only the full Table I rule set round-trips through the "
                "registry; this monitor carries a custom rule subset")
        return {"thresholds": dict(self.thresholds),
                "bg_target": self.bg_target, "name": self.name}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ContextAwareMonitor":
        """Rebuild a monitor from :meth:`export_state` output."""
        return cls(thresholds=dict(state["thresholds"]),
                   bg_target=float(state["bg_target"]),
                   name=str(state["name"]))


def cawt_monitor(thresholds: Dict[str, float],
                 bg_target: float = BG_TARGET) -> ContextAwareMonitor:
    """Context-Aware monitor With learned Thresholds (the paper's CAWT)."""
    return ContextAwareMonitor(thresholds=thresholds, bg_target=bg_target,
                               name="CAWT")


def cawot_monitor(bg_target: float = BG_TARGET) -> ContextAwareMonitor:
    """Context-Aware monitor WithOut Threshold learning (CAWOT baseline)."""
    return ContextAwareMonitor(thresholds=None, bg_target=bg_target,
                               name="CAWOT")
