"""Safety Context Specification (SCS) framework — Section III-B of the paper.

An SCS couples two specifications:

- the **UCA Specification (UCAS)**: tuples ``(context, action, hazard)``
  stating that issuing control action ``u`` in system context ``rho(mu(x))``
  may drive the system into hazardous region ``Hi``;
- the **Hazard Mitigation Specification (HMS)**: tuples ``(context,
  safe-actions, ts)`` stating which actions return the system to the safe
  region and how quickly one must be taken.

Both compile to bounded-time STL (Eqs. 1 and 2):

    UCAS:  G[t0,te]( phi_1 & ... & phi_m  ->  !u )
    HMS:   G[t0,te]( (F[0,ts] u_c)  S  (phi_1 & ... & phi_m) )

The concrete APS instantiation (Table I) lives in :mod:`repro.core.rules`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..controllers import ControlAction
from ..hazards import HazardType
from ..stl import And, Formula, Globally, Implies, Not, Or, Signal, Since, Eventually

__all__ = ["UCASEntry", "HMSEntry", "SafetyContextSpec"]


@dataclass(frozen=True)
class UCASEntry:
    """One unsafe-control-action tuple ``(rho(mu(x)), u, Hi)``.

    ``context`` is an STL formula over the mu-channels (may contain learnable
    :class:`~repro.stl.ast.Param` thresholds).  ``forbidden`` is the control
    action that must not (or, with ``required=True``, *must*) be issued in
    that context.
    """

    name: str
    context: Formula
    action: ControlAction
    hazard: HazardType
    required: bool = False  # True: action is mandated (Table I rule 10)

    def consequent(self) -> Formula:
        atom = Signal(self.action.channel)
        return atom if self.required else Not(atom)

    def to_stl(self, t0: float = 0.0, te: Optional[float] = None) -> Formula:
        """Eq. 1: ``G[t0,te](context -> !u)`` (or ``-> u`` when required)."""
        return Globally(Implies(self.context, self.consequent()), t0, te)

    def violation_body(self) -> Formula:
        """Pointwise violation condition: ``context & u`` (or ``& !u``)."""
        atom = Signal(self.action.channel)
        bad_action = Not(atom) if self.required else atom
        return And([self.context, bad_action])

    def parameters(self) -> FrozenSet[str]:
        return self.context.parameters()


@dataclass(frozen=True)
class HMSEntry:
    """One hazard-mitigation tuple ``(rho(mu(x)), u_rho, ts)``."""

    name: str
    context: Formula
    safe_actions: Tuple[ControlAction, ...]
    ts: float  # latest mitigation start after entering the context (minutes)

    def __post_init__(self):
        if not self.safe_actions:
            raise ValueError("HMS entry needs at least one safe action")
        if self.ts < 0:
            raise ValueError(f"ts must be >= 0, got {self.ts}")

    def to_stl(self, t0: float = 0.0, te: Optional[float] = None) -> Formula:
        """Eq. 2: ``G[t0,te]( (F[0,ts] u_c) S context )``."""
        atoms = [Signal(a.channel) for a in self.safe_actions]
        any_safe: Formula = atoms[0] if len(atoms) == 1 else Or(atoms)
        return Globally(Since(Eventually(any_safe, 0.0, self.ts), self.context),
                        t0, te)

    def parameters(self) -> FrozenSet[str]:
        return self.context.parameters()


@dataclass
class SafetyContextSpec:
    """A complete SCS: UCAS entries plus optional HMS entries."""

    ucas: Sequence[UCASEntry] = field(default_factory=tuple)
    hms: Sequence[HMSEntry] = field(default_factory=tuple)

    def parameters(self) -> Dict[str, Optional[float]]:
        """All learnable parameter names with their declared defaults."""
        from ..stl.ast import all_params
        out: Dict[str, Optional[float]] = {}
        for entry in list(self.ucas) + list(self.hms):
            out.update(all_params(entry.context))
        return out

    def entries_for_hazard(self, hazard: HazardType) -> Tuple[UCASEntry, ...]:
        return tuple(e for e in self.ucas if e.hazard == hazard)

    def entries_for_action(self, action: ControlAction) -> Tuple[UCASEntry, ...]:
        return tuple(e for e in self.ucas if e.action == action)

    def monitor_formulas(self, t0: float = 0.0,
                         te: Optional[float] = None) -> Dict[str, Formula]:
        """Name -> Eq. 1 formula for every UCAS entry."""
        return {e.name: e.to_stl(t0, te) for e in self.ucas}
