"""Cross-entropy rare-event scenario search on the vector kernel.

The loop (O'Kelly et al.'s adaptive importance sampling, specialised to
this repo's substrate):

1. sample a population of scenarios from the current :class:`Proposal`
   (seeded, per-iteration child seeds);
2. simulate the whole population as lock-step vector batches through the
   existing campaign executor — the same ``workers=`` x ``batch_size=``
   machinery every other workload uses, with the same bit-exact parity
   contract;
3. score every trace with the continuous hazard-proximity objective
   (:func:`repro.hazards.scoring.score_trace`);
4. refit the proposal toward the elite fraction and repeat until the
   iteration budget, a simulation budget, a hazard-count target, or
   saturation (a fully hazardous population) stops the loop.

Determinism contract
--------------------
A :class:`SearchResult` is a pure function of ``(search configuration,
seed)``.  All randomness lives in the driver: iteration *i* draws from
``default_rng(SeedSequence(seed).spawn(...)[i])``, simulation is the
engines' bit-exact replay, scoring is arithmetic on traces.  Worker count
and batch size therefore change wall-clock only — the regression suite
pins identical results (elite sets, proposal trajectory, traces) across
``batch_size`` x ``workers`` combinations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..hazards import HazardScore, score_trace
from ..simulation import CampaignPlan, get_executor
from ..simulation.trace import SimulationTrace
from .proposal import Proposal
from .space import ScenarioSample, ScenarioSpace

__all__ = ["CrossEntropySearch", "SearchResult", "IterationStats",
           "HazardFinding"]


@dataclass(frozen=True)
class IterationStats:
    """Per-iteration summary: scores, elites and the refitted proposal."""

    iteration: int
    n_simulations: int
    n_hazardous: int
    best_score: float
    elite_threshold: float     # score of the weakest elite
    mean_score: float
    elite_indices: Tuple[int, ...]   # population indices, best first
    family_probs: np.ndarray   # proposal AFTER this iteration's refit
    mean: np.ndarray
    std: np.ndarray


@dataclass(frozen=True)
class HazardFinding:
    """One hazardous scenario discovered by the search."""

    iteration: int
    index: int                 # position within its iteration's population
    sample: ScenarioSample
    score: HazardScore
    trace: Optional[SimulationTrace] = None   # kept only on request

    @property
    def label(self) -> str:
        return self.sample.label


@dataclass(frozen=True)
class SearchResult:
    """Everything one :meth:`CrossEntropySearch.run` produced."""

    platform: str
    patient_id: str
    seed: int
    iterations: Tuple[IterationStats, ...]
    findings: Tuple[HazardFinding, ...]
    proposal: Proposal         # final refitted proposal
    n_simulations: int
    stop_reason: str

    @property
    def n_hazardous(self) -> int:
        return len(self.findings)

    @property
    def hazards_per_simulation(self) -> float:
        if self.n_simulations == 0:
            return 0.0
        return self.n_hazardous / self.n_simulations

    @property
    def best(self) -> Optional[HazardFinding]:
        """The highest-scoring hazard found (ties: earliest), or None."""
        if not self.findings:
            return None
        return max(self.findings,
                   key=lambda f: (f.score.score, -f.iteration, -f.index))

    def summary(self) -> str:
        return (f"{self.platform}/{self.patient_id} seed={self.seed}: "
                f"{self.n_hazardous} hazards / {self.n_simulations} sims "
                f"({1000.0 * self.hazards_per_simulation:.0f} per 1k) in "
                f"{len(self.iterations)} iterations [{self.stop_reason}]")


@dataclass
class CrossEntropySearch:
    """Adaptive hazard hunter over one (platform, patient) pair.

    Parameters
    ----------
    space:
        The continuous scenario box; defaults to
        ``ScenarioSpace(n_steps=n_steps)`` with the default family set.
    platform, patient_id:
        Which closed loop to attack.
    population:
        Scenarios per iteration (one or more vector batches).
    elite_frac:
        Fraction of the population the proposal refits toward.
    iterations:
        Generation budget.
    max_simulations:
        Optional hard cap on total simulations across generations.
    target_hazards:
        Optional early-exit once this many hazards have been found.
    smoothing, std_floor:
        CE update parameters (see :meth:`Proposal.refit`).
    objective:
        Trace-scoring function; defaults to
        :func:`repro.hazards.scoring.score_trace`.
    workers, batch_size:
        Executor knobs, resolved exactly like every campaign run
        (``REPRO_WORKERS`` / ``REPRO_BATCH_SIZE`` env fallbacks); results
        are bit-identical for every combination.
    keep_traces:
        Attach the full :class:`SimulationTrace` to each finding (the
        determinism suite uses this; large searches should leave it off).
    """

    space: Optional[ScenarioSpace] = None
    platform: str = "glucosym"
    patient_id: str = "A"
    n_steps: int = 150
    dt: float = 5.0
    population: int = 32
    elite_frac: float = 0.25
    iterations: int = 6
    max_simulations: Optional[int] = None
    target_hazards: Optional[int] = None
    smoothing: float = 0.7
    std_floor: float = 0.05
    objective: Callable[[SimulationTrace], HazardScore] = field(
        default=score_trace)
    workers: Optional[int] = None
    batch_size: Optional[int] = None
    keep_traces: bool = False

    def __post_init__(self):
        if self.space is None:
            self.space = ScenarioSpace(n_steps=self.n_steps, dt=self.dt)
        if (self.space.n_steps, self.space.dt) != (self.n_steps, self.dt):
            raise ValueError(
                f"space horizon ({self.space.n_steps} steps @ "
                f"{self.space.dt} min) disagrees with the search horizon "
                f"({self.n_steps} @ {self.dt}) — faults validated against "
                "one horizon would silently truncate in the other")
        if self.population < 2:
            raise ValueError(
                f"population must be >= 2, got {self.population}")
        if not 0.0 < self.elite_frac <= 1.0:
            raise ValueError(
                f"elite_frac must be in (0, 1], got {self.elite_frac}")
        if self.iterations < 1:
            raise ValueError(
                f"iterations must be >= 1, got {self.iterations}")
        if self.max_simulations is not None and self.max_simulations < 1:
            raise ValueError(
                f"max_simulations must be >= 1, got {self.max_simulations}")
        if self.target_hazards is not None and self.target_hazards < 1:
            raise ValueError(
                f"target_hazards must be >= 1, got {self.target_hazards}")

    # ------------------------------------------------------------------
    def _simulate(self, samples: Sequence[ScenarioSample], executor
                  ) -> List[SimulationTrace]:
        runs = tuple(s.to_run(self.patient_id) for s in samples)
        plan = CampaignPlan(platform=self.platform, runs=runs,
                            n_steps=self.n_steps, dt=self.dt)
        return executor.run(plan)

    def run(self, seed: int = 0) -> SearchResult:
        """Execute the search; deterministic in *seed* alone."""
        space = self.space
        proposal = Proposal.uniform(space.n_families, space.n_dims)
        executor = get_executor(self.workers, self.batch_size)
        # one child seed per potential iteration, spawned up front so the
        # iteration count at which an early exit fires cannot change the
        # streams of the iterations that did run
        children = np.random.SeedSequence(seed).spawn(self.iterations)

        n_elite = max(1, int(math.ceil(self.elite_frac * self.population)))
        findings: List[HazardFinding] = []
        stats: List[IterationStats] = []
        total = 0
        stop_reason = "iteration budget"
        for it in range(self.iterations):
            n = self.population
            if self.max_simulations is not None:
                n = min(n, self.max_simulations - total)
                if n < 2:
                    stop_reason = "simulation budget"
                    break
            rng = np.random.default_rng(children[it])
            families, u = proposal.sample(rng, n)
            samples = [space.materialise(int(f), row)
                       for f, row in zip(families, u)]
            traces = self._simulate(samples, executor)
            scores = [self.objective(trace) for trace in traces]
            total += n

            # deterministic elite selection: score desc, index asc
            order = sorted(range(n), key=lambda i: (-scores[i].score, i))
            elite = order[:min(n_elite, n)]
            n_hazardous = 0
            for i, score in enumerate(scores):
                if score.hazardous:
                    n_hazardous += 1
                    findings.append(HazardFinding(
                        iteration=it, index=i, sample=samples[i],
                        score=score,
                        trace=traces[i] if self.keep_traces else None))

            proposal = proposal.refit(families[elite], u[elite],
                                      smoothing=self.smoothing,
                                      std_floor=self.std_floor)
            all_scores = np.array([s.score for s in scores])
            stats.append(IterationStats(
                iteration=it, n_simulations=n, n_hazardous=n_hazardous,
                best_score=float(all_scores.max()),
                elite_threshold=float(scores[elite[-1]].score),
                mean_score=float(all_scores.mean()),
                elite_indices=tuple(elite),
                family_probs=proposal.family_probs,
                mean=proposal.mean, std=proposal.std))

            if (self.target_hazards is not None
                    and len(findings) >= self.target_hazards):
                stop_reason = "hazard target reached"
                break
            if self.max_simulations is not None \
                    and total >= self.max_simulations:
                stop_reason = "simulation budget"
                break
            if n_hazardous == n and it + 1 < self.iterations:
                # the whole population is already failing: further refit
                # cannot raise the discovery rate, only narrow diversity
                stop_reason = "population saturated"
                break

        return SearchResult(platform=self.platform,
                            patient_id=self.patient_id, seed=seed,
                            iterations=tuple(stats),
                            findings=tuple(findings), proposal=proposal,
                            n_simulations=total, stop_reason=stop_reason)
