"""Rare-event scenario search: hunt hazards instead of enumerating them.

The paper's evaluation exhausts a fixed 882-injections-per-patient fault
grid (Section V-B).  This package turns the batched simulation substrate
into an adaptive hazard hunter: a continuous scenario space over fault,
sensor-drift and meal-disturbance families (:mod:`repro.search.space`), a
parametric proposal distribution (:mod:`repro.search.proposal`) and a
cross-entropy loop (:mod:`repro.search.cross_entropy`) that simulates
whole populations as lock-step vector batches and refits toward the
hazard boundary.  See ``docs/scenario_search.md`` for the algorithm and
the determinism contract.
"""

from .cross_entropy import (CrossEntropySearch, HazardFinding,
                            IterationStats, SearchResult)
from .proposal import Proposal
from .space import (DIMENSION_NAMES, ScenarioFamily, ScenarioSample,
                    ScenarioSpace, default_families)

__all__ = [
    "CrossEntropySearch",
    "HazardFinding",
    "IterationStats",
    "SearchResult",
    "Proposal",
    "DIMENSION_NAMES",
    "ScenarioFamily",
    "ScenarioSample",
    "ScenarioSpace",
    "default_families",
]
