"""Continuous scenario space for rare-event hazard search.

The paper finds hazards by exhausting a *fixed* grid: 14 fault
configurations x 9 timing choices x 7 initial BGs (Section V-B).  This
module replaces the grid's axes with a continuous box so an adaptive
sampler can interpolate between — and extrapolate beyond — the grid
points:

- **fault families** generalise the campaign's 14 configurations: the same
  (kind, target) pairs, but with start/duration/magnitude drawn from
  continuous bounds instead of fixed values;
- **sensor-drift families** model persistent CGM calibration error (the
  Facchinetti-style bias the :class:`~repro.patients.sensor.CGMSensor`
  documents) as long-window glucose-offset faults, so they run bit-
  identically on both the scalar and the lock-step vector engines;
- a **meal family** covers unannounced carbohydrate disturbances (Paoletti
  et al., robust control under meal uncertainties) with no fault at all —
  and every family additionally samples an optional background meal, so
  fault x meal interactions are reachable.

A sample is materialised into an executable
:class:`~repro.simulation.executor.SimRun` through
:meth:`ScenarioSpace.materialise`; fault parameters pass through
:meth:`repro.fi.faults.FaultSpec.from_continuous`, which rejects
degenerate timing/magnitude combinations loudly instead of silently
simulating a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from ..fi import CAMPAIGN_FAULTS, FaultKind, FaultSpec, FaultTarget, magnitude_bounds
from ..patients import Meal
from ..simulation import SimRun

__all__ = ["ScenarioFamily", "ScenarioSample", "ScenarioSpace",
           "default_families", "DIMENSION_NAMES"]

#: the continuous dimensions of one scenario sample, all in [0, 1]
DIMENSION_NAMES: Tuple[str, ...] = (
    "start", "duration", "magnitude", "init_bg", "meal_carbs", "meal_time")


@dataclass(frozen=True)
class ScenarioFamily:
    """One qualitative scenario shape (the categorical search dimension).

    Attributes
    ----------
    name:
        Stable identifier, recorded in run labels and search findings.
    kind, target:
        Fault configuration; ``None``/``None`` for pure-disturbance
        (meal-only) families.
    magnitude_range:
        Bounds the continuous magnitude dimension maps into (ignored for
        magnitude-free kinds).
    duration_range:
        Fault-duration bounds in control cycles.
    """

    name: str
    kind: Optional[FaultKind] = None
    target: Optional[FaultTarget] = None
    magnitude_range: Tuple[float, float] = (0.0, 0.0)
    duration_range: Tuple[int, int] = (6, 42)

    def __post_init__(self):
        if (self.kind is None) != (self.target is None):
            raise ValueError(
                f"family {self.name!r}: kind and target must be set together")
        lo, hi = self.duration_range
        if lo < 1 or hi < lo:
            raise ValueError(
                f"family {self.name!r}: invalid duration_range {self.duration_range}")
        if self.kind is not None:
            bounds = magnitude_bounds(self.kind, self.target)
            if bounds is not None:
                blo, bhi = bounds
                mlo, mhi = self.magnitude_range
                if not (blo <= mlo <= mhi <= bhi):
                    raise ValueError(
                        f"family {self.name!r}: magnitude_range "
                        f"{self.magnitude_range} outside the valid "
                        f"{self.kind.value}_{self.target.value} bounds "
                        f"[{blo}, {bhi}]")

    @property
    def has_fault(self) -> bool:
        return self.kind is not None


@dataclass(frozen=True)
class ScenarioSample:
    """One materialised scenario: executable spec + its search coordinates.

    ``params`` keeps the raw unit-cube coordinates the proposal drew, so
    the cross-entropy refit happens in the smooth sampled space, not in
    the discretised executable one.
    """

    family_index: int
    family: str
    params: Tuple[float, ...]
    fault: Optional[FaultSpec]
    init_glucose: float
    meals: Tuple[Meal, ...]

    @property
    def label(self) -> str:
        parts = [f"search/{self.family}"]
        if self.fault is not None:
            parts.append(f"@{self.fault.start_step}+{self.fault.duration_steps}")
            if self.fault.value:
                parts.append(f"x{self.fault.value:.3g}")
        parts.append(f"/bg{self.init_glucose:.0f}")
        for meal in self.meals:
            parts.append(f"/meal{meal.carbs:.0f}g@{meal.time:.0f}")
        return "".join(parts)

    def to_run(self, patient_id: str) -> SimRun:
        """The executor-plan cell for this sample."""
        return SimRun(patient_id=patient_id, init_glucose=self.init_glucose,
                      label=self.label, fault=self.fault, meals=self.meals)


def default_families(n_steps: int = 150) -> Tuple[ScenarioFamily, ...]:
    """The default family set: campaign faults + sensor drift + meals.

    The 14 grid configurations of :data:`repro.fi.campaign.CAMPAIGN_FAULTS`
    become continuous families (fixed grid magnitudes widen to bounds that
    bracket them); two drift families model slow CGM calibration bias
    (small magnitude, long window — at least four hours, up to the whole
    run); one meal family carries no fault at all.
    """
    #: continuous magnitude bounds per (kind, target), bracketing the
    #: grid's fixed choices (ADD/SUB glucose 100, ADD rate 3, SUB iob 3,
    #: SCALE rate 0.5)
    spans = {
        (FaultKind.ADD, FaultTarget.GLUCOSE): (20.0, 250.0),
        (FaultKind.SUB, FaultTarget.GLUCOSE): (20.0, 250.0),
        (FaultKind.ADD, FaultTarget.RATE): (0.5, 8.0),
        (FaultKind.SCALE, FaultTarget.RATE): (0.0, 4.0),
        (FaultKind.SUB, FaultTarget.IOB): (0.5, 8.0),
    }
    fault_duration = (6, min(42, n_steps))
    families = []
    for kind, target, _value in CAMPAIGN_FAULTS:
        families.append(ScenarioFamily(
            name=f"{kind.value}_{target.value}", kind=kind, target=target,
            magnitude_range=spans.get((kind, target), (0.0, 0.0)),
            duration_range=fault_duration))
    drift_window = (min(48, n_steps), n_steps)
    families.append(ScenarioFamily(
        name="drift_high", kind=FaultKind.ADD, target=FaultTarget.GLUCOSE,
        magnitude_range=(5.0, 40.0), duration_range=drift_window))
    families.append(ScenarioFamily(
        name="drift_low", kind=FaultKind.SUB, target=FaultTarget.GLUCOSE,
        magnitude_range=(5.0, 40.0), duration_range=drift_window))
    families.append(ScenarioFamily(name="meal"))
    return tuple(families)


@dataclass(frozen=True)
class ScenarioSpace:
    """The continuous search box: families x a unit cube of 6 dimensions.

    Attributes
    ----------
    families:
        The categorical axis (see :func:`default_families`).
    n_steps:
        Simulation horizon in control cycles; bounds fault timing.
    dt:
        Control period in minutes.
    init_bg_range:
        Initial-glucose bounds, defaulting to the paper's [80, 200] mg/dL.
    meal_carbs_range:
        Background-meal size bounds in grams; a sampled size below
        ``min_meal_carbs`` means *no* meal, so meal presence is itself
        searchable.
    meal_window_fraction:
        Meals land in the first this-fraction of the horizon, leaving room
        for their glucose excursion to unfold inside the trace.
    """

    families: Tuple[ScenarioFamily, ...] = ()
    n_steps: int = 150
    dt: float = 5.0
    init_bg_range: Tuple[float, float] = (80.0, 200.0)
    meal_carbs_range: Tuple[float, float] = (0.0, 120.0)
    min_meal_carbs: float = 5.0
    meal_window_fraction: float = 0.8
    # derived, not an init parameter
    n_dims: int = field(default=len(DIMENSION_NAMES), init=False)

    def __post_init__(self):
        families = self.families or default_families(self.n_steps)
        object.__setattr__(self, "families", tuple(families))
        if self.n_steps < 2:
            raise ValueError(f"n_steps must be >= 2, got {self.n_steps}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        lo, hi = self.init_bg_range
        if not 0 < lo <= hi:
            raise ValueError(f"invalid init_bg_range {self.init_bg_range}")
        lo, hi = self.meal_carbs_range
        if not 0 <= lo <= hi:
            raise ValueError(f"invalid meal_carbs_range {self.meal_carbs_range}")
        if not 0.0 < self.meal_window_fraction <= 1.0:
            raise ValueError(
                f"meal_window_fraction must be in (0, 1], got "
                f"{self.meal_window_fraction}")
        names = [f.name for f in self.families]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate family names: {sorted(names)}")

    @property
    def n_families(self) -> int:
        return len(self.families)

    @staticmethod
    def _lerp(u: float, lo: float, hi: float) -> float:
        return lo + float(u) * (hi - lo)

    def materialise(self, family_index: int,
                    u: Sequence[float]) -> ScenarioSample:
        """Map one categorical index + unit-cube point to a scenario.

        The mapping is total on valid inputs: every ``u`` in ``[0, 1]^6``
        yields an executable sample (fault construction goes through
        :meth:`~repro.fi.faults.FaultSpec.from_continuous`, so a mapping
        bug that produced a degenerate spec fails loudly here rather than
        polluting the search with silent no-ops).
        """
        if not 0 <= family_index < len(self.families):
            raise ValueError(
                f"family_index {family_index} out of range "
                f"[0, {len(self.families)})")
        u = np.asarray(u, dtype=float)
        if u.shape != (self.n_dims,):
            raise ValueError(
                f"expected {self.n_dims} unit-cube coordinates, got shape "
                f"{u.shape}")
        if np.any(u < 0.0) or np.any(u > 1.0):
            raise ValueError("unit-cube coordinates must lie in [0, 1]")
        family = self.families[family_index]

        fault = None
        if family.has_fault:
            # start leaves at least one active cycle inside the horizon
            start = u[0] * (self.n_steps - 1)
            dlo, dhi = family.duration_range
            duration = self._lerp(u[1], dlo, dhi)
            mlo, mhi = family.magnitude_range
            value = (self._lerp(u[2], mlo, mhi)
                     if magnitude_bounds(family.kind, family.target)
                     is not None else 0.0)
            fault = FaultSpec.from_continuous(
                family.kind, family.target, start, duration, value,
                horizon=self.n_steps)

        init_bg = self._lerp(u[3], *self.init_bg_range)
        carbs = self._lerp(u[4], *self.meal_carbs_range)
        meals: Tuple[Meal, ...] = ()
        if carbs >= self.min_meal_carbs:
            window = self.meal_window_fraction * self.n_steps * self.dt
            # anchor meals on whole minutes: sub-minute phases are invisible
            # at the 5-minute control cadence but would fragment labels
            meal_time = float(np.floor(u[5] * window))
            meals = (Meal(time=meal_time, carbs=round(float(carbs), 1)),)
        return ScenarioSample(family_index=family_index, family=family.name,
                              params=tuple(float(x) for x in u),
                              fault=fault, init_glucose=round(init_bg, 1),
                              meals=meals)
