"""Parametric proposal distribution for the cross-entropy search.

The proposal factorises over the mixed scenario space: a categorical over
the qualitative families and an axis-aligned truncated Gaussian over the
six continuous unit-cube dimensions.  Cross-entropy refitting moves both
toward the elite fraction with exponential smoothing, and a standard-
deviation floor keeps the proposal from collapsing to a point (de Boer et
al.'s classic smoothed-CE update; O'Kelly et al. use the same family for
AP-controller risk search).

Everything here is driven by an externally supplied
:class:`numpy.random.Generator`, so the *caller* owns determinism: the
search loop hands each iteration a child seed spawned from the root seed,
which is what makes results bit-identical at any ``workers=`` /
``batch_size=``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["Proposal"]

#: Dirichlet-style smoothing count added per family when refitting the
#: categorical, so no family's probability ever hits exactly zero and the
#: search keeps a tail of exploration
CATEGORY_SMOOTHING = 0.5


@dataclass(frozen=True)
class Proposal:
    """One generation's sampling distribution.

    Attributes
    ----------
    family_probs:
        Categorical probabilities over the scenario families, shape ``(F,)``.
    mean, std:
        Per-dimension Gaussian parameters in unit-cube coordinates, shape
        ``(D,)``.  Samples are clipped to ``[0, 1]`` (truncation by
        projection — cheap, deterministic, and exact enough for CE).
    """

    family_probs: np.ndarray
    mean: np.ndarray
    std: np.ndarray

    def __post_init__(self):
        probs = np.asarray(self.family_probs, dtype=float)
        mean = np.asarray(self.mean, dtype=float)
        std = np.asarray(self.std, dtype=float)
        if probs.ndim != 1 or probs.size == 0:
            raise ValueError("family_probs must be a non-empty 1-D array")
        if not np.isclose(probs.sum(), 1.0) or np.any(probs < 0):
            raise ValueError("family_probs must be a probability vector")
        if mean.shape != std.shape or mean.ndim != 1:
            raise ValueError("mean and std must be matching 1-D arrays")
        if np.any(std <= 0):
            raise ValueError("std must be strictly positive")
        object.__setattr__(self, "family_probs", probs)
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "std", std)

    @classmethod
    def uniform(cls, n_families: int, n_dims: int) -> "Proposal":
        """The exploration-phase proposal: uniform families, wide Gaussians.

        A centred Gaussian with sigma 0.35, clipped to the unit interval,
        covers the whole cube with meaningful mass at both edges — close
        enough to uniform for generation zero while already being in the
        family CE refits stay in.
        """
        if n_families < 1 or n_dims < 1:
            raise ValueError("need at least one family and one dimension")
        return cls(family_probs=np.full(n_families, 1.0 / n_families),
                   mean=np.full(n_dims, 0.5), std=np.full(n_dims, 0.35))

    def sample(self, rng: np.random.Generator,
               n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw *n* scenarios: ``(families (n,), unit_cube (n, D))``.

        Exactly two generator calls in a fixed order, so the draw is a
        pure function of (proposal, generator state, n).
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        families = rng.choice(len(self.family_probs), size=n,
                              p=self.family_probs)
        u = rng.normal(self.mean, self.std, size=(n, self.mean.size))
        return families, np.clip(u, 0.0, 1.0)

    def refit(self, elite_families: np.ndarray, elite_u: np.ndarray,
              smoothing: float = 0.7, std_floor: float = 0.05) -> "Proposal":
        """Smoothed CE update toward the elite set.

        ``new = (1 - smoothing) * old + smoothing * elite_estimate`` for
        the categorical (with :data:`CATEGORY_SMOOTHING` pseudo-counts),
        the means, and the standard deviations; stds are floored at
        *std_floor* so late generations keep local exploration.
        """
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if std_floor <= 0:
            raise ValueError(f"std_floor must be positive, got {std_floor}")
        elite_families = np.asarray(elite_families)
        elite_u = np.asarray(elite_u, dtype=float)
        if elite_u.ndim != 2 or elite_u.shape[1] != self.mean.size:
            raise ValueError(
                f"elite_u must have shape (n_elite, {self.mean.size}), got "
                f"{elite_u.shape}")
        if len(elite_families) != len(elite_u) or len(elite_u) == 0:
            raise ValueError("elite arrays must be non-empty and aligned")

        counts = np.bincount(elite_families,
                             minlength=len(self.family_probs)).astype(float)
        counts += CATEGORY_SMOOTHING
        elite_probs = counts / counts.sum()
        probs = (1.0 - smoothing) * self.family_probs + smoothing * elite_probs
        probs /= probs.sum()

        elite_mean = elite_u.mean(axis=0)
        elite_std = elite_u.std(axis=0)
        mean = (1.0 - smoothing) * self.mean + smoothing * elite_mean
        std = np.maximum((1.0 - smoothing) * self.std + smoothing * elite_std,
                         std_floor)
        return Proposal(family_probs=probs, mean=mean, std=std)
