"""Insulin pump actuator model.

The pump executes the (possibly monitor-corrected) controller command.  Real
pumps quantize basal rates, enforce a hardware maximum and support a suspend
state; all three matter for the paper's experiments because mitigation
(Algorithm 1) commands either zero insulin (H1) or the maximum rate (H2).
"""

from __future__ import annotations

__all__ = ["InsulinPump"]


class InsulinPump:
    """Basal-rate insulin pump with quantization and limits.

    Parameters
    ----------
    max_basal:
        Hardware maximum basal rate (U/h).
    max_bolus:
        Maximum single bolus (U).
    increment:
        Basal-rate quantization step (U/h); typical pumps use 0.05 U/h.
    """

    def __init__(self, max_basal: float = 10.0, max_bolus: float = 10.0,
                 increment: float = 0.05):
        if max_basal <= 0 or max_bolus <= 0:
            raise ValueError("pump limits must be positive")
        if increment <= 0:
            raise ValueError(f"increment must be positive, got {increment}")
        self.max_basal = float(max_basal)
        self.max_bolus = float(max_bolus)
        self.increment = float(increment)
        self.suspended = False
        self.last_basal = 0.0
        self.last_bolus = 0.0
        self.total_delivered = 0.0  # units, updated by record_delivery

    def quantize(self, rate: float) -> float:
        """Round *rate* down to the pump's increment grid."""
        steps = int(rate / self.increment + 1e-9)
        return steps * self.increment

    def command_basal(self, rate: float) -> float:
        """Clamp, quantize and latch a basal-rate command; returns actual U/h."""
        if self.suspended:
            self.last_basal = 0.0
            return 0.0
        rate = min(max(rate, 0.0), self.max_basal)
        actual = self.quantize(rate)
        self.last_basal = actual
        return actual

    def command_bolus(self, units: float) -> float:
        """Clamp a bolus command; returns actual units."""
        if self.suspended:
            self.last_bolus = 0.0
            return 0.0
        actual = min(max(units, 0.0), self.max_bolus)
        self.last_bolus = actual
        return actual

    def suspend(self) -> None:
        """Stop all delivery until :meth:`resume`."""
        self.suspended = True
        self.last_basal = 0.0

    def resume(self) -> None:
        self.suspended = False

    def record_delivery(self, basal_u_h: float, bolus_u: float,
                        duration_min: float) -> None:
        """Account for insulin actually delivered over a control step."""
        if duration_min < 0:
            raise ValueError("duration must be >= 0")
        self.total_delivered += basal_u_h * duration_min / 60.0 + bolus_u

    def reset(self) -> None:
        self.suspended = False
        self.last_basal = 0.0
        self.last_bolus = 0.0
        self.total_delivered = 0.0
