"""UVA/Padova T1DS2013-style virtual patient — the Dalla Man S2013 model.

The paper's second platform pairs a Basal-Bolus controller with the
FDA-accepted UVA-Padova Type 1 Diabetes Simulator S2013.  The commercial
simulator's equations are published (Dalla Man et al., "The UVA/PADOVA Type 1
Diabetes Simulator: New Features", J Diabetes Sci Technol 2014); this module
implements that ODE system:

- two-compartment glucose kinetics (plasma ``Gp``, tissue ``Gt``);
- endogenous glucose production inhibited by a delayed insulin signal;
- insulin-dependent utilization with the S2013 hypoglycemia risk
  amplification;
- renal excretion above a glucose threshold;
- two-compartment plasma/liver insulin kinetics;
- two-compartment subcutaneous insulin absorption;
- three-compartment gastro-intestinal tract (stomach solid/liquid + gut) with
  the nonlinear gastric-emptying rate;
- a subcutaneous glucose compartment read by the CGM.

The equations themselves live in :mod:`repro.patients.kernels` as batched
column kernels; this class is the scalar (``B=1``) view, bit-identical to
the vectorized campaign engine because both call the same kernels.

Substitution note (see DESIGN.md §3): the commercial simulator's 30-patient
parameter file is proprietary.  We synthesise a 10-adult cohort around the
published adult-average parameters; each patient's ``kp1`` is solved so the
patient is exactly at steady state with a physiologic basal plasma insulin,
which guarantees a well-posed basal rate for every cohort member.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

import numpy as np

from .base import GLUCOSE_FLOOR, PatientModel, PMOL_PER_UNIT, UU_PER_UNIT
from .kernels import (T1DColumns, t1d_basal_rate, t1d_derivatives,
                      t1d_gastric_emptying, t1d_init_state, t1d_risk,
                      t1d_solve_basal_state, t1d_solve_kp1,
                      t1d_solve_state_at)

__all__ = ["T1DParams", "T1DPatient", "T1DS2013_COHORT", "t1d_patient"]


@dataclass(frozen=True)
class T1DParams:
    """Parameters of the S2013 model (adult units, per-kg where applicable)."""

    BW: float = 78.0        # body weight (kg)
    # glucose kinetics
    VG: float = 1.88        # glucose distribution volume (dL/kg)
    k1: float = 0.065       # Gp -> Gt transfer (1/min)
    k2: float = 0.079       # Gt -> Gp transfer (1/min)
    # endogenous glucose production
    kp1: float = 2.70       # maximal EGP (mg/kg/min); solved per patient
    kp2: float = 0.0021     # EGP suppression by glucose (1/min)
    kp3: float = 0.009      # EGP suppression by delayed insulin (mg/kg/min per pmol/L)
    ki: float = 0.0079      # delayed insulin signal rate (1/min)
    # utilization
    Fsnc: float = 1.0       # insulin-independent utilization (mg/kg/min)
    Vm0: float = 2.50       # basal insulin-dependent utilization (mg/kg/min)
    Vmx: float = 0.047      # insulin sensitivity of utilization (mg/kg/min per pmol/L)
    Km0: float = 225.59     # Michaelis constant (mg/kg)
    p2u: float = 0.0331     # insulin action rate (1/min)
    # renal excretion
    ke1: float = 0.0005     # renal clearance (1/min)
    ke2: float = 339.0      # renal threshold (mg/kg)
    # insulin kinetics
    VI: float = 0.05        # insulin distribution volume (L/kg)
    m1: float = 0.190       # liver insulin rates (1/min)
    m2: float = 0.484
    m3: float = 0.285
    m4: float = 0.194
    # subcutaneous insulin absorption
    kd: float = 0.0164      # Isc1 -> Isc2 (1/min)
    ka1: float = 0.0018     # Isc1 -> plasma (1/min)
    ka2: float = 0.0182     # Isc2 -> plasma (1/min)
    # gastro-intestinal tract
    kmax: float = 0.0558    # max gastric emptying (1/min)
    kmin: float = 0.0080    # min gastric emptying (1/min)
    kabs: float = 0.057     # intestinal absorption (1/min)
    kgri: float = 0.0558    # grinding rate (1/min)
    f: float = 0.90         # fraction of absorbed glucose appearing in plasma
    b: float = 0.82         # gastric-emptying shape parameters
    d: float = 0.010
    # subcutaneous glucose (CGM) compartment
    ksc: float = 0.0766     # 1/min
    # S2013 hypoglycemia risk amplification of utilization
    r1: float = 0.05        # risk gain on Vmx (calibrated, see DESIGN.md)
    r2: float = 1.44        # risk exponent
    Gb: float = 120.0       # basal (target) glucose (mg/dL)
    Gth: float = 60.0       # hypoglycemia saturation threshold (mg/dL)

    def __post_init__(self):
        positive = ("BW", "VG", "k1", "k2", "kp2", "kp3", "ki", "Vm0", "Vmx",
                    "Km0", "p2u", "VI", "m1", "m2", "m3", "m4", "kd", "ka1",
                    "ka2", "kmax", "kmin", "kabs", "kgri", "ksc", "Gb")
        for field in positive:
            if getattr(self, field) <= 0:
                raise ValueError(f"S2013 parameter {field} must be positive")


# state vector indices
GP, GT, IP, IL, I1, ID, XA, ISC1, ISC2, GS, QSTO1, QSTO2, QGUT = range(13)


def _cols_of(p: T1DParams) -> T1DColumns:
    return T1DColumns.from_params([p])


def _solve_basal_state(p: T1DParams, glucose: float):
    """Closed-form steady state of the S2013 model at fasting *glucose*.

    Returns ``(Gt, Ib, IIRb)``: tissue glucose (mg/kg), basal plasma insulin
    (pmol/L) and basal infusion (pmol/kg/min).  Raises ``ValueError`` when the
    parameters cannot hold the requested glucose (negative basal insulin).
    """
    gt, ib, iirb = t1d_solve_basal_state(_cols_of(p), np.array([float(glucose)]))
    return float(gt[0]), float(ib[0]), float(iirb[0])


def _solve_state_at(p: T1DParams, glucose: float, ib_ref: float,
                    risk_value: float, iterations: int = 40):
    """Steady state at *glucose* with the remote-action reference *ib_ref*.

    Unlike :func:`_solve_basal_state` (which defines the X = 0 anchor at the
    patient's chronic basal), this solves the coupled (Gt, I) fixed point
    with X = I - ib_ref, so a simulation can start in quasi-steady state at
    any glucose while keeping the patient's chronic insulin reference.

    Returns ``(Gt, I, IIR)`` with I >= a small positive floor (high starting
    glucose may not be sustainable with positive insulin).
    """
    gt, insulin, iir = t1d_solve_state_at(
        _cols_of(p), np.array([float(glucose)]), np.array([float(ib_ref)]),
        np.array([float(risk_value)]), iterations=iterations)
    return float(gt[0]), float(insulin[0]), float(iir[0])


def solve_kp1(p: T1DParams, basal_insulin: float, glucose: float | None = None) -> float:
    """``kp1`` that puts the patient at steady state with *basal_insulin* pmol/L."""
    glucose_arr = None if glucose is None else np.array([float(glucose)])
    return float(t1d_solve_kp1(_cols_of(p), float(basal_insulin),
                               glucose_arr)[0])


class T1DPatient(PatientModel):
    """A virtual T1D patient governed by the Dalla Man S2013 model."""

    N_STATES = 13

    def __init__(self, params: T1DParams, name: str = "t1d",
                 target_glucose: float | None = None):
        super().__init__(name)
        self.params = params
        self._cols = _cols_of(params)
        self._log_gb_pow = float(self._cols.log_gb_pow[0])
        self.target_glucose = params.Gb if target_glucose is None else float(target_glucose)
        self._state = np.zeros(self.N_STATES)
        self._last_meal_mg = 0.0
        self._basal_insulin = 0.0  # Ib, pmol/L (set by reset)
        self.reset(self.target_glucose)

    # ------------------------------------------------------------------
    # PatientModel interface
    # ------------------------------------------------------------------
    @property
    def state(self) -> np.ndarray:
        return self._state.copy()

    @property
    def glucose(self) -> float:
        return float(self._state[GP] / self.params.VG)

    @property
    def sensor_glucose(self) -> float:
        """Interstitial glucose (the CGM compartment), mg/dL."""
        return float(self._state[GS])

    @property
    def plasma_insulin(self) -> float:
        """Plasma insulin concentration, pmol/L."""
        return float(self._state[IP] / self.params.VI)

    def basal_rate(self, target_glucose: float | None = None) -> float:
        """Steady-state basal in U/h for a fasting target (closed form)."""
        target = self.target_glucose if target_glucose is None else target_glucose
        return float(t1d_basal_rate(self._cols, np.array([float(target)]))[0])

    def reset(self, init_glucose: float) -> None:
        """Quasi-steady state at the starting glucose.

        Insulin compartments are set to the level that holds
        ``init_glucose`` (clamped to a small positive floor when the
        requested glucose exceeds what zero insulin can sustain), and the
        remote-action reference ``Ib`` is re-anchored there — the patient's
        chronic state at simulation start.  See the IVP model for the
        rationale.
        """
        if init_glucose <= 0:
            raise ValueError(f"initial glucose must be positive, got {init_glucose}")
        state, ib_ref = t1d_init_state(self._cols,
                                       np.array([float(init_glucose)]),
                                       np.array([float(self.target_glucose)]))
        self._state = state[:, 0].copy()
        self._basal_insulin = float(ib_ref[0])
        self._last_meal_mg = 0.0
        self.t = 0.0
        self._meals = []
        self._pending_bolus_uu = 0.0

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def _risk(self, glucose: float) -> float:
        """S2013 hypoglycemia risk amplification factor (dimensionless)."""
        return float(t1d_risk(self._cols, np.array([float(glucose)]))[0])

    def _gastric_emptying(self, qsto: float) -> float:
        return float(t1d_gastric_emptying(
            self._cols, np.array([float(qsto)]),
            np.array([self._last_meal_mg]))[0])

    def _ingest(self, carbs_g: float) -> None:
        carbs_mg = carbs_g * 1000.0
        self._state[QSTO1] += carbs_mg
        self._last_meal_mg = carbs_mg

    def derivatives(self, t: float, x: np.ndarray, insulin_uu_min: float) -> np.ndarray:
        d = t1d_derivatives(self._cols,
                            np.asarray(x, dtype=float).reshape(13, 1),
                            float(insulin_uu_min),
                            np.array([self._last_meal_mg]),
                            np.array([self._basal_insulin]))
        return d[:, 0]

    def _risk_float(self, glucose: float) -> float:
        """Plain-float transcription of kernels.t1d_risk for the RK4 fast
        path.  The power runs through a length-1 array because numpy's
        *scalar* ``**`` rounds differently from the array ufunc."""
        p = self.params
        if glucose >= p.Gb:
            return 0.0
        g = glucose if glucose > p.Gth else p.Gth
        diff = float(np.power(np.array([np.log(g)]), p.r2)[0]) \
            - self._log_gb_pow
        return 10.0 * diff * diff

    def _deriv_float(self, x, insulin_uu_min: float):
        """Plain-float transcription of kernels.t1d_derivatives at B=1.

        Every elementary op mirrors the kernel's float64 ufuncs (the
        transcendentals go through numpy itself), so the scalar loop stays
        bit-identical to the vectorized engine — asserted by the
        scalar-vs-vector parity suite.
        """
        p = self.params
        glucose = x[GP] / p.VG

        qsto = x[QSTO1] + x[QSTO2]
        last = self._last_meal_mg
        if last <= 0.0:
            kempt = p.kmax
        else:
            alpha = 5.0 / (2.0 * last * (1.0 - p.b))
            beta = 5.0 / (2.0 * last * p.d)
            kempt = p.kmin + (p.kmax - p.kmin) / 2.0 * (
                float(np.tanh(alpha * (qsto - p.b * last)))
                - float(np.tanh(beta * (qsto - p.d * last))) + 2.0)
        d_qsto1 = -p.kgri * x[QSTO1]
        d_qsto2 = p.kgri * x[QSTO1] - kempt * x[QSTO2]
        d_qgut = kempt * x[QSTO2] - p.kabs * x[QGUT]
        ra = p.f * p.kabs * x[QGUT] / p.BW

        iir = insulin_uu_min * (PMOL_PER_UNIT / UU_PER_UNIT) / p.BW
        d_isc1 = -(p.kd + p.ka1) * x[ISC1] + iir
        d_isc2 = p.kd * x[ISC1] - p.ka2 * x[ISC2]
        rai = p.ka1 * x[ISC1] + p.ka2 * x[ISC2]
        d_il = -(p.m1 + p.m3) * x[IL] + p.m2 * x[IP]
        d_ip = -(p.m2 + p.m4) * x[IP] + p.m1 * x[IL] + rai
        insulin = x[IP] / p.VI

        d_i1 = -p.ki * (x[I1] - insulin)
        d_id = -p.ki * (x[ID] - x[I1])
        d_xa = -p.p2u * x[XA] + p.p2u * (insulin - self._basal_insulin)

        egp = p.kp1 - p.kp2 * x[GP] - p.kp3 * x[ID]
        egp = egp if egp > 0.0 else 0.0
        over = x[GP] - p.ke2
        excretion = p.ke1 * (over if over > 0.0 else 0.0)
        vm = p.Vm0 + p.Vmx * x[XA] * (1.0 + p.r1 * self._risk_float(glucose))
        uid = (vm if vm > 0.0 else 0.0) * x[GT] / (p.Km0 + x[GT])
        d_gp = egp + ra - p.Fsnc - excretion - p.k1 * x[GP] + p.k2 * x[GT]
        d_gt = -uid + p.k1 * x[GP] - p.k2 * x[GT]
        d_gs = -p.ksc * (x[GS] - glucose)
        return (d_gp, d_gt, d_ip, d_il, d_i1, d_id, d_xa, d_isc1, d_isc2,
                d_gs, d_qsto1, d_qsto2, d_qgut)

    def _advance(self, dt: float, insulin_uu_min: float) -> None:
        # hand-inlined float RK4 over kernels.t1d_rk4_advance at B=1
        # (see _deriv_float); ~10x over per-substep length-1 ufunc calls
        insulin = float(insulin_uu_min)
        x = self._state.tolist()
        h2 = dt / 2.0
        k1 = self._deriv_float(x, insulin)
        k2 = self._deriv_float([xi + h2 * ki for xi, ki in zip(x, k1)],
                               insulin)
        k3 = self._deriv_float([xi + h2 * ki for xi, ki in zip(x, k2)],
                               insulin)
        k4 = self._deriv_float([xi + dt * ki for xi, ki in zip(x, k3)],
                               insulin)
        h6 = dt / 6.0
        xn = [xi + h6 * (a + 2.0 * b + 2.0 * c + d)
              for xi, a, b, c, d in zip(x, k1, k2, k3, k4)]
        # clamp like the kernel: X (the remote action) may stay negative
        x_action = xn[XA]
        xn = [v if v > 0.0 else 0.0 for v in xn]
        xn[XA] = x_action
        gp_floor = GLUCOSE_FLOOR * self.params.VG
        xn[GP] = xn[GP] if xn[GP] > gp_floor else gp_floor
        xn[GS] = xn[GS] if xn[GS] > GLUCOSE_FLOOR else GLUCOSE_FLOOR
        self._state = np.array(xn)


def _make_cohort() -> Dict[str, T1DParams]:
    """Synthetic 10-adult cohort around published adult-average parameters.

    Each entry varies insulin sensitivity (Vmx, kp3), utilization (Vm0),
    kinetics and body weight, then solves ``kp1`` so the patient is at steady
    state with the listed basal plasma insulin — guaranteeing a physiologic,
    well-posed basal for every cohort member.
    """
    base = T1DParams()
    # overrides: (BW, Vmx, kp3, Vm0, ki, p2u, kd, VG, basal insulin pmol/L)
    spec = {
        "P01": (78.0, 0.047, 0.0090, 2.50, 0.0079, 0.0331, 0.0164, 1.88, 60.0),
        "P02": (66.0, 0.034, 0.0065, 2.30, 0.0070, 0.0280, 0.0150, 1.80, 75.0),
        "P03": (85.0, 0.060, 0.0110, 2.70, 0.0090, 0.0380, 0.0180, 1.95, 50.0),
        "P04": (92.0, 0.028, 0.0055, 2.20, 0.0065, 0.0250, 0.0145, 1.75, 90.0),
        "P05": (71.0, 0.052, 0.0100, 2.60, 0.0085, 0.0350, 0.0170, 1.90, 55.0),
        "P06": (59.0, 0.041, 0.0080, 2.40, 0.0074, 0.0300, 0.0158, 1.84, 68.0),
        "P07": (81.0, 0.067, 0.0125, 2.85, 0.0095, 0.0400, 0.0188, 2.00, 45.0),
        "P08": (75.0, 0.037, 0.0072, 2.35, 0.0072, 0.0290, 0.0152, 1.82, 72.0),
        "P09": (88.0, 0.056, 0.0105, 2.65, 0.0088, 0.0360, 0.0175, 1.92, 52.0),
        "P10": (63.0, 0.045, 0.0085, 2.45, 0.0077, 0.0320, 0.0160, 1.86, 63.0),
    }
    cohort = {}
    for name, (bw, vmx, kp3, vm0, ki, p2u, kd, vg, ib) in spec.items():
        params = replace(base, BW=bw, Vmx=vmx, kp3=kp3, Vm0=vm0, ki=ki,
                         p2u=p2u, kd=kd, VG=vg)
        params = replace(params, kp1=solve_kp1(params, ib))
        cohort[name] = params
    return cohort


#: Deterministic synthetic cohort standing in for the commercial simulator's
#: 10 adult patients.
T1DS2013_COHORT: Dict[str, T1DParams] = _make_cohort()


def t1d_patient(patient_id: str, target_glucose: float | None = None) -> T1DPatient:
    """Construct a cohort patient by id (``"P01"`` .. ``"P10"``)."""
    key = patient_id.upper()
    if key not in T1DS2013_COHORT:
        raise KeyError(
            f"unknown T1DS2013 patient {patient_id!r}; "
            f"available: {sorted(T1DS2013_COHORT)}")
    return T1DPatient(T1DS2013_COHORT[key], name=f"t1ds2013/{key}",
                      target_glucose=target_glucose)
