"""Virtual patient models, CGM sensor and insulin pump.

Two glucose-simulator substrates (DESIGN.md §1):

- :mod:`repro.patients.ivp` — the Kanderian identifiable-virtual-patient
  model used by Glucosym, with a 10-adult synthetic cohort (patients A..J);
- :mod:`repro.patients.t1d` — the Dalla Man UVA/Padova S2013 model, with a
  10-adult synthetic cohort (P01..P10).

Both models' dynamics are implemented once, as batched column kernels in
:mod:`repro.patients.kernels`; the scalar classes here are ``B=1`` views
over those kernels, bit-identical to the vectorized campaign engine.
"""

from .base import Meal, PatientModel, rk4_step
from .cohort import COHORTS, all_patients, make_patient, patient_ids
from .ivp import GLUCOSYM_COHORT, IVPParams, IVPPatient, glucosym_patient
from .kernels import IVPColumns, T1DColumns
from .pump import InsulinPump
from .sensor import CGMSensor
from .t1d import T1DS2013_COHORT, T1DParams, T1DPatient, t1d_patient

__all__ = [
    "Meal",
    "PatientModel",
    "rk4_step",
    "COHORTS",
    "all_patients",
    "make_patient",
    "patient_ids",
    "GLUCOSYM_COHORT",
    "IVPColumns",
    "T1DColumns",
    "IVPParams",
    "IVPPatient",
    "glucosym_patient",
    "InsulinPump",
    "CGMSensor",
    "T1DS2013_COHORT",
    "T1DParams",
    "T1DPatient",
    "t1d_patient",
]
