"""Common infrastructure for virtual Type-1-diabetes patient models.

Both glucose simulators in this repository (the Kanderian identifiable-
virtual-patient model behind Glucosym, :mod:`repro.patients.ivp`, and the
Dalla Man UVA/Padova S2013 model, :mod:`repro.patients.t1d`) are continuous
ODE systems driven by two inputs: subcutaneous insulin delivery and meal
carbohydrates.  This module provides the shared interface and the fixed-step
RK4 integrator used to advance them.

Units
-----
- time: minutes
- glucose concentration: mg/dL
- insulin delivery commands: U/h (basal-rate style) and U (boluses)
- carbohydrates: grams
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, List

import numpy as np

__all__ = ["Meal", "PatientModel", "rk4_step", "UU_PER_UNIT", "PMOL_PER_UNIT"]

#: micro-units of insulin per pump unit
UU_PER_UNIT = 1.0e6
#: picomoles of insulin per pump unit (1 U = 6 nmol)
PMOL_PER_UNIT = 6000.0
#: numerical glucose floor (mg/dL): far below survivable levels, but keeps
#: logarithmic risk indices well-defined during extreme overdose scenarios
GLUCOSE_FLOOR = 10.0


@dataclass(frozen=True)
class Meal:
    """A carbohydrate intake event.

    Attributes
    ----------
    time:
        Minutes from simulation start at which the meal begins.
    carbs:
        Carbohydrate content in grams.
    """

    time: float
    carbs: float

    def __post_init__(self):
        if self.carbs < 0:
            raise ValueError(f"meal carbs must be >= 0, got {self.carbs}")


def rk4_step(f: Callable[[float, np.ndarray], np.ndarray], t: float,
             x: np.ndarray, dt: float) -> np.ndarray:
    """One classical Runge-Kutta-4 step of ``x' = f(t, x)``."""
    k1 = f(t, x)
    k2 = f(t + dt / 2.0, x + dt / 2.0 * k1)
    k3 = f(t + dt / 2.0, x + dt / 2.0 * k2)
    k4 = f(t + dt, x + dt * k3)
    return x + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


class PatientModel(abc.ABC):
    """Abstract virtual patient driven by insulin and meals.

    Concrete models implement :meth:`derivatives` over their own state vector
    plus the steady-state helpers used to initialise simulations at a chosen
    fasting glucose.  The generic :meth:`step` advances one APS control cycle
    (default 5 minutes) with fixed-step RK4 sub-integration.
    """

    #: integration sub-step in minutes
    dt_integration: float = 1.0

    def __init__(self, name: str):
        self.name = name
        self.t = 0.0
        self._meals: List[Meal] = []
        self._pending_bolus_uu = 0.0  # micro-units awaiting infusion

    # ------------------------------------------------------------------
    # model interface
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def state(self) -> np.ndarray:
        """Current ODE state vector (copy)."""

    @property
    @abc.abstractmethod
    def glucose(self) -> float:
        """Current blood glucose concentration in mg/dL."""

    @property
    def sensor_glucose(self) -> float:
        """Glucose seen by a CGM (defaults to blood glucose).

        The S2013 model overrides this with its interstitial compartment.
        """
        return self.glucose

    @abc.abstractmethod
    def derivatives(self, t: float, x: np.ndarray, insulin_uu_min: float) -> np.ndarray:
        """State derivative given insulin infusion in micro-units/minute."""

    @abc.abstractmethod
    def reset(self, init_glucose: float) -> None:
        """Reset to steady state at the patient's basal, then set BG."""

    @abc.abstractmethod
    def basal_rate(self, target_glucose: float) -> float:
        """Basal insulin rate (U/h) that holds *target_glucose* at rest."""

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def add_meal(self, meal: Meal) -> None:
        """Schedule a carbohydrate intake (relative to simulation start)."""
        self._meals.append(meal)

    def meals(self) -> List[Meal]:
        return list(self._meals)

    def _meals_starting_in(self, t0: float, t1: float) -> List[Meal]:
        return [m for m in self._meals if t0 <= m.time < t1]

    @abc.abstractmethod
    def _ingest(self, carbs_g: float) -> None:
        """Model-specific handling of a meal impulse."""

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def step(self, basal_u_h: float, bolus_u: float = 0.0,
             duration: float = 5.0) -> float:
        """Advance the model by *duration* minutes.

        Parameters
        ----------
        basal_u_h:
            Commanded basal rate in U/h, held for the whole step.
        bolus_u:
            Additional bolus in U, infused uniformly over the first
            integration sub-step.
        duration:
            Step length in minutes (the APS control period).

        Returns
        -------
        float
            Blood glucose (mg/dL) at the end of the step.
        """
        if basal_u_h < 0:
            raise ValueError(f"basal rate must be >= 0 U/h, got {basal_u_h}")
        if bolus_u < 0:
            raise ValueError(f"bolus must be >= 0 U, got {bolus_u}")
        self._pending_bolus_uu += bolus_u * UU_PER_UNIT
        basal_uu_min = basal_u_h * UU_PER_UNIT / 60.0

        n_sub = max(1, int(round(duration / self.dt_integration)))
        dt = duration / n_sub
        for _ in range(n_sub):
            for meal in self._meals_starting_in(self.t, self.t + dt):
                self._ingest(meal.carbs)
            infusion = basal_uu_min
            if self._pending_bolus_uu > 0:
                infusion += self._pending_bolus_uu / dt
                self._pending_bolus_uu = 0.0
            self._advance(dt, infusion)
            self.t += dt
        return self.glucose

    @abc.abstractmethod
    def _advance(self, dt: float, insulin_uu_min: float) -> None:
        """Integrate the state by *dt* minutes under constant infusion."""
