"""Identifiable-Virtual-Patient (IVP) glucose model — the Glucosym substrate.

The paper's primary platform pairs the OpenAPS controller with the Glucosym
simulator, whose patient models follow the "identifiable virtual patient"
model of Kanderian et al. (2009) — the Bergman/Sherwin-family minimal model
the paper also reuses for its MPC baseline monitor (Eq. 6)::

    dI_sc/dt  = ID(t) / (tau1 * CI) - I_sc / tau1
    dI_p/dt   = (I_sc - I_p) / tau2
    dI_eff/dt = -p2 * I_eff + p2 * SI * I_p
    dG/dt     = -(GEZI + I_eff) * G + EGP + RA(t)

with ``ID(t)`` the insulin delivery in micro-units/min, ``I_sc``/``I_p`` the
subcutaneous/plasma insulin concentrations, ``I_eff`` the insulin effect,
``G`` blood glucose (mg/dL) and ``RA(t)`` the meal glucose rate of
appearance.

The dynamics themselves live in :mod:`repro.patients.kernels` as batched
column kernels; this class is the scalar (``B=1``) view the interactive
:class:`~repro.simulation.loop.ClosedLoop` drives, guaranteed bit-identical
to the vectorized campaign engine because both call the same kernels.

Substitution note (see DESIGN.md §3): Glucosym ships parameters fit to 10
real adults; we generate a deterministic 10-patient cohort (A..J) spanning
the published population ranges (Kanderian et al. report e.g. mean tau1=49
min, tau2=47 min, CI=2010 mL/min, p2=0.0106 1/min, SI=7.1e-4 mL/uU/min,
GEZI=2.2e-3 1/min, EGP=1.33 mg/dL/min).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .base import GLUCOSE_FLOOR, PatientModel
from .kernels import (IVPColumns, ivp_basal_rate, ivp_derivatives,
                      ivp_init_state)

__all__ = ["IVPParams", "IVPPatient", "GLUCOSYM_COHORT", "glucosym_patient",
           "meal_ra"]

#: glucose distribution volume per kg of body weight (dL/kg)
GLUCOSE_VOLUME_DL_PER_KG = 1.6

#: meal absorption time constant (minutes)
MEAL_TAU = 40.0


def meal_ra(s: float, carbs_mg: float, v_g: float) -> float:
    """Rate of appearance (mg/dL/min) of one meal, *s* minutes after start.

    The gamma-shaped absorption curve ``(carbs/V_g) * s/tau^2 * exp(-s/tau)``
    whose integral equals the total carb load.  The vectorized engine
    precomputes its per-scenario meal timelines through this exact function,
    so scalar and batched runs see identical appearance values.
    """
    return (carbs_mg / v_g) * (s / MEAL_TAU ** 2) * math.exp(-s / MEAL_TAU)


@dataclass(frozen=True)
class IVPParams:
    """Parameters of the IVP model for one patient.

    Attributes
    ----------
    SI:    insulin sensitivity (mL/uU/min)
    GEZI:  glucose effectiveness at zero insulin (1/min)
    EGP:   endogenous glucose production (mg/dL/min)
    CI:    insulin clearance (mL/min)
    tau1:  subcutaneous insulin absorption time constant (min)
    tau2:  plasma insulin time constant (min)
    p2:    insulin action time constant (1/min)
    BW:    body weight (kg)
    """

    SI: float
    GEZI: float
    EGP: float
    CI: float
    tau1: float
    tau2: float
    p2: float
    BW: float

    def __post_init__(self):
        for field in ("SI", "GEZI", "EGP", "CI", "tau1", "tau2", "p2", "BW"):
            if getattr(self, field) <= 0:
                raise ValueError(f"IVP parameter {field} must be positive")

    @property
    def glucose_volume_dl(self) -> float:
        """Glucose distribution volume in dL."""
        return GLUCOSE_VOLUME_DL_PER_KG * self.BW

    @property
    def open_loop_glucose(self) -> float:
        """Equilibrium BG with zero insulin: EGP / GEZI."""
        return self.EGP / self.GEZI


#: Deterministic synthetic cohort standing in for Glucosym's 10 adult fits.
#: Keys match the paper's patient naming (patientA .. patientJ, Table VIII).
GLUCOSYM_COHORT: Dict[str, IVPParams] = {
    "A": IVPParams(SI=5.0e-4, GEZI=2.5e-3, EGP=1.20, CI=1800.0, tau1=55.0, tau2=50.0, p2=0.0100, BW=70.0),
    "B": IVPParams(SI=7.1e-4, GEZI=2.2e-3, EGP=1.33, CI=2010.0, tau1=49.0, tau2=47.0, p2=0.0106, BW=75.0),
    "C": IVPParams(SI=9.5e-4, GEZI=1.5e-3, EGP=1.50, CI=2200.0, tau1=45.0, tau2=42.0, p2=0.0130, BW=82.0),
    "D": IVPParams(SI=3.8e-4, GEZI=3.2e-3, EGP=1.05, CI=1650.0, tau1=60.0, tau2=55.0, p2=0.0080, BW=64.0),
    "E": IVPParams(SI=6.2e-4, GEZI=2.0e-3, EGP=1.45, CI=1900.0, tau1=50.0, tau2=49.0, p2=0.0110, BW=78.0),
    "F": IVPParams(SI=8.4e-4, GEZI=1.8e-3, EGP=1.60, CI=2350.0, tau1=42.0, tau2=40.0, p2=0.0140, BW=88.0),
    "G": IVPParams(SI=4.4e-4, GEZI=2.8e-3, EGP=0.95, CI=1700.0, tau1=58.0, tau2=52.0, p2=0.0090, BW=60.0),
    "H": IVPParams(SI=7.8e-4, GEZI=2.4e-3, EGP=1.25, CI=2100.0, tau1=47.0, tau2=45.0, p2=0.0120, BW=73.0),
    "I": IVPParams(SI=5.6e-4, GEZI=2.1e-3, EGP=1.40, CI=1950.0, tau1=52.0, tau2=48.0, p2=0.0095, BW=80.0),
    "J": IVPParams(SI=1.05e-3, GEZI=1.3e-3, EGP=1.70, CI=2450.0, tau1=40.0, tau2=38.0, p2=0.0150, BW=92.0),
}


class IVPPatient(PatientModel):
    """A virtual patient governed by the IVP (Kanderian) model.

    State vector: ``[I_sc, I_p, I_eff, G]`` with insulin concentrations in
    micro-units/mL, insulin effect in 1/min and glucose in mg/dL.
    """

    N_STATES = 4

    def __init__(self, params: IVPParams, name: str = "ivp",
                 target_glucose: float = 120.0):
        super().__init__(name)
        self.params = params
        self._cols = IVPColumns.from_params([params])
        # plain-float copies (incl. the kernel's precomputed products) for
        # the hand-inlined RK4 fast path in _advance
        self._f = (float(self._cols.tau1[0]), float(self._cols.tau2[0]),
                   float(self._cols.p2[0]), float(self._cols.GEZI[0]),
                   float(self._cols.EGP[0]), float(self._cols.tau1_CI[0]),
                   float(self._cols.p2_SI[0]))
        self.target_glucose = float(target_glucose)
        self._state = np.zeros(self.N_STATES)
        self._active_meals: List[Tuple[float, float]] = []  # (start time, carbs mg)
        self.reset(target_glucose)

    # ------------------------------------------------------------------
    # PatientModel interface
    # ------------------------------------------------------------------
    @property
    def state(self) -> np.ndarray:
        return self._state.copy()

    @property
    def glucose(self) -> float:
        return float(self._state[3])

    def basal_rate(self, target_glucose: float | None = None) -> float:
        """Closed-form steady-state basal in U/h for a fasting target.

        From the steady state of the IVP equations:
        ``ID = CI * (EGP/G* - GEZI) / SI`` micro-units/min.
        """
        target = self.target_glucose if target_glucose is None else target_glucose
        if target <= 0:
            raise ValueError(f"target glucose must be positive, got {target}")
        return float(ivp_basal_rate(self._cols, np.array([float(target)]))[0])

    def reset(self, init_glucose: float) -> None:
        """Quasi-steady state at the starting glucose.

        The insulin compartments are initialised to the level that *holds*
        ``init_glucose`` — a patient resting at 200 mg/dL is high precisely
        because insulin on board is low, and one at 80 because it is high.
        This matches how hazard scenarios unfold physically: suspending
        insulin from a hyperglycemic start lets glucose keep rising.
        """
        if init_glucose <= 0:
            raise ValueError(f"initial glucose must be positive, got {init_glucose}")
        self._state = ivp_init_state(
            self._cols, np.array([float(init_glucose)]))[:, 0].copy()
        self.t = 0.0
        self._meals = []
        self._active_meals = []
        self._pending_bolus_uu = 0.0

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def meal_appearance(self, t: float) -> float:
        """Glucose rate of appearance RA(t) in mg/dL/min from active meals.

        Each meal contributes the :func:`meal_ra` gamma curve, summed over
        the meals ingested so far, in ingestion order.
        """
        ra = 0.0
        v_g = self.params.glucose_volume_dl
        for start, carbs_mg in self._active_meals:
            s = t - start
            if s <= 0:
                continue
            ra += meal_ra(s, carbs_mg, v_g)
        return ra

    def _ingest(self, carbs_g: float) -> None:
        self._active_meals.append((self.t, carbs_g * 1000.0))

    def derivatives(self, t: float, x: np.ndarray, insulin_uu_min: float) -> np.ndarray:
        ra = None
        if self._active_meals:
            ra = np.array([self.meal_appearance(t)])
        d = ivp_derivatives(self._cols, np.asarray(x, dtype=float).reshape(4, 1),
                            float(insulin_uu_min), ra)
        return d[:, 0]

    def _advance(self, dt: float, insulin_uu_min: float) -> None:
        # Hand-inlined plain-float transcription of kernels.ivp_rk4_advance
        # at B=1.  The IVP derivative is free of transcendentals, so every
        # elementary float op here rounds identically to the kernel's
        # float64 ufuncs — bit-for-bit parity is asserted by the
        # scalar-vs-vector test suite.  (The ~10x win over per-substep
        # length-1 ufunc calls is what keeps the serial path fast.)
        tau1, tau2, p2, gezi, egp, tau1_ci, p2_si = self._f
        insulin = float(insulin_uu_min)
        if self._active_meals:
            t = self.t
            ra0 = self.meal_appearance(t)
            ra_mid = self.meal_appearance(t + dt / 2.0)
            ra1 = self.meal_appearance(t + dt)
        else:
            ra0 = ra_mid = ra1 = None

        def deriv(a0, a1, a2, a3, ra):
            d0 = insulin / tau1_ci - a0 / tau1
            d1 = (a0 - a1) / tau2
            d2 = -p2 * a2 + p2_si * a1
            d3 = -(gezi + max(a2, 0.0)) * a3 + egp
            if ra is not None:
                d3 = d3 + ra
            return d0, d1, d2, d3

        x0, x1, x2, x3 = self._state.tolist()
        h2 = dt / 2.0
        a0, a1, a2, a3 = deriv(x0, x1, x2, x3, ra0)
        b0, b1, b2, b3 = deriv(x0 + h2 * a0, x1 + h2 * a1, x2 + h2 * a2,
                               x3 + h2 * a3, ra_mid)
        c0, c1, c2, c3 = deriv(x0 + h2 * b0, x1 + h2 * b1, x2 + h2 * b2,
                               x3 + h2 * b3, ra_mid)
        d0, d1, d2, d3 = deriv(x0 + dt * c0, x1 + dt * c1, x2 + dt * c2,
                               x3 + dt * c3, ra1)
        h6 = dt / 6.0
        x0 = x0 + h6 * (a0 + 2.0 * b0 + 2.0 * c0 + d0)
        x1 = x1 + h6 * (a1 + 2.0 * b1 + 2.0 * c1 + d1)
        x2 = x2 + h6 * (a2 + 2.0 * b2 + 2.0 * c2 + d2)
        x3 = x3 + h6 * (a3 + 2.0 * b3 + 2.0 * c3 + d3)
        # concentrations cannot go negative; glucose gets a numerical floor
        # (ternaries, not max(): same tie/sign-of-zero results as np.maximum)
        x0 = x0 if x0 > 0.0 else 0.0
        x1 = x1 if x1 > 0.0 else 0.0
        x2 = x2 if x2 > 0.0 else 0.0
        x3 = x3 if x3 > GLUCOSE_FLOOR else GLUCOSE_FLOOR
        self._state = np.array([x0, x1, x2, x3])


def glucosym_patient(patient_id: str, target_glucose: float = 120.0) -> IVPPatient:
    """Construct a cohort patient by letter id (``"A"`` .. ``"J"``)."""
    key = patient_id.upper().replace("PATIENT", "")
    if key not in GLUCOSYM_COHORT:
        raise KeyError(
            f"unknown Glucosym patient {patient_id!r}; "
            f"available: {sorted(GLUCOSYM_COHORT)}")
    return IVPPatient(GLUCOSYM_COHORT[key], name=f"glucosym/{key}",
                      target_glucose=target_glucose)
