"""Batched (lock-step) kernels for the virtual patient models.

Every arithmetic step of the IVP (Kanderian) and UVA/Padova S2013 dynamics
lives here as a NumPy function over *column* state: the ODE state is a
``(n_states, B)`` matrix and every model parameter a ``(B,)`` vector, so one
kernel call advances ``B`` independent patients in lock step.  The scalar
classes in :mod:`repro.patients.ivp` and :mod:`repro.patients.t1d` are thin
``B=1`` views over these same functions, and the vectorized campaign engine
(:mod:`repro.simulation.vector`) calls them with whole batch rows — which is
what makes scalar and batched simulation element-wise identical *by
construction*: there is only one implementation of the dynamics.

Two numerical rules keep that exact:

- only size-invariant NumPy ufuncs are used (``+ - * /``, ``maximum``,
  ``sqrt``, ``log``, ``tanh``, ``power`` — per-element results do not depend
  on the batch width), never reductions across the batch axis;
- anything precomputed (parameter products, ``log(Gb)**r2``) is computed
  once in the column container and shared by both paths, so both consume
  the identical floating-point value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .base import GLUCOSE_FLOOR, PMOL_PER_UNIT, UU_PER_UNIT

__all__ = [
    "IVPColumns", "ivp_basal_rate", "ivp_init_state", "ivp_derivatives",
    "ivp_rk4_advance",
    "T1DColumns", "t1d_risk", "t1d_gastric_emptying", "t1d_derivatives",
    "t1d_rk4_advance", "t1d_solve_basal_state", "t1d_solve_state_at",
    "t1d_solve_kp1", "t1d_init_state", "t1d_basal_rate",
    "T1D_STATE_NAMES",
]


def _column(values) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


# ======================================================================
# IVP (Kanderian) model — state [I_sc, I_p, I_eff, G], shape (4, B)
# ======================================================================

@dataclass(frozen=True)
class IVPColumns:
    """Per-row IVP parameters as ``(B,)`` vectors (mixed patients batch)."""

    SI: np.ndarray
    GEZI: np.ndarray
    EGP: np.ndarray
    CI: np.ndarray
    tau1: np.ndarray
    tau2: np.ndarray
    p2: np.ndarray
    BW: np.ndarray
    # precomputed products, shared verbatim by scalar and batch paths
    tau1_CI: np.ndarray
    p2_SI: np.ndarray

    @classmethod
    def from_params(cls, params: Sequence) -> "IVPColumns":
        cols = {name: _column([getattr(p, name) for p in params])
                for name in ("SI", "GEZI", "EGP", "CI", "tau1", "tau2",
                             "p2", "BW")}
        return cls(tau1_CI=cols["tau1"] * cols["CI"],
                   p2_SI=cols["p2"] * cols["SI"], **cols)

    def __len__(self) -> int:
        return len(self.SI)


def ivp_basal_rate(cols: IVPColumns, glucose) -> np.ndarray:
    """Steady-state basal (U/h) holding *glucose*: ``CI*(EGP/G - GEZI)/SI``."""
    rate_uu_min = np.maximum(
        cols.CI * (cols.EGP / glucose - cols.GEZI) / cols.SI, 0.0)
    return rate_uu_min * 60.0 / UU_PER_UNIT


def ivp_init_state(cols: IVPColumns, init_glucose) -> np.ndarray:
    """Quasi-steady ``(4, B)`` state at *init_glucose* (insulin holds it)."""
    init_glucose = _column(init_glucose)
    basal_uu_min = ivp_basal_rate(cols, init_glucose) * UU_PER_UNIT / 60.0
    i_sc = basal_uu_min / cols.CI
    i_p = i_sc
    i_eff = cols.SI * i_p
    return np.stack([i_sc, i_p, i_eff,
                     init_glucose * np.ones_like(i_sc)])


def ivp_derivatives(cols: IVPColumns, x: np.ndarray, insulin_uu_min,
                    ra: Optional[np.ndarray] = None) -> np.ndarray:
    """State derivative; *ra* is the meal rate of appearance (mg/dL/min),
    omitted entirely when no row has an active meal."""
    i_sc, i_p, i_eff, g = x[0], x[1], x[2], x[3]
    d_isc = insulin_uu_min / cols.tau1_CI - i_sc / cols.tau1
    d_ip = (i_sc - i_p) / cols.tau2
    d_ieff = -cols.p2 * i_eff + cols.p2_SI * i_p
    d_g = -(cols.GEZI + np.maximum(i_eff, 0.0)) * g + cols.EGP
    if ra is not None:
        d_g = d_g + ra
    return np.stack([d_isc, d_ip, d_ieff, d_g])


def ivp_rk4_advance(cols: IVPColumns, x: np.ndarray, dt: float,
                    insulin_uu_min,
                    ra_stages: Optional[Tuple[np.ndarray, np.ndarray,
                                              np.ndarray]] = None
                    ) -> np.ndarray:
    """One clamped RK4 step of the IVP system over a ``(4, B)`` state.

    ``ra_stages`` holds the meal rate of appearance at the three RK4 stage
    times ``t``, ``t + dt/2`` and ``t + dt`` (None when meal-free).
    """
    ra0, ra_mid, ra1 = ra_stages if ra_stages is not None else (None,) * 3
    k1 = ivp_derivatives(cols, x, insulin_uu_min, ra0)
    k2 = ivp_derivatives(cols, x + dt / 2.0 * k1, insulin_uu_min, ra_mid)
    k3 = ivp_derivatives(cols, x + dt / 2.0 * k2, insulin_uu_min, ra_mid)
    k4 = ivp_derivatives(cols, x + dt * k3, insulin_uu_min, ra1)
    xn = x + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
    # concentrations cannot go negative; glucose gets a numerical floor
    np.maximum(xn, 0.0, out=xn)
    xn[3] = np.maximum(xn[3], GLUCOSE_FLOOR)
    return xn


# ======================================================================
# UVA/Padova S2013 model — 13-component state, shape (13, B)
# ======================================================================

#: state vector component order (matches repro.patients.t1d)
T1D_STATE_NAMES = ("Gp", "Gt", "Ip", "Il", "I1", "Id", "X", "Isc1", "Isc2",
                   "Gs", "Qsto1", "Qsto2", "Qgut")
GP, GT, IP, IL, I1, ID, XA, ISC1, ISC2, GS, QSTO1, QSTO2, QGUT = range(13)

_T1D_FIELDS = ("BW", "VG", "k1", "k2", "kp1", "kp2", "kp3", "ki", "Fsnc",
               "Vm0", "Vmx", "Km0", "p2u", "ke1", "ke2", "VI", "m1", "m2",
               "m3", "m4", "kd", "ka1", "ka2", "kmax", "kmin", "kabs",
               "kgri", "f", "b", "d", "ksc", "r1", "r2", "Gb", "Gth")


@dataclass(frozen=True)
class T1DColumns:
    """Per-row S2013 parameters as ``(B,)`` vectors."""

    BW: np.ndarray
    VG: np.ndarray
    k1: np.ndarray
    k2: np.ndarray
    kp1: np.ndarray
    kp2: np.ndarray
    kp3: np.ndarray
    ki: np.ndarray
    Fsnc: np.ndarray
    Vm0: np.ndarray
    Vmx: np.ndarray
    Km0: np.ndarray
    p2u: np.ndarray
    ke1: np.ndarray
    ke2: np.ndarray
    VI: np.ndarray
    m1: np.ndarray
    m2: np.ndarray
    m3: np.ndarray
    m4: np.ndarray
    kd: np.ndarray
    ka1: np.ndarray
    ka2: np.ndarray
    kmax: np.ndarray
    kmin: np.ndarray
    kabs: np.ndarray
    kgri: np.ndarray
    f: np.ndarray
    b: np.ndarray
    d: np.ndarray
    ksc: np.ndarray
    r1: np.ndarray
    r2: np.ndarray
    Gb: np.ndarray
    Gth: np.ndarray
    #: precomputed ``log(Gb) ** r2`` (one value, consumed by both paths)
    log_gb_pow: np.ndarray

    @classmethod
    def from_params(cls, params: Sequence) -> "T1DColumns":
        cols = {name: _column([getattr(p, name) for p in params])
                for name in _T1D_FIELDS}
        return cls(log_gb_pow=np.log(cols["Gb"]) ** cols["r2"], **cols)

    def __len__(self) -> int:
        return len(self.BW)


def t1d_risk(cols: T1DColumns, glucose) -> np.ndarray:
    """S2013 hypoglycemia risk amplification factor (dimensionless)."""
    glucose = _column(glucose)
    g = np.maximum(glucose, cols.Gth)
    diff = np.log(g) ** cols.r2 - cols.log_gb_pow
    return np.where(glucose >= cols.Gb, 0.0, 10.0 * diff * diff)


def t1d_gastric_emptying(cols: T1DColumns, qsto, last_meal_mg) -> np.ndarray:
    """Nonlinear gastric emptying rate ``kempt(Qsto)``; ``kmax`` pre-meal."""
    qsto = _column(qsto)
    last_meal_mg = _column(last_meal_mg)
    d_mg = np.where(last_meal_mg > 0.0, last_meal_mg, 1.0)
    alpha = 5.0 / (2.0 * d_mg * (1.0 - cols.b))
    beta = 5.0 / (2.0 * d_mg * cols.d)
    kempt = cols.kmin + (cols.kmax - cols.kmin) / 2.0 * (
        np.tanh(alpha * (qsto - cols.b * d_mg))
        - np.tanh(beta * (qsto - cols.d * d_mg)) + 2.0)
    return np.where(last_meal_mg <= 0.0, cols.kmax, kempt)


def t1d_derivatives(cols: T1DColumns, x: np.ndarray, insulin_uu_min,
                    last_meal_mg, basal_insulin) -> np.ndarray:
    """S2013 state derivative over a ``(13, B)`` state matrix."""
    glucose = x[GP] / cols.VG

    # gastro-intestinal tract
    qsto = x[QSTO1] + x[QSTO2]
    kempt = t1d_gastric_emptying(cols, qsto, last_meal_mg)
    d_qsto1 = -cols.kgri * x[QSTO1]
    d_qsto2 = cols.kgri * x[QSTO1] - kempt * x[QSTO2]
    d_qgut = kempt * x[QSTO2] - cols.kabs * x[QGUT]
    ra = cols.f * cols.kabs * x[QGUT] / cols.BW

    # insulin kinetics (subcutaneous -> plasma/liver)
    iir = insulin_uu_min * (PMOL_PER_UNIT / UU_PER_UNIT) / cols.BW
    d_isc1 = -(cols.kd + cols.ka1) * x[ISC1] + iir
    d_isc2 = cols.kd * x[ISC1] - cols.ka2 * x[ISC2]
    rai = cols.ka1 * x[ISC1] + cols.ka2 * x[ISC2]
    d_il = -(cols.m1 + cols.m3) * x[IL] + cols.m2 * x[IP]
    d_ip = -(cols.m2 + cols.m4) * x[IP] + cols.m1 * x[IL] + rai
    insulin = x[IP] / cols.VI  # pmol/L

    # delayed insulin signal and remote insulin action
    d_i1 = -cols.ki * (x[I1] - insulin)
    d_id = -cols.ki * (x[ID] - x[I1])
    d_xa = -cols.p2u * x[XA] + cols.p2u * (insulin - basal_insulin)

    # glucose kinetics
    egp = np.maximum(cols.kp1 - cols.kp2 * x[GP] - cols.kp3 * x[ID], 0.0)
    excretion = cols.ke1 * np.maximum(x[GP] - cols.ke2, 0.0)
    vm = cols.Vm0 + cols.Vmx * x[XA] * (1.0 + cols.r1 * t1d_risk(cols, glucose))
    uid = np.maximum(vm, 0.0) * x[GT] / (cols.Km0 + x[GT])
    d_gp = egp + ra - cols.Fsnc - excretion - cols.k1 * x[GP] + cols.k2 * x[GT]
    d_gt = -uid + cols.k1 * x[GP] - cols.k2 * x[GT]

    # subcutaneous (CGM) glucose
    d_gs = -cols.ksc * (x[GS] - glucose)
    return np.stack([d_gp, d_gt, d_ip, d_il, d_i1, d_id, d_xa, d_isc1,
                     d_isc2, d_gs, d_qsto1, d_qsto2, d_qgut])


def t1d_rk4_advance(cols: T1DColumns, x: np.ndarray, dt: float,
                    insulin_uu_min, last_meal_mg,
                    basal_insulin) -> np.ndarray:
    """One clamped RK4 step of the S2013 system over a ``(13, B)`` state."""
    def f(xs):
        return t1d_derivatives(cols, xs, insulin_uu_min, last_meal_mg,
                               basal_insulin)

    k1 = f(x)
    k2 = f(x + dt / 2.0 * k1)
    k3 = f(x + dt / 2.0 * k2)
    k4 = f(x + dt * k3)
    xn = x + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
    # all states are physical quantities except the remote insulin action X,
    # a deviation from basal that is legitimately negative
    x_action = xn[XA].copy()
    np.maximum(xn, 0.0, out=xn)
    xn[XA] = x_action
    xn[GP] = np.maximum(xn[GP], GLUCOSE_FLOOR * cols.VG)
    xn[GS] = np.maximum(xn[GS], GLUCOSE_FLOOR)
    return xn


def t1d_solve_basal_state(cols: T1DColumns, glucose
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form steady state ``(Gt, Ib, IIRb)`` at fasting *glucose*.

    Raises ``ValueError`` when any row's parameters cannot hold the
    requested glucose (negative basal insulin / infusion).
    """
    glucose = _column(glucose)
    gp = glucose * cols.VG
    a = cols.k2
    b = cols.k2 * cols.Km0 + cols.Vm0 - cols.k1 * gp
    c = -cols.k1 * gp * cols.Km0
    gt = (-b + np.sqrt(b * b - 4.0 * a * c)) / (2.0 * a)
    excretion = cols.ke1 * np.maximum(gp - cols.ke2, 0.0)
    egp_required = cols.Fsnc + excretion + cols.k1 * gp - cols.k2 * gt
    ib = (cols.kp1 - cols.kp2 * gp - egp_required) / cols.kp3
    if np.any(ib <= 0):
        bad = int(np.argmax(ib <= 0))
        raise ValueError(
            f"parameters cannot sustain fasting glucose "
            f"{float(np.broadcast_to(glucose, ib.shape)[bad])} mg/dL "
            f"(basal insulin would be {float(ib[bad]):.2f} pmol/L)")
    ip = ib * cols.VI
    il = cols.m2 * ip / (cols.m1 + cols.m3)
    iirb = (cols.m2 + cols.m4) * ip - cols.m1 * il
    if np.any(iirb <= 0):
        raise ValueError("steady state yields non-positive basal infusion")
    return gt, ib, iirb


def t1d_solve_state_at(cols: T1DColumns, glucose, ib_ref, risk_value,
                       iterations: int = 40
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fixed-point steady state ``(Gt, I, IIR)`` at *glucose* with the
    remote-action reference *ib_ref* (see the scalar docstring in
    :mod:`repro.patients.t1d`).

    Per-row convergence is frozen exactly like the scalar loop's ``break``:
    a converged row keeps its accepted iterate while the others keep
    relaxing, so ``B=1`` and batched solves agree bit for bit.
    """
    glucose = _column(glucose)
    ib_ref = _column(ib_ref)
    gp = glucose * cols.VG
    floor = 0.05 * ib_ref
    insulin = ib_ref * np.ones_like(gp)
    gt = gp * cols.k1 / cols.k2
    done = np.zeros(np.broadcast_shapes(gp.shape, insulin.shape), dtype=bool)
    for _ in range(iterations):
        if done.all():
            break
        x = insulin - ib_ref
        vm = np.maximum(cols.Vm0 + cols.Vmx * x * (1.0 + cols.r1 * risk_value),
                        0.05 * cols.Vm0)
        a = cols.k2
        b = cols.k2 * cols.Km0 + vm - cols.k1 * gp
        c = -cols.k1 * gp * cols.Km0
        gt_new = (-b + np.sqrt(b * b - 4.0 * a * c)) / (2.0 * a)
        excretion = cols.ke1 * np.maximum(gp - cols.ke2, 0.0)
        egp_required = cols.Fsnc + excretion + cols.k1 * gp - cols.k2 * gt_new
        insulin_new = np.maximum(
            (cols.kp1 - cols.kp2 * gp - egp_required) / cols.kp3, floor)
        converged = np.abs(insulin_new - insulin) < 1e-10
        gt = np.where(done, gt, gt_new)
        insulin = np.where(done, insulin,
                           np.where(converged, insulin_new,
                                    0.5 * insulin + 0.5 * insulin_new))
        done = done | converged
    ip = insulin * cols.VI
    il = cols.m2 * ip / (cols.m1 + cols.m3)
    iir = np.maximum((cols.m2 + cols.m4) * ip - cols.m1 * il, 0.0)
    return gt, insulin, iir


def t1d_solve_kp1(cols: T1DColumns, basal_insulin, glucose=None) -> np.ndarray:
    """``kp1`` that puts each row at steady state with *basal_insulin*."""
    glucose = cols.Gb if glucose is None else _column(glucose)
    gp = glucose * cols.VG
    a = cols.k2
    b = cols.k2 * cols.Km0 + cols.Vm0 - cols.k1 * gp
    c = -cols.k1 * gp * cols.Km0
    gt = (-b + np.sqrt(b * b - 4.0 * a * c)) / (2.0 * a)
    excretion = cols.ke1 * np.maximum(gp - cols.ke2, 0.0)
    egp_required = cols.Fsnc + excretion + cols.k1 * gp - cols.k2 * gt
    return egp_required + cols.kp2 * gp + cols.kp3 * basal_insulin


def t1d_basal_rate(cols: T1DColumns, glucose) -> np.ndarray:
    """Steady-state basal in U/h for a fasting *glucose* (closed form)."""
    _, _, iirb = t1d_solve_basal_state(cols, glucose)
    return iirb * cols.BW * 60.0 / PMOL_PER_UNIT


def t1d_init_state(cols: T1DColumns, init_glucose, target
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Quasi-steady ``(13, B)`` state at *init_glucose* with the chronic
    insulin reference anchored at *target*; returns ``(state, ib_ref)``."""
    init_glucose = _column(init_glucose)
    _, ib_ref, _ = t1d_solve_basal_state(cols, target)
    gt, insulin, iirb = t1d_solve_state_at(cols, init_glucose, ib_ref,
                                           t1d_risk(cols, init_glucose))
    gp = init_glucose * cols.VG
    ip = insulin * cols.VI
    il = cols.m2 * ip / (cols.m1 + cols.m3)
    isc1 = iirb / (cols.kd + cols.ka1)
    isc2 = cols.kd * isc1 / cols.ka2
    shape = np.broadcast_shapes(gp.shape, ip.shape)
    x = np.zeros((13,) + shape)
    x[GP] = gp
    x[GT] = gt
    x[IP] = ip
    x[IL] = il
    x[I1] = insulin
    x[ID] = insulin
    x[XA] = insulin - ib_ref
    x[ISC1] = isc1
    x[ISC2] = isc2
    x[GS] = init_glucose
    return x, ib_ref * np.ones(shape)
