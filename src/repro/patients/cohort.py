"""Patient cohort registry.

The paper evaluates on 20 patient profiles: 10 in the Glucosym simulator and
10 in the UVA-Padova T1DS2013 simulator (Section V-A).  This module provides
a uniform way to enumerate and construct them.
"""

from __future__ import annotations

from typing import Dict, List

from .base import PatientModel
from .ivp import GLUCOSYM_COHORT, glucosym_patient
from .t1d import T1DS2013_COHORT, t1d_patient

__all__ = ["COHORTS", "patient_ids", "make_patient", "all_patients"]

#: cohort name -> list of patient ids
COHORTS: Dict[str, List[str]] = {
    "glucosym": sorted(GLUCOSYM_COHORT),
    "t1ds2013": sorted(T1DS2013_COHORT),
}


def patient_ids(cohort: str) -> List[str]:
    """Patient ids of *cohort* (``"glucosym"`` or ``"t1ds2013"``)."""
    try:
        return list(COHORTS[cohort])
    except KeyError:
        raise KeyError(
            f"unknown cohort {cohort!r}; available: {sorted(COHORTS)}") from None


def make_patient(cohort: str, patient_id: str,
                 target_glucose: float = 120.0) -> PatientModel:
    """Construct one virtual patient from a cohort."""
    if cohort == "glucosym":
        return glucosym_patient(patient_id, target_glucose=target_glucose)
    if cohort == "t1ds2013":
        return t1d_patient(patient_id, target_glucose=target_glucose)
    raise KeyError(f"unknown cohort {cohort!r}; available: {sorted(COHORTS)}")


def all_patients(cohort: str, target_glucose: float = 120.0) -> List[PatientModel]:
    """Construct every patient in *cohort*."""
    return [make_patient(cohort, pid, target_glucose) for pid in patient_ids(cohort)]
