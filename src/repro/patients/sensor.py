"""Continuous Glucose Monitor (CGM) sensor model.

The paper assumes sensor data received by controller and monitor are
fault-free (Section II, "Hazard Prediction"), so the default sensor is a
pass-through of the patient model's sensor-compartment glucose.  For
extension studies we also provide the standard additive error model used in
the CGM literature (e.g. Facchinetti et al.): a slowly-varying calibration
gain/offset plus AR(1)-correlated measurement noise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["CGMSensor"]

#: physical reporting range of common CGM hardware (mg/dL)
CGM_RANGE = (40.0, 400.0)


class CGMSensor:
    """CGM with optional calibration error and AR(1) noise.

    Parameters
    ----------
    noise_std:
        Standard deviation of the white-noise component (mg/dL).  0 disables
        noise entirely (the paper's setting).
    ar_coeff:
        AR(1) correlation of successive noise samples, in ``[0, 1)``.
    gain, offset:
        Multiplicative/additive calibration error.
    seed:
        Seed for the noise process (noise is deterministic given the seed).
    clip:
        When True (default), readings saturate at the physical CGM range.
    """

    def __init__(self, noise_std: float = 0.0, ar_coeff: float = 0.7,
                 gain: float = 1.0, offset: float = 0.0,
                 seed: Optional[int] = None, clip: bool = True):
        if noise_std < 0:
            raise ValueError(f"noise_std must be >= 0, got {noise_std}")
        if not 0.0 <= ar_coeff < 1.0:
            raise ValueError(f"ar_coeff must be in [0, 1), got {ar_coeff}")
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        self.noise_std = float(noise_std)
        self.ar_coeff = float(ar_coeff)
        self.gain = float(gain)
        self.offset = float(offset)
        self.clip = clip
        self._rng = np.random.default_rng(seed)
        self._noise_state = 0.0

    @property
    def is_ideal(self) -> bool:
        """True when the sensor reproduces the input exactly."""
        return self.noise_std == 0.0 and self.gain == 1.0 and self.offset == 0.0

    def reset(self, seed: Optional[int] = None) -> None:
        """Restart the noise process."""
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        self._noise_state = 0.0

    def measure(self, true_glucose: float) -> float:
        """One CGM reading for the given interstitial glucose (mg/dL)."""
        if true_glucose < 0:
            raise ValueError(f"glucose must be >= 0, got {true_glucose}")
        reading = self.gain * true_glucose + self.offset
        if self.noise_std > 0:
            innovation = self._rng.normal(0.0, self.noise_std)
            self._noise_state = (self.ar_coeff * self._noise_state
                                 + np.sqrt(1.0 - self.ar_coeff ** 2) * innovation)
            reading += self._noise_state
        if self.clip:
            reading = float(np.clip(reading, *CGM_RANGE))
        return float(reading)
