"""Section VI ablations.

- **Adversarial training** (Table-less, Section VI): thresholds refined from
  faulty traces vs. thresholds from fault-free data only.  The paper reports
  +11.3% EDR and +8.5% F1 from adversarial training.
- **Binary vs. multi-class ML monitors** (Section VI-1): retraining the ML
  baselines to also predict the hazard type costs them accuracy (>= 14.3%
  FNR increase), while CAWT gets the type for free from the SCS.
- **Fault-free generalisation** (Section VI-2): monitors evaluated on
  fault-free operation, where anything but silence is a false alarm.
"""

from __future__ import annotations

from ..core import cawt_monitor, learn_thresholds
from ..metrics import reaction_stats, traces_confusion
from ..simulation import replay_many
from .config import ExperimentConfig
from .data import ml_monitors, platform_data, train_test_split
from .render import ExperimentResult

__all__ = ["run_adversarial_ablation", "run_multiclass_ablation",
           "run_fault_free_generalisation"]


def run_adversarial_ablation(config: ExperimentConfig) -> ExperimentResult:
    """CAWT thresholds from faulty (adversarial) vs fault-free data."""
    data = platform_data(config)
    train, test = train_test_split(data)

    variants = {}
    for pid in config.patients:
        ff = list(data.fault_free_by_patient[pid])
        train_p = [t for t in train if t.patient_id == pid]
        variants.setdefault("adversarial", {})[pid] = learn_thresholds(
            train_p + ff, window=config.mining_window).thresholds
        # fault-free only: no hazardous traces -> learning falls back to
        # safe-side bounds / defaults
        variants.setdefault("fault-free", {})[pid] = learn_thresholds(
            ff, window=config.mining_window).thresholds

    result = ExperimentResult(
        title=f"Section VI — adversarial-training ablation ({config.platform})",
        headers=("training data", "FPR", "FNR", "ACC", "F1", "EDR"))
    for name, thresholds_by_pid in variants.items():
        alerts, eval_traces = [], []
        for pid in config.patients:
            monitor = cawt_monitor(thresholds_by_pid[pid])
            test_p = [t for t in test if t.patient_id == pid]
            alerts.extend(replay_many(monitor, test_p))
            eval_traces.extend(test_p)
        cm = traces_confusion(eval_traces, alerts, delta=config.tolerance)
        rs = reaction_stats(eval_traces, alerts)
        result.rows.append((name,) + cm.as_row()
                           + (rs.early_detection_rate,))
    result.notes.append(
        "paper: adversarial training improves EDR by 11.3% and overall F1 "
        "by 8.5% over thresholds learned from fault-free data")
    return result


def run_multiclass_ablation(config: ExperimentConfig) -> ExperimentResult:
    """Binary vs multi-class heads for the ML monitors (Section VI-1)."""
    data = platform_data(config)
    _, test = train_test_split(data)
    result = ExperimentResult(
        title=f"Section VI-1 — binary vs multi-class ML monitors "
              f"({config.platform})",
        headers=("monitor", "head", "FPR", "FNR", "ACC", "F1"))
    for multiclass in (False, True):
        for name, monitor in ml_monitors(data, multiclass=multiclass).items():
            alerts = replay_many(monitor, test)
            cm = traces_confusion(test, alerts, delta=config.tolerance)
            head = "multi-class" if multiclass else "binary"
            result.rows.append((name, head) + cm.as_row())
    result.notes.append(
        "paper: multi-class retraining costs the ML baselines >= 14.3% FNR "
        "and 0.8-2.3% accuracy; CAWT is unaffected (hazard types come from "
        "the SCS)")
    return result


def run_fault_free_generalisation(config: ExperimentConfig) -> ExperimentResult:
    """False-alarm behaviour on fault-free operation (Section VI-2).

    Fault-free runs in this reproduction contain no hazards, so the paper's
    F1-drop comparison degenerates; we report the specificity side — the
    fraction of fault-free cycles each monitor wrongly flags — which is the
    operative failure mode ("overfitting to the faulty training
    distribution", see DESIGN.md).
    """
    data = platform_data(config)
    train, _ = train_test_split(data)
    result = ExperimentResult(
        title=f"Section VI-2 — behaviour on fault-free data "
              f"({config.platform})",
        headers=("monitor", "alert_fraction", "traces_with_alerts"))

    monitors = dict(ml_monitors(data))
    thresholds = {}
    for pid in config.patients:
        train_p = [t for t in train if t.patient_id == pid]
        thresholds[pid] = learn_thresholds(
            train_p + list(data.fault_free_by_patient[pid]),
            window=config.mining_window).thresholds

    for name, monitor in monitors.items():
        alerts = replay_many(monitor, data.fault_free)
        total = sum(a.sum() for a in alerts)
        n_samples = sum(len(a) for a in alerts)
        noisy = sum(1 for a in alerts if a.any())
        result.rows.append((name, total / n_samples, noisy))

    alerts, total, n_samples, noisy = [], 0, 0, 0
    for trace in data.fault_free:
        monitor = cawt_monitor(thresholds[trace.patient_id])
        seq = replay_many(monitor, [trace])[0]
        total += seq.sum()
        n_samples += len(seq)
        noisy += int(seq.any())
    result.rows.append(("CAWT", total / n_samples, noisy))
    result.notes.append(
        "paper: fully-supervised ML monitors lose >= 48.9% F1 when moved to "
        "fault-free data; the weakly-supervised CAWT loses 3.9%")
    return result
