"""Experiment configuration and scale presets.

``full`` is the paper's scale (882 injections x 10 patients per platform);
the smaller presets subsample the same grids so CI-sized runs exercise every
code path with the same structure.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..patients import patient_ids

__all__ = ["ExperimentConfig", "PRESETS"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment modules.

    Attributes
    ----------
    platform:
        ``"glucosym"`` (OpenAPS) or ``"t1ds2013"`` (Basal-Bolus).
    patients:
        Cohort subset to run.
    stride:
        Campaign subsampling stride (1 = the paper's 882 per patient).
    n_steps:
        Cycles per simulation (paper: 150).
    folds:
        Cross-validation folds for threshold learning (paper: 4).
    tolerance:
        Tolerance window delta in cycles for sample-level metrics.
    mining_window:
        Pre-hazard mining window (cycles) for threshold learning.
    mpc_horizon:
        MPC baseline prediction horizon (cycles).
    lstm_window:
        LSTM input window k (paper: 6).
    ml_epochs:
        Training epochs for the MLP/LSTM baselines.
    seed:
        Seed for ML training.
    workers:
        Process-pool size for campaign simulation, monitor replay,
        threshold learning — including the per-fold fits of
        :func:`~repro.core.learn_fold_thresholds` — and the DT/MLP/LSTM
        training jobs (:func:`~repro.ml.run_training_jobs`); 1 = serial.
        Results are element-wise identical for every worker count, so
        this is excluded from :meth:`cache_key`.
    batch_size:
        Lock-step vectorization width; 1 = the scalar loops.  Batches
        campaign and fault-free simulation — including the monitored and
        mitigated Table VII closed loop
        (:mod:`repro.simulation.vector`) — offline monitor replay for
        Tables V/VI and Fig. 9 (:mod:`repro.simulation.vector_replay`)
        and the rule-context mining behind CAWT threshold learning
        (:func:`~repro.core.learning.mine_rule_samples`).  Every batched
        path is element-wise identical to its scalar loop for every
        batch size, so this too is excluded from :meth:`cache_key`.
        Composes multiplicatively with ``workers``.
    dataset_dir:
        When set, campaign and fault-free traces are streamed into an
        on-disk dataset under this root (one subdirectory per
        :meth:`dataset_slug`) on the first run and lazily reopened —
        without resimulating — by every later experiment invocation, in
        this process or the next ("run once, replay many").  The ML
        feature matrices are likewise materialised memory-mapped under
        ``<slug>/ml/`` so training workers share pages instead of
        holding private copies.  Traces and matrices are identical to
        the in-memory path, so this too is excluded from
        :meth:`cache_key`.
    """

    platform: str = "glucosym"
    patients: Tuple[str, ...] = ("A", "B", "C")
    stride: int = 7
    n_steps: int = 150
    folds: int = 4
    tolerance: int = 24
    mining_window: int = 12
    mpc_horizon: int = 24
    lstm_window: int = 6
    ml_epochs: int = 12
    seed: int = 0
    workers: int = 1
    batch_size: int = 1
    dataset_dir: Optional[str] = None

    def __post_init__(self):
        if self.stride < 1 or self.folds < 2 or self.n_steps < 20:
            raise ValueError("invalid experiment configuration")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}")

    @property
    def scenarios_per_patient(self) -> int:
        return (882 + self.stride - 1) // self.stride

    def cache_key(self) -> tuple:
        """Key identifying the simulation data this config needs."""
        return (self.platform, self.patients, self.stride, self.n_steps)

    def dataset_slug(self) -> str:
        """Directory name for this config's on-disk dataset (one per
        simulation grid, shared by every worker count).  The cohort digest
        keeps two different patient subsets of the same size from
        colliding on one directory."""
        cohort = hashlib.sha256(
            "/".join(self.patients).encode("utf-8")).hexdigest()[:8]
        return (f"{self.platform}-p{len(self.patients)}-{cohort}"
                f"-s{self.stride}-n{self.n_steps}")

    @classmethod
    def preset(cls, name: str, platform: str = "glucosym",
               workers: int = 1, batch_size: int = 1) -> "ExperimentConfig":
        """Build a named preset for one platform."""
        if name not in PRESETS:
            raise KeyError(f"unknown preset {name!r}; available: {sorted(PRESETS)}")
        cohort = patient_ids(platform)
        spec = PRESETS[name]
        patients = tuple(cohort[:spec["n_patients"]])
        return cls(platform=platform, patients=patients, stride=spec["stride"],
                   folds=spec["folds"], ml_epochs=spec["ml_epochs"],
                   workers=workers, batch_size=batch_size)


#: preset name -> scale parameters.  ``ci`` is the continuous-integration
#: grid: big enough (2 patients x 42 scenarios) to amortise worker start-up
#: and exercise multi-patient sharding, small enough to finish in seconds.
PRESETS = {
    "smoke": {"n_patients": 1, "stride": 63, "folds": 2, "ml_epochs": 3},
    "ci": {"n_patients": 2, "stride": 21, "folds": 2, "ml_epochs": 3},
    "small": {"n_patients": 3, "stride": 7, "folds": 4, "ml_epochs": 10},
    "medium": {"n_patients": 10, "stride": 7, "folds": 4, "ml_epochs": 15},
    "full": {"n_patients": 10, "stride": 1, "folds": 4, "ml_epochs": 25},
}
