"""Table V — CAWT vs. the non-ML baseline monitors.

Sample-level hazard-prediction accuracy (tolerance window) of the
context-aware monitor with learned thresholds against Guideline, MPC and
CAWOT, on one platform.  CAWT uses patient-specific thresholds under k-fold
cross-validation (Section V-B).

All monitor replay and threshold mining here scale with
``config.workers`` (forked pool) and ``config.batch_size`` (lock-step
batches, :mod:`repro.simulation.vector_replay`) — both wall-clock knobs
with element-wise identical results.
"""

from __future__ import annotations

from ..metrics import traces_confusion
from ..simulation import replay_campaign
from .config import ExperimentConfig
from .data import baseline_monitors, cawt_cv_replay, platform_data
from .render import ExperimentResult

__all__ = ["run_table5"]

PAPER_TABLE5 = {
    # platform -> monitor -> (FPR, FNR, ACC, F1)
    "glucosym": {
        "Guideline": (0.02, 0.32, 0.95, 0.73),
        "MPC": (0.02, 0.33, 0.95, 0.73),
        "CAWOT": (0.01, 0.21, 0.96, 0.84),
        "CAWT": (0.01, 0.01, 0.99, 0.97),
    },
    "t1ds2013": {
        "Guideline": (0.99, 0.00, 0.26, 0.41),
        "MPC": (0.01, 0.01, 0.99, 0.96),
        "CAWOT": (0.05, 0.01, 0.96, 0.87),
        "CAWT": (0.01, 0.02, 1.00, 0.98),
    },
}


def run_table5(config: ExperimentConfig) -> ExperimentResult:
    data = platform_data(config)
    result = ExperimentResult(
        title=f"Table V — CAWT vs non-ML monitors ({config.platform})",
        headers=("monitor", "n_sim", "hazard%", "FPR", "FNR", "ACC", "F1"))

    n_sim = len(data.traces)
    hazard_pct = 100.0 * data.hazard_fraction
    monitors = baseline_monitors(config)
    alert_map = replay_campaign(monitors, data.traces,
                                workers=config.workers,
                                batch_size=config.batch_size)
    for name in monitors:
        cm = traces_confusion(data.traces, alert_map[name],
                              delta=config.tolerance)
        result.rows.append((name, n_sim, hazard_pct) + cm.as_row())

    eval_traces, alerts = cawt_cv_replay(data)
    cm = traces_confusion(eval_traces, alerts, delta=config.tolerance)
    result.rows.append(("CAWT", n_sim, hazard_pct) + cm.as_row())

    paper = PAPER_TABLE5.get(config.platform, {})
    for monitor, values in paper.items():
        result.notes.append(
            f"paper {monitor}: FPR {values[0]}, FNR {values[1]}, "
            f"ACC {values[2]}, F1 {values[3]}")
    return result
