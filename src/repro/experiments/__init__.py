"""Experiment harness: one module per table/figure of the paper.

All experiments take an :class:`~repro.experiments.config.ExperimentConfig`
(scale presets: ``smoke``/``small``/``medium``/``full``) and return an
:class:`~repro.experiments.render.ExperimentResult` whose ``text()`` prints
the reproduced rows next to the paper's values.
"""

from .config import ExperimentConfig, PRESETS
from .data import clear_cache, platform_data
from .discussion import (
    run_adversarial_ablation,
    run_fault_free_generalisation,
    run_multiclass_ablation,
)
from .fig3 import loss_curves, run_fig3
from .fig9 import run_fig9
from .overhead import run_overhead
from .render import ExperimentResult
from .resilience import run_fig7, run_fig8
from .search import run_search, search_vs_grid
from .table5 import run_table5
from .table6 import run_table6
from .table7 import run_table7
from .table8 import run_table8

__all__ = [
    "ExperimentConfig",
    "PRESETS",
    "clear_cache",
    "platform_data",
    "run_adversarial_ablation",
    "run_fault_free_generalisation",
    "run_multiclass_ablation",
    "loss_curves",
    "run_fig3",
    "run_fig9",
    "run_overhead",
    "ExperimentResult",
    "run_fig7",
    "run_fig8",
    "run_search",
    "search_vs_grid",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
]
