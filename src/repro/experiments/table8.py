"""Table VIII — patient-specific vs. population-based thresholds.

For selected patients, compares the CAWT monitor with thresholds learned
from that patient's own traces (cross-validated) against thresholds learned
from a 70% population split that excludes the patient (Section VI).
"""

from __future__ import annotations

from typing import Sequence

from ..core import cawt_monitor, learn_fold_thresholds, learn_thresholds
from ..metrics import reaction_stats, traces_confusion
from ..simulation import kfold_split, replay_many
from .config import ExperimentConfig
from .data import platform_data
from .render import ExperimentResult

__all__ = ["run_table8"]

PAPER_NOTE = ("paper (patients A/H/J): patient-specific thresholds win with "
              "up to +3.1% ACC, +5.3% EDR and +24.4% F1; population "
              "thresholds keep FNR high (0.21-0.28)")


def run_table8(config: ExperimentConfig,
               target_patients: Sequence[str] = ()) -> ExperimentResult:
    data = platform_data(config)
    targets = tuple(target_patients) or config.patients[:3]
    result = ExperimentResult(
        title=f"Table VIII — patient-specific vs population thresholds "
              f"({config.platform})",
        headers=("patient", "thresholds", "FPR", "FNR", "ACC", "F1", "EDR"))

    for pid in targets:
        patient_traces = data.by_patient[pid]
        ff = list(data.fault_free_by_patient[pid])

        # patient-specific: k-fold CV within the patient's own traces,
        # the folds fitted concurrently (identical thresholds at any
        # worker count, see learn_fold_thresholds)
        eval_traces, alerts = [], []
        fold_results = learn_fold_thresholds(
            patient_traces, config.folds, fault_free=ff,
            window=config.mining_window, workers=config.workers)
        for fold, learned in enumerate(fold_results):
            _, test = kfold_split(patient_traces, config.folds, fold)
            alerts.extend(replay_many(cawt_monitor(learned.thresholds), test,
                                      workers=config.workers))
            eval_traces.extend(test)
        cm = traces_confusion(eval_traces, alerts, delta=config.tolerance)
        rs = reaction_stats(eval_traces, alerts)
        result.rows.append((pid, "patient-specific") + cm.as_row()
                           + (rs.early_detection_rate,))

        # population: learned on the other patients' data only
        others = [t for other, traces in data.by_patient.items()
                  if other != pid for t in traces]
        others_ff = [t for other, traces in data.fault_free_by_patient.items()
                     if other != pid for t in traces]
        if others:
            thresholds = learn_thresholds(
                others + others_ff, window=config.mining_window,
                workers=config.workers).thresholds
            alerts = replay_many(cawt_monitor(thresholds), patient_traces,
                                 workers=config.workers)
            cm = traces_confusion(patient_traces, alerts, delta=config.tolerance)
            rs = reaction_stats(patient_traces, alerts)
            result.rows.append((pid, "population") + cm.as_row()
                               + (rs.early_detection_rate,))

    result.notes.append(PAPER_NOTE)
    return result
