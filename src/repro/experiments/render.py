"""Uniform experiment-result container and text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..metrics import render_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """One reproduced table/figure: rows plus free-form notes."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def text(self) -> str:
        parts = [self.title, "=" * len(self.title),
                 render_table(self.headers, self.rows)]
        if self.notes:
            parts.append("")
            parts.extend(f"* {note}" for note in self.notes)
        return "\n".join(parts)

    def row_dict(self, key_column: int = 0) -> dict:
        """Rows keyed by their first (or chosen) column, for assertions."""
        return {row[key_column]: row for row in self.rows}
