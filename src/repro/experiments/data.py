"""Shared simulation data and trained monitors, cached per configuration.

Every experiment needs the same expensive artifacts: the fault-injection
campaign traces (simulated once, without a monitor — monitors are passive
and can be *replayed*, see :mod:`repro.simulation.replay`), the fault-free
reference runs, per-patient CAWT thresholds, and the trained ML baselines.
This module builds and memoises them so the whole table/figure suite costs
one campaign per platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..baselines import GuidelineMonitor, MPCMonitor
from ..core import cawot_monitor, cawt_monitor, learn_thresholds
from ..core.monitor import SafetyMonitor
from ..fi import CampaignConfig, INITIAL_GLUCOSE_VALUES, generate_campaign
from ..ml import train_dt_monitor, train_lstm_monitor, train_mlp_monitor
from ..simulation import (BASELINE_CACHE, kfold_split, replay_many,
                          run_campaign, run_fault_free)
from .config import ExperimentConfig

__all__ = ["PlatformData", "platform_data", "clear_cache",
           "cawt_cv_replay", "baseline_monitors", "ml_monitors",
           "train_test_split"]

_DATA_CACHE: Dict[tuple, "PlatformData"] = {}
_ML_CACHE: Dict[tuple, Dict[str, SafetyMonitor]] = {}


@dataclass
class PlatformData:
    """Campaign + fault-free traces for one (platform, scale) choice."""

    config: ExperimentConfig
    traces: List            # faulty campaign traces, patient-major order
    fault_free: List        # fault-free runs over the init-BG grid
    by_patient: Dict[str, List]
    fault_free_by_patient: Dict[str, List]

    @property
    def hazard_fraction(self) -> float:
        return sum(t.hazardous for t in self.traces) / len(self.traces)


def platform_data(config: ExperimentConfig) -> PlatformData:
    """Simulate (or fetch cached) campaign data for *config*."""
    key = config.cache_key()
    if key in _DATA_CACHE:
        return _DATA_CACHE[key]
    campaign = generate_campaign(CampaignConfig(stride=config.stride))
    traces = run_campaign(config.platform, config.patients, campaign,
                          n_steps=config.n_steps, workers=config.workers)
    fault_free = run_fault_free(config.platform, config.patients,
                                INITIAL_GLUCOSE_VALUES, n_steps=config.n_steps,
                                workers=config.workers)
    by_patient: Dict[str, List] = {pid: [] for pid in config.patients}
    for trace in traces:
        by_patient[trace.patient_id].append(trace)
    ff_by_patient: Dict[str, List] = {pid: [] for pid in config.patients}
    for trace in fault_free:
        ff_by_patient[trace.patient_id].append(trace)
    data = PlatformData(config=config, traces=traces, fault_free=fault_free,
                        by_patient=by_patient,
                        fault_free_by_patient=ff_by_patient)
    _DATA_CACHE[key] = data
    return data


def clear_cache() -> None:
    """Drop all cached simulations and models (tests / memory control)."""
    _DATA_CACHE.clear()
    _ML_CACHE.clear()
    BASELINE_CACHE.clear()


# ----------------------------------------------------------------------
# monitors
# ----------------------------------------------------------------------

def cawt_cv_replay(data: PlatformData,
                   loss: str = "tmee") -> Tuple[List, List[np.ndarray]]:
    """Patient-specific CAWT under k-fold cross-validation.

    For each patient, thresholds are learned on the training folds (plus the
    patient's fault-free runs) and replayed on the held-out fold.  Returns
    the evaluation traces and matching alert sequences, covering every
    campaign trace exactly once.
    """
    config = data.config
    eval_traces: List = []
    alerts: List[np.ndarray] = []
    for pid in config.patients:
        patient_traces = data.by_patient[pid]
        ff = data.fault_free_by_patient[pid]
        for fold in range(config.folds):
            train, test = kfold_split(patient_traces, config.folds, fold)
            result = learn_thresholds(train + ff, loss=loss,
                                      window=config.mining_window)
            monitor = cawt_monitor(result.thresholds)
            alerts.extend(replay_many(monitor, test))
            eval_traces.extend(test)
    return eval_traces, alerts


def cawt_full_thresholds(data: PlatformData, pid: str,
                         loss: str = "tmee") -> dict:
    """Thresholds learned from all of one patient's data (for mitigation)."""
    result = learn_thresholds(
        data.by_patient[pid] + data.fault_free_by_patient[pid], loss=loss,
        window=data.config.mining_window)
    return result.thresholds


def baseline_monitors(config: ExperimentConfig) -> Dict[str, SafetyMonitor]:
    """The non-ML baselines: CAWOT, Guideline, MPC."""
    return {
        "CAWOT": cawot_monitor(),
        "Guideline": GuidelineMonitor(),
        "MPC": MPCMonitor(horizon_steps=config.mpc_horizon),
    }


def train_test_split(data: PlatformData) -> Tuple[List, List]:
    """The fold-0 split of the campaign (used for ML training)."""
    return kfold_split(data.traces, data.config.folds, 0)


def ml_monitors(data: PlatformData,
                multiclass: bool = False) -> Dict[str, SafetyMonitor]:
    """Trained DT/MLP/LSTM monitors (cached per config and head type)."""
    key = data.config.cache_key() + (data.config.ml_epochs, multiclass)
    if key in _ML_CACHE:
        return _ML_CACHE[key]
    train, _ = train_test_split(data)
    config = data.config
    monitors = {
        "DT": train_dt_monitor(train, multiclass=multiclass, max_depth=8),
        "MLP": train_mlp_monitor(train, multiclass=multiclass,
                                 seed=config.seed,
                                 max_epochs=config.ml_epochs),
        "LSTM": train_lstm_monitor(train, k=config.lstm_window,
                                   multiclass=multiclass, seed=config.seed,
                                   max_epochs=config.ml_epochs),
    }
    _ML_CACHE[key] = monitors
    return monitors
