"""Shared simulation data and trained monitors, cached per configuration.

Every experiment needs the same expensive artifacts: the fault-injection
campaign traces (simulated once, without a monitor — monitors are passive
and can be *replayed*, see :mod:`repro.simulation.replay`), the fault-free
reference runs, per-patient CAWT thresholds, and the trained ML baselines.
This module builds and memoises them so the whole table/figure suite costs
one campaign per platform.

Two backing modes, selected by ``ExperimentConfig.dataset_dir``:

- **in-memory** (default): traces live in lists for the process lifetime;
- **on-disk**: the campaign is streamed through a
  :class:`~repro.simulation.store.CampaignStoreWriter` on first run and
  lazily reopened as a :class:`~repro.simulation.store.TraceDataset` by
  every later invocation — including in *other* processes — so a grid is
  simulated once and replayed many times ("run once, replay many").  A
  fingerprint check guarantees the directory actually holds the campaign
  the config describes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..baselines import GuidelineMonitor, MPCMonitor
from ..core import (cawot_monitor, cawt_monitor, learn_fold_thresholds,
                    learn_thresholds)
from ..core.monitor import SafetyMonitor
from ..fi import CampaignConfig, INITIAL_GLUCOSE_VALUES, generate_campaign
from ..ml import TrainingJob, run_training_jobs
from ..simulation import (BASELINE_CACHE, CampaignStoreError,
                          CampaignStoreWriter, TraceDataset, kfold_split,
                          plan_campaign, plan_fault_free, plan_fingerprint,
                          replay_many, run_campaign, run_fault_free)
from ..simulation.store import manifest_path
from .config import ExperimentConfig

__all__ = ["PlatformData", "platform_data", "clear_cache",
           "cawt_cv_replay", "baseline_monitors", "ml_baseline_jobs",
           "ml_monitors", "train_test_split"]

_DATA_CACHE: Dict[tuple, "PlatformData"] = {}
_ML_CACHE: Dict[tuple, Dict[str, SafetyMonitor]] = {}


@dataclass
class PlatformData:
    """Campaign + fault-free traces for one (platform, scale) choice.

    ``traces`` / ``fault_free`` are in-memory lists by default, or lazy
    :class:`~repro.simulation.store.TraceDataset` sequences when the config
    carries a ``dataset_dir`` — every consumer treats them uniformly as
    sequences in (patient, scenario) plan order.
    """

    config: ExperimentConfig
    traces: Sequence            # faulty campaign traces, patient-major order
    fault_free: Sequence        # fault-free runs over the init-BG grid
    by_patient: Dict[str, Sequence]
    fault_free_by_patient: Dict[str, Sequence]

    @property
    def hazard_fraction(self) -> float:
        return sum(t.hazardous for t in self.traces) / len(self.traces)


def _group_by_patient(traces: Sequence,
                      patients: Sequence[str]) -> Dict[str, List]:
    grouped: Dict[str, List] = {pid: [] for pid in patients}
    for trace in traces:
        grouped[trace.patient_id].append(trace)
    return grouped


def _ensure_store(directory: str, plan, folds: int,
                  simulate: Callable[[CampaignStoreWriter], None]
                  ) -> TraceDataset:
    """Open the dataset at *directory*, writing it first if absent.

    The reopened dataset's fingerprint must match the plan's — a mismatch
    means the directory holds some *other* campaign and is an error, not
    something to silently overwrite.
    """
    expected = plan_fingerprint(plan)
    if not os.path.exists(manifest_path(directory)):
        with CampaignStoreWriter(directory, plan.platform, plan.n_steps,
                                 folds=folds) as sink:
            simulate(sink)
    dataset = TraceDataset.open(directory)
    if dataset.fingerprint != expected:
        raise CampaignStoreError(
            f"dataset at {directory} holds a different campaign "
            f"(fingerprint {dataset.fingerprint[:12]}..., expected "
            f"{expected[:12]}...); point dataset_dir elsewhere or remove "
            "the stale directory")
    if dataset.folds != folds:
        raise CampaignStoreError(
            f"dataset at {directory} was written with "
            f"folds={dataset.folds} but the config expects folds={folds}; "
            "its recorded fold keys would describe the wrong split — use "
            "a different dataset_dir or remove the stale directory")
    return dataset


def _store_backed_data(config: ExperimentConfig) -> PlatformData:
    """Run-once/replay-many: stream the grid to disk, reopen lazily."""
    root = os.path.join(config.dataset_dir, config.dataset_slug())
    scenarios = generate_campaign(CampaignConfig(stride=config.stride))
    campaign_plan = plan_campaign(config.platform, config.patients,
                                  scenarios, n_steps=config.n_steps)
    ff_plan = plan_fault_free(config.platform, config.patients,
                              INITIAL_GLUCOSE_VALUES, n_steps=config.n_steps)
    traces = _ensure_store(
        os.path.join(root, "campaign"), campaign_plan, config.folds,
        lambda sink: run_campaign(config.platform, config.patients,
                                  scenarios, n_steps=config.n_steps,
                                  workers=config.workers,
                                  batch_size=config.batch_size, sink=sink))
    fault_free = _ensure_store(
        os.path.join(root, "fault_free"), ff_plan, config.folds,
        lambda sink: run_fault_free(config.platform, config.patients,
                                    INITIAL_GLUCOSE_VALUES,
                                    n_steps=config.n_steps,
                                    workers=config.workers,
                                    batch_size=config.batch_size, sink=sink))
    return PlatformData(
        config=config, traces=traces, fault_free=fault_free,
        by_patient={pid: traces.by_patient(pid) for pid in config.patients},
        fault_free_by_patient={pid: fault_free.by_patient(pid)
                               for pid in config.patients})


def _in_memory_data(config: ExperimentConfig) -> PlatformData:
    campaign = generate_campaign(CampaignConfig(stride=config.stride))
    traces = run_campaign(config.platform, config.patients, campaign,
                          n_steps=config.n_steps, workers=config.workers,
                          batch_size=config.batch_size)
    fault_free = run_fault_free(config.platform, config.patients,
                                INITIAL_GLUCOSE_VALUES, n_steps=config.n_steps,
                                workers=config.workers,
                                batch_size=config.batch_size)
    return PlatformData(
        config=config, traces=traces, fault_free=fault_free,
        by_patient=_group_by_patient(traces, config.patients),
        fault_free_by_patient=_group_by_patient(fault_free, config.patients))


def platform_data(config: ExperimentConfig) -> PlatformData:
    """Simulate (or fetch cached / stored) campaign data for *config*."""
    key = config.cache_key() + (config.dataset_dir,)
    if key in _DATA_CACHE:
        return _DATA_CACHE[key]
    if config.dataset_dir:
        data = _store_backed_data(config)
    else:
        data = _in_memory_data(config)
    _DATA_CACHE[key] = data
    return data


def clear_cache() -> None:
    """Drop all cached simulations and models (tests / memory control)."""
    _DATA_CACHE.clear()
    _ML_CACHE.clear()
    BASELINE_CACHE.clear()


# ----------------------------------------------------------------------
# monitors
# ----------------------------------------------------------------------

def cawt_cv_replay(data: PlatformData,
                   loss: str = "tmee") -> Tuple[List, List[np.ndarray]]:
    """Patient-specific CAWT under k-fold cross-validation.

    For each patient, thresholds are learned on the training folds (plus the
    patient's fault-free runs) and replayed on the held-out fold.  Returns
    the evaluation traces and matching alert sequences, covering every
    campaign trace exactly once.
    """
    config = data.config
    eval_traces: List = []
    alerts: List[np.ndarray] = []
    for pid in config.patients:
        patient_traces = data.by_patient[pid]
        ff = list(data.fault_free_by_patient[pid])
        # the per-fold fits are independent, so the folds — not just the
        # sample mining inside each fit — fan out across the pool
        fold_results = learn_fold_thresholds(
            patient_traces, config.folds, fault_free=ff, loss=loss,
            window=config.mining_window, workers=config.workers,
            batch_size=config.batch_size)
        for fold, result in enumerate(fold_results):
            _, test = kfold_split(patient_traces, config.folds, fold)
            monitor = cawt_monitor(result.thresholds)
            alerts.extend(replay_many(monitor, test,
                                      workers=config.workers,
                                      batch_size=config.batch_size))
            eval_traces.extend(test)
    return eval_traces, alerts


def cawt_full_thresholds(data: PlatformData, pid: str,
                         loss: str = "tmee") -> dict:
    """Thresholds learned from all of one patient's data (for mitigation)."""
    result = learn_thresholds(
        list(data.by_patient[pid]) + list(data.fault_free_by_patient[pid]),
        loss=loss, window=data.config.mining_window,
        workers=data.config.workers, batch_size=data.config.batch_size)
    return result.thresholds


def baseline_monitors(config: ExperimentConfig) -> Dict[str, SafetyMonitor]:
    """The non-ML baselines: CAWOT, Guideline, MPC."""
    return {
        "CAWOT": cawot_monitor(),
        "Guideline": GuidelineMonitor(),
        "MPC": MPCMonitor(horizon_steps=config.mpc_horizon),
    }


def train_test_split(data: PlatformData) -> Tuple[Sequence, Sequence]:
    """The fold-0 split of the campaign (used for ML training).

    On store-backed data the split comes back as lazy index views — the
    same membership and order :func:`kfold_split` produces, but without
    materialising the campaign, so the reader's bounded-memory guarantee
    survives the ML paths too.
    """
    traces = data.traces
    k = data.config.folds
    if isinstance(traces, TraceDataset):
        indices = range(len(traces))
        return (traces.subset(i for i in indices if i % k != 0),
                traces.subset(i for i in indices if i % k == 0))
    return kfold_split(traces, k, 0)


def ml_baseline_jobs(config: ExperimentConfig,
                     multiclass: bool = False) -> List[TrainingJob]:
    """The Table VI training grid as :class:`~repro.ml.TrainingJob`s:
    DT/MLP/LSTM on the fold-0 training split of the campaign."""
    common = dict(fold=0, folds=config.folds, multiclass=multiclass,
                  seed=config.seed)
    return [
        TrainingJob.make("dt", max_depth=8, **common),
        TrainingJob.make("mlp", max_epochs=config.ml_epochs, **common),
        TrainingJob.make("lstm", window=config.lstm_window,
                         max_epochs=config.ml_epochs, **common),
    ]


def ml_monitors(data: PlatformData,
                multiclass: bool = False) -> Dict[str, SafetyMonitor]:
    """Trained DT/MLP/LSTM monitors (cached per config and head type).

    The three fits run as a :func:`~repro.ml.run_training_jobs` fan-out:
    ``config.workers`` processes train concurrently with element-wise
    identical results to the serial loop.  When the config is
    store-backed (``dataset_dir``), the feature matrices are materialised
    memory-mapped next to the campaign shards (``.../ml/``) — built once,
    page-shared by every worker and every later invocation.
    """
    key = data.config.cache_key() + (data.config.ml_epochs, multiclass)
    if key in _ML_CACHE:
        return _ML_CACHE[key]
    config = data.config
    mmap_root = None
    if config.dataset_dir:
        mmap_root = os.path.join(config.dataset_dir, config.dataset_slug(),
                                 "ml")
    trained = run_training_jobs(ml_baseline_jobs(config, multiclass),
                                data.traces, workers=config.workers,
                                mmap_root=mmap_root)
    monitors = {t.name: t.monitor for t in trained}
    _ML_CACHE[key] = monitors
    return monitors
