"""Section V-E6 — monitor per-decision time overhead.

The paper reports average per-cycle overheads of 252.7 us (CAWT), 664.1 us
(Guideline), 1.3 ms (DT), 30.7 ms (MLP), 32.6 ms (LSTM) and 123.9 ms (MPC).
This experiment times each monitor's ``observe`` call over replayed contexts.
"""

from __future__ import annotations

import time

from ..core import cawt_monitor
from ..simulation import iter_contexts
from .config import ExperimentConfig
from .data import baseline_monitors, cawt_full_thresholds, ml_monitors, platform_data
from .render import ExperimentResult

__all__ = ["run_overhead"]

PAPER_OVERHEAD_US = {"CAWT": 252.7, "Guideline": 664.1, "DT": 1300.0,
                     "MLP": 30700.0, "LSTM": 32600.0, "MPC": 123900.0}


def _time_monitor(monitor, contexts, repeats: int = 3) -> float:
    """Mean per-decision latency in microseconds."""
    best = float("inf")
    for _ in range(repeats):
        monitor.reset()
        start = time.perf_counter()
        for ctx in contexts:
            monitor.observe(ctx)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / len(contexts))
    return best * 1e6


def run_overhead(config: ExperimentConfig) -> ExperimentResult:
    data = platform_data(config)
    contexts = list(iter_contexts(data.traces[0]))
    pid = config.patients[0]

    monitors = {"CAWT": cawt_monitor(cawt_full_thresholds(data, pid))}
    monitors.update(baseline_monitors(config))
    monitors.update(ml_monitors(data))

    result = ExperimentResult(
        title=f"Section V-E6 — per-decision monitor overhead "
              f"({config.platform})",
        headers=("monitor", "mean_us", "paper_us"))
    for name, monitor in monitors.items():
        mean_us = _time_monitor(monitor, contexts)
        result.rows.append((name, mean_us,
                            PAPER_OVERHEAD_US.get(name, float("nan"))))
    result.notes.append(
        "paper ordering: CAWT cheapest; Guideline < DT << MLP ~ LSTM << MPC")
    return result
