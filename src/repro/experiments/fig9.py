"""Fig. 9 — average reaction time (minutes) of every monitor.

Reaction time is ``th - td``: how long before hazard occurrence the monitor
raised its first alert.  The paper's headline observations: the CAWT monitor
reacts about two hours early with the lowest standard deviation; Guideline
and MPC react late and erratically; ML monitors react early but with
unstable spread and a slightly lower early-detection rate.

``config.workers`` parallelises every expensive stage here: per-fold CAWT
threshold fits (:func:`~repro.core.learn_fold_thresholds` inside
``cawt_cv_replay``), the DT/MLP/LSTM training jobs behind ``ml_monitors``,
and all monitor replay — each element-wise identical to its serial path.
``config.batch_size`` batches the replay and mining in lock step on top
(:mod:`repro.simulation.vector_replay`), with the same guarantee.
"""

from __future__ import annotations

from ..metrics import reaction_stats
from ..simulation import replay_campaign
from .config import ExperimentConfig
from .data import (
    baseline_monitors,
    cawt_cv_replay,
    ml_monitors,
    platform_data,
    train_test_split,
)
from .render import ExperimentResult

__all__ = ["run_fig9"]


def run_fig9(config: ExperimentConfig) -> ExperimentResult:
    data = platform_data(config)
    result = ExperimentResult(
        title=f"Fig. 9 — reaction time per monitor ({config.platform})",
        headers=("monitor", "mean_min", "std_min", "EDR", "n_hazard",
                 "n_detected"))

    def add_row(name, traces, alerts):
        stats = reaction_stats(traces, alerts)
        result.rows.append((name, stats.mean, stats.std,
                            stats.early_detection_rate, stats.n_hazardous,
                            stats.n_detected))

    eval_traces, alerts = cawt_cv_replay(data)
    add_row("CAWT", eval_traces, alerts)
    baselines = baseline_monitors(config)
    baseline_alerts = replay_campaign(baselines, data.traces,
                                      workers=config.workers,
                                      batch_size=config.batch_size)
    for name in baselines:
        add_row(name, data.traces, baseline_alerts[name])
    _, test = train_test_split(data)
    ml = ml_monitors(data)
    ml_alerts = replay_campaign(ml, test, workers=config.workers,
                                batch_size=config.batch_size)
    for name in ml:
        add_row(name, test, ml_alerts[name])

    result.notes.append(
        "paper: CAWT detects ~2 h before the hazard with the lowest std; "
        "Guideline/MPC are >=1.6 h later with very high std; ML monitors "
        "react ~40 min earlier than CAWT but with unstable spread and "
        "0.4-4.3% lower EDR")
    return result
