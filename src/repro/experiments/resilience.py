"""Baseline APS resilience without a monitor — Figs. 7a, 7b and 8.

- Fig. 7a: hazard coverage per patient;
- Fig. 7b: Time-to-Hazard distribution;
- Fig. 8: hazard coverage by fault type and by initial glucose value.
"""

from __future__ import annotations

from collections import defaultdict

from ..metrics import hazard_coverage, time_to_hazard_stats
from .config import ExperimentConfig
from .data import platform_data
from .render import ExperimentResult

__all__ = ["run_fig7", "run_fig8"]


def run_fig7(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 7a per-patient hazard coverage + Fig. 7b TTH statistics."""
    data = platform_data(config)
    result = ExperimentResult(
        title=f"Fig. 7 — resilience of {config.platform} without a monitor",
        headers=("patient", "n_sim", "coverage"))
    for pid in config.patients:
        traces = data.by_patient[pid]
        result.rows.append((pid, len(traces), hazard_coverage(traces)))
    overall = hazard_coverage(data.traces)
    result.rows.append(("ALL", len(data.traces), overall))

    tth = time_to_hazard_stats(data.traces)
    result.notes.append(
        f"TTH (Fig. 7b): mean {tth['mean']:.0f} min, std {tth['std']:.0f} min, "
        f"range [{tth['min']:.0f}, {tth['max']:.0f}], "
        f"negative fraction {tth['negative_fraction']:.1%} "
        f"over {tth['count']} hazardous runs")
    result.notes.append(
        "paper: 33.9% overall coverage on Glucosym (6.7%-92.4% across "
        "patients), ~3 h mean TTH, 7.1% negative TTH")
    return result


def run_fig8(config: ExperimentConfig) -> ExperimentResult:
    """Fig. 8: coverage by fault type x initial BG."""
    data = platform_data(config)
    per_fault = defaultdict(lambda: defaultdict(lambda: [0, 0]))
    init_values = sorted({round(t.true_bg[0]) for t in data.traces})
    for trace in data.traces:
        init_bg = round(trace.true_bg[0])
        cell = per_fault[trace.fault.label][init_bg]
        cell[1] += 1
        if trace.hazardous:
            cell[0] += 1
    headers = ["fault"] + [f"bg{v:g}" for v in init_values] + ["all"]
    result = ExperimentResult(
        title=f"Fig. 8 — hazard coverage by fault type and initial BG "
              f"({config.platform})",
        headers=headers)
    for fault_label in sorted(per_fault):
        cells = per_fault[fault_label]
        row = [fault_label]
        total_h = total_n = 0
        for init_bg in init_values:
            hazards, count = cells.get(init_bg, (0, 0))
            row.append(hazards / count if count else float("nan"))
            total_h += hazards
            total_n += count
        row.append(total_h / total_n if total_n else float("nan"))
        result.rows.append(row)
    result.notes.append(
        "paper: maximize_rate / maximize_glucose most damaging; dec-style "
        "faults least; coverage grows with initial BG for about half the "
        "fault types")
    return result
