"""Table VII — hazard mitigation with Algorithm 1.

Re-runs the fault-injection campaign with each monitor wired to the fixed
mitigation strategy (H1 -> zero insulin, H2 -> fixed maximum insulin) and
compares against the unmonitored twin runs: recovery rate, number of new
hazards introduced by false-alarm mitigation, and the Eq. 9 average risk.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..baselines import MPCMonitor
from ..core import FixedMitigator, Mitigator, cawt_monitor
from ..fi import CampaignConfig, generate_campaign
from ..metrics import mitigation_outcome
from ..simulation import run_campaign
from .config import ExperimentConfig
from .data import cawt_full_thresholds, ml_monitors, platform_data
from .render import ExperimentResult

__all__ = ["run_table7"]

PAPER_TABLE7 = {
    "CAWT": (0.54, 8, 0.02),
    "DT": (0.403, 227, 0.76),
    "MLP": (0.39, 177, 0.68),
    "MPC": (0.043, 123, 0.22),
}


def run_table7(config: ExperimentConfig, max_rate: float = 5.0,
               mitigator: Optional[Mitigator] = None) -> ExperimentResult:
    """Mitigated campaign per monitor; *mitigator* defaults to the paper's
    :class:`~repro.core.FixedMitigator` (pass e.g. a
    :class:`~repro.core.PredictiveMitigator` to benchmark another
    strategy family in the same harness).  Honours ``config.workers`` and
    ``config.batch_size`` — mitigated runs vectorize like any others."""
    data = platform_data(config)
    campaign = generate_campaign(CampaignConfig(stride=config.stride))
    if mitigator is None:
        mitigator = FixedMitigator(max_rate=max_rate)

    ml = ml_monitors(data)
    monitor_factories: Dict[str, object] = {
        "CAWT": lambda pid: cawt_monitor(cawt_full_thresholds(data, pid)),
        "DT": lambda pid: ml["DT"],
        "MLP": lambda pid: ml["MLP"],
        "MPC": lambda pid: MPCMonitor(horizon_steps=config.mpc_horizon),
    }

    result = ExperimentResult(
        title=f"Table VII — mitigation performance ({config.platform})",
        headers=("monitor", "recovery_rate", "new_hazards", "avg_risk",
                 "baseline_hazards"))
    for name, factory in monitor_factories.items():
        mitigated = run_campaign(config.platform, config.patients, campaign,
                                 monitor_factory=factory, mitigator=mitigator,
                                 n_steps=config.n_steps,
                                 workers=config.workers,
                                 batch_size=config.batch_size)
        outcome = mitigation_outcome(name, data.traces, mitigated)
        result.rows.append((name, outcome.recovery_rate, outcome.new_hazards,
                            outcome.average_risk, outcome.baseline_hazards))

    for monitor, (recovery, new_hazards, risk) in PAPER_TABLE7.items():
        result.notes.append(
            f"paper {monitor}: recovery {recovery:.1%}, "
            f"{new_hazards} new hazards, avg risk {risk}")
    return result
