"""Rare-event scenario search vs. the paper's fixed fault grid.

The paper's evaluation *enumerates* hazards: every patient runs the full
882-injection grid and the hazardous cells are counted afterwards.  The
cross-entropy search (:mod:`repro.search`) *hunts* them: it spends the
same simulation machinery adaptively, steering each generation toward the
failure boundary.  This experiment pits the two against each other on a
per-patient basis and reports the discovery efficiency —
hazards-found-per-simulation — of both, plus their ratio (the number the
benchmark gate floors at 3x).

The grid baseline reuses the campaign traces the other experiments
already share (:func:`~repro.experiments.data.platform_data`), so at
``ci`` scale the whole comparison runs in seconds.
"""

from __future__ import annotations

from ..search import CrossEntropySearch
from .config import ExperimentConfig
from .data import platform_data
from .render import ExperimentResult

__all__ = ["run_search", "search_vs_grid"]

#: search budget per patient: at most this many generations ...
SEARCH_ITERATIONS = 6
#: ... of this many sampled scenarios each
SEARCH_POPULATION = 32


def search_vs_grid(config: ExperimentConfig, patient_id: str,
                   seed: int = 0):
    """Run the CE search for one patient; returns its ``SearchResult``.

    The per-patient seed is derived from the experiment seed and the
    cohort position, so multi-patient experiments don't reuse one stream.
    """
    patients = list(config.patients)
    search = CrossEntropySearch(platform=config.platform,
                                patient_id=patient_id,
                                n_steps=config.n_steps,
                                population=SEARCH_POPULATION,
                                iterations=SEARCH_ITERATIONS,
                                workers=config.workers,
                                batch_size=config.batch_size)
    return search.run(seed=seed * len(patients) + patients.index(patient_id))


def run_search(config: ExperimentConfig, seed: int = 0) -> ExperimentResult:
    """Hazards-found-per-simulation: adaptive search vs. the fixed grid."""
    data = platform_data(config)
    result = ExperimentResult(
        title=f"Scenario search — hazards per simulation vs. the fixed "
              f"grid ({config.platform})",
        headers=("patient", "grid_sims", "grid_hazards", "grid_rate",
                 "search_sims", "search_hazards", "search_rate", "ratio"))

    grid_total = [0, 0]
    search_total = [0, 0]
    for pid in config.patients:
        grid_traces = data.by_patient[pid]
        grid_hazards = sum(t.hazardous for t in grid_traces)
        grid_rate = grid_hazards / len(grid_traces)

        found = search_vs_grid(config, pid, seed)
        rate = found.hazards_per_simulation
        ratio = rate / grid_rate if grid_rate else float("inf")
        result.rows.append((pid, len(grid_traces), grid_hazards,
                            round(grid_rate, 3), found.n_simulations,
                            found.n_hazardous, round(rate, 3),
                            round(ratio, 2)))
        grid_total[0] += grid_hazards
        grid_total[1] += len(grid_traces)
        search_total[0] += found.n_hazardous
        search_total[1] += found.n_simulations
        best = found.best
        if best is not None:
            result.notes.append(
                f"{pid}: best hazard {best.label} (score "
                f"{best.score.score:.1f}, TTH "
                f"{best.score.time_to_hazard:.0f} min), stopped on "
                f"{found.stop_reason}")

    grid_rate = grid_total[0] / grid_total[1] if grid_total[1] else 0.0
    search_rate = (search_total[0] / search_total[1]
                   if search_total[1] else 0.0)
    overall = search_rate / grid_rate if grid_rate else float("inf")
    result.rows.append(("ALL", grid_total[1], grid_total[0],
                        round(grid_rate, 3), search_total[1],
                        search_total[0], round(search_rate, 3),
                        round(overall, 2)))
    result.notes.append(
        "grid = the paper's fixed fault-injection campaign at this "
        "preset's stride; search = cross-entropy over the continuous "
        "fault/sensor-drift/meal scenario space (repro.search), same "
        "vector kernel underneath")
    return result
