"""Table VI — CAWT vs. the ML-based monitors (DT, MLP, LSTM).

Both evaluation granularities of Section V-D: sample level with tolerance
window and simulation level with two regions.  The ML monitors are trained
on the fold-0 training split; CAWT and the ML monitors are all evaluated on
the held-out fold-0 test split so the comparison is like-for-like.

Every stage scales with ``config.workers``: the ML fits run as a
:func:`~repro.ml.run_training_jobs` fan-out (via
:func:`~repro.experiments.data.ml_monitors`), replay over the shared
forked pool, and CAWT threshold learning parallelises its sample mining —
all with element-wise identical results to the serial path.
``config.batch_size`` additionally batches the replay and the rule-context
mining in lock step (:mod:`repro.simulation.vector_replay`), composing
with the worker pool and again element-wise identical.
"""

from __future__ import annotations

from ..core import cawt_monitor, learn_thresholds
from ..metrics import simulation_confusion, traces_confusion
from ..simulation import replay_campaign, replay_many
from .config import ExperimentConfig
from .data import ml_monitors, platform_data, train_test_split
from .render import ExperimentResult

__all__ = ["run_table6"]

PAPER_TABLE6 = {
    # platform -> monitor -> (sample FPR, FNR, ACC, F1, sim FPR, FNR, ACC, F1)
    "glucosym": {
        "DT": (0.08, 0.01, 0.93, 0.81, 0.56, 0.01, 0.57, 0.52),
        "MLP": (0.05, 0.03, 0.96, 0.86, 0.25, 0.02, 0.80, 0.70),
        "LSTM": (0.04, 0.01, 0.96, 0.88, 0.24, 0.01, 0.82, 0.71),
        "CAWT": (0.01, 0.01, 0.99, 0.97, 0.12, 0.01, 0.91, 0.83),
    },
    "t1ds2013": {
        "DT": (0.20, 0.01, 0.83, 0.62, 1.00, 0.01, 0.26, 0.41),
        "MLP": (0.01, 0.45, 0.93, 0.67, 0.12, 0.30, 0.84, 0.68),
        "LSTM": (0.01, 0.03, 0.98, 0.94, 0.17, 0.03, 0.87, 0.78),
        "CAWT": (0.01, 0.02, 1.00, 0.98, 0.10, 0.01, 0.92, 0.87),
    },
}


def run_table6(config: ExperimentConfig) -> ExperimentResult:
    data = platform_data(config)
    train, test = train_test_split(data)
    result = ExperimentResult(
        title=f"Table VI — CAWT vs ML monitors ({config.platform})",
        headers=("monitor", "FPR", "FNR", "ACC", "F1",
                 "simFPR", "simFNR", "simACC", "simF1"))

    def add_row(name, eval_traces, alerts):
        cm = traces_confusion(eval_traces, alerts, delta=config.tolerance)
        sm = simulation_confusion(eval_traces, alerts)
        result.rows.append((name,) + cm.as_row() + sm.as_row())

    ml = ml_monitors(data)
    ml_alerts = replay_campaign(ml, test, workers=config.workers,
                                batch_size=config.batch_size)
    for name in ml:
        add_row(name, test, ml_alerts[name])

    # CAWT trained on the same training fold (patient-specific thresholds)
    alerts = []
    eval_traces = []
    for pid in config.patients:
        train_p = [t for t in train if t.patient_id == pid]
        test_p = [t for t in test if t.patient_id == pid]
        thresholds = learn_thresholds(
            train_p + list(data.fault_free_by_patient[pid]),
            window=config.mining_window, workers=config.workers,
            batch_size=config.batch_size).thresholds
        alerts.extend(replay_many(cawt_monitor(thresholds), test_p,
                                  workers=config.workers,
                                  batch_size=config.batch_size))
        eval_traces.extend(test_p)
    add_row("CAWT", eval_traces, alerts)

    paper = PAPER_TABLE6.get(config.platform, {})
    for monitor, values in paper.items():
        result.notes.append(
            f"paper {monitor}: sample FPR {values[0]} FNR {values[1]} "
            f"ACC {values[2]} F1 {values[3]} | sim FPR {values[4]} "
            f"FNR {values[5]} ACC {values[6]} F1 {values[7]}")
    return result
