"""Fig. 3 — shapes of the threshold-learning loss functions.

Regenerates the data behind Fig. 3: MSE/MAE (symmetric, minimum at r = 0 so
learned thresholds violate about half the samples), the TeLEx-style
tightness loss (exponential violation penalty, shallow minimum far from 0)
and the paper's TMEE (exponential violation penalty, minimum at a small
positive slack, linear growth for loose thresholds).
"""

from __future__ import annotations

import numpy as np

from ..core import LOSSES
from .render import ExperimentResult

__all__ = ["run_fig3", "loss_curves"]


def loss_curves(r_min: float = -3.0, r_max: float = 6.0, n: int = 181):
    """(r grid, {loss name -> values}) for plotting/analysis."""
    r = np.linspace(r_min, r_max, n)
    return r, {name: fn(r)[0] for name, fn in LOSSES.items()}


def run_fig3(config=None) -> ExperimentResult:
    r, curves = loss_curves()
    result = ExperimentResult(
        title="Fig. 3 — loss function comparison",
        headers=("loss", "argmin_r", "loss(-2)", "loss(0)", "loss(+2)",
                 "loss(+5)"))
    probes = [-2.0, 0.0, 2.0, 5.0]
    for name, values in curves.items():
        argmin = float(r[np.argmin(values)])
        fn = LOSSES[name]
        samples = [float(fn(np.array([p]))[0][0]) for p in probes]
        result.rows.append((name, argmin, *samples))
    result.notes.append(
        "expected shape: mse/mae argmin at 0 (violating); telex argmin "
        "loose (~2.3); tmee argmin at a small positive slack (~0.5) with "
        "steep violation penalty")
    return result
