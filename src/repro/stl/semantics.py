"""Boolean and quantitative (robustness) semantics for discrete-time STL.

Both semantics are *pointwise*: evaluating a formula over a
:class:`~repro.stl.signals.Trace` yields one value per sample index, where
index ``t`` answers "does the formula hold at time ``t``?".  The conventional
trace-level verdict is the value at index 0.

Temporal windows are expressed in minutes and converted to whole sample steps
using the trace's ``dt``.  At the right edge of a trace we use *weak*
(truncated-window) semantics, standard for offline monitoring of finite
traces: ``G`` reduces over however many samples remain (vacuously true on an
empty window), ``F``/``U`` are false on an empty window.

Robustness follows the usual min/max quantitative semantics; the learning
machinery of :mod:`repro.core.learning` consumes per-predicate robustness
values ``r = mu(x_t) - beta`` exactly as in Eq. 3 of the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .ast import (
    And,
    Atomic,
    Eventually,
    Formula,
    Globally,
    Implies,
    Not,
    Or,
    Predicate,
    Since,
    Until,
)
from .signals import Trace

__all__ = ["satisfaction", "robustness", "satisfied", "trace_robustness"]

Env = Optional[Dict[str, float]]

#: robustness value used for boolean constants (finite so min/max stay finite)
TOP = Predicate.DISCRETE_ROBUSTNESS


def satisfaction(formula: Formula, trace: Trace, env: Env = None) -> np.ndarray:
    """Pointwise boolean satisfaction of *formula* over *trace*.

    Returns a boolean array of ``len(trace)`` entries.
    """
    return _eval(formula, trace, env, quantitative=False)


def robustness(formula: Formula, trace: Trace, env: Env = None) -> np.ndarray:
    """Pointwise quantitative robustness of *formula* over *trace*."""
    return _eval(formula, trace, env, quantitative=True)


def satisfied(formula: Formula, trace: Trace, env: Env = None) -> bool:
    """Trace-level verdict: satisfaction at the first sample."""
    return bool(satisfaction(formula, trace, env)[0])


def trace_robustness(formula: Formula, trace: Trace, env: Env = None) -> float:
    """Trace-level robustness: robustness at the first sample."""
    return float(robustness(formula, trace, env)[0])


# ----------------------------------------------------------------------
# evaluation core
# ----------------------------------------------------------------------

def _eval(node: Formula, trace: Trace, env: Env, quantitative: bool) -> np.ndarray:
    if isinstance(node, Atomic):
        n = len(trace)
        if quantitative:
            return np.full(n, TOP if node.value else -TOP)
        return np.full(n, node.value, dtype=bool)

    if isinstance(node, Predicate):
        return _eval_predicate(node, trace, env, quantitative)

    if isinstance(node, Not):
        inner = _eval(node.child, trace, env, quantitative)
        return -inner if quantitative else ~inner

    if isinstance(node, And):
        parts = [_eval(c, trace, env, quantitative) for c in node.children]
        if quantitative:
            return np.minimum.reduce(parts)
        return np.logical_and.reduce(parts)

    if isinstance(node, Or):
        parts = [_eval(c, trace, env, quantitative) for c in node.children]
        if quantitative:
            return np.maximum.reduce(parts)
        return np.logical_or.reduce(parts)

    if isinstance(node, Implies):
        left = _eval(node.antecedent, trace, env, quantitative)
        right = _eval(node.consequent, trace, env, quantitative)
        if quantitative:
            return np.maximum(-left, right)
        return np.logical_or(~left, right)

    if isinstance(node, Globally):
        inner = _eval(node.child, trace, env, quantitative)
        return _future_reduce(inner, trace, node.lo, node.hi,
                              use_min=True, quantitative=quantitative)

    if isinstance(node, Eventually):
        inner = _eval(node.child, trace, env, quantitative)
        return _future_reduce(inner, trace, node.lo, node.hi,
                              use_min=False, quantitative=quantitative)

    if isinstance(node, Until):
        left = _eval(node.left, trace, env, quantitative)
        right = _eval(node.right, trace, env, quantitative)
        return _until(left, right, trace, node.lo, node.hi, quantitative)

    if isinstance(node, Since):
        left = _eval(node.left, trace, env, quantitative)
        right = _eval(node.right, trace, env, quantitative)
        return _since(left, right, trace, node.lo, node.hi, quantitative)

    raise TypeError(f"cannot evaluate STL node of type {type(node).__name__}")


def _eval_predicate(node: Predicate, trace: Trace, env: Env,
                    quantitative: bool) -> np.ndarray:
    values = trace.channel(node.channel)
    threshold = node.resolve_threshold(env)
    if node.op in ("==", "!="):
        equal = np.isclose(values, threshold)
        truth = equal if node.op == "==" else ~equal
        if quantitative:
            return np.where(truth, TOP, -TOP)
        return truth
    margin = {
        ">": values - threshold,
        ">=": values - threshold,
        "<": threshold - values,
        "<=": threshold - values,
    }[node.op]
    if quantitative:
        return margin.astype(float)
    if node.op == ">":
        return values > threshold
    if node.op == ">=":
        return values >= threshold
    if node.op == "<":
        return values < threshold
    return values <= threshold


def _steps(trace: Trace, minutes: float) -> int:
    return trace.steps(minutes)


def _future_reduce(inner: np.ndarray, trace: Trace, lo: float, hi: Optional[float],
                   use_min: bool, quantitative: bool) -> np.ndarray:
    """Reduce ``inner`` over the future window ``[t+lo, t+hi]`` for every t."""
    n = len(inner)
    lo_s = _steps(trace, lo)
    hi_s = n - 1 if hi is None else _steps(trace, hi)
    if quantitative:
        empty = -TOP if not use_min else TOP
        out = np.full(n, float(empty))
    else:
        out = np.full(n, use_min, dtype=bool)  # empty G window: vacuously true
    reduce_fn = np.min if use_min else np.max
    bool_fn = np.all if use_min else np.any
    for t in range(n):
        start = t + lo_s
        stop = min(t + hi_s, n - 1)
        if start > stop:
            continue
        window = inner[start:stop + 1]
        out[t] = reduce_fn(window) if quantitative else bool_fn(window)
    return out


def _until(left: np.ndarray, right: np.ndarray, trace: Trace, lo: float,
           hi: Optional[float], quantitative: bool) -> np.ndarray:
    """``left U[lo,hi] right``: right holds at some t' in the window and left
    holds at every sample in ``[t, t')``."""
    n = len(left)
    lo_s = _steps(trace, lo)
    hi_s = n - 1 if hi is None else _steps(trace, hi)
    if quantitative:
        out = np.full(n, -TOP)
        for t in range(n):
            best = -TOP
            prefix = TOP
            for tp in range(t, min(t + hi_s, n - 1) + 1):
                if tp >= t + lo_s:
                    best = max(best, min(right[tp], prefix))
                prefix = min(prefix, left[tp])
            out[t] = best
        return out
    out = np.zeros(n, dtype=bool)
    for t in range(n):
        prefix = True
        for tp in range(t, min(t + hi_s, n - 1) + 1):
            if tp >= t + lo_s and right[tp] and prefix:
                out[t] = True
                break
            prefix = prefix and left[tp]
            if not prefix and tp >= t + lo_s:
                break
    return out


def _since(left: np.ndarray, right: np.ndarray, trace: Trace, lo: float,
           hi: Optional[float], quantitative: bool) -> np.ndarray:
    """``left S[lo,hi] right``: right held at some past t' in ``[t-hi, t-lo]``
    and left has held at every sample in ``(t', t]``."""
    n = len(left)
    lo_s = _steps(trace, lo)
    hi_s = n - 1 if hi is None else _steps(trace, hi)
    if quantitative:
        out = np.full(n, -TOP)
        for t in range(n):
            best = -TOP
            suffix = TOP  # min of left over (t', t]
            for tp in range(t, -1, -1):
                age = t - tp
                if age > hi_s:
                    break
                if age >= lo_s:
                    best = max(best, min(right[tp], suffix))
                suffix = min(suffix, left[tp])
            out[t] = best
        return out
    out = np.zeros(n, dtype=bool)
    for t in range(n):
        suffix = True
        for tp in range(t, -1, -1):
            age = t - tp
            if age > hi_s:
                break
            if age >= lo_s and right[tp] and suffix:
                out[t] = True
                break
            suffix = suffix and left[tp]
            if not suffix and age >= lo_s:
                break
    return out
