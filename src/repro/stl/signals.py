"""Discrete-time, uniformly-sampled multi-channel signal traces.

The STL engine in this package operates on :class:`Trace` objects: a set of
named, equally-long, uniformly-sampled channels.  Time is measured in the same
unit as the trace's ``dt`` (minutes throughout this repository, matching the
paper's 5-minute APS control cycle).

Channels are numpy float arrays.  Boolean facts (e.g. "the controller issued
control action ``u1`` at this step") are encoded as 0.0/1.0 channels and
interpreted by boolean predicates in :mod:`repro.stl.ast`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping

import numpy as np

__all__ = ["Trace"]


class Trace:
    """A uniformly-sampled multi-channel signal.

    Parameters
    ----------
    channels:
        Mapping of channel name to 1-D array-like of samples.  All channels
        must have the same length.
    dt:
        Sampling period (minutes).  Defaults to the paper's 5-minute APS
        control cycle.
    t0:
        Time stamp of the first sample (minutes).
    """

    def __init__(self, channels: Mapping[str, Iterable[float]], dt: float = 5.0,
                 t0: float = 0.0):
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self._channels: Dict[str, np.ndarray] = {}
        self.dt = float(dt)
        self.t0 = float(t0)
        length = None
        for name, values in channels.items():
            arr = np.asarray(values, dtype=float)
            if arr.ndim != 1:
                raise ValueError(f"channel {name!r} must be 1-D, got shape {arr.shape}")
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise ValueError(
                    f"channel {name!r} has length {arr.shape[0]}, expected {length}")
            self._channels[name] = arr
        if length is None:
            raise ValueError("a Trace needs at least one channel")
        self._length = length

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._channels

    def __iter__(self) -> Iterator[str]:
        return iter(self._channels)

    @property
    def names(self):
        """Tuple of channel names (insertion order)."""
        return tuple(self._channels)

    @property
    def times(self) -> np.ndarray:
        """Sample time stamps in minutes."""
        return self.t0 + self.dt * np.arange(self._length)

    @property
    def duration(self) -> float:
        """Total covered time span in minutes (0 for a single sample)."""
        return self.dt * max(self._length - 1, 0)

    def channel(self, name: str) -> np.ndarray:
        """Return the samples of channel *name* (read-only view)."""
        try:
            return self._channels[name]
        except KeyError:
            raise KeyError(
                f"trace has no channel {name!r}; available: {sorted(self._channels)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.channel(name)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def with_channel(self, name: str, values: Iterable[float]) -> "Trace":
        """Return a new trace with channel *name* added or replaced."""
        merged = dict(self._channels)
        merged[name] = np.asarray(values, dtype=float)
        return Trace(merged, dt=self.dt, t0=self.t0)

    def with_derivative(self, name: str, out: str | None = None) -> "Trace":
        """Return a new trace with the per-minute backward difference of *name*.

        The paper's context transformations include the rates of change BG'
        and IOB' (Section IV-B).  The first sample's derivative is defined as
        0 (no history yet), matching an online monitor that has seen a single
        sample.
        """
        out = out or name + "'"
        values = self.channel(name)
        deriv = np.zeros_like(values)
        if len(values) > 1:
            deriv[1:] = np.diff(values) / self.dt
        return self.with_channel(out, deriv)

    def slice(self, start: int, stop: int | None = None) -> "Trace":
        """Return the sub-trace of sample indices ``[start, stop)``."""
        stop = self._length if stop is None else stop
        if not (0 <= start <= stop <= self._length):
            raise IndexError(f"invalid slice [{start}, {stop}) for length {self._length}")
        sub = {name: arr[start:stop] for name, arr in self._channels.items()}
        return Trace(sub, dt=self.dt, t0=self.t0 + start * self.dt)

    def steps(self, minutes: float) -> int:
        """Convert a duration in minutes to a whole number of samples.

        Raises ``ValueError`` when the duration is not (close to) a multiple
        of ``dt`` — silently rounding temporal bounds would change formula
        semantics.
        """
        ratio = minutes / self.dt
        steps = int(round(ratio))
        if abs(ratio - steps) > 1e-9:
            raise ValueError(
                f"duration {minutes} min is not a multiple of dt={self.dt} min")
        return steps

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Return a shallow copy of the channel mapping."""
        return dict(self._channels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Trace(channels={list(self._channels)}, n={self._length}, "
                f"dt={self.dt}, t0={self.t0})")
