"""Discrete-time bounded Signal Temporal Logic (STL) engine.

This subpackage is a self-contained STL library used by the safety-context
specification framework (:mod:`repro.core`): formula AST, boolean and
quantitative robustness semantics over uniformly-sampled traces, and a text
parser.
"""

from .ast import (
    And,
    Atomic,
    Eventually,
    Formula,
    Globally,
    Implies,
    Not,
    Or,
    Param,
    Predicate,
    Signal,
    Since,
    Until,
    all_params,
)
from .parser import ParseError, parse
from .semantics import robustness, satisfaction, satisfied, trace_robustness
from .signals import Trace

__all__ = [
    "And",
    "Atomic",
    "Eventually",
    "Formula",
    "Globally",
    "Implies",
    "Not",
    "Or",
    "Param",
    "Predicate",
    "Signal",
    "Since",
    "Until",
    "all_params",
    "ParseError",
    "parse",
    "robustness",
    "satisfaction",
    "satisfied",
    "trace_robustness",
    "Trace",
]
