"""Abstract syntax tree for bounded-time Signal Temporal Logic (STL).

The paper (Section III-C) specifies unsafe-control-action rules in the
bounded-time fragment of STL, with formulas of the shape::

    G[t0,te]( phi_1(mu_1(x)) & ... & phi_m(mu_m(x)) -> !u1 )

and mitigation specifications that use the *eventually* and *since*
operators::

    G[t0,te]( F[0,ts](u_c) S (phi_1 & ... & phi_m) )

This module defines the formula tree.  Evaluation (boolean and quantitative
robustness semantics) lives in :mod:`repro.stl.semantics`; parsing of textual
formulas in :mod:`repro.stl.parser`.

Learnable thresholds (the ``beta_i`` of Table I) are represented by
:class:`Param` placeholders; an environment mapping parameter names to floats
is supplied at evaluation time, or the formula can be specialised once with
:meth:`Formula.bind`.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Union

__all__ = [
    "Param",
    "Formula",
    "Atomic",
    "Predicate",
    "Signal",
    "Not",
    "And",
    "Or",
    "Implies",
    "Globally",
    "Eventually",
    "Until",
    "Since",
]

_COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")


class Param:
    """A named, learnable threshold inside a formula (e.g. ``beta1``).

    A ``Param`` may carry a ``default`` used when the evaluation environment
    does not bind it — this is how the CAWOT monitor (context-aware *without*
    threshold learning) runs the same rule set with clinical defaults.
    """

    __slots__ = ("name", "default")

    def __init__(self, name: str, default: Optional[float] = None):
        self.name = str(name)
        self.default = default

    def resolve(self, env: Optional[Dict[str, float]]) -> float:
        if env and self.name in env:
            return float(env[self.name])
        if self.default is not None:
            return float(self.default)
        raise KeyError(f"unbound STL parameter {self.name!r} and no default given")

    def __repr__(self) -> str:
        return f"Param({self.name!r})" if self.default is None else (
            f"Param({self.name!r}, default={self.default})")

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return (isinstance(other, Param) and other.name == self.name
                and other.default == self.default)

    def __hash__(self) -> int:
        return hash(("Param", self.name, self.default))


Threshold = Union[float, int, Param]


class Formula:
    """Base class of all STL formula nodes."""

    #: child formulas, overridden by composite nodes
    children: Sequence["Formula"] = ()

    # -- parameters ----------------------------------------------------
    def parameters(self) -> FrozenSet[str]:
        """Names of all unbound :class:`Param` thresholds in the subtree."""
        names = set()
        for child in self.children:
            names |= child.parameters()
        return frozenset(names)

    def bind(self, env: Dict[str, float]) -> "Formula":
        """Return a copy with every ``Param`` in *env* replaced by a float."""
        return self._rebuild([c.bind(env) for c in self.children])

    def _rebuild(self, children: Sequence["Formula"]) -> "Formula":
        raise NotImplementedError

    # -- convenience combinators ----------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return Or([self, other])

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    def atoms(self) -> Iterable["Predicate"]:
        """Yield every predicate leaf in the subtree (pre-order)."""
        for child in self.children:
            yield from child.atoms()

    def channels(self) -> FrozenSet[str]:
        """Names of all trace channels referenced by the formula."""
        return frozenset(a.channel for a in self.atoms())


class Atomic(Formula):
    """The constant formula ``true`` or ``false``."""

    def __init__(self, value: bool):
        self.value = bool(value)

    def _rebuild(self, children):
        return Atomic(self.value)

    def __str__(self) -> str:
        return "true" if self.value else "false"


class Predicate(Formula):
    """An atomic inequality ``channel OP threshold``.

    For continuous channels the robustness of ``x > c`` is ``x - c`` and of
    ``x < c`` is ``c - x`` (Section III-C2 of the paper).  Equality tests are
    intended for discrete channels and evaluate to a large positive/negative
    robustness constant.
    """

    #: robustness magnitude assigned to (dis)equality predicates
    DISCRETE_ROBUSTNESS = 1e9

    def __init__(self, channel: str, op: str, threshold: Threshold):
        if op not in _COMPARISONS:
            raise ValueError(f"unknown comparison {op!r}; expected one of {_COMPARISONS}")
        self.channel = str(channel)
        self.op = op
        self.threshold = threshold

    # -- parameters ----------------------------------------------------
    def parameters(self) -> FrozenSet[str]:
        if isinstance(self.threshold, Param):
            return frozenset({self.threshold.name})
        return frozenset()

    def bind(self, env: Dict[str, float]) -> "Formula":
        if isinstance(self.threshold, Param) and self.threshold.name in env:
            return Predicate(self.channel, self.op, float(env[self.threshold.name]))
        return self

    def resolve_threshold(self, env: Optional[Dict[str, float]]) -> float:
        if isinstance(self.threshold, Param):
            return self.threshold.resolve(env)
        return float(self.threshold)

    def _rebuild(self, children):
        return Predicate(self.channel, self.op, self.threshold)

    def atoms(self):
        yield self

    def __str__(self) -> str:
        return f"({self.channel} {self.op} {self.threshold})"


class Signal(Predicate):
    """A boolean channel used as an atom, e.g. the control-action flags u1..u4.

    Encoded as the predicate ``channel > 0.5`` over a 0/1 channel.
    """

    def __init__(self, channel: str):
        super().__init__(channel, ">", 0.5)

    def _rebuild(self, children):
        return Signal(self.channel)

    def __str__(self) -> str:
        return self.channel


class Not(Formula):
    def __init__(self, child: Formula):
        self.children = (child,)

    @property
    def child(self) -> Formula:
        return self.children[0]

    def _rebuild(self, children):
        return Not(children[0])

    def __str__(self) -> str:
        return f"!{self.children[0]}"


class _Nary(Formula):
    _symbol = "?"

    def __init__(self, operands: Sequence[Formula]):
        operands = tuple(operands)
        if len(operands) < 1:
            raise ValueError(f"{type(self).__name__} needs at least one operand")
        self.children = operands

    def _rebuild(self, children):
        return type(self)(children)

    def __str__(self) -> str:
        return "(" + f" {self._symbol} ".join(str(c) for c in self.children) + ")"


class And(_Nary):
    """Conjunction of one or more formulas."""

    _symbol = "&"


class Or(_Nary):
    """Disjunction of one or more formulas."""

    _symbol = "|"


class Implies(Formula):
    def __init__(self, antecedent: Formula, consequent: Formula):
        self.children = (antecedent, consequent)

    @property
    def antecedent(self) -> Formula:
        return self.children[0]

    @property
    def consequent(self) -> Formula:
        return self.children[1]

    def _rebuild(self, children):
        return Implies(children[0], children[1])

    def __str__(self) -> str:
        return f"({self.children[0]} -> {self.children[1]})"


class _Temporal(Formula):
    """Base for unary temporal operators with a ``[lo, hi]`` window in minutes.

    ``hi=None`` means "until the end of the trace" (the paper's ``[t0, te]``
    with ``te`` the simulation end).
    """

    _symbol = "?"

    def __init__(self, child: Formula, lo: float = 0.0, hi: Optional[float] = None):
        if lo < 0:
            raise ValueError(f"temporal lower bound must be >= 0, got {lo}")
        if hi is not None and hi < lo:
            raise ValueError(f"temporal window [{lo}, {hi}] is empty")
        self.children = (child,)
        self.lo = float(lo)
        self.hi = None if hi is None else float(hi)

    @property
    def child(self) -> Formula:
        return self.children[0]

    def _rebuild(self, children):
        return type(self)(children[0], self.lo, self.hi)

    def _window(self) -> str:
        hi = "end" if self.hi is None else f"{self.hi:g}"
        return f"[{self.lo:g},{hi}]"

    def __str__(self) -> str:
        return f"{self._symbol}{self._window()}({self.children[0]})"


class Globally(_Temporal):
    """``G[lo,hi] phi`` — phi holds at every sample in the window."""

    _symbol = "G"


class Eventually(_Temporal):
    """``F[lo,hi] phi`` — phi holds at some sample in the window."""

    _symbol = "F"


class _BinTemporal(Formula):
    _symbol = "?"

    def __init__(self, left: Formula, right: Formula, lo: float = 0.0,
                 hi: Optional[float] = None):
        if lo < 0:
            raise ValueError(f"temporal lower bound must be >= 0, got {lo}")
        if hi is not None and hi < lo:
            raise ValueError(f"temporal window [{lo}, {hi}] is empty")
        self.children = (left, right)
        self.lo = float(lo)
        self.hi = None if hi is None else float(hi)

    @property
    def left(self) -> Formula:
        return self.children[0]

    @property
    def right(self) -> Formula:
        return self.children[1]

    def _rebuild(self, children):
        return type(self)(children[0], children[1], self.lo, self.hi)

    def __str__(self) -> str:
        hi = "end" if self.hi is None else f"{self.hi:g}"
        return f"({self.children[0]} {self._symbol}[{self.lo:g},{hi}] {self.children[1]})"


class Until(_BinTemporal):
    """``left U[lo,hi] right`` — right eventually holds, left holds until then."""

    _symbol = "U"


class Since(_BinTemporal):
    """``left S[lo,hi] right`` — right held at some past sample, left since then.

    The paper's HMS formula (Eq. 2) uses *since* to require a mitigation
    action within ``ts`` minutes of entering an unsafe context.
    """

    _symbol = "S"


def all_params(formula: Formula) -> Dict[str, Optional[float]]:
    """Map of every ``Param`` name in *formula* to its default (or None)."""
    out: Dict[str, Optional[float]] = {}
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Predicate) and isinstance(node.threshold, Param):
            out[node.threshold.name] = node.threshold.default
        stack.extend(node.children)
    return out


def is_finite_threshold(value: float) -> bool:
    """True when *value* is a usable concrete threshold."""
    return isinstance(value, (int, float)) and math.isfinite(value)
