"""A small recursive-descent parser for textual STL formulas.

Grammar (minutes as the time unit, matching :class:`repro.stl.signals.Trace`)::

    formula    := until ('->' formula)?                 # implication, right-assoc
    until      := disjunct (('U' | 'S') window? disjunct)?
    disjunct   := conjunct ('|' conjunct)*
    conjunct   := unary ('&' unary)*
    unary      := '!' unary
                | ('G' | 'F') window? '(' formula ')'
                | atom
    atom       := ident cmp (number | ident)            # comparison / param
                | ident                                  # boolean channel
                | 'true' | 'false'
                | '(' formula ')'
    window     := '[' number ',' (number | 'end') ']'
    cmp        := '<' | '<=' | '>' | '>=' | '==' | '!='

Identifiers may end in apostrophes, so the paper's rate-of-change channels
``BG'`` and ``IOB'`` parse naturally.  An identifier on the right-hand side of
a comparison becomes a learnable :class:`~repro.stl.ast.Param`; defaults can
be supplied through the ``params`` argument of :func:`parse`.

Example
-------
>>> from repro.stl import parse
>>> f = parse("G[0,720]((BG > 180 & BG' > 0 & IOB < beta1) -> !u1)")
>>> sorted(f.parameters())
['beta1']
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .ast import (
    And,
    Atomic,
    Eventually,
    Formula,
    Globally,
    Implies,
    Not,
    Or,
    Param,
    Predicate,
    Signal,
    Since,
    Until,
)

__all__ = ["parse", "ParseError"]


class ParseError(ValueError):
    """Raised when a formula string cannot be parsed."""


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_]*'*)"
    r"|(?P<op><=|>=|==|!=|->|<|>|&&|\|\||[!&|()\[\],])"
    r")"
)

_KEYWORDS = {"G", "F", "U", "S", "true", "false", "end"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].lstrip()
            if not remainder:
                break
            raise ParseError(f"unexpected character at: {remainder[:20]!r}")
        if match.lastgroup == "number":
            tokens.append(("number", match.group("number")))
        elif match.lastgroup == "ident":
            tokens.append(("ident", match.group("ident")))
        else:
            op = match.group("op")
            op = {"&&": "&", "||": "|"}.get(op, op)
            tokens.append(("op", op))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]],
                 params: Optional[Dict[str, float]]):
        self.tokens = tokens
        self.pos = 0
        self.params = params or {}

    # -- token helpers -------------------------------------------------
    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of formula")
        self.pos += 1
        return token

    def expect(self, value: str) -> None:
        token = self.next()
        if token[1] != value:
            raise ParseError(f"expected {value!r}, got {token[1]!r}")

    def accept(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == value:
            self.pos += 1
            return True
        return False

    # -- grammar -------------------------------------------------------
    def formula(self) -> Formula:
        left = self.until()
        if self.accept("->"):
            return Implies(left, self.formula())
        return left

    def until(self) -> Formula:
        left = self.disjunct()
        token = self.peek()
        if token is not None and token[1] in ("U", "S"):
            self.next()
            lo, hi = self.window()
            right = self.disjunct()
            cls = Until if token[1] == "U" else Since
            return cls(left, right, lo, hi)
        return left

    def disjunct(self) -> Formula:
        parts = [self.conjunct()]
        while self.accept("|"):
            parts.append(self.conjunct())
        return parts[0] if len(parts) == 1 else Or(parts)

    def conjunct(self) -> Formula:
        parts = [self.unary()]
        while self.accept("&"):
            parts.append(self.unary())
        return parts[0] if len(parts) == 1 else And(parts)

    def unary(self) -> Formula:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of formula")
        if token[1] == "!":
            self.next()
            return Not(self.unary())
        if token[0] == "ident" and token[1] in ("G", "F"):
            self.next()
            lo, hi = self.window()
            self.expect("(")
            inner = self.formula()
            self.expect(")")
            cls = Globally if token[1] == "G" else Eventually
            return cls(inner, lo, hi)
        return self.atom()

    def window(self) -> Tuple[float, Optional[float]]:
        if not self.accept("["):
            return 0.0, None
        lo_tok = self.next()
        if lo_tok[0] != "number":
            raise ParseError(f"expected window lower bound, got {lo_tok[1]!r}")
        self.expect(",")
        hi_tok = self.next()
        if hi_tok[1] == "end":
            hi: Optional[float] = None
        elif hi_tok[0] == "number":
            hi = float(hi_tok[1])
        else:
            raise ParseError(f"expected window upper bound, got {hi_tok[1]!r}")
        self.expect("]")
        return float(lo_tok[1]), hi

    def atom(self) -> Formula:
        token = self.next()
        if token[1] == "(":
            inner = self.formula()
            self.expect(")")
            return inner
        if token[0] == "ident":
            name = token[1]
            if name == "true":
                return Atomic(True)
            if name == "false":
                return Atomic(False)
            nxt = self.peek()
            if nxt is not None and nxt[1] in ("<", "<=", ">", ">=", "==", "!="):
                op = self.next()[1]
                rhs = self.next()
                if rhs[0] == "number":
                    return Predicate(name, op, float(rhs[1]))
                if rhs[0] == "ident" and rhs[1] not in _KEYWORDS:
                    return Predicate(name, op, Param(rhs[1], self.params.get(rhs[1])))
                raise ParseError(f"bad comparison right-hand side {rhs[1]!r}")
            return Signal(name)
        raise ParseError(f"unexpected token {token[1]!r}")


def parse(text: str, params: Optional[Dict[str, float]] = None) -> Formula:
    """Parse *text* into a :class:`~repro.stl.ast.Formula`.

    Parameters
    ----------
    text:
        The formula source.
    params:
        Optional defaults for learnable parameters appearing as bare
        identifiers on the right-hand side of comparisons.
    """
    parser = _Parser(_tokenize(text), params)
    formula = parser.formula()
    if parser.peek() is not None:
        raise ParseError(f"trailing input starting at {parser.peek()[1]!r}")
    return formula
