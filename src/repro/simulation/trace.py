"""Simulation trace recording and conversion to STL traces.

A :class:`SimulationTrace` stores the full per-cycle record of one closed-loop
run: true and sensed glucose, the controller's command before and after fault
injection, the monitor verdicts, what the pump delivered, and the fault
metadata.  Ground-truth hazard labels (Section IV-C2) are computed lazily
from the *true* glucose — faults corrupt the controller, not the plant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..controllers import ControlAction
from ..fi import FaultKind, FaultSpec, FaultTarget
from ..hazards import HazardLabel, label_hazards
from ..stl import Trace

__all__ = ["SimulationTrace", "TraceRecorder", "TRACE_ARRAY_FIELDS",
           "TRACE_COLUMN_DTYPES", "trace_to_arrays", "trace_from_arrays",
           "trace_to_struct", "trace_from_struct"]

#: the per-step array channels of a SimulationTrace, in field order —
#: the serialisation schema shared by NpzDirectorySink and the store
TRACE_ARRAY_FIELDS: Tuple[str, ...] = (
    "t", "true_bg", "cgm", "reading", "ctrl_rate", "ctrl_bolus", "cmd_rate",
    "cmd_bolus", "action", "iob", "iob_rate", "final_rate", "final_bolus",
    "delivered_rate", "delivered_bolus", "alert", "alert_hazard", "mitigated")

#: dtype of each channel — the schema both the scalar recorder and the
#: vectorized engine's columnar assembly allocate up front (float channels
#: are float64, discrete ones the platform default int, flags bool)
TRACE_COLUMN_DTYPES: Dict[str, np.dtype] = {
    name: np.dtype(np.float64) for name in TRACE_ARRAY_FIELDS}
TRACE_COLUMN_DTYPES["action"] = np.dtype(np.int_)
TRACE_COLUMN_DTYPES["alert_hazard"] = np.dtype(np.int_)
TRACE_COLUMN_DTYPES["alert"] = np.dtype(np.bool_)
TRACE_COLUMN_DTYPES["mitigated"] = np.dtype(np.bool_)


@dataclass(frozen=True)
class SimulationTrace:
    """Immutable record of one closed-loop simulation."""

    # identity
    platform: str          # "glucosym" or "t1ds2013"
    patient_id: str
    label: str
    dt: float
    # per-step arrays (length n_steps)
    t: np.ndarray              # minutes at sensing time
    true_bg: np.ndarray        # plant blood glucose (mg/dL)
    cgm: np.ndarray            # clean sensor reading (monitor's view)
    reading: np.ndarray        # controller input (post fault injection)
    ctrl_rate: np.ndarray      # controller output (U/h), pre-FI
    ctrl_bolus: np.ndarray     # controller bolus (U), pre-FI
    cmd_rate: np.ndarray       # command post-FI (what the monitor inspects)
    cmd_bolus: np.ndarray
    action: np.ndarray         # int codes of ControlAction for cmd_*
    iob: np.ndarray            # loop-side IOB estimate (U)
    iob_rate: np.ndarray       # dIOB/dt (U/min)
    final_rate: np.ndarray     # post-mitigation command
    final_bolus: np.ndarray
    delivered_rate: np.ndarray  # what the pump executed
    delivered_bolus: np.ndarray
    alert: np.ndarray          # monitor alerts (bool)
    alert_hazard: np.ndarray   # predicted hazard type per alert (0/1/2)
    mitigated: np.ndarray      # mitigation replaced the command (bool)
    # fault metadata
    fault: Optional[FaultSpec] = None

    def __len__(self) -> int:
        return len(self.t)

    @property
    def fault_step(self) -> Optional[int]:
        """Scheduled fault-activation step ``tf`` (None for fault-free runs)."""
        return None if self.fault is None else self.fault.start_step

    @cached_property
    def hazard_label(self) -> HazardLabel:
        """Ground-truth hazard annotation from the true glucose."""
        return label_hazards(self.true_bg)

    @property
    def hazardous(self) -> bool:
        return self.hazard_label.any_hazard

    @property
    def first_alert(self) -> Optional[int]:
        """Index of the first monitor alert (None if never alerted)."""
        idx = np.flatnonzero(self.alert)
        return int(idx[0]) if idx.size else None

    def time_to_hazard(self) -> Optional[float]:
        """TTH = th - tf in minutes (None when not computable)."""
        if self.fault is None or not self.hazardous:
            return None
        return (self.hazard_label.first_hazard - self.fault.start_step) * self.dt

    def reaction_time(self) -> Optional[float]:
        """th - td in minutes; positive = early detection (Section V-D)."""
        if not self.hazardous or self.first_alert is None:
            return None
        return (self.hazard_label.first_hazard - self.first_alert) * self.dt

    def to_stl_trace(self) -> Trace:
        """Monitor-view STL trace: BG, BG', IOB, IOB', u1..u4, rate, bolus."""
        channels = {
            "BG": self.cgm,
            "IOB": self.iob,
            "IOB'": self.iob_rate,
            "rate": self.cmd_rate,
            "bolus": self.cmd_bolus,
        }
        for act in ControlAction:
            channels[act.channel] = (self.action == int(act)).astype(float)
        trace = Trace(channels, dt=self.dt)
        return trace.with_derivative("BG")

    def summary(self) -> str:
        haz = "hazardous" if self.hazardous else "safe"
        fault = self.fault.label if self.fault else "fault-free"
        return (f"{self.platform}/{self.patient_id} [{fault}] {len(self)} steps, "
                f"{haz}, alerts={int(self.alert.sum())}")


def trace_to_arrays(trace: SimulationTrace) -> Dict[str, np.ndarray]:
    """Flatten a trace into a self-describing dict of numpy arrays.

    Array channels are stored as-is; identity metadata (platform, patient,
    label, dt and the fault spec fields) ride along as 0-d object-free
    entries, so one ``np.savez`` payload round-trips the full trace.
    """
    payload = {name: getattr(trace, name) for name in TRACE_ARRAY_FIELDS}
    payload["platform"] = np.array(trace.platform)
    payload["patient_id"] = np.array(trace.patient_id)
    payload["label"] = np.array(trace.label)
    payload["dt"] = np.array(trace.dt)
    if trace.fault is not None:
        payload["fault_kind"] = np.array(trace.fault.kind.value)
        payload["fault_target"] = np.array(trace.fault.target.value)
        payload["fault_start"] = np.array(trace.fault.start_step)
        payload["fault_duration"] = np.array(trace.fault.duration_steps)
        payload["fault_value"] = np.array(trace.fault.value)
    return payload


def trace_from_arrays(payload: Mapping[str, np.ndarray]) -> SimulationTrace:
    """Rebuild a :class:`SimulationTrace` from a :func:`trace_to_arrays`
    payload (a dict or an open ``NpzFile``)."""
    fault = None
    if "fault_kind" in payload:
        fault = FaultSpec(kind=FaultKind(str(payload["fault_kind"])),
                          target=FaultTarget(str(payload["fault_target"])),
                          start_step=int(payload["fault_start"]),
                          duration_steps=int(payload["fault_duration"]),
                          value=float(payload["fault_value"]))
    arrays = {name: np.asarray(payload[name]) for name in TRACE_ARRAY_FIELDS}
    return SimulationTrace(platform=str(payload["platform"]),
                           patient_id=str(payload["patient_id"]),
                           label=str(payload["label"]),
                           dt=float(payload["dt"]), fault=fault, **arrays)


def trace_to_struct(trace: SimulationTrace) -> np.ndarray:
    """Pack the per-step channels into one structured array of length
    ``n_steps`` (one named field per channel, original dtypes preserved).

    This is the uncompressed shard payload of the campaign store's
    ``shard_format="npy"``: saved with ``np.save`` it reopens under
    ``mmap_mode="r"`` where every column access (``arr["cgm"]``) is a
    zero-copy view of the mapped file — no zip member decompression, no
    allocation — which is what makes hot replay loops cheap.  Identity
    metadata does *not* ride along (a structured dtype cannot hold it
    losslessly); it lives in the store manifest entry and is supplied back
    through :func:`trace_from_struct`.
    """
    dtype = [(name, getattr(trace, name).dtype) for name in TRACE_ARRAY_FIELDS]
    out = np.empty(len(trace), dtype=dtype)
    for name in TRACE_ARRAY_FIELDS:
        out[name] = getattr(trace, name)
    return out


def trace_from_struct(arr: np.ndarray, *, platform: str, patient_id: str,
                      label: str, dt: float,
                      fault: Optional[FaultSpec] = None) -> SimulationTrace:
    """Rebuild a trace from a :func:`trace_to_struct` payload plus its
    externally-stored identity metadata.  Columns of a memory-mapped input
    stay memory-mapped (read-only views into the file)."""
    names = arr.dtype.names or ()
    missing = [name for name in TRACE_ARRAY_FIELDS if name not in names]
    if missing:
        raise ValueError(
            f"structured trace payload lacks channel(s) {missing}")
    arrays = {name: arr[name] for name in TRACE_ARRAY_FIELDS}
    return SimulationTrace(platform=platform, patient_id=patient_id,
                           label=label, dt=dt, fault=fault, **arrays)


@dataclass
class TraceRecorder:
    """Row-by-row builder for :class:`SimulationTrace`.

    Columns are preallocated as :data:`TRACE_COLUMN_DTYPES` arrays — sized
    exactly when the caller passes ``n_steps`` (the closed loop knows the
    scenario length up front), grown geometrically otherwise — so appending
    a step is eighteen indexed stores instead of a dict allocation per row.
    """

    platform: str
    patient_id: str
    label: str
    dt: float
    fault: Optional[FaultSpec] = None
    n_steps: Optional[int] = None
    _columns: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    _size: int = field(default=0, repr=False)

    def __post_init__(self):
        capacity = self.n_steps if self.n_steps else 64
        self._columns = {name: np.zeros(capacity, dtype=dtype)
                         for name, dtype in TRACE_COLUMN_DTYPES.items()}

    def _grow(self) -> None:
        for name, column in self._columns.items():
            bigger = np.zeros(2 * len(column), dtype=column.dtype)
            bigger[:self._size] = column[:self._size]
            self._columns[name] = bigger

    def append(self, **row) -> None:
        if len(row) != len(TRACE_COLUMN_DTYPES):
            missing = sorted(set(TRACE_COLUMN_DTYPES) - set(row))
            raise ValueError(f"append requires every trace channel; "
                             f"missing {missing}")
        i = self._size
        columns = self._columns
        if i >= len(columns["t"]):
            self._grow()
            columns = self._columns
        for name, value in row.items():
            columns[name][i] = value
        self._size = i + 1

    def finish(self) -> SimulationTrace:
        if not self._size:
            raise ValueError("cannot finish an empty trace")
        n = self._size
        columns = {name: column[:n] if n < len(column) else column
                   for name, column in self._columns.items()}
        return SimulationTrace(platform=self.platform,
                               patient_id=self.patient_id, label=self.label,
                               dt=self.dt, fault=self.fault, **columns)
