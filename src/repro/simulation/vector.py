"""Lock-step vectorized batch simulation engine.

The scalar :class:`~repro.simulation.loop.ClosedLoop` advances one run at a
time: a Python step loop around length-1 numpy work.  This module simulates a
whole *batch* of campaign runs simultaneously as matrices — the ``(S, B)``
ODE state advanced by one batched RK4 (the shared kernels of
:mod:`repro.patients.kernels`), per-row parameter vectors so mixed patients
batch together, vectorized controller decisions (``np.where`` over the
branch structure of OpenAPS / Basal-Bolus), vectorized fault-injection
masks, IOB via a precomputed activity-curve table, and columnar trace
assembly that fills ``(n_steps, B)`` channel matrices directly.

The engine's contract is **exact parity**: for any batch composition, batch
size and worker count, the traces are element-wise identical to running
each scenario through the scalar loop.  Three design rules deliver that:

- the patient dynamics are the *same* kernel functions the scalar models
  call at ``B=1`` (see :mod:`repro.patients.kernels`);
- the IOB/activity tables are precomputed *through the scalar curve
  methods* (one evaluation per (step, delivery-step) lag, cached), so the
  per-step accumulation replays the scalar calculator's sums term for term;
- every controller/fault/pump expression transcribes the scalar branch
  arithmetic with the identical operation order, selecting branches with
  ``np.where`` (elementwise ufuncs round identically at any batch width).

Monitored and mitigated runs (the paper's Table VII closed loop,
Algorithm 1) batch too: each tick the engine assembles the live cycle as a
single-cycle ``(1, B)`` context batch, evaluates monitors column-wise —
stateless ones through one ``observe_batch`` call per tick, stateful or
custom ones through per-row scalar clones — and lets the mitigator rewrite
the commanded ``(rate, bolus)`` vectors on the alerted rows through its
columnar :meth:`~repro.core.mitigation.Mitigator.correct_mask` path (with
a per-row scalar fallback for custom strategies).  Alerts feed back into
the delivered insulin exactly as in the scalar loop, because the
correction lands *before* the pump/plant stage of the same tick; the
divergence this creates between rows is ordinary per-row data, just like
the fault-mask HOLD registers.  See ``docs/mitigation.md`` for the full
parity contract.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..controllers.base import ACTION_TOLERANCE
from ..controllers.iob import InsulinActivityCurve
from ..core.mitigation import Mitigator
from ..core.monitor import MonitorVerdict, SafetyMonitor
from ..fi.faults import FaultKind, FaultTarget, VARIABLE_RANGES
from ..hazards import HazardType
from ..patients import IVPPatient, Meal, make_patient
from ..patients.base import UU_PER_UNIT
from ..patients.ivp import meal_ra
from ..patients.kernels import (IVPColumns, T1DColumns, ivp_init_state,
                                ivp_rk4_advance, t1d_init_state,
                                t1d_rk4_advance)
from ..patients.kernels import GP as _GP, GS as _GS, QSTO1 as _QSTO1
from ..patients.pump import InsulinPump
from ..patients.sensor import CGM_RANGE
from .executor import MonitorFactory, PROFILE_CACHE, SimRun
from .features import ContextBatch
from .trace import TRACE_ARRAY_FIELDS, TRACE_COLUMN_DTYPES, SimulationTrace

__all__ = ["run_batch", "run_vector_chunk", "titrate_isf_batch",
           "warm_profiles"]


# ----------------------------------------------------------------------
# IOB / activity tables
# ----------------------------------------------------------------------

#: (dia, peak, n_steps, dt) -> (F, A, band_start); banded storage —
#: F[k, i] / A[k, i] describe the delivery of step ``band_start[k] + i``
#: at step ``k``, so memory is O(n_steps * dia/dt), not O(n_steps^2)
_IOB_TABLE_CACHE: Dict[tuple, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
_IOB_TABLE_CACHE_MAX = 8


def _iob_tables(curve: InsulinActivityCurve, n_steps: int, dt: float):
    """Per-(step, delivery) decay tables, evaluated through the *scalar*
    curve methods so every entry is bit-identical to what the scalar
    :class:`~repro.controllers.iob.IOBCalculator` computes for that lag.
    ``band_start[k]`` is the first delivery step still inside the DIA
    window at step ``k`` (older terms are exactly zero and not stored)."""
    key = (curve.dia, curve.peak, n_steps, dt)
    cached = _IOB_TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    band_start = np.zeros(n_steps, dtype=np.intp)
    rows: List[List[Tuple[float, float]]] = []
    for k in range(n_steps):
        t = k * dt
        first = k
        row: List[Tuple[float, float]] = []  # j descending
        for j in range(k - 1, -1, -1):
            lag = t - (j * dt + dt / 2.0)
            if lag >= curve.dia:
                break
            row.append((curve.iob_fraction(lag), curve.activity(lag)))
            first = j
        band_start[k] = first
        row.reverse()  # j ascending, aligned with band_start[k] + i
        rows.append(row)
    width = max((len(row) for row in rows), default=0) or 1
    frac = np.zeros((n_steps, width))
    act = np.zeros((n_steps, width))
    for k, row in enumerate(rows):
        for i, (f, a) in enumerate(row):
            frac[k, i] = f
            act[k, i] = a
    if len(_IOB_TABLE_CACHE) >= _IOB_TABLE_CACHE_MAX:
        _IOB_TABLE_CACHE.pop(next(iter(_IOB_TABLE_CACHE)))
    _IOB_TABLE_CACHE[key] = (frac, act, band_start)
    return frac, act, band_start


# ----------------------------------------------------------------------
# vectorized fault injection
# ----------------------------------------------------------------------

_KIND_CODE = {kind: code for code, kind in enumerate(FaultKind)}


class _FaultBatch:
    """Row-wise fault state: per-row spec columns plus HOLD registers.

    Mirrors :class:`repro.fi.engine.FaultInjector` exactly — including its
    quirk that a fault targeting the controller-internal IOB *also* runs
    the command path's bolus corruption while active."""

    def __init__(self, runs: Sequence[SimRun]):
        B = len(runs)
        self.kind_code = np.zeros(B, dtype=np.int64)
        self.start = np.full(B, -1, dtype=np.int64)
        self.end = np.full(B, -1, dtype=np.int64)
        self.value = np.zeros(B)
        self.lo = np.zeros(B)
        self.hi = np.zeros(B)
        self.is_glucose = np.zeros(B, dtype=bool)
        self.is_rate = np.zeros(B, dtype=bool)
        self.is_bolus_path = np.zeros(B, dtype=bool)  # BOLUS or IOB target
        self.is_iob = np.zeros(B, dtype=bool)
        for b, run in enumerate(runs):
            spec = run.fault
            if spec is None:
                continue
            self.kind_code[b] = _KIND_CODE[spec.kind]
            self.start[b] = spec.start_step
            self.end[b] = spec.end_step
            self.value[b] = spec.value
            self.lo[b], self.hi[b] = VARIABLE_RANGES[spec.target]
            self.is_glucose[b] = spec.target is FaultTarget.GLUCOSE
            self.is_rate[b] = spec.target is FaultTarget.RATE
            self.is_bolus_path[b] = spec.target in (FaultTarget.BOLUS,
                                                    FaultTarget.IOB)
            self.is_iob[b] = spec.target is FaultTarget.IOB
        self.is_command = self.is_rate | self.is_bolus_path
        self.any_glucose = bool(self.is_glucose.any())
        self.any_command = bool(self.is_command.any())
        self.any_iob = bool(self.is_iob.any())
        self.held_reading = np.full(B, np.nan)
        self.held_rate = np.full(B, np.nan)
        self.held_bolus = np.full(B, np.nan)
        self.held_iob = np.full(B, np.nan)

    def _active(self, step: int) -> np.ndarray:
        return (self.start <= step) & (step < self.end)

    def _apply(self, current: np.ndarray, held: np.ndarray,
               input_floor: bool) -> np.ndarray:
        """FaultSpec.apply over all rows (callers mask the result)."""
        kc = self.kind_code
        truncated = self.lo if input_floor else np.where(self.is_glucose,
                                                         self.lo, 0.0)
        out = np.where(kc == _KIND_CODE[FaultKind.TRUNCATE], truncated,
              np.where(kc == _KIND_CODE[FaultKind.HOLD],
                       np.where(np.isnan(held), current, held),
              np.where(kc == _KIND_CODE[FaultKind.MAX], self.hi,
              np.where(kc == _KIND_CODE[FaultKind.MIN], self.lo,
              np.where(kc == _KIND_CODE[FaultKind.ADD], current + self.value,
              np.where(kc == _KIND_CODE[FaultKind.SUB], current - self.value,
                       current * self.value))))))
        return np.minimum(np.maximum(out, self.lo), self.hi)

    def corrupt_reading(self, cgm: np.ndarray, step: int) -> np.ndarray:
        if not self.any_glucose:
            return cgm
        active = self._active(step)
        latch = self.is_glucose & ~active
        self.held_reading[latch] = cgm[latch]
        mask = self.is_glucose & active
        if not mask.any():
            return cgm
        return np.where(mask, self._apply(cgm, self.held_reading, True), cgm)

    def corrupt_iob(self, iob: np.ndarray, step: int) -> np.ndarray:
        if not self.any_iob:
            return iob
        active = self._active(step)
        latch = self.is_iob & ~active
        self.held_iob[latch] = iob[latch]
        mask = self.is_iob & active
        if not mask.any():
            return iob
        return np.where(mask, self._apply(iob, self.held_iob, False), iob)

    def corrupt_command(self, rate: np.ndarray, bolus: np.ndarray,
                        step: int) -> Tuple[np.ndarray, np.ndarray]:
        if not self.any_command:
            return rate, bolus
        active = self._active(step)
        latch = self.is_command & ~active
        self.held_rate[latch] = rate[latch]
        self.held_bolus[latch] = bolus[latch]
        if not (self.is_command & active).any():
            return rate, bolus
        rate_mask = self.is_rate & active
        bolus_mask = self.is_bolus_path & active
        rate = np.where(rate_mask,
                        self._apply(rate, self.held_rate, False), rate)
        bolus = np.where(bolus_mask,
                         self._apply(bolus, self.held_bolus, False), bolus)
        return rate, bolus


# ----------------------------------------------------------------------
# vectorized controllers
# ----------------------------------------------------------------------

class _OpenAPSBatch:
    """oref0 determine-basal over rows (see OpenAPSController.decide).

    Every tuning column is read off the *actual* per-patient controller
    instances ``make_controller`` builds, so a changed controller default
    can never silently diverge from the scalar path.
    """

    def __init__(self, controllers: Sequence):
        def col(attr):
            return np.array([float(getattr(c, attr)) for c in controllers])

        self.basal = col("scheduled_basal")
        self.isf = col("isf")
        self.target = col("target")
        self.max_basal = col("max_basal")
        self.max_iob = col("max_iob")
        self.suspend = col("suspend_threshold")
        self._last_glucose: Optional[np.ndarray] = None

    def decide(self, step: int, dt: float, reading: np.ndarray,
               iob: np.ndarray, activity: np.ndarray
               ) -> Tuple[np.ndarray, np.ndarray]:
        # the scalar controller's cycle length is its construction default
        # until the first notify_delivery sets it to the scenario dt
        cycle = 5.0 if step == 0 else dt
        if self._last_glucose is None:
            delta = np.zeros_like(reading)
        else:
            delta = reading - self._last_glucose
        bgi = -activity * self.isf * cycle
        deviation = (30.0 / cycle) * (delta - bgi)
        eventual = reading - iob * self.isf + deviation
        naive = reading - iob * self.isf

        insulin_req = (eventual - self.target) / self.isf
        # low side: full gain, zero temp when both projections are very low
        rate_low = np.maximum(self.basal + insulin_req, 0.0)
        rate_low = np.where(naive < self.suspend, 0.0, rate_low)
        # high side: half gain under the max-IOB cap
        req_hi = np.where(iob + insulin_req > self.max_iob,
                          np.maximum(self.max_iob - iob, 0.0), insulin_req)
        rate_hi = np.minimum(
            np.maximum(self.basal + req_hi * (60.0 / 120.0), 0.0),
            self.max_basal)
        rate = np.where(reading < self.suspend, 0.0,
                        np.where(eventual < self.target, rate_low, rate_hi))
        self._last_glucose = reading
        return rate, np.zeros_like(rate)


class _BasalBolusBatch:
    """Basal-Bolus protocol over rows (see BasalBolusController.decide);
    tuning columns come from the real controller instances."""

    def __init__(self, controllers: Sequence):
        def col(attr):
            return np.array([float(getattr(c, attr)) for c in controllers])

        self.basal = col("scheduled_basal")
        self.isf = col("isf")
        self.target = col("target")
        self.correction_threshold = col("correction_threshold")
        self.correction_interval = col("correction_interval")
        self.reduce_threshold = col("reduce_threshold")
        self.suspend = col("suspend_threshold")
        self.max_bolus = col("max_bolus")
        self._last_correction = np.full(len(self.basal), np.nan)

    def decide(self, step: int, t: float, reading: np.ndarray,
               iob: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        due = np.isnan(self._last_correction) \
            | (t - self._last_correction >= self.correction_interval)
        suspended = reading < self.suspend
        reduced = reading < self.reduce_threshold
        correcting = (reading > self.correction_threshold) & due
        bolus_value = np.minimum(
            np.maximum((reading - self.target) / self.isf - iob, 0.0),
            self.max_bolus)
        rate = np.where(suspended, 0.0,
                        np.where(reduced, self.basal / 2.0, self.basal))
        bolus = np.where(~suspended & ~reduced & correcting, bolus_value, 0.0)
        self._last_correction = np.where(bolus > 0.0, t,
                                         self._last_correction)
        return rate, bolus


def _classify(rate: np.ndarray, bolus: np.ndarray,
              reference: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.controllers.classify_action` (int codes)."""
    return np.where(bolus > 0.0, 2,
           np.where(rate <= ACTION_TOLERANCE, 3,
           np.where(rate < reference - ACTION_TOLERANCE, 1,
           np.where(rate > reference + ACTION_TOLERANCE, 2, 4)))
           ).astype(np.int_, copy=False)


# ----------------------------------------------------------------------
# per-tick monitor / mitigator evaluation
# ----------------------------------------------------------------------

class _MonitorBatch:
    """Column-wise monitor evaluation, one live control cycle at a time.

    Mirrors the scalar chunk runner's monitor lifecycle: the factory is
    invoked once per distinct patient in the batch (the factory contract —
    already required by the parallel executor, whose workers re-invoke it
    per chunk — is that repeated calls return equivalent monitors).  Rows
    whose monitor declares itself
    :attr:`~repro.core.monitor.SafetyMonitor.stateless` are grouped by
    monitor instance and evaluated in one single-cycle ``observe_batch``
    call per tick — exact, because a stateless verdict is a pure function
    of the context and the vectorized overrides are bit-identical to
    ``observe`` per the batching contract.  Every other row (Guideline,
    MPC, LSTM, custom monitors) drives its own ``reset`` deep copy through
    the scalar ``observe`` — which *is* the scalar definition, so state
    never leaks across rows and parity holds for any monitor.
    """

    def __init__(self, runs: Sequence[SimRun],
                 monitor_factory: MonitorFactory):
        per_patient: Dict[str, SafetyMonitor] = {}
        for run in runs:
            if run.patient_id not in per_patient:
                per_patient[run.patient_id] = monitor_factory(run.patient_id)
        grouped: Dict[int, Tuple[SafetyMonitor, List[int]]] = {}
        self.columns: List[Tuple[int, SafetyMonitor]] = []
        for b, run in enumerate(runs):
            monitor = per_patient[run.patient_id]
            if monitor.stateless:
                grouped.setdefault(id(monitor), (monitor, []))[1].append(b)
            else:
                # SafetyMonitor.clone() is the scalar loop's run-start
                # reset-deepcopy, shared with the serving layer
                self.columns.append((b, monitor.clone()))
        self.groups: List[Tuple[SafetyMonitor, np.ndarray]] = []
        for monitor, rows in grouped.values():
            monitor.reset()
            self.groups.append((monitor, np.asarray(rows, dtype=np.intp)))

    def observe(self, tick: ContextBatch
                ) -> Tuple[np.ndarray, np.ndarray, Dict[int, MonitorVerdict]]:
        """Evaluate one cycle; returns ``(alerts, hazards, verdicts)`` —
        ``(B,)`` flags/hazard codes plus the real ``MonitorVerdict`` of
        every alerted scalar-path row (vectorized rows do not materialise
        per-rule ``triggered`` names)."""
        n_rows = tick.shape[1]
        alerts = np.zeros(n_rows, dtype=bool)
        hazards = np.zeros(n_rows, dtype=np.int_)
        verdicts: Dict[int, MonitorVerdict] = {}
        for monitor, rows in self.groups:
            sub = tick if len(rows) == n_rows else tick.take_columns(rows)
            group_alerts, group_hazards = monitor.observe_batch(sub)
            alerts[rows] = group_alerts[0]
            hazards[rows] = group_hazards[0]
        for b, monitor in self.columns:
            verdict = monitor.observe(next(tick.iter_column(b)))
            if verdict.alert:
                alerts[b] = True
                hazards[b] = int(verdict.hazard)
                verdicts[b] = verdict
        return alerts, hazards, verdicts


class _MitigatorBatch:
    """Row-wise command correction (Algorithm 1) for one live cycle.

    Strategies that override
    :meth:`~repro.core.mitigation.Mitigator.correct_mask` (the built-in
    families) correct all alerted rows in one vectorized call.  Everything
    else gets the column-loop fallback: one ``reset`` deep copy of the
    mitigator per batch row — the scalar campaign's
    reset-per-run semantics, since a fully-resetting mitigator is
    indistinguishable from a fresh one — each driven through the scalar
    ``correct`` for its own row's alerts only.
    """

    def __init__(self, mitigator: Mitigator, n_rows: int):
        self.columnar = (type(mitigator).correct_mask
                         is not Mitigator.correct_mask)
        if self.columnar:
            mitigator.reset()
            self.mitigator: Optional[Mitigator] = mitigator
            self.rows: Optional[List[Mitigator]] = None
        else:
            self.mitigator = None
            self.rows = []
            for _ in range(n_rows):
                clone = copy.deepcopy(mitigator)
                clone.reset()  # the scalar loop's run-start reset
                self.rows.append(clone)

    def correct(self, alerts: np.ndarray, hazards: np.ndarray,
                verdicts: Dict[int, MonitorVerdict], tick: ContextBatch,
                cmd_rate: np.ndarray, cmd_bolus: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        if self.columnar:
            corrected = self.mitigator.correct_mask(alerts, hazards, tick)
            if corrected is None:
                raise ValueError(
                    f"{type(self.mitigator).__name__}.correct_mask returned "
                    "None; a columnar override must return the corrected "
                    "(rate, bolus) vectors")
            rate, bolus = corrected
            return (np.asarray(rate, dtype=float),
                    np.asarray(bolus, dtype=float))
        rate = cmd_rate.copy()
        bolus = cmd_bolus.copy()
        for b in np.flatnonzero(alerts):
            b = int(b)
            verdict = verdicts.get(b)
            if verdict is None:
                # vectorized-monitor rows: rebuild the verdict from the
                # codes (per-rule `triggered` names are not materialised
                # on the columnar path — custom mitigators must not
                # depend on them under batching)
                verdict = MonitorVerdict(alert=True,
                                         hazard=HazardType(int(hazards[b])))
            ctx = next(tick.iter_column(b))
            rate[b], bolus[b] = self.rows[b].correct(verdict, ctx)
        return rate, bolus


# ----------------------------------------------------------------------
# batched patient plants
# ----------------------------------------------------------------------

class _IVPBatch:
    def __init__(self, params: Sequence):
        self.cols = IVPColumns.from_params(params)

    def reset(self, init_glucose: np.ndarray, target: float) -> np.ndarray:
        return ivp_init_state(self.cols, init_glucose)

    def glucose(self, x: np.ndarray) -> np.ndarray:
        return x[3]

    def sensor_glucose(self, x: np.ndarray) -> np.ndarray:
        return x[3]

    def ingest(self, x, rows, carbs_mg) -> None:
        pass  # IVP meals enter through the precomputed RA timelines

    def advance(self, x, dt, infusion, ra_stages) -> np.ndarray:
        return ivp_rk4_advance(self.cols, x, dt, infusion, ra_stages)


class _T1DBatch:
    def __init__(self, params: Sequence):
        self.cols = T1DColumns.from_params(params)
        self.basal_insulin: Optional[np.ndarray] = None
        self.last_meal_mg = np.zeros(len(params))

    def reset(self, init_glucose: np.ndarray, target: float) -> np.ndarray:
        state, ib_ref = t1d_init_state(self.cols, init_glucose,
                                       np.full(len(init_glucose),
                                               float(target)))
        self.basal_insulin = ib_ref
        self.last_meal_mg = np.zeros(len(init_glucose))
        return state

    def glucose(self, x: np.ndarray) -> np.ndarray:
        return x[_GP] / self.cols.VG

    def sensor_glucose(self, x: np.ndarray) -> np.ndarray:
        return x[_GS]

    def ingest(self, x, rows, carbs_mg) -> None:
        x[_QSTO1, rows] += carbs_mg
        self.last_meal_mg[rows] = carbs_mg

    def advance(self, x, dt, infusion, ra_stages) -> np.ndarray:
        return t1d_rk4_advance(self.cols, x, dt, infusion,
                               self.last_meal_mg, self.basal_insulin)


# ----------------------------------------------------------------------
# batched fault-free titration (controller-profile cold start)
# ----------------------------------------------------------------------

def titrate_isf_batch(patients: Sequence, target: float = 120.0,
                      bolus_u: float = 1.0,
                      horizon_min: float = 300.0) -> np.ndarray:
    """Batched :func:`~repro.simulation.batch.empirical_isf` — one column
    per patient model, advanced in lock step on the shared kernels.

    Titration is the dominant cold-start cost of a campaign (one 300-minute
    unit-bolus simulation per cohort member); this runs the whole cohort's
    rest-bolus-observe protocol as a single ``(n_states, B)`` batch.  The
    scalar titration drives ``PatientModel.step`` whose RK4 is bit-equal to
    these kernels at ``B=1``, and every surrounding expression (infusion
    split, running minimum, the 5 mg/dL/U floor) transcribes the scalar
    arithmetic elementwise — so the returned ISF values are **element-wise
    identical** to titrating each patient serially.

    All patients must be of one model family; S2013 patients must have
    their chronic insulin reference anchored at *target* (the
    configuration every campaign path builds), since that is what the
    scalar ``reset(target)`` uses.
    """
    patients = list(patients)
    if not patients:
        return np.zeros(0)
    kind = type(patients[0])
    if not all(isinstance(p, kind) for p in patients):
        raise ValueError("lock-step titration requires one patient model "
                         "family per batch")
    params = [p.params for p in patients]
    if isinstance(patients[0], IVPPatient):
        plant = _IVPBatch(params)
    else:
        off_target = [p.name for p in patients
                      if p.target_glucose != float(target)]
        if off_target:
            raise ValueError(
                f"S2013 titration anchors the insulin reference at the "
                f"patient's target_glucose; {off_target} are not at "
                f"{target} — titrate them with the scalar empirical_isf")
        plant = _T1DBatch(params)

    n_cols = len(patients)
    basal = np.array([p.basal_rate(target) for p in patients])
    state = plant.reset(np.full(n_cols, float(target)), target)

    duration = 5.0  # the scalar titration steps at the default APS cycle
    n_steps = int(horizon_min / duration)
    n_sub = max(1, int(round(duration / kind.dt_integration)))
    dt_sub = duration / n_sub
    basal_uu_min = basal * UU_PER_UNIT / 60.0
    bolus_uu = bolus_u * UU_PER_UNIT
    low = None
    for step in range(n_steps):
        for i in range(n_sub):
            if step == 0 and i == 0:
                infusion = basal_uu_min + bolus_uu / dt_sub
            else:
                infusion = basal_uu_min
            state = plant.advance(state, dt_sub, infusion, None)
        glucose = plant.glucose(state)
        low = glucose.copy() if low is None else np.minimum(low, glucose)
    isf = (target - low) / bolus_u
    return np.where(isf < 5.0, 5.0, isf)


def _seed_profiles(patients: Dict[str, object], target: float) -> None:
    """Batch-titrate the cohort members whose controller profile is not in
    the process-wide :data:`~repro.simulation.executor.PROFILE_CACHE` yet
    and seed the cache, so the subsequent per-patient ``make_controller``
    calls are pure lookups."""
    missing = {pid: patient for pid, patient in patients.items()
               if (patient.name, target) not in PROFILE_CACHE}
    if not missing:
        return
    isf = titrate_isf_batch(list(missing.values()), target)
    for value, (pid, patient) in zip(isf, missing.items()):
        profile = {"basal": patient.basal_rate(target), "isf": float(value),
                   "target": target}
        PROFILE_CACHE.get_or_compute((patient.name, target),
                                     lambda profile=profile: profile)


def warm_profiles(platform: str, patient_ids: Sequence[str],
                  target: float = 120.0) -> Dict[str, Dict[str, float]]:
    """Titrate a cohort's controller profiles in one lock-step batch.

    Seeds the process-wide profile cache (element-wise identical to the
    serial :func:`~repro.simulation.batch.controller_profile` titration)
    and returns ``patient_id -> profile``.  Call before a cold campaign to
    pay the titration cost once, vectorized, instead of per patient.
    """
    from .batch import controller_profile  # deferred: batch imports us too

    patients = {pid: make_patient(platform, pid, target_glucose=target)
                for pid in dict.fromkeys(patient_ids)}
    _seed_profiles(patients, target)
    return {pid: controller_profile(patient, target)
            for pid, patient in patients.items()}


# ----------------------------------------------------------------------
# meal precomputation (exact scalar replication)
# ----------------------------------------------------------------------

def _substep_times(n_steps: int, n_sub: int, dt_sub: float) -> List[float]:
    """Substep start times via the same float accumulation the scalar
    ``PatientModel.step`` performs (``self.t += dt`` per substep)."""
    times, t = [], 0.0
    for _ in range(n_steps * n_sub):
        times.append(t)
        t += dt_sub
    return times

def _precompute_ivp_ra(meals: Sequence[Sequence[Meal]], params,
                       sub_times: List[float], dt_sub: float
                       ) -> Optional[np.ndarray]:
    """Per-(substep, stage, row) meal rate-of-appearance timelines.

    Evaluated through the scalar :func:`repro.patients.ivp.meal_ra` at the
    exact RK4 stage times, with meals anchored at the substep start whose
    window contains them — precisely what the scalar patient does at run
    time, so the resulting values are bit-identical.
    """
    if not any(meals_b for meals_b in meals):
        return None
    n_subs = len(sub_times)
    ra = np.zeros((n_subs, 3, len(meals)))
    for b, meals_b in enumerate(meals):
        if not meals_b:
            continue
        params_b = params[b]
        v_g = params_b.glucose_volume_dl
        anchors = []  # ingestion order: (anchor time, carbs mg)
        for m, t0 in enumerate(sub_times):
            for meal in meals_b:
                if t0 <= meal.time < t0 + dt_sub:
                    anchors.append((t0, meal.carbs * 1000.0))
            for stage, ts in enumerate((t0, t0 + dt_sub / 2.0, t0 + dt_sub)):
                total = 0.0
                for start, carbs_mg in anchors:
                    s = ts - start
                    if s <= 0:
                        continue
                    total += meal_ra(s, carbs_mg, v_g)
                ra[m, stage, b] = total
    return ra


def _precompute_t1d_ingestion(meals: Sequence[Sequence[Meal]],
                              sub_times: List[float], dt_sub: float
                              ) -> Dict[int, List[Tuple[int, float]]]:
    """substep index -> [(row, carbs mg)] ingestion events, in scalar order."""
    events: Dict[int, List[Tuple[int, float]]] = {}
    for b, meals_b in enumerate(meals):
        for m, t0 in enumerate(sub_times):
            for meal in meals_b:
                if t0 <= meal.time < t0 + dt_sub:
                    events.setdefault(m, []).append((b, meal.carbs * 1000.0))
    return events


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

def run_batch(platform: str, runs: Sequence[SimRun], n_steps: int,
              dt: float = 5.0, target: float = 120.0,
              meals: Optional[Sequence[Sequence[Meal]]] = None,
              monitor_factory: Optional[MonitorFactory] = None,
              mitigator: Optional[Mitigator] = None
              ) -> List[SimulationTrace]:
    """Simulate every run in *runs* simultaneously, in lock step.

    Returns one :class:`SimulationTrace` per run, in run order, element-wise
    identical to driving each scenario through the scalar
    :class:`~repro.simulation.loop.ClosedLoop` (ideal sensor, standard
    pump — the campaign configuration).  With a *monitor_factory* the
    engine evaluates each patient's monitor column-wise every tick and
    records the alert channels; with a *mitigator* too, alerted rows carry
    a corrected per-row ``(rate, bolus)`` command into the pump/plant
    stage of the same tick (Algorithm 1), exactly like the scalar loop.
    A mitigator without a monitor never fires — the scalar loop's
    ``NO_ALERT`` semantics.

    Meal disturbances come from each run's ``SimRun.meals`` schedule by
    default; the explicit *meals* argument (one event sequence per run)
    overrides them for callers that batch ad-hoc scenarios.
    """
    from .batch import _PLATFORM_CONTROLLERS, make_controller

    B = len(runs)
    if B == 0:
        return []
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    controller_kind = _PLATFORM_CONTROLLERS.get(platform)
    if controller_kind is None:
        raise KeyError(f"unknown platform {platform!r}; "
                       f"available: {sorted(_PLATFORM_CONTROLLERS)}")
    if meals is None:
        # plan-path scheduling: each SimRun carries its own meal events
        meals = [getattr(run, "meals", ()) or () for run in runs]
    if len(meals) != B:
        raise ValueError("meals must align with runs")

    # one patient model + titrated scalar controller per distinct cohort
    # member: the controller instances are the source of every tuning
    # column below (profile basal/ISF and class defaults alike), so the
    # vector engine can never drift from the scalar configuration.  The
    # titration itself runs as one lock-step batch over the uncached
    # members (bit-identical to the serial empirical_isf) before the
    # controllers are built from the now-warm cache.
    patients: Dict[str, object] = {}
    for run in runs:
        if run.patient_id not in patients:
            patients[run.patient_id] = make_patient(platform, run.patient_id,
                                                    target_glucose=target)
    _seed_profiles(patients, target)
    controllers: Dict[str, object] = {
        pid: make_controller(platform, patient, target)
        for pid, patient in patients.items()}
    trace_ids = {pid: (p.name.split("/", 1)[1] if "/" in p.name else p.name)
                 for pid, p in patients.items()}
    params = [patients[run.patient_id].params for run in runs]
    row_controllers = [controllers[run.patient_id] for run in runs]

    if controller_kind == "openaps":
        plant = _IVPBatch(params)
        controller = _OpenAPSBatch(row_controllers)
    else:
        plant = _T1DBatch(params)
        controller = _BasalBolusBatch(row_controllers)
    basal = controller.basal  # scheduled basal: classify reference and
    # the net-IOB delivery offset (== IOBCalculator.basal_offset)

    # the engine evaluates one IOB series per row and records it as the
    # trace's monitor-side iob channel, exactly like the scalar loop — that
    # is only the controller's own IOB when both use the same activity
    # curve, so a controller configured away from the loop-side default
    # curve must fail loudly rather than batch incorrectly
    curves = {c._iob_calc.curve for c in controllers.values()}
    curve = curves.pop() if len(curves) == 1 else None
    if curve != InsulinActivityCurve():
        raise ValueError(
            "lock-step batching requires every controller to use the "
            "default insulin activity curve (the closed loop's "
            "monitor-side IOB curve); run these scenarios with "
            "batch_size=1 instead")
    frac_tab, act_tab, band_start = _iob_tables(curve, n_steps, dt)
    need_activity = controller_kind == "openaps"
    faults = _FaultBatch(runs)
    pump = InsulinPump()
    monitors = (_MonitorBatch(runs, monitor_factory)
                if monitor_factory is not None else None)
    # a mitigator only ever acts on a monitor verdict (Algorithm 1); with
    # no monitor the scalar loop keeps NO_ALERT and never corrects
    mitigators = (_MitigatorBatch(mitigator, B)
                  if mitigator is not None and monitors is not None else None)

    init_glucose = np.array([float(r.init_glucose) for r in runs])
    state = plant.reset(init_glucose, target)

    n_sub = max(1, int(round(dt / type(next(iter(patients.values()))).dt_integration)))
    dt_sub = dt / n_sub
    sub_times = _substep_times(n_steps, n_sub, dt_sub)
    run_meals = meals
    if controller_kind == "openaps":
        ra_timeline = _precompute_ivp_ra(run_meals, params, sub_times, dt_sub)
        ingestion = {}
    else:
        ra_timeline = None
        ingestion = _precompute_t1d_ingestion(run_meals, sub_times, dt_sub)

    columns = {name: np.zeros((n_steps, B), dtype=TRACE_COLUMN_DTYPES[name])
               for name in TRACE_ARRAY_FIELDS if name != "t"}
    units = np.zeros((n_steps, B))  # per-cycle net deliveries (U), time-major
    prev_iob = np.zeros(B)
    prev_cgm: Optional[np.ndarray] = None

    for step in range(n_steps):
        t = step * dt
        true_bg = plant.glucose(state)
        cgm = np.clip(plant.sensor_glucose(state), *CGM_RANGE)
        reading = faults.corrupt_reading(cgm, step)

        # IOB / activity at t: the scalar calculators' per-delivery sums,
        # replayed in delivery order from the precomputed decay tables
        iob = np.zeros(B)
        activity = np.zeros(B) if need_activity else None
        frac_row, act_row = frac_tab[step], act_tab[step]
        first = band_start[step]
        for i in range(step - first):
            u = units[first + i]
            iob += u * frac_row[i]
            if need_activity:
                activity += u * act_row[i]

        iob_ctrl = faults.corrupt_iob(iob, step)
        if need_activity:
            ctrl_rate, ctrl_bolus = controller.decide(step, dt, reading,
                                                      iob_ctrl, activity)
        else:
            ctrl_rate, ctrl_bolus = controller.decide(step, t, reading,
                                                      iob_ctrl)
        cmd_rate, cmd_bolus = faults.corrupt_command(ctrl_rate, ctrl_bolus,
                                                     step)
        action = _classify(cmd_rate, cmd_bolus, basal)
        iob_rate = np.zeros(B) if step == 0 else (iob - prev_iob) / dt

        # monitor context: fault-free sensor view + post-fault command,
        # assembled as a single-cycle context batch; mitigation rewrites
        # the alerted rows before the pump stage (Algorithm 1)
        final_rate, final_bolus = cmd_rate, cmd_bolus
        alerts = hazards = mitigated = None
        if monitors is not None:
            bg_rate = (np.zeros(B) if prev_cgm is None
                       else (cgm - prev_cgm) / dt)
            tick = ContextBatch.from_tick(t, cgm, bg_rate, iob, iob_rate,
                                          cmd_rate, cmd_bolus, action, dt)
            alerts, hazards, verdicts = monitors.observe(tick)
            if mitigators is not None and alerts.any():
                final_rate, final_bolus = mitigators.correct(
                    alerts, hazards, verdicts, tick, cmd_rate, cmd_bolus)
                mitigated = alerts & ((final_rate != cmd_rate)
                                      | (final_bolus != cmd_bolus))
        clamped = np.minimum(np.maximum(final_rate, 0.0), pump.max_basal)
        delivered_rate = np.floor(clamped / pump.increment + 1e-9) \
            * pump.increment
        delivered_bolus = np.minimum(np.maximum(final_bolus, 0.0),
                                     pump.max_bolus)
        units[step] = (delivered_rate - basal) * dt / 60.0 + delivered_bolus

        columns["true_bg"][step] = true_bg
        columns["cgm"][step] = cgm
        columns["reading"][step] = reading
        columns["ctrl_rate"][step] = ctrl_rate
        columns["ctrl_bolus"][step] = ctrl_bolus
        columns["cmd_rate"][step] = cmd_rate
        columns["cmd_bolus"][step] = cmd_bolus
        columns["action"][step] = action
        columns["iob"][step] = iob
        columns["iob_rate"][step] = iob_rate
        columns["final_rate"][step] = final_rate
        columns["final_bolus"][step] = final_bolus
        columns["delivered_rate"][step] = delivered_rate
        columns["delivered_bolus"][step] = delivered_bolus
        # alert / alert_hazard / mitigated stay all-zero when unmonitored
        if alerts is not None:
            columns["alert"][step] = alerts
            columns["alert_hazard"][step] = hazards
        if mitigated is not None:
            columns["mitigated"][step] = mitigated

        # advance the plant: n_sub RK4 substeps, bolus infused over the
        # first, meals ingested at the substeps whose window contains them
        pending = delivered_bolus * UU_PER_UNIT
        basal_uu = delivered_rate * UU_PER_UNIT / 60.0
        for i in range(n_sub):
            sub = step * n_sub + i
            for row, carbs_mg in ingestion.get(sub, ()):
                plant.ingest(state, row, carbs_mg)
            if i == 0:
                infusion = np.where(pending > 0.0,
                                    basal_uu + pending / dt_sub, basal_uu)
            else:
                infusion = basal_uu
            stages = None
            if ra_timeline is not None:
                stages = (ra_timeline[sub, 0], ra_timeline[sub, 1],
                          ra_timeline[sub, 2])
            state = plant.advance(state, dt_sub, infusion, stages)
        prev_iob = iob
        prev_cgm = cgm

    t_column = np.arange(n_steps, dtype=np.float64) * dt
    traces = []
    for b, run in enumerate(runs):
        arrays = {name: np.ascontiguousarray(col[:, b])
                  for name, col in columns.items()}
        traces.append(SimulationTrace(
            platform=platform, patient_id=trace_ids[run.patient_id],
            label=run.label, dt=dt, fault=run.fault, t=t_column.copy(),
            **arrays))
    return traces


def run_vector_chunk(plan, runs: Sequence[SimRun], batch_size: int,
                     monitor_factory: Optional[MonitorFactory] = None,
                     mitigator: Optional[Mitigator] = None
                     ) -> List[SimulationTrace]:
    """Execute a contiguous plan slice as consecutive lock-step batches.

    The last batch is ragged when ``batch_size`` does not divide the slice;
    batch boundaries cannot affect the traces (each row is independent —
    monitor state lives per column and mitigators reset per run), so any
    ``batch_size`` yields the identical stream.
    """
    traces: List[SimulationTrace] = []
    for lo in range(0, len(runs), batch_size):
        traces.extend(run_batch(plan.platform, runs[lo:lo + batch_size],
                                plan.n_steps, dt=plan.dt,
                                target=plan.target,
                                monitor_factory=monitor_factory,
                                mitigator=mitigator))
    return traces
