"""Offline monitor replay over recorded traces.

Monitors are passive observers: unless mitigation is enabled, they do not
change the closed-loop dynamics.  A fault-injection campaign therefore only
needs to be *simulated once*; every candidate monitor can then be evaluated
by replaying the recorded context stream through it.  This is what makes the
paper's many-monitor comparisons (Tables V, VI, Fig. 9) tractable.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ..controllers import ControlAction
from ..core.context import ContextVector
from ..core.monitor import SafetyMonitor
from .trace import SimulationTrace

__all__ = ["replay_monitor", "replay_many", "iter_contexts"]


def iter_contexts(trace: SimulationTrace):
    """Yield the per-cycle :class:`ContextVector` stream of a trace.

    Reconstructs exactly what the closed loop fed the monitor: clean CGM
    values, loop-side IOB bookkeeping and the post-fault-injection command.
    """
    n = len(trace)
    for t in range(n):
        bg_rate = 0.0 if t == 0 else (trace.cgm[t] - trace.cgm[t - 1]) / trace.dt
        yield ContextVector(
            t=float(trace.t[t]), bg=float(trace.cgm[t]), bg_rate=float(bg_rate),
            iob=float(trace.iob[t]), iob_rate=float(trace.iob_rate[t]),
            rate=float(trace.cmd_rate[t]), bolus=float(trace.cmd_bolus[t]),
            action=ControlAction(int(trace.action[t])))


def replay_monitor(monitor: SafetyMonitor,
                   trace: SimulationTrace) -> Tuple[np.ndarray, np.ndarray]:
    """Replay one trace through *monitor*.

    Returns ``(alerts, hazards)``: boolean alert flags and the predicted
    hazard-type codes (0 when silent) per cycle.  The monitor is reset first.
    """
    monitor.reset()
    n = len(trace)
    alerts = np.zeros(n, dtype=bool)
    hazards = np.zeros(n, dtype=int)
    for t, ctx in enumerate(iter_contexts(trace)):
        verdict = monitor.observe(ctx)
        alerts[t] = verdict.alert
        hazards[t] = 0 if verdict.hazard is None else int(verdict.hazard)
    return alerts, hazards


def replay_many(monitor: SafetyMonitor,
                traces: Iterable[SimulationTrace]) -> List[np.ndarray]:
    """Alert sequences of *monitor* over a list of traces."""
    return [replay_monitor(monitor, trace)[0] for trace in traces]
