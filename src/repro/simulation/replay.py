"""Offline monitor replay over recorded traces.

Monitors are passive observers: unless mitigation is enabled, they do not
change the closed-loop dynamics.  A fault-injection campaign therefore only
needs to be *simulated once*; every candidate monitor can then be evaluated
by replaying the recorded context stream through it.  This is what makes the
paper's many-monitor comparisons (Tables V, VI, Fig. 9) tractable.

:func:`replay_campaign` scales that replay the same two ways the campaign
executor scales simulation: the trace list is cut into deterministic index
chunks and fanned out over the forked-pool protocol of
:mod:`repro.parallel` (``workers=``), and within each chunk the traces can
be stacked into lock-step context batches evaluated column-wise through
:meth:`~repro.core.monitor.SafetyMonitor.observe_batch`
(``batch_size=``, see :mod:`repro.simulation.vector_replay`).  Both knobs
are wall-clock knobs only: every monitor is reset per trace, so the alert
streams are element-wise identical for any ``workers``/``batch_size``
combination.  Any trace sequence works, in particular the lazy
:class:`~repro.simulation.store.TraceDataset`, in which case each worker
loads only its own shards.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..core.monitor import SafetyMonitor
from ..parallel import (fork_map_chunks, resolve_batch_size, resolve_workers,
                        shard_indices)
from .features import ContextBatch
from .trace import SimulationTrace

__all__ = ["replay_monitor", "replay_many", "replay_campaign",
           "iter_contexts"]


def iter_contexts(trace: SimulationTrace):
    """Yield the per-cycle :class:`ContextVector` stream of a trace.

    Reconstructs exactly what the closed loop fed the monitor: the ``B=1``
    column of the shared
    :class:`~repro.simulation.features.ContextBatch` — replay, batched
    replay and ML dataset construction therefore agree cycle-for-cycle by
    construction.
    """
    yield from ContextBatch.from_traces([trace]).iter_column(0)


def replay_monitor(monitor: SafetyMonitor,
                   trace: SimulationTrace) -> Tuple[np.ndarray, np.ndarray]:
    """Replay one trace through *monitor*.

    Returns ``(alerts, hazards)``: boolean alert flags and the predicted
    hazard-type codes (0 when silent) per cycle.  The monitor is reset first.
    """
    monitor.reset()
    n = len(trace)
    alerts = np.zeros(n, dtype=bool)
    hazards = np.zeros(n, dtype=int)
    for t, ctx in enumerate(iter_contexts(trace)):
        verdict = monitor.observe(ctx)
        alerts[t] = verdict.alert
        hazards[t] = 0 if verdict.hazard is None else int(verdict.hazard)
    return alerts, hazards


def _replay_alerts(monitor: SafetyMonitor, contexts) -> np.ndarray:
    """Alert flags of *monitor* (reset first) over a realised context list."""
    monitor.reset()
    alerts = np.zeros(len(contexts), dtype=bool)
    for t, ctx in enumerate(contexts):
        alerts[t] = monitor.observe(ctx).alert
    return alerts


def replay_campaign(monitors: Mapping[str, SafetyMonitor],
                    traces: Iterable[SimulationTrace],
                    workers: Optional[int] = None,
                    batch_size: Optional[int] = None,
                    chunks_per_worker: int = 4
                    ) -> Dict[str, List[np.ndarray]]:
    """Replay a named set of monitors over recorded traces, in parallel.

    Parameters
    ----------
    monitors:
        ``name -> monitor`` mapping; every monitor sees every trace (reset
        before each one, exactly like :func:`replay_monitor`).  The
        context stream of each trace is reconstructed once and shared by
        all monitors.
    traces:
        Any iterable of traces.  Serially, plain iterables (generators
        included) are streamed one trace (one batch, with
        ``batch_size > 1``) at a time; with ``workers > 1`` a sequence is
        required for index chunking — ideally a lazy
        :class:`~repro.simulation.store.TraceDataset`, so each worker
        loads only its own shards (non-sequence iterables are
        materialised first).
    workers:
        Process count (None: ``REPRO_WORKERS`` env, or 1).  Monitors and
        the trace sequence are fork-inherited, never pickled, so trained
        models and lazy datasets work unchanged; only the boolean alert
        arrays travel back.  Output is element-wise identical to
        ``workers=1`` for every worker count.
    batch_size:
        Lock-step replay width (None: ``REPRO_BATCH_SIZE`` env, or 1 =
        the scalar per-cycle loop).  Traces are stacked into
        ``(n_steps, B)`` context batches and every monitor is evaluated
        column-wise via
        :meth:`~repro.core.monitor.SafetyMonitor.observe_batch` (see
        :mod:`repro.simulation.vector_replay`); the alert streams are
        element-wise identical to the scalar path for every batch size,
        and the knob composes multiplicatively with *workers* — each pool
        chunk becomes a sequence of lock-step batches, exactly like the
        simulation engine.

    Returns ``name -> list of per-trace boolean alert arrays``, aligned
    with *traces*.
    """
    if chunks_per_worker < 1:
        raise ValueError(
            f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
    named = dict(monitors)
    workers = resolve_workers(workers)
    batch_size = resolve_batch_size(batch_size)
    out: Dict[str, List[np.ndarray]] = {name: [] for name in named}
    if not named:
        return out
    if batch_size > 1:
        from .vector_replay import replay_chunk_batched
        if workers <= 1:
            return replay_chunk_batched(named, traces, batch_size)
    if workers <= 1:
        # stream: one trace resident at a time, whatever the iterable
        for trace in traces:
            contexts = list(iter_contexts(trace))
            for name, monitor in named.items():
                out[name].append(_replay_alerts(monitor, contexts))
        return out

    if not hasattr(traces, "__getitem__"):
        traces = list(traces)
    n = len(traces)
    if n == 0:
        return out
    chunks = shard_indices(n, workers * chunks_per_worker)

    def replay_chunk(index_range):
        if batch_size > 1:
            return replay_chunk_batched(
                named, (traces[i] for i in index_range), batch_size)
        result = {name: [] for name in named}
        for i in index_range:
            contexts = list(iter_contexts(traces[i]))
            for name, monitor in named.items():
                result[name].append(_replay_alerts(monitor, contexts))
        return result

    for chunk_result in fork_map_chunks(replay_chunk, chunks, workers):
        for name, alerts in chunk_result.items():
            out[name].extend(alerts)
    return out


def replay_many(monitor: SafetyMonitor,
                traces: Iterable[SimulationTrace],
                workers: Optional[int] = None,
                batch_size: Optional[int] = None) -> List[np.ndarray]:
    """Alert sequences of *monitor* over a list of traces (``workers`` and
    ``batch_size`` as for :func:`replay_campaign` — both are wall-clock
    knobs with element-wise identical output)."""
    return replay_campaign({"monitor": monitor}, traces, workers=workers,
                           batch_size=batch_size)["monitor"]
