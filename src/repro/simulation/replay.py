"""Offline monitor replay over recorded traces.

Monitors are passive observers: unless mitigation is enabled, they do not
change the closed-loop dynamics.  A fault-injection campaign therefore only
needs to be *simulated once*; every candidate monitor can then be evaluated
by replaying the recorded context stream through it.  This is what makes the
paper's many-monitor comparisons (Tables V, VI, Fig. 9) tractable.

:func:`replay_campaign` scales that replay the same way the campaign
executor scales simulation: the trace list is cut into deterministic index
chunks and fanned out over the forked-pool protocol of
:mod:`repro.parallel`, with every monitor reset per trace — so the alert
streams are element-wise identical for any worker count.  It accepts any
trace sequence, in particular the lazy
:class:`~repro.simulation.store.TraceDataset`, in which case each worker
loads only its own shards.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..controllers import ControlAction
from ..core.context import ContextVector
from ..core.monitor import SafetyMonitor
from ..parallel import fork_map_chunks, resolve_workers, shard_indices
from .features import context_matrix
from .trace import SimulationTrace

__all__ = ["replay_monitor", "replay_many", "replay_campaign",
           "iter_contexts"]


def iter_contexts(trace: SimulationTrace):
    """Yield the per-cycle :class:`ContextVector` stream of a trace.

    Reconstructs exactly what the closed loop fed the monitor, row by row
    of the shared :func:`~repro.simulation.features.context_matrix` —
    replay and ML dataset construction therefore agree cycle-for-cycle by
    construction.
    """
    matrix = context_matrix(trace)
    for t in range(len(trace)):
        bg, bg_rate, iob, iob_rate, rate, bolus = matrix[t, :6]
        yield ContextVector(
            t=float(trace.t[t]), bg=float(bg), bg_rate=float(bg_rate),
            iob=float(iob), iob_rate=float(iob_rate),
            rate=float(rate), bolus=float(bolus),
            action=ControlAction(int(trace.action[t])))


def replay_monitor(monitor: SafetyMonitor,
                   trace: SimulationTrace) -> Tuple[np.ndarray, np.ndarray]:
    """Replay one trace through *monitor*.

    Returns ``(alerts, hazards)``: boolean alert flags and the predicted
    hazard-type codes (0 when silent) per cycle.  The monitor is reset first.
    """
    monitor.reset()
    n = len(trace)
    alerts = np.zeros(n, dtype=bool)
    hazards = np.zeros(n, dtype=int)
    for t, ctx in enumerate(iter_contexts(trace)):
        verdict = monitor.observe(ctx)
        alerts[t] = verdict.alert
        hazards[t] = 0 if verdict.hazard is None else int(verdict.hazard)
    return alerts, hazards


def _replay_alerts(monitor: SafetyMonitor, contexts) -> np.ndarray:
    """Alert flags of *monitor* (reset first) over a realised context list."""
    monitor.reset()
    alerts = np.zeros(len(contexts), dtype=bool)
    for t, ctx in enumerate(contexts):
        alerts[t] = monitor.observe(ctx).alert
    return alerts


def replay_campaign(monitors: Mapping[str, SafetyMonitor],
                    traces: Iterable[SimulationTrace],
                    workers: Optional[int] = None,
                    chunks_per_worker: int = 4
                    ) -> Dict[str, List[np.ndarray]]:
    """Replay a named set of monitors over recorded traces, in parallel.

    Parameters
    ----------
    monitors:
        ``name -> monitor`` mapping; every monitor sees every trace (reset
        before each one, exactly like :func:`replay_monitor`).  The
        context stream of each trace is reconstructed once and shared by
        all monitors.
    traces:
        Any iterable of traces.  Serially, plain iterables (generators
        included) are streamed one trace at a time; with ``workers > 1``
        a sequence is required for index chunking — ideally a lazy
        :class:`~repro.simulation.store.TraceDataset`, so each worker
        loads only its own shards (non-sequence iterables are
        materialised first).
    workers:
        Process count (None: ``REPRO_WORKERS`` env, or 1).  Monitors and
        the trace sequence are fork-inherited, never pickled, so trained
        models and lazy datasets work unchanged; only the boolean alert
        arrays travel back.  Output is element-wise identical to
        ``workers=1`` for every worker count.

    Returns ``name -> list of per-trace boolean alert arrays``, aligned
    with *traces*.
    """
    if chunks_per_worker < 1:
        raise ValueError(
            f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
    named = dict(monitors)
    workers = resolve_workers(workers)
    out: Dict[str, List[np.ndarray]] = {name: [] for name in named}
    if not named:
        return out
    if workers <= 1:
        # stream: one trace resident at a time, whatever the iterable
        for trace in traces:
            contexts = list(iter_contexts(trace))
            for name, monitor in named.items():
                out[name].append(_replay_alerts(monitor, contexts))
        return out

    if not hasattr(traces, "__getitem__"):
        traces = list(traces)
    n = len(traces)
    if n == 0:
        return out
    chunks = shard_indices(n, workers * chunks_per_worker)

    def replay_chunk(index_range):
        result = {name: [] for name in named}
        for i in index_range:
            contexts = list(iter_contexts(traces[i]))
            for name, monitor in named.items():
                result[name].append(_replay_alerts(monitor, contexts))
        return result

    for chunk_result in fork_map_chunks(replay_chunk, chunks, workers):
        for name, alerts in chunk_result.items():
            out[name].extend(alerts)
    return out


def replay_many(monitor: SafetyMonitor,
                traces: Iterable[SimulationTrace],
                workers: Optional[int] = None) -> List[np.ndarray]:
    """Alert sequences of *monitor* over a list of traces."""
    return replay_campaign({"monitor": monitor}, traces,
                           workers=workers)["monitor"]
