"""Batched (lock-step) offline monitor replay.

PR 4 made *simulation* advance whole batches of runs as ``(n_states, B)``
matrices, but monitor evaluation — the paper's Tables V/VI and Fig. 9 hot
path — still walked every recorded trace one Python cycle at a time.  This
module lifts replay the same way: stored or streamed traces are stacked
into ``(n_steps, B)`` context batches
(:class:`~repro.simulation.features.ContextBatch`) and every monitor is
evaluated column-wise through
:meth:`~repro.core.monitor.SafetyMonitor.observe_batch`.

The contract mirrors the vector simulation engine's **exact parity**: for
any batch composition and size, the alert streams are element-wise
identical to the scalar :func:`~repro.simulation.replay.replay_campaign`
loop.  Three rules deliver it:

- the context values come from the *same*
  :func:`~repro.simulation.features.context_matrix` rows the scalar
  stream yields (there is one context builder; the scalar stream is its
  ``B=1`` column view);
- vectorized ``observe_batch`` implementations (context-aware rules,
  DT/MLP, Guideline, MPC) transcribe the scalar arithmetic with identical
  operation order — comparisons and size-invariant ufuncs only — while
  whole-matrix BLAS calls, whose rounding depends on batch shape, are
  deliberately avoided (the MLP classifies per row for exactly this
  reason);
- everything else (the LSTM's sliding-window state, any user-defined
  monitor) falls back to the base class's per-column scalar loop, which
  *is* the scalar definition.

Batches are greedy groups of consecutive equal-length traces, so a
heterogeneous stream (campaign plus fault-free runs of a different
``n_steps``) batches as far as its layout allows; batch boundaries cannot
affect the verdicts (columns are independent), so any ``batch_size``
yields the identical stream.  Memory stays bounded by the batch: one
:class:`ContextBatch` is resident at a time, so lazy
:class:`~repro.simulation.store.TraceDataset` streams keep their
bounded-memory guarantee.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..core.monitor import SafetyMonitor
from ..parallel import iter_equal_length_groups
from .features import ContextBatch
from .trace import SimulationTrace

__all__ = ["iter_trace_batches", "replay_chunk_batched",
           "replay_monitor_batched"]


def iter_trace_batches(traces: Iterable[SimulationTrace],
                       batch_size: int) -> Iterator[List[SimulationTrace]]:
    """Group a trace stream into consecutive equal-length batches.

    The shared :func:`~repro.parallel.iter_equal_length_groups` boundary
    rule: batches hold at most *batch_size* traces and never mix lengths
    (a length change closes the current batch), so concatenating the
    groups always reproduces the input order and every group is a valid
    :meth:`ContextBatch.from_traces` input.  Streaming: at most one group
    is resident at a time.
    """
    return iter_equal_length_groups(traces, batch_size)


def _observe_checked(monitor: SafetyMonitor, name: str,
                     batch: ContextBatch) -> Tuple[np.ndarray, np.ndarray]:
    """Run ``observe_batch`` and validate the verdict-matrix shapes, so a
    miswritten override fails loudly instead of silently misaligning the
    per-trace alert streams."""
    alerts, hazards = monitor.observe_batch(batch)
    if np.shape(alerts) != batch.shape or np.shape(hazards) != batch.shape:
        raise ValueError(
            f"monitor {name!r} returned verdict matrices of shape "
            f"{np.shape(alerts)}/{np.shape(hazards)} for a context batch "
            f"of shape {batch.shape}")
    return alerts, hazards


def replay_chunk_batched(monitors: Mapping[str, SafetyMonitor],
                         traces: Iterable[SimulationTrace],
                         batch_size: int) -> Dict[str, List[np.ndarray]]:
    """Replay *monitors* over a trace stream in lock-step batches.

    The batched chunk runner behind
    :func:`~repro.simulation.replay.replay_campaign` — the serial path
    hands it the whole stream, the parallel path one index chunk per
    task, so ``workers`` and ``batch_size`` compose without touching the
    verdicts.  Returns ``name -> per-trace boolean alert arrays`` aligned
    with the input stream, exactly like the scalar runner.
    """
    named = dict(monitors)
    out: Dict[str, List[np.ndarray]] = {name: [] for name in named}
    for group in iter_trace_batches(traces, batch_size):
        batch = ContextBatch.from_traces(group)
        for name, monitor in named.items():
            alerts, _ = _observe_checked(monitor, name, batch)
            out[name].extend(np.ascontiguousarray(alerts[:, b])
                             for b in range(alerts.shape[1]))
    return out


def replay_monitor_batched(monitor: SafetyMonitor,
                           traces: Iterable[SimulationTrace],
                           batch_size: Optional[int] = None
                           ) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Batched sibling of :func:`~repro.simulation.replay.replay_monitor`.

    Returns one ``(alerts, hazards)`` pair per trace — boolean alert
    flags and integer hazard-type codes (0 when silent) — element-wise
    identical to replaying each trace through the scalar
    ``replay_monitor`` loop.
    """
    from ..parallel import resolve_batch_size

    batch_size = resolve_batch_size(batch_size)
    results: List[Tuple[np.ndarray, np.ndarray]] = []
    for group in iter_trace_batches(traces, batch_size):
        batch = ContextBatch.from_traces(group)
        alerts, hazards = _observe_checked(monitor, monitor.name, batch)
        results.extend(
            (np.ascontiguousarray(alerts[:, b]),
             np.ascontiguousarray(hazards[:, b]))
            for b in range(alerts.shape[1]))
    return results
