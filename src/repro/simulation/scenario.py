"""Simulation scenario configuration.

The paper's experiments run the patient-controller loop for 150 iterations of
5 minutes (~12.5 hours), starting from an initial glucose between 80 and
200 mg/dL, with no meals or exercise during the simulated period
(Section V-A).  :class:`Scenario` captures those choices so campaigns are
explicit and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..patients import Meal

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """One closed-loop run configuration.

    Attributes
    ----------
    init_glucose:
        Starting blood glucose (mg/dL).
    n_steps:
        Number of control cycles (paper: 150).
    dt:
        Control period in minutes (paper: 5).
    meals:
        Optional scheduled meals (the paper's scenarios have none).
    label:
        Free-form tag for reports.
    """

    init_glucose: float = 120.0
    n_steps: int = 150
    dt: float = 5.0
    meals: Tuple[Meal, ...] = field(default_factory=tuple)
    label: str = ""

    def __post_init__(self):
        if self.init_glucose <= 0:
            raise ValueError(f"init_glucose must be positive, got {self.init_glucose}")
        if self.n_steps < 2:
            raise ValueError(f"n_steps must be >= 2, got {self.n_steps}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")

    @property
    def duration(self) -> float:
        """Total simulated minutes."""
        return self.n_steps * self.dt
