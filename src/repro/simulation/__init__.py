"""Closed-loop APS simulation: engine, scenarios, traces, campaign batches."""

from .batch import (
    controller_profile,
    kfold_split,
    make_controller,
    make_loop,
    run_campaign,
    run_fault_free,
)
from .executor import (
    BASELINE_CACHE,
    PROFILE_CACHE,
    BaselineCache,
    CampaignExecutor,
    CampaignPlan,
    CountingSink,
    ListSink,
    NpzDirectorySink,
    ParallelExecutor,
    ProfileCache,
    SerialExecutor,
    SimRun,
    TraceSink,
    get_executor,
    plan_campaign,
    plan_fault_free,
    shard_plan,
)
from .loop import ClosedLoop
from .replay import iter_contexts, replay_many, replay_monitor
from .scenario import Scenario
from .trace import SimulationTrace, TraceRecorder

__all__ = [
    "controller_profile",
    "kfold_split",
    "make_controller",
    "make_loop",
    "run_campaign",
    "run_fault_free",
    "BASELINE_CACHE",
    "PROFILE_CACHE",
    "BaselineCache",
    "CampaignExecutor",
    "CampaignPlan",
    "CountingSink",
    "ListSink",
    "NpzDirectorySink",
    "ParallelExecutor",
    "ProfileCache",
    "SerialExecutor",
    "SimRun",
    "TraceSink",
    "get_executor",
    "plan_campaign",
    "plan_fault_free",
    "shard_plan",
    "ClosedLoop",
    "iter_contexts",
    "replay_many",
    "replay_monitor",
    "Scenario",
    "SimulationTrace",
    "TraceRecorder",
]
