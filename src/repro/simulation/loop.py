"""The closed-loop simulation engine (Fig. 5a of the paper).

One :class:`ClosedLoop` wires together a virtual patient, a CGM sensor, an
APS controller, an insulin pump and — optionally — a fault injector, a safety
monitor and a mitigator.  Per control cycle the data flow is::

    patient --(interstitial glucose)--> sensor --> [FI on input] -->
    controller --(rate, bolus)--> [FI on output] -->
    monitor (context inference, UCA detection) --> [mitigation] -->
    pump --> patient

matching the paper's architecture: the monitor taps the *fault-free* sensor
stream and the *post-fault* command (it wraps the controller), and fault
injection perturbs only the controller's view/outputs — never the plant or
the ground-truth labels.

This loop is also the parity *reference* for the lock-step vectorized
engine (:mod:`repro.simulation.vector`): every batched path — plain,
monitored and mitigated alike — must reproduce this file's per-cycle
arithmetic element-wise, so any semantic change here must be transcribed
there (the parity test suites enforce it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..controllers import Controller, IOBCalculator, classify_action
from ..core.context import ContextVector
from ..core.mitigation import Mitigator
from ..core.monitor import NO_ALERT, SafetyMonitor
from ..fi import FaultInjector
from ..patients import CGMSensor, InsulinPump, PatientModel
from .scenario import Scenario
from .trace import SimulationTrace, TraceRecorder

__all__ = ["ClosedLoop"]


@dataclass
class ClosedLoop:
    """A complete closed-loop APS simulation.

    Attributes
    ----------
    patient:
        The virtual patient (plant).
    controller:
        The APS controller under test.
    platform:
        Platform tag recorded in traces (``glucosym``/``t1ds2013``).
    sensor, pump:
        Sensor/actuator models; default to ideal sensor and a standard pump.
    injector:
        Optional fault injector for this run.
    monitor:
        Optional safety monitor.
    mitigator:
        Optional mitigation strategy; applied only when a monitor alerts.
    """

    patient: PatientModel
    controller: Controller
    platform: str = "custom"
    sensor: Optional[CGMSensor] = None
    pump: Optional[InsulinPump] = None
    injector: Optional[FaultInjector] = None
    monitor: Optional[SafetyMonitor] = None
    mitigator: Optional[Mitigator] = None

    def __post_init__(self):
        if self.sensor is None:
            self.sensor = CGMSensor()
        if self.pump is None:
            self.pump = InsulinPump()

    def run(self, scenario: Scenario) -> SimulationTrace:
        """Execute *scenario* and return the full trace."""
        self.patient.reset(scenario.init_glucose)
        self.controller.reset()
        self.controller.iob_tamper = None
        self.sensor.reset()
        self.pump.reset()
        if self.injector is not None:
            self.injector.reset()
        if self.monitor is not None:
            self.monitor.reset()
        if self.mitigator is not None:
            self.mitigator.reset()
        for meal in scenario.meals:
            self.patient.add_meal(meal)

        # monitor-side context IOB uses the net (above-scheduled-basal)
        # convention, matching the controller's own IOB semantics
        iob_calc = IOBCalculator(basal_offset=self.controller.scheduled_basal)
        recorder = TraceRecorder(
            platform=self.platform, patient_id=self._patient_id(),
            label=scenario.label, dt=scenario.dt,
            fault=self.injector.spec if self.injector else None,
            n_steps=scenario.n_steps)

        prev_cgm = None
        prev_iob = 0.0
        for step in range(scenario.n_steps):
            t = step * scenario.dt
            true_bg = self.patient.glucose
            cgm = self.sensor.measure(self.patient.sensor_glucose)

            # controller (input and internal state possibly corrupted by FI)
            reading = cgm
            if self.injector is not None:
                reading = self.injector.corrupt_reading(cgm, step)

                # default args bind the current step and injector
                def tamper(iob, s=step, injector=self.injector):
                    return injector.corrupt_iob(iob, s)

                self.controller.iob_tamper = tamper
            decision = self.controller.decide(reading, t)
            cmd_rate, cmd_bolus = decision.basal, decision.bolus
            if self.injector is not None:
                cmd_rate, cmd_bolus = self.injector.corrupt_command(
                    cmd_rate, cmd_bolus, step)
            action = classify_action(cmd_rate, cmd_bolus,
                                     self.controller.scheduled_basal)

            # monitor context: fault-free sensor view + post-fault command
            iob = iob_calc.iob(t)
            iob_rate = (iob - prev_iob) / scenario.dt if step > 0 else 0.0
            if self.monitor is not None:
                bg_rate = 0.0 if prev_cgm is None else (cgm - prev_cgm) / scenario.dt
                ctx = ContextVector(t=t, bg=cgm, bg_rate=bg_rate, iob=iob,
                                    iob_rate=iob_rate, rate=cmd_rate,
                                    bolus=cmd_bolus, action=action)
                verdict = self.monitor.observe(ctx)
            else:
                ctx = None
                verdict = NO_ALERT

            # mitigation (Algorithm 1): replace unsafe commands
            final_rate, final_bolus = cmd_rate, cmd_bolus
            mitigated = False
            if self.mitigator is not None and verdict.alert:
                final_rate, final_bolus = self.mitigator.correct(verdict, ctx)
                mitigated = (final_rate, final_bolus) != (cmd_rate, cmd_bolus)

            # actuation
            delivered_rate = self.pump.command_basal(final_rate)
            delivered_bolus = self.pump.command_bolus(final_bolus)
            self.pump.record_delivery(delivered_rate, delivered_bolus, scenario.dt)
            self.patient.step(delivered_rate, delivered_bolus, scenario.dt)
            self.controller.notify_delivery(delivered_rate, delivered_bolus,
                                            t, scenario.dt)
            iob_calc.record(delivered_rate, delivered_bolus, t, scenario.dt)

            recorder.append(
                t=t, true_bg=true_bg, cgm=cgm, reading=reading,
                ctrl_rate=decision.basal, ctrl_bolus=decision.bolus,
                cmd_rate=cmd_rate, cmd_bolus=cmd_bolus, action=int(action),
                iob=iob, iob_rate=iob_rate,
                final_rate=final_rate, final_bolus=final_bolus,
                delivered_rate=delivered_rate, delivered_bolus=delivered_bolus,
                alert=verdict.alert,
                alert_hazard=0 if verdict.hazard is None else int(verdict.hazard),
                mitigated=mitigated,
            )
            prev_cgm = cgm
            prev_iob = iob
        return recorder.finish()

    def _patient_id(self) -> str:
        name = self.patient.name
        return name.split("/", 1)[1] if "/" in name else name
