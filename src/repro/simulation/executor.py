"""Parallel campaign execution engine.

The paper's evaluation grid is 882 fault injections per patient across a
20-patient, two-platform cohort (Section V-B) — embarrassingly parallel
work that the original ``run_campaign`` executed serially in one process.
This module supplies the machinery to fan that grid out over a worker pool
while keeping the output *byte-identical* to the serial loop:

- :func:`plan_campaign` / :func:`plan_fault_free` normalise a campaign into
  an immutable :class:`CampaignPlan` — a flat, patient-major tuple of
  :class:`SimRun` cells;
- :func:`shard_plan` cuts the plan into deterministic contiguous chunks;
- :class:`SerialExecutor` and :class:`ParallelExecutor` share the
  :class:`CampaignExecutor` interface.  The parallel executor forks a
  ``multiprocessing`` pool (fork start method, so unpicklable monitor
  factories are inherited, not serialised) and merges chunk results in
  stable (patient, scenario) order;
- :class:`ProfileCache` and :class:`BaselineCache` hold the expensive
  shared artifacts (titrated controller profiles, fault-free reference
  traces) in explicit, lock-guarded objects that forked workers warm
  independently;
- :class:`TraceSink` and friends stream traces out of memory so
  million-trace campaigns never hold every :class:`SimulationTrace` at
  once.

Every execution path funnels through the same per-chunk runner, so worker
count never changes the simulated dynamics — only the wall-clock time.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import threading
import warnings
from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

import numpy as np

from ..core.mitigation import Mitigator
from ..core.monitor import SafetyMonitor
from ..fi import FaultInjector, FaultSpec, InjectionScenario
from ..parallel import (fork_map_chunks, resolve_batch_size, resolve_workers,
                        shard_indices)
from ..patients import Meal
from .scenario import Scenario
from .trace import SimulationTrace, trace_to_arrays, trace_to_struct

__all__ = [
    "SimRun", "CampaignPlan", "plan_campaign", "plan_fault_free",
    "shard_plan", "ProfileCache", "BaselineCache", "PROFILE_CACHE",
    "BASELINE_CACHE", "TraceSink", "ListSink", "CountingSink",
    "NpzDirectorySink", "NpyDirectorySink", "CampaignExecutor", "SerialExecutor",
    "ParallelExecutor", "get_executor", "resolve_batch_size",
]

MonitorFactory = Callable[[str], SafetyMonitor]


# ----------------------------------------------------------------------
# plans: the normalised (patient x scenario) grid
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimRun:
    """One cell of the campaign grid: a patient plus one simulation spec.

    ``meals`` carries scheduled carbohydrate disturbances (empty for the
    paper's meal-free grid); sampled scenario populations — the rare-event
    search in :mod:`repro.search` — plan meal scenarios through the same
    executor path, so both the scalar and lock-step engines consume them.
    """

    patient_id: str
    init_glucose: float
    label: str
    fault: Optional[FaultSpec] = None
    meals: Tuple[Meal, ...] = ()


@dataclass(frozen=True)
class CampaignPlan:
    """An immutable, patient-major execution plan.

    The run order *is* the output order: executors must return (or stream)
    traces exactly in ``plan.runs`` order, whatever the worker count.
    """

    platform: str
    runs: Tuple[SimRun, ...]
    n_steps: int = 150
    target: float = 120.0
    dt: float = 5.0

    def __post_init__(self):
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")

    def __len__(self) -> int:
        return len(self.runs)


def plan_campaign(platform: str, patient_ids: Sequence[str],
                  scenarios: Iterable[InjectionScenario],
                  n_steps: int = 150, dt: float = 5.0) -> CampaignPlan:
    """Plan a fault-injection campaign: every scenario against every patient."""
    scenarios = tuple(scenarios)
    runs = tuple(SimRun(patient_id=pid, init_glucose=scn.init_glucose,
                        label=scn.label, fault=scn.fault)
                 for pid in patient_ids for scn in scenarios)
    return CampaignPlan(platform=platform, runs=runs, n_steps=n_steps, dt=dt)


def plan_fault_free(platform: str, patient_ids: Sequence[str],
                    init_glucose_values: Sequence[float],
                    n_steps: int = 150, dt: float = 5.0) -> CampaignPlan:
    """Plan the fault-free reference runs over the initial-glucose grid."""
    runs = tuple(SimRun(patient_id=pid, init_glucose=float(bg),
                        label=f"fault-free/bg{bg:g}", fault=None)
                 for pid in patient_ids for bg in init_glucose_values)
    return CampaignPlan(platform=platform, runs=runs, n_steps=n_steps, dt=dt)


def shard_plan(plan: CampaignPlan,
               n_chunks: int) -> List[Tuple[SimRun, ...]]:
    """Cut ``plan.runs`` into at most *n_chunks* contiguous chunks.

    Chunk boundaries depend only on ``(len(plan), n_chunks)``, so sharding
    is deterministic, and concatenating the chunks always reproduces the
    original run order.  Chunk sizes differ by at most one.
    """
    return [plan.runs[r.start:r.stop]
            for r in shard_indices(len(plan.runs), n_chunks)]


# ----------------------------------------------------------------------
# caches
# ----------------------------------------------------------------------

class ProfileCache:
    """Lock-guarded cache of titrated controller profiles.

    Replaces the former ad-hoc module-global ``_PROFILE_CACHE`` dict in
    :mod:`repro.simulation.batch`.  Each process owns its instance: forked
    workers inherit whatever the parent warmed before the fork and fill in
    the rest independently, so there is no cross-process coordination to
    get wrong.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._profiles: Dict[tuple, Dict[str, float]] = {}

    def get_or_compute(self, key: tuple,
                       compute: Callable[[], Dict[str, float]]) -> Dict[str, float]:
        """Cached profile for *key*, computing (under the lock) on a miss."""
        with self._lock:
            if key not in self._profiles:
                self._profiles[key] = compute()
            return dict(self._profiles[key])

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._profiles


class BaselineCache:
    """Cache of fault-free baseline traces.

    Keyed by ``(platform, patient_id, init_glucose, n_steps)`` — the full
    identity of a monitor-less, mitigation-less fault-free run.  Campaign
    code consults it before simulating so the same baselines are never
    recomputed across experiments; forked workers inherit the parent's warm
    entries and can warm their own copies independently.

    Only unmonitored runs are cacheable: a monitor changes the recorded
    alert channels, so those traces are never served from here.
    """

    @staticmethod
    def key(platform: str, patient_id: str, init_glucose: float,
            n_steps: int) -> tuple:
        return (platform, patient_id, float(init_glucose), int(n_steps))

    def __init__(self):
        self._lock = threading.Lock()
        self._traces: Dict[tuple, SimulationTrace] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[SimulationTrace]:
        with self._lock:
            trace = self._traces.get(key)
            if trace is None:
                self.misses += 1
            else:
                self.hits += 1
            return trace

    def put(self, key: tuple, trace: SimulationTrace) -> None:
        with self._lock:
            self._traces[key] = trace

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self.hits = self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._traces


#: process-wide default instances (one per process; fork inherits them warm)
PROFILE_CACHE = ProfileCache()
BASELINE_CACHE = BaselineCache()


# ----------------------------------------------------------------------
# trace sinks: stream results instead of accumulating them
# ----------------------------------------------------------------------

class TraceSink(abc.ABC):
    """Consumer of a stable-ordered trace stream.

    Executors call :meth:`write` once per completed run, in exact plan
    order.  The *caller* owns the sink's lifecycle — use it as a context
    manager (or call :meth:`close`) so one sink can absorb several
    campaigns before flushing.  Sinks let arbitrarily large campaigns run
    in bounded memory: the executor drops each chunk after handing it over.
    """

    @abc.abstractmethod
    def write(self, trace: SimulationTrace) -> None:
        """Consume one trace."""

    def close(self) -> None:
        """Flush/finalise (default: nothing)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ListSink(TraceSink):
    """Accumulate traces in memory (the classic return-a-list behaviour)."""

    def __init__(self):
        self.traces: List[SimulationTrace] = []

    def write(self, trace: SimulationTrace) -> None:
        self.traces.append(trace)


class CountingSink(TraceSink):
    """Keep only aggregate statistics — O(1) memory for any campaign size."""

    def __init__(self):
        self.n_traces = 0
        self.n_hazardous = 0
        self.n_alerting = 0

    def write(self, trace: SimulationTrace) -> None:
        self.n_traces += 1
        self.n_hazardous += int(trace.hazardous)
        self.n_alerting += int(bool(trace.alert.any()))

    @property
    def hazard_fraction(self) -> float:
        return self.n_hazardous / self.n_traces if self.n_traces else 0.0


class NpzDirectorySink(TraceSink):
    """Stream each trace to ``<directory>/trace_<index>.npz``.

    Each shard is a self-describing
    :func:`~repro.simulation.trace.trace_to_arrays` payload: array channels
    stored as-is, identity metadata (platform, patient, label, dt and the
    fault spec fields) riding along as 0-d object-free entries.  Pair with
    a manifest via :class:`repro.simulation.store.CampaignStoreWriter` to
    get a reopenable on-disk dataset.
    """

    #: shard filename extension (subclasses override)
    suffix = "npz"

    def __init__(self, directory: str, index_offset: int = 0):
        if index_offset < 0:
            raise ValueError(
                f"index_offset must be >= 0, got {index_offset}")
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        stale = [name for name in os.listdir(directory)
                 if name.startswith("trace_")
                 and name.endswith((".npz", ".npy"))]
        if stale:
            raise FileExistsError(
                f"{directory} already holds {len(stale)} trace file(s); "
                "writing would intermix two campaigns — use a fresh "
                "directory or remove them first")
        #: shard numbering starts here — a distributed range worker
        #: writing runs [start, stop) of one shared plan passes
        #: ``index_offset=start`` so its shard names are *global* plan
        #: indices and partial directories merge without renaming
        self.index_offset = int(index_offset)
        self.n_written = 0

    @classmethod
    def shard_name(cls, index: int) -> str:
        return f"trace_{index:09d}.{cls.suffix}"

    def _write_shard(self, path: str, trace: SimulationTrace) -> None:
        np.savez_compressed(path, **trace_to_arrays(trace))

    def write(self, trace: SimulationTrace) -> None:
        path = os.path.join(
            self.directory, self.shard_name(self.index_offset + self.n_written))
        self._write_shard(path, trace)
        self.n_written += 1


class NpyDirectorySink(NpzDirectorySink):
    """Stream each trace to an *uncompressed* ``trace_<index>.npy`` shard.

    The payload is the :func:`~repro.simulation.trace.trace_to_struct`
    structured array — channels only, no identity metadata — so unlike the
    npz shards these files are not self-describing: pair them with a
    :class:`repro.simulation.store.CampaignStoreWriter` (which records the
    metadata in its manifest, ``shard_format="npy"``).  The payoff is on
    the read side: the store's lazy reader opens them with
    ``mmap_mode="r"`` and every channel access is a zero-copy view of the
    page cache, making replay-heavy loops immune to decompression cost.
    """

    suffix = "npy"

    def _write_shard(self, path: str, trace: SimulationTrace) -> None:
        np.save(path, trace_to_struct(trace))


# ----------------------------------------------------------------------
# the shared chunk runner
# ----------------------------------------------------------------------

def _run_chunk(plan: CampaignPlan, runs: Sequence[SimRun],
               monitor_factory: Optional[MonitorFactory],
               mitigator: Optional[Mitigator],
               batch_size: int = 1) -> List[SimulationTrace]:
    """Execute a contiguous slice of the plan.

    This is the *only* place simulations happen — serial executor, parallel
    workers and cache-warming all call it, which is what guarantees that
    worker count cannot change the simulated dynamics.  With
    ``batch_size > 1`` the slice runs through the lock-step vectorized
    engine (:mod:`repro.simulation.vector`) — monitored and mitigated runs
    included, with per-tick column-wise monitor evaluation and row-wise
    command correction — whose traces are element-wise identical to the
    scalar loop below (see ``docs/mitigation.md`` for the contract).
    """
    from .batch import make_loop  # deferred: batch imports this module too

    if batch_size > 1:
        from .vector import run_vector_chunk
        return run_vector_chunk(plan, runs, batch_size,
                                monitor_factory=monitor_factory,
                                mitigator=mitigator)

    traces: List[SimulationTrace] = []
    loop = None
    current_pid: Optional[str] = None
    for run in runs:
        if loop is None or run.patient_id != current_pid:
            monitor = monitor_factory(run.patient_id) if monitor_factory else None
            loop = make_loop(plan.platform, run.patient_id, monitor=monitor,
                             mitigator=mitigator, target=plan.target)
            current_pid = run.patient_id
        loop.injector = (FaultInjector(run.fault)
                         if run.fault is not None else None)
        sim = Scenario(init_glucose=run.init_glucose, n_steps=plan.n_steps,
                       dt=plan.dt, label=run.label, meals=run.meals)
        traces.append(loop.run(sim))
    return traces


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------

class CampaignExecutor(abc.ABC):
    """Executes a :class:`CampaignPlan`, preserving plan order exactly."""

    @abc.abstractmethod
    def map_chunks(self, plan: CampaignPlan,
                   monitor_factory: Optional[MonitorFactory],
                   mitigator: Optional[Mitigator]
                   ) -> Iterable[List[SimulationTrace]]:
        """Yield per-chunk trace lists, in plan order."""

    def run(self, plan: CampaignPlan,
            monitor_factory: Optional[MonitorFactory] = None,
            mitigator: Optional[Mitigator] = None,
            sink: Optional[TraceSink] = None
            ) -> Optional[List[SimulationTrace]]:
        """Execute the plan.

        Without a sink, returns the full trace list in plan order.  With a
        sink, each trace is streamed to ``sink.write`` as its chunk
        completes (still in plan order), memory stays bounded by the chunk
        size, and ``None`` is returned.
        """
        if sink is None:
            collected: List[SimulationTrace] = []
            for chunk_traces in self.map_chunks(plan, monitor_factory,
                                                mitigator):
                collected.extend(chunk_traces)
            return collected
        for chunk_traces in self.map_chunks(plan, monitor_factory, mitigator):
            for trace in chunk_traces:
                sink.write(trace)
        return None


class SerialExecutor(CampaignExecutor):
    """Single-process reference executor (the original semantics).

    The whole plan is one chunk, so — exactly like the historical serial
    loop — the monitor factory is invoked once per patient and one
    :class:`~repro.simulation.loop.ClosedLoop` is reused across a patient's
    scenarios.  ``batch_size > 1`` runs the plan — monitored and mitigated
    plans included — through the vectorized engine in batches of that many
    rows (identical traces).
    """

    def __init__(self, batch_size: int = 1):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def map_chunks(self, plan, monitor_factory, mitigator):
        yield _run_chunk(plan, plan.runs, monitor_factory, mitigator,
                         batch_size=self.batch_size)


class ParallelExecutor(CampaignExecutor):
    """Fan the plan out over a forked ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Pool size (defaults to the machine's CPU count).
    chunks_per_worker:
        Oversharding factor: the plan is cut into
        ``workers * chunks_per_worker`` chunks so stragglers (patients
        whose profile titration is cold, long fault durations) re-balance.
    start_method:
        Forced multiprocessing start method.  Only ``"fork"`` supports
        unpicklable monitor factories; on platforms without fork the
        executor degrades to in-process serial execution with a warning.
    batch_size:
        With ``batch_size > 1`` each worker runs its chunk — monitored
        and mitigated runs included — through the vectorized engine in
        lock-step batches of that many rows, so the pool speedup and the
        SIMD speedup multiply.

    Chunk results are collected strictly in submission order from a
    bounded window of in-flight tasks, so the trace stream is element-wise
    identical to :class:`SerialExecutor`'s and parent-side memory stays
    proportional to ``workers``, not campaign size.
    """

    def __init__(self, workers: Optional[int] = None,
                 chunks_per_worker: int = 4,
                 start_method: str = "fork",
                 batch_size: int = 1):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunks_per_worker < 1:
            raise ValueError(
                f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.workers = workers or (os.cpu_count() or 1)
        self.chunks_per_worker = chunks_per_worker
        self.start_method = start_method
        self.batch_size = batch_size

    def map_chunks(self, plan, monitor_factory, mitigator):
        if (self.workers <= 1 or len(plan) <= 1
                or self.start_method not in
                multiprocessing.get_all_start_methods()):
            if self.start_method not in multiprocessing.get_all_start_methods():
                warnings.warn(
                    f"start method {self.start_method!r} unavailable; "
                    "falling back to serial execution", RuntimeWarning,
                    stacklevel=3)
            yield _run_chunk(plan, plan.runs, monitor_factory, mitigator,
                             batch_size=self.batch_size)
            return

        chunks = shard_plan(plan, self.workers * self.chunks_per_worker)

        def run_chunk(runs):
            return _run_chunk(plan, runs, monitor_factory, mitigator,
                              batch_size=self.batch_size)

        yield from fork_map_chunks(run_chunk, chunks, self.workers,
                                   start_method=self.start_method)


def get_executor(workers: Optional[int] = None,
                 batch_size: Optional[int] = None) -> CampaignExecutor:
    """Executor for *workers* processes and vectorized batches of
    *batch_size* runs (None: ``REPRO_WORKERS`` / ``REPRO_BATCH_SIZE`` env,
    defaulting to serial scalar execution)."""
    workers = resolve_workers(workers)
    batch_size = resolve_batch_size(batch_size)
    if workers == 1:
        return SerialExecutor(batch_size=batch_size)
    return ParallelExecutor(workers=workers, batch_size=batch_size)
