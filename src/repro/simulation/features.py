"""Canonical per-cycle context reconstruction from recorded traces.

Offline monitor replay (:mod:`repro.simulation.replay`) and ML dataset
construction (:mod:`repro.ml.datasets`) both rebuild the monitor's view of
a trace: clean CGM, its finite-difference rate, loop-side IOB bookkeeping
and the post-fault-injection command, plus the one-hot control action.
They used to each carry their own copy of that arithmetic — a drift risk,
since a silent disagreement would make the ML monitors train on features
that differ from what replay (and the live loop) feeds them.  This module
is the single shared implementation both sides delegate to.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..controllers import ControlAction

__all__ = ["FEATURE_NAMES", "context_matrix", "context_row"]

#: feature layout shared by replay, training data and runtime monitors
FEATURE_NAMES: Tuple[str, ...] = ("BG", "BG'", "IOB", "IOB'", "rate", "bolus",
                                  "u1", "u2", "u3", "u4")


def context_matrix(trace) -> np.ndarray:
    """Per-cycle context matrix ``(n, len(FEATURE_NAMES))`` of a trace.

    Row ``t`` is exactly what the closed loop fed the monitor at cycle
    ``t``: BG is the clean CGM reading, BG' its backward difference
    (0 at the first cycle), IOB/IOB' the loop-side estimates, rate/bolus
    the post-fault-injection command and ``u1..u4`` the one-hot encoding
    of the commanded control action.
    """
    n = len(trace)
    bg_rate = np.zeros(n)
    bg_rate[1:] = np.diff(trace.cgm) / trace.dt
    columns = [trace.cgm, bg_rate, trace.iob, trace.iob_rate,
               trace.cmd_rate, trace.cmd_bolus]
    for act in ControlAction:
        columns.append((trace.action == int(act)).astype(float))
    return np.column_stack(columns)


def context_row(ctx) -> np.ndarray:
    """The same feature layout computed from one runtime ContextVector."""
    row = [ctx.bg, ctx.bg_rate, ctx.iob, ctx.iob_rate, ctx.rate, ctx.bolus]
    row.extend(1.0 if ctx.action == act else 0.0 for act in ControlAction)
    return np.asarray(row, dtype=float)
