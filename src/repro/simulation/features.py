"""Canonical per-cycle context reconstruction from recorded traces.

Offline monitor replay (:mod:`repro.simulation.replay`), its batched
sibling (:mod:`repro.simulation.vector_replay`) and ML dataset
construction (:mod:`repro.ml.datasets`) all rebuild the monitor's view of
a trace: clean CGM, its finite-difference rate, loop-side IOB bookkeeping
and the post-fault-injection command, plus the one-hot control action.
They used to each carry their own copy of that arithmetic — a drift risk,
since a silent disagreement would make the ML monitors train on features
that differ from what replay (and the live loop) feeds them.  This module
is the single shared implementation every consumer delegates to:
:func:`context_matrix` for one trace, :class:`ContextBatch` for a
lock-step stack of traces, with the scalar context stream
(:func:`~repro.simulation.replay.iter_contexts`) defined as the ``B=1``
column view of the same stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from ..controllers import ControlAction
from ..core.context import ContextVector

__all__ = ["FEATURE_NAMES", "context_matrix", "context_row", "ContextBatch"]

#: feature layout shared by replay, training data and runtime monitors
FEATURE_NAMES: Tuple[str, ...] = ("BG", "BG'", "IOB", "IOB'", "rate", "bolus",
                                  "u1", "u2", "u3", "u4")


def context_matrix(trace) -> np.ndarray:
    """Per-cycle context matrix ``(n, len(FEATURE_NAMES))`` of a trace.

    Row ``t`` is exactly what the closed loop fed the monitor at cycle
    ``t``: BG is the clean CGM reading, BG' its backward difference
    (0 at the first cycle), IOB/IOB' the loop-side estimates, rate/bolus
    the post-fault-injection command and ``u1..u4`` the one-hot encoding
    of the commanded control action.
    """
    n = len(trace)
    bg_rate = np.zeros(n)
    bg_rate[1:] = np.diff(trace.cgm) / trace.dt
    columns = [trace.cgm, bg_rate, trace.iob, trace.iob_rate,
               trace.cmd_rate, trace.cmd_bolus]
    for act in ControlAction:
        columns.append((trace.action == int(act)).astype(float))
    return np.column_stack(columns)


def context_row(ctx) -> np.ndarray:
    """The same feature layout computed from one runtime ContextVector."""
    row = [ctx.bg, ctx.bg_rate, ctx.iob, ctx.iob_rate, ctx.rate, ctx.bolus]
    row.extend(1.0 if ctx.action == act else 0.0 for act in ControlAction)
    return np.asarray(row, dtype=float)


@dataclass(frozen=True)
class ContextBatch:
    """A lock-step stack of per-cycle context streams.

    ``B`` equal-length traces stacked time-major: ``features[t, :, b]`` is
    exactly the :func:`context_matrix` row the closed loop fed the monitor
    at cycle ``t`` of trace ``b``, with the time stamps and the discrete
    action codes riding along.  This is the input of
    :meth:`repro.core.monitor.SafetyMonitor.observe_batch`; the scalar
    context stream (:func:`~repro.simulation.replay.iter_contexts`) is the
    ``B=1`` special case via :meth:`iter_column`, so the batched and
    scalar replay paths consume the identical floating-point values by
    construction.

    Attributes
    ----------
    t:
        ``(n_steps, B)`` time stamps in minutes (one column per trace).
    features:
        ``(n_steps, len(FEATURE_NAMES), B)`` stacked context matrices.
    action:
        ``(n_steps, B)`` integer :class:`~repro.controllers.ControlAction`
        codes of the commanded action.
    dt:
        ``(B,)`` control periods; traces of different ``dt`` may share a
        batch (the rates are computed per column before stacking).
    """

    t: np.ndarray
    features: np.ndarray
    action: np.ndarray
    dt: np.ndarray

    @classmethod
    def from_traces(cls, traces: Sequence) -> "ContextBatch":
        """Stack equal-length traces into one batch (column order = input
        order).  Raises ``ValueError`` on an empty or ragged input — the
        batching iterator of :mod:`repro.simulation.vector_replay` groups
        a heterogeneous stream into valid batches."""
        traces = list(traces)
        if not traces:
            raise ValueError("cannot build a ContextBatch from zero traces")
        lengths = {len(trace) for trace in traces}
        if len(lengths) != 1:
            raise ValueError(
                f"all traces in a batch must share one length, got "
                f"{sorted(lengths)}")
        return cls(
            t=np.stack([trace.t for trace in traces], axis=1),
            features=np.stack([context_matrix(trace) for trace in traces],
                              axis=2),
            action=np.stack([trace.action for trace in traces], axis=1),
            dt=np.array([float(trace.dt) for trace in traces]))

    @classmethod
    def from_tick(cls, t: float, bg: np.ndarray, bg_rate: np.ndarray,
                  iob: np.ndarray, iob_rate: np.ndarray, rate: np.ndarray,
                  bolus: np.ndarray, action: np.ndarray,
                  dt: float) -> "ContextBatch":
        """One live control cycle as a ``(1, B)`` batch.

        The lock-step simulation engine (:mod:`repro.simulation.vector`)
        builds its per-tick monitor/mitigator input through this
        constructor, so the live batched loop, offline replay and ML
        training all share one feature layout (:data:`FEATURE_NAMES`).
        The channel vectors are stacked as-is — they are the exact floats
        the scalar closed loop would place in each row's
        :class:`~repro.core.context.ContextVector`, and
        :meth:`iter_column` recovers those vectors bit for bit.
        """
        action = np.asarray(action)
        rows = [np.asarray(bg, dtype=float), np.asarray(bg_rate, dtype=float),
                np.asarray(iob, dtype=float), np.asarray(iob_rate, dtype=float),
                np.asarray(rate, dtype=float), np.asarray(bolus, dtype=float)]
        for act in ControlAction:
            rows.append((action == int(act)).astype(float))
        n_cols = len(action)
        return cls(t=np.full((1, n_cols), float(t)),
                   features=np.stack(rows, axis=0)[np.newaxis, :, :],
                   action=action.reshape(1, n_cols),
                   dt=np.full(n_cols, float(dt)))

    def append(self, other: "ContextBatch") -> "ContextBatch":
        """Extend this batch with *other*'s cycles along the time axis.

        The incremental form of :meth:`from_traces`: feeding a trace
        tick-by-tick through :meth:`from_tick` and folding with
        ``append`` reconstructs the exact arrays ``from_traces`` builds
        in one shot (pure concatenation — no recomputation, so the
        floats are identical).  This is how the serving layer
        materialises a user's ring-buffer window as one batch.  Both
        operands must agree on the column count and per-column ``dt``.
        """
        if self.shape[1] != other.shape[1]:
            raise ValueError(
                f"column count mismatch: {self.shape[1]} vs {other.shape[1]}")
        if not np.array_equal(self.dt, other.dt):
            raise ValueError("per-column dt mismatch between batches")
        return ContextBatch(
            t=np.concatenate([self.t, other.t], axis=0),
            features=np.concatenate([self.features, other.features], axis=0),
            action=np.concatenate([self.action, other.action], axis=0),
            dt=self.dt)

    def take_columns(self, columns: np.ndarray) -> "ContextBatch":
        """A new batch holding the given column subset, in the given
        order — used by the live engine to route each monitor group its
        own rows."""
        return ContextBatch(t=self.t[:, columns],
                            features=self.features[:, :, columns],
                            action=self.action[:, columns],
                            dt=self.dt[columns])

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_steps, B)``."""
        return (self.features.shape[0], self.features.shape[2])

    # named channel views, all (n_steps, B) — the batched monitors index
    # these instead of building a ContextVector per cycle
    @property
    def bg(self) -> np.ndarray:
        return self.features[:, 0, :]

    @property
    def bg_rate(self) -> np.ndarray:
        return self.features[:, 1, :]

    @property
    def iob(self) -> np.ndarray:
        return self.features[:, 2, :]

    @property
    def iob_rate(self) -> np.ndarray:
        return self.features[:, 3, :]

    @property
    def rate(self) -> np.ndarray:
        return self.features[:, 4, :]

    @property
    def bolus(self) -> np.ndarray:
        return self.features[:, 5, :]

    def column_features(self, b: int) -> np.ndarray:
        """Contiguous ``(n_steps, len(FEATURE_NAMES))`` feature matrix of
        column *b* — row ``t`` equals the scalar
        :func:`~repro.ml.datasets.context_features` of that cycle."""
        return np.ascontiguousarray(self.features[:, :, b])

    def iter_column(self, b: int) -> Iterator[ContextVector]:
        """Yield column *b* as the scalar per-cycle ContextVector stream —
        the exact values :meth:`~repro.core.monitor.SafetyMonitor.observe`
        sees when the trace is replayed serially."""
        features = self.features
        for step in range(features.shape[0]):
            bg, bg_rate, iob, iob_rate, rate, bolus = features[step, :6, b]
            yield ContextVector(
                t=float(self.t[step, b]), bg=float(bg),
                bg_rate=float(bg_rate), iob=float(iob),
                iob_rate=float(iob_rate), rate=float(rate),
                bolus=float(bolus),
                action=ControlAction(int(self.action[step, b])))
