"""Write-once on-disk campaign datasets: npz shards + a JSON manifest.

The paper's evaluation simulates each fault-injection campaign *once* and
then replays every candidate monitor, threshold learner and ML dataset
builder over the recorded traces.  This module turns that "run once" step
into a durable artifact:

- :class:`CampaignStoreWriter` streams traces (in plan order, byte-identical
  from any executor, worker count or vectorization batch size) into
  per-trace shards — compressed ``.npz``
  (default) or uncompressed structured ``.npy`` for zero-copy
  ``mmap_mode="r"`` reads (``shard_format="npy"``) — and finalises a
  ``manifest.json`` keyed by patient / scenario / fold, carrying a schema
  version and a campaign fingerprint;
- :class:`TraceDataset` reopens the directory as a lazy, bounded-memory
  sequence of :class:`~repro.simulation.trace.SimulationTrace` objects —
  shards load on demand into a small LRU window, so downstream consumers
  (``build_point_dataset``, ``mine_rule_samples``, ``replay_campaign``)
  can stream arbitrarily large campaigns without materialising them.

The fingerprint is a SHA-256 over the campaign's identity — platform,
step count and the ordered (patient, scenario label, fault) cells — and is
computable both from a :class:`~repro.simulation.executor.CampaignPlan`
(before simulating) and from a manifest (after), so "is this directory
the campaign my config describes?" is a cheap equality check.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from collections import OrderedDict
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..fi import FaultKind, FaultSpec, FaultTarget
from .executor import (CampaignPlan, NpyDirectorySink, NpzDirectorySink,
                       TraceSink)
from .trace import SimulationTrace, trace_from_arrays, trace_from_struct

__all__ = [
    "SCHEMA_VERSION", "MANIFEST_NAME", "CampaignStoreError",
    "campaign_fingerprint", "plan_fingerprint", "trace_entry",
    "assign_folds", "write_manifest", "CampaignStoreWriter",
    "DatasetStats", "TraceDataset", "TraceDatasetView", "open_dataset",
    "manifest_path", "TraceTick", "iter_trace_ticks",
]

#: bump when the manifest layout, the shard payload schema, or the
#: simulated trace content changes (v2: the control period ``dt`` joined
#: the fingerprint cells, and the scalar/vector engine unification of
#: PR 4 moved transcendental rounding from libm to numpy — traces differ
#: from v1 stores in low-order bits, so v1 stores must not be reused)
SCHEMA_VERSION = 2

MANIFEST_NAME = "manifest.json"

#: default size of the lazy reader's LRU window (traces held in memory)
DEFAULT_CACHE_SIZE = 16


class CampaignStoreError(RuntimeError):
    """A campaign dataset is missing, corrupted, or from another campaign."""


def manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST_NAME)


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------

#: one campaign cell: (patient_id, label, dt, fault-or-None) where the
#: fault is the 5-tuple (kind, target, start_step, duration_steps, value)
Cell = Tuple[str, str, float, Optional[Tuple[str, str, int, int, float]]]


def _fault_cell(fault: Optional[FaultSpec]
                ) -> Optional[Tuple[str, str, int, int, float]]:
    if fault is None:
        return None
    return (fault.kind.value, fault.target.value, int(fault.start_step),
            int(fault.duration_steps), float(fault.value))


def campaign_fingerprint(platform: str, n_steps: int,
                         cells: Iterable[Cell]) -> str:
    """SHA-256 hex digest of a campaign's identity.

    Canonical-JSON hash over the platform, the per-trace step count and
    the *ordered* (patient, label, dt, fault) cells — everything that
    determines the simulated traces, nothing that doesn't (worker count,
    batch size, directory).
    """
    doc = {"schema_version": SCHEMA_VERSION, "platform": platform,
           "n_steps": int(n_steps),
           "cells": [[pid, label, float(dt), list(fault) if fault else None]
                     for pid, label, dt, fault in cells]}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def plan_fingerprint(plan: CampaignPlan) -> str:
    """The fingerprint a store written from *plan* will carry."""
    cells = [(run.patient_id, run.label, plan.dt, _fault_cell(run.fault))
             for run in plan.runs]
    return campaign_fingerprint(plan.platform, plan.n_steps, cells)


def _entry_cell(entry: Mapping) -> Cell:
    fault = entry.get("fault")
    if fault is not None:
        fault = (fault["kind"], fault["target"], int(fault["start_step"]),
                 int(fault["duration_steps"]), float(fault["value"]))
    return (entry["patient_id"], entry["label"], float(entry["dt"]), fault)


def _entry_fault(entry: Mapping) -> Optional[FaultSpec]:
    """Rebuild the FaultSpec a manifest entry records (None if fault-free)."""
    fault = entry.get("fault")
    if fault is None:
        return None
    return FaultSpec(kind=FaultKind(fault["kind"]),
                     target=FaultTarget(fault["target"]),
                     start_step=int(fault["start_step"]),
                     duration_steps=int(fault["duration_steps"]),
                     value=float(fault["value"]))


# ----------------------------------------------------------------------
# manifest construction (shared by the writer and the distributed merge)
# ----------------------------------------------------------------------

def trace_entry(trace: SimulationTrace, file: str) -> dict:
    """The manifest entry recording *trace* stored at shard *file*.

    ``fold`` starts unassigned (``None``); :func:`assign_folds` fills it
    in over the complete, plan-ordered entry list — fold identity depends
    on a trace's position among its patient's traces, which no single
    shard (or distributed range worker) can know in isolation.
    """
    fault = None
    if trace.fault is not None:
        fault = {"kind": trace.fault.kind.value,
                 "target": trace.fault.target.value,
                 "start_step": trace.fault.start_step,
                 "duration_steps": trace.fault.duration_steps,
                 "value": trace.fault.value}
    return {"file": file, "patient_id": trace.patient_id,
            "label": trace.label, "dt": trace.dt, "fold": None,
            "fault": fault}


def assign_folds(entries: List[dict], folds: Optional[int]) -> List[dict]:
    """Assign per-patient round-robin cross-validation folds in place.

    The same assignment :func:`~repro.simulation.batch.kfold_split`
    produces on a patient's trace list: the n-th trace of each patient
    (in entry order) lands in fold ``n % folds``.  Entry order must be
    plan order — call this only on a complete entry list.  With
    ``folds=None`` every ``fold`` stays ``None``.  Returns *entries*.
    """
    if folds is None:
        return entries
    per_patient: Dict[str, int] = {}
    for entry in entries:
        seen = per_patient.get(entry["patient_id"], 0)
        entry["fold"] = seen % folds
        per_patient[entry["patient_id"]] = seen + 1
    return entries


def write_manifest(directory: str, platform: str, n_steps: int,
                   folds: Optional[int], shard_format: str,
                   entries: List[dict]) -> dict:
    """Finalise a campaign manifest over *entries*, atomically.

    Computes the fingerprint from the entry cells and writes
    ``manifest.json`` via write-then-rename, so a torn write never yields
    a parsable manifest.  This is the single place a manifest's JSON is
    produced — :class:`CampaignStoreWriter` and the distributed
    :func:`~repro.distributed.merge_manifests` both call it, which is
    what makes a merged multi-host dataset byte-identical to a
    single-box write.  Returns the manifest document.
    """
    fingerprint = campaign_fingerprint(
        platform, int(n_steps), (_entry_cell(e) for e in entries))
    manifest = {"schema_version": SCHEMA_VERSION,
                "fingerprint": fingerprint, "platform": platform,
                "n_steps": int(n_steps), "folds": folds,
                "shard_format": shard_format,
                "n_traces": len(entries), "traces": entries}
    tmp = manifest_path(directory) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1)
    os.replace(tmp, manifest_path(directory))
    return manifest


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------

#: shard_format -> directory sink that writes it
_SHARD_SINKS = {"npz": NpzDirectorySink, "npy": NpyDirectorySink}


class CampaignStoreWriter(TraceSink):
    """Stream a campaign into *directory* and finalise its manifest.

    Wraps a shard directory sink (which refuses directories already
    holding trace shards) and records one manifest entry per trace.
    ``shard_format`` selects the payload: ``"npz"`` (default) writes
    compressed self-describing shards, ``"npy"`` writes uncompressed
    structured arrays the reader reopens with ``mmap_mode="r"`` for
    zero-copy channel access — larger on disk, much cheaper on hot
    replay loops.  When
    *folds* is given, each entry also carries the trace's round-robin
    cross-validation fold *within its patient* — the same assignment
    :func:`~repro.simulation.batch.kfold_split` produces on a patient's
    trace list, so readers can reconstruct any fold without loading data.

    Use as a context manager (or call :meth:`close`): the manifest — and
    with it the dataset's validity — only exists after a clean close.  If
    the ``with`` body raises (a simulator error, a dead worker), the
    writer *aborts* instead of closing: no manifest is written, so the
    half-written shard pile can never be mistaken for a complete dataset
    and the next open/rewrite reports it explicitly.
    """

    def __init__(self, directory: str, platform: str, n_steps: int,
                 folds: Optional[int] = None, shard_format: str = "npz"):
        if folds is not None and folds < 2:
            raise ValueError(f"folds must be >= 2, got {folds}")
        if shard_format not in _SHARD_SINKS:
            raise ValueError(
                f"unknown shard_format {shard_format!r}; available: "
                f"{sorted(_SHARD_SINKS)}")
        if os.path.exists(manifest_path(directory)):
            raise CampaignStoreError(
                f"{directory} already holds a campaign manifest; "
                "use a fresh directory or remove it first")
        self.platform = platform
        self.n_steps = int(n_steps)
        self.folds = folds
        self.shard_format = shard_format
        try:
            self._sink = _SHARD_SINKS[shard_format](directory)
        except FileExistsError as exc:
            raise CampaignStoreError(
                f"{directory} holds trace shards but no manifest — the "
                "remains of an interrupted campaign write; remove the "
                "directory and rerun") from exc
        self._entries: List[dict] = []
        self._closed = False

    @property
    def directory(self) -> str:
        return self._sink.directory

    @property
    def n_written(self) -> int:
        return self._sink.n_written

    def write(self, trace: SimulationTrace) -> None:
        if self._closed:
            raise CampaignStoreError("writer is closed")
        if trace.platform != self.platform:
            raise CampaignStoreError(
                f"trace platform {trace.platform!r} does not match the "
                f"store's {self.platform!r}")
        if len(trace) != self.n_steps:
            raise CampaignStoreError(
                f"trace has {len(trace)} steps, store expects {self.n_steps}")
        index = self._sink.index_offset + self._sink.n_written
        self._sink.write(trace)
        self._entries.append(
            trace_entry(trace, self._sink.shard_name(index)))

    def abort(self) -> None:
        """Discard the write: no manifest is (or can later be) produced."""
        self._closed = True

    def __exit__(self, exc_type, exc, tb) -> None:
        # a failed campaign must not be finalised into a valid dataset
        if exc_type is not None:
            self.abort()
        else:
            self.close()

    def close(self) -> None:
        if self._closed:
            return
        write_manifest(self.directory, self.platform, self.n_steps,
                       self.folds, self.shard_format,
                       assign_folds(self._entries, self.folds))
        self._closed = True


# ----------------------------------------------------------------------
# lazy reader
# ----------------------------------------------------------------------

@dataclass
class DatasetStats:
    """Shard-load instrumentation of one :class:`TraceDataset`.

    ``max_resident`` is the high-water mark of simultaneously cached
    traces — the bounded-memory guarantee is ``max_resident <=
    cache_size`` no matter how large the campaign or how often it is
    iterated.
    """

    n_loads: int = 0
    cache_hits: int = 0
    evictions: int = 0
    max_resident: int = 0


class TraceDataset(SequenceABC):
    """Lazy, bounded-memory view of an on-disk campaign dataset.

    Indexing or iterating loads shards on demand; at most *cache_size*
    decoded traces are resident at any moment (LRU eviction), so memory is
    bounded by the window — never by campaign size — even across repeated
    passes.  All views created by :meth:`subset` / :meth:`by_patient` /
    :meth:`fold_split` share the parent's cache and :class:`DatasetStats`.
    Downstream ``workers=`` consumers chunk a dataset by index (each
    forked worker loads only its own shards) and ``batch_size=``
    consumers stack one group of traces at a time, so both knobs keep the
    bounded-memory guarantee and return element-wise identical results to
    a serial in-memory pass.

    Opening validates the manifest eagerly (schema version, fingerprint
    consistency); shard problems — missing files, corrupted payloads, a
    shard whose identity disagrees with its manifest entry — surface as
    :class:`CampaignStoreError` at first access.
    """

    def __init__(self, directory: str, manifest: Mapping,
                 cache_size: int = DEFAULT_CACHE_SIZE):
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        version = manifest.get("schema_version")
        if version != SCHEMA_VERSION:
            raise CampaignStoreError(
                f"dataset at {directory} has schema version {version!r}; "
                f"this reader supports {SCHEMA_VERSION}")
        self.directory = directory
        self.platform: str = manifest["platform"]
        self.n_steps: int = int(manifest["n_steps"])
        self.folds: Optional[int] = manifest.get("folds")
        # manifests written before the npy option exist without the key
        self.shard_format: str = manifest.get("shard_format", "npz")
        if self.shard_format not in _SHARD_SINKS:
            raise CampaignStoreError(
                f"dataset at {directory} uses shard format "
                f"{self.shard_format!r}; this reader supports "
                f"{sorted(_SHARD_SINKS)}")
        self._entries: List[dict] = list(manifest["traces"])
        if len(self._entries) != int(manifest.get("n_traces",
                                                  len(self._entries))):
            raise CampaignStoreError(
                f"manifest at {directory} lists "
                f"{manifest.get('n_traces')} traces but carries "
                f"{len(self._entries)} entries")
        self.fingerprint: str = manifest["fingerprint"]
        recomputed = campaign_fingerprint(
            self.platform, self.n_steps,
            (_entry_cell(e) for e in self._entries))
        if recomputed != self.fingerprint:
            raise CampaignStoreError(
                f"manifest fingerprint mismatch at {directory}: the trace "
                "index does not hash to the recorded fingerprint "
                "(manifest edited or corrupted)")
        self.cache_size = cache_size
        self._cache: "OrderedDict[int, SimulationTrace]" = OrderedDict()
        self.stats = DatasetStats()

    @classmethod
    def open(cls, directory: str,
             cache_size: int = DEFAULT_CACHE_SIZE) -> "TraceDataset":
        """Open the dataset written to *directory* (manifest required)."""
        path = manifest_path(directory)
        if not os.path.exists(path):
            raise CampaignStoreError(
                f"no campaign manifest at {path}; was the writer closed?")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignStoreError(
                f"unreadable campaign manifest at {path}: {exc}") from exc
        return cls(directory, manifest, cache_size=cache_size)

    # -- core loading ---------------------------------------------------

    def _load(self, index: int) -> SimulationTrace:
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            self.stats.cache_hits += 1
            return cached
        entry = self._entries[index]
        path = os.path.join(self.directory, entry["file"])
        if not os.path.exists(path):
            raise CampaignStoreError(
                f"missing shard {entry['file']} (trace {index}) in "
                f"{self.directory}")
        trace = self._decode(path, entry, index)
        self.stats.n_loads += 1
        self._cache[index] = trace
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        self.stats.max_resident = max(self.stats.max_resident,
                                      len(self._cache))
        return trace

    def _decode(self, path: str, entry: Mapping,
                index: int) -> SimulationTrace:
        """Decode one shard according to the manifest's shard format.

        npz shards are self-describing and cross-checked against their
        manifest entry; npy shards hold channels only (zero-copy
        memory-mapped columns) with identity rebuilt *from* the entry, so
        the cross-check reduces to shape/field validation.
        """
        if self.shard_format == "npy":
            try:
                payload = np.load(path, mmap_mode="r", allow_pickle=False)
                trace = trace_from_struct(
                    payload, platform=self.platform,
                    patient_id=entry["patient_id"], label=entry["label"],
                    dt=float(entry["dt"]), fault=_entry_fault(entry))
            except (OSError, ValueError, KeyError) as exc:
                raise CampaignStoreError(
                    f"corrupted shard {entry['file']} (trace {index}) in "
                    f"{self.directory}: {exc}") from exc
            if len(trace) != self.n_steps:
                raise CampaignStoreError(
                    f"shard {entry['file']} holds {len(trace)} steps but "
                    f"the manifest expects {self.n_steps} (truncated or "
                    "overwritten)")
            return trace
        try:
            with np.load(path) as payload:
                trace = trace_from_arrays(payload)
        except (zipfile.BadZipFile, OSError, ValueError, KeyError) as exc:
            raise CampaignStoreError(
                f"corrupted shard {entry['file']} (trace {index}) in "
                f"{self.directory}: {exc}") from exc
        if (trace.patient_id != entry["patient_id"]
                or trace.label != entry["label"]):
            raise CampaignStoreError(
                f"shard {entry['file']} holds "
                f"{trace.patient_id}/{trace.label!r} but the manifest "
                f"expects {entry['patient_id']}/{entry['label']!r} "
                "(shards shuffled or overwritten)")
        return trace

    # -- sequence protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return self.subset(range(*index.indices(len(self))))
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._load(index)

    def __iter__(self):
        for i in range(len(self)):
            yield self._load(i)

    # -- metadata-only queries (no shard loads) -------------------------

    @property
    def patient_ids(self) -> Tuple[str, ...]:
        """Distinct patient ids, in first-appearance (plan) order."""
        return tuple(dict.fromkeys(e["patient_id"] for e in self._entries))

    def entry(self, index: int) -> Mapping:
        """The manifest entry of trace *index* (metadata, no load)."""
        return dict(self._entries[index])

    def indices(self, patient_id: Optional[str] = None,
                fold: Optional[int] = None) -> List[int]:
        """Trace indices matching the given patient and/or fold key."""
        out = []
        for i, e in enumerate(self._entries):
            if patient_id is not None and e["patient_id"] != patient_id:
                continue
            if fold is not None and e["fold"] != fold:
                continue
            out.append(i)
        return out

    # -- lazy views -----------------------------------------------------

    def subset(self, indices: Iterable[int]) -> "TraceDatasetView":
        """A lazy view over *indices*, sharing this dataset's cache."""
        return TraceDatasetView(self, tuple(indices))

    def by_patient(self, patient_id: str) -> "TraceDatasetView":
        return self.subset(self.indices(patient_id=patient_id))

    def fold_split(self, fold: int) -> Tuple["TraceDatasetView",
                                             "TraceDatasetView"]:
        """(train, test) views for one recorded cross-validation fold."""
        if self.folds is None:
            raise CampaignStoreError(
                "dataset was written without fold assignments")
        if not 0 <= fold < self.folds:
            raise ValueError(f"fold must be in [0, {self.folds}), got {fold}")
        test = [i for i, e in enumerate(self._entries) if e["fold"] == fold]
        train = [i for i, e in enumerate(self._entries) if e["fold"] != fold]
        return self.subset(train), self.subset(test)

    def __repr__(self) -> str:
        return (f"TraceDataset({self.directory!r}, {len(self)} traces, "
                f"platform={self.platform!r}, cache_size={self.cache_size})")


class TraceDatasetView(SequenceABC):
    """An index-selected lazy view of a :class:`TraceDataset`."""

    def __init__(self, dataset: TraceDataset, indices: Tuple[int, ...]):
        self._dataset = dataset
        self._indices = indices

    def __len__(self) -> int:
        return len(self._indices)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return TraceDatasetView(self._dataset, self._indices[index])
        return self._dataset._load(self._indices[index])

    def __iter__(self):
        for i in self._indices:
            yield self._dataset._load(i)

    def subset(self, indices: Iterable[int]) -> "TraceDatasetView":
        """A lazy sub-view (indices are relative to *this* view)."""
        return TraceDatasetView(
            self._dataset, tuple(self._indices[i] for i in indices))

    @property
    def stats(self) -> DatasetStats:
        return self._dataset.stats

    def __repr__(self) -> str:
        return (f"TraceDatasetView({len(self)} of "
                f"{len(self._dataset)} traces)")


def open_dataset(directory: str,
                 cache_size: int = DEFAULT_CACHE_SIZE) -> TraceDataset:
    """Convenience alias for :meth:`TraceDataset.open`."""
    return TraceDataset.open(directory, cache_size=cache_size)


# ----------------------------------------------------------------------
# trace -> tick-stream adapter (recorded campaign as live traffic)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TraceTick:
    """One lock-step cycle of a recorded campaign, viewed as live traffic.

    The raw per-user channel vectors (shape ``(B,)``, one entry per
    trace-as-user) a streaming ingest would deliver at this cycle: the
    clean CGM reading, the loop-side IOB estimates and the
    post-fault-injection command.  Deliberately *excludes* the BG rate —
    a live service never receives finite differences on the wire, it
    computes them from consecutive ticks, which is exactly what
    :class:`repro.serve.MonitorService` does (and what the serving parity
    contract checks against :func:`~repro.simulation.features.
    context_matrix`).
    """

    step: int
    t: float
    cgm: np.ndarray
    iob: np.ndarray
    iob_rate: np.ndarray
    rate: np.ndarray
    bolus: np.ndarray
    action: np.ndarray


def iter_trace_ticks(traces) -> Iterable[TraceTick]:
    """Yield a recorded campaign as a lock-step tick stream.

    Adapts a sequence of equal-length, equal-cadence traces (a
    :class:`TraceDataset`, a list — anything indexable) into the per-cycle
    column vectors an online service ingests: tick ``s`` carries
    ``trace.cgm[s]`` etc. of every trace, stacked in input order.  This is
    the replay-from-log bridge between recorded campaign stores and
    :meth:`repro.serve.MonitorService.process`.

    Raises ``ValueError`` on zero traces, ragged lengths, or traces that
    disagree on the time grid (lock-step ingestion needs one shared
    clock).
    """
    traces = list(traces)
    if not traces:
        raise ValueError("cannot stream ticks from zero traces")
    lengths = {len(trace) for trace in traces}
    if len(lengths) != 1:
        raise ValueError(
            f"all traces in a tick stream must share one length, got "
            f"{sorted(lengths)}")
    t_grid = traces[0].t
    for trace in traces[1:]:
        if not np.array_equal(trace.t, t_grid):
            raise ValueError(
                "traces disagree on the time grid; a lock-step tick "
                "stream needs one shared clock")
    channels = [np.stack([getattr(trace, field) for trace in traces], axis=1)
                for field in ("cgm", "iob", "iob_rate", "cmd_rate",
                              "cmd_bolus", "action")]
    cgm, iob, iob_rate, rate, bolus, action = channels
    for step in range(int(lengths.pop())):
        yield TraceTick(step=step, t=float(t_grid[step]), cgm=cgm[step],
                        iob=iob[step], iob_rate=iob_rate[step],
                        rate=rate[step], bolus=bolus[step],
                        action=action[step])
