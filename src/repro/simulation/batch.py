"""Platform construction and campaign batch execution.

The paper evaluates two platforms (Fig. 5a): OpenAPS + Glucosym and
Basal-Bolus + UVA-Padova T1DS2013.  :func:`make_loop` builds the matched
patient/controller pair for a cohort member (controller profile derived from
the patient's steady-state basal via the 1800 rule), and :func:`run_campaign`
executes a fault-injection campaign over one or more patients — serially by
default, or fanned out over a process pool via the executors in
:mod:`repro.simulation.executor`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..controllers import BasalBolusController, Controller, OpenAPSController
from ..core.mitigation import Mitigator
from ..core.monitor import SafetyMonitor
from ..fi import FaultInjector, InjectionScenario
from ..patients import PatientModel, make_patient
from .executor import (BASELINE_CACHE, PROFILE_CACHE, BaselineCache,
                       CampaignExecutor, CampaignPlan, TraceSink,
                       get_executor, plan_campaign, plan_fault_free)
from .loop import ClosedLoop
from .trace import SimulationTrace

__all__ = ["controller_profile", "make_controller", "make_loop",
            "run_campaign", "run_fault_free", "kfold_split"]

#: platform -> controller factory
_PLATFORM_CONTROLLERS = {"glucosym": "openaps", "t1ds2013": "basal-bolus"}


def empirical_isf(patient: PatientModel, target: float = 120.0,
                  bolus_u: float = 1.0, horizon_min: float = 300.0) -> float:
    """Measure the patient's correction factor (mg/dL per U) in simulation.

    Clinicians titrate the insulin sensitivity factor from observed response;
    we reproduce that by resting the patient at its basal, giving a unit
    bolus and recording the maximum glucose drop over the insulin's duration
    of action.  The patient is reset afterwards.
    """
    basal = patient.basal_rate(target)
    patient.reset(target)
    patient.step(basal, bolus_u=bolus_u)
    low = patient.glucose
    for _ in range(int(horizon_min / 5.0) - 1):
        low = min(low, patient.step(basal))
    patient.reset(target)
    return max((target - low) / bolus_u, 5.0)


def controller_profile(patient: PatientModel,
                       target: float = 120.0) -> Dict[str, float]:
    """Controller profile for *patient*: steady-state basal plus the
    empirically titrated ISF (cached per patient model and target in the
    process-wide :data:`~repro.simulation.executor.PROFILE_CACHE`)."""
    def compute() -> Dict[str, float]:
        return {"basal": patient.basal_rate(target),
                "isf": empirical_isf(patient, target), "target": target}

    return PROFILE_CACHE.get_or_compute((patient.name, target), compute)


def make_controller(platform: str, patient: PatientModel,
                    target: float = 120.0) -> Controller:
    """Build the platform's controller configured for *patient*."""
    profile = controller_profile(patient, target)
    kind = _PLATFORM_CONTROLLERS.get(platform)
    if kind == "openaps":
        return OpenAPSController(basal=profile["basal"], isf=profile["isf"],
                                 target=profile["target"])
    if kind == "basal-bolus":
        return BasalBolusController(basal=profile["basal"], isf=profile["isf"],
                                    target=profile["target"])
    raise KeyError(f"unknown platform {platform!r}; "
                   f"available: {sorted(_PLATFORM_CONTROLLERS)}")


def make_loop(platform: str, patient_id: str,
              monitor: Optional[SafetyMonitor] = None,
              mitigator: Optional[Mitigator] = None,
              injector: Optional[FaultInjector] = None,
              target: float = 120.0) -> ClosedLoop:
    """Assemble the full closed loop for one cohort patient."""
    patient = make_patient(platform, patient_id, target_glucose=target)
    controller = make_controller(platform, patient, target)
    return ClosedLoop(patient=patient, controller=controller,
                      platform=platform, monitor=monitor,
                      mitigator=mitigator, injector=injector)


def run_campaign(platform: str, patient_ids: Sequence[str],
                 scenarios: Iterable[InjectionScenario],
                 monitor_factory: Optional[Callable[[str], SafetyMonitor]] = None,
                 mitigator: Optional[Mitigator] = None,
                 n_steps: int = 150,
                 workers: Optional[int] = None,
                 batch_size: Optional[int] = None,
                 executor: Optional[CampaignExecutor] = None,
                 sink: Optional[TraceSink] = None) -> Optional[List[SimulationTrace]]:
    """Run every injection scenario against every patient.

    Parameters
    ----------
    monitor_factory:
        Called with the patient id to build a (possibly patient-specific)
        monitor per patient; None runs without a monitor.
    mitigator:
        Shared mitigation strategy (only active when a monitor alerts).
    workers:
        Process-pool size; 1 (the default, also via ``REPRO_WORKERS``)
        runs serially in-process.  Trace order and content are identical
        for every worker count.
    batch_size:
        Lock-step vectorization width (default 1, also via
        ``REPRO_BATCH_SIZE``): runs are simulated ``batch_size`` at a
        time by :mod:`repro.simulation.vector` with element-wise
        identical traces.  Monitored and mitigated campaigns batch too —
        monitors evaluate column-wise each tick and mitigators correct
        the alerted rows in place (see ``docs/mitigation.md``).  Composes
        with *workers* — each pool chunk becomes a sequence of vectorized
        batches.
    executor:
        Explicit :class:`~repro.simulation.executor.CampaignExecutor`
        (overrides *workers* and *batch_size*).
    sink:
        Optional :class:`~repro.simulation.executor.TraceSink`; when given,
        traces are streamed to it in (patient, scenario) order and ``None``
        is returned instead of an in-memory list.

    Returns
    -------
    list of SimulationTrace ordered by (patient, scenario), or None when
    streaming to *sink*.
    """
    plan = plan_campaign(platform, patient_ids, scenarios, n_steps=n_steps)
    executor = executor or get_executor(workers, batch_size)
    return executor.run(plan, monitor_factory=monitor_factory,
                        mitigator=mitigator, sink=sink)


def run_fault_free(platform: str, patient_ids: Sequence[str],
                   init_glucose_values: Sequence[float],
                   monitor_factory: Optional[Callable[[str], SafetyMonitor]] = None,
                   n_steps: int = 150,
                   workers: Optional[int] = None,
                   batch_size: Optional[int] = None,
                   executor: Optional[CampaignExecutor] = None,
                   cache: Optional[BaselineCache] = BASELINE_CACHE,
                   sink: Optional[TraceSink] = None) -> Optional[List[SimulationTrace]]:
    """Fault-free reference runs over the same initial-glucose grid.

    Unmonitored baselines are served from (and written back to) *cache* —
    keyed by platform/patient/initial BG/step count — so repeated
    experiments never resimulate the same reference runs.  Pass
    ``cache=None`` to force fresh simulation; runs with a monitor are
    never cached because the monitor's alerts are part of the trace.

    Note that an enabled cache retains every baseline trace by design, so
    bounded-memory streaming (*sink* with O(chunk) residency) requires
    ``cache=None``; with caching on, the sink still receives the traces
    in plan order but memory is O(grid) either way.
    """
    plan = plan_fault_free(platform, patient_ids, init_glucose_values,
                           n_steps=n_steps)
    executor = executor or get_executor(workers, batch_size)
    if monitor_factory is not None or cache is None:
        return executor.run(plan, monitor_factory=monitor_factory, sink=sink)

    keys = [BaselineCache.key(platform, run.patient_id, run.init_glucose,
                              n_steps) for run in plan.runs]
    traces = [cache.get(key) for key in keys]
    missing = [i for i, trace in enumerate(traces) if trace is None]
    if missing:
        sub_plan = CampaignPlan(platform=platform,
                                runs=tuple(plan.runs[i] for i in missing),
                                n_steps=n_steps)
        fresh = executor.run(sub_plan)
        for i, trace in zip(missing, fresh):
            cache.put(keys[i], trace)
            traces[i] = trace
    if sink is None:
        return traces
    for trace in traces:
        sink.write(trace)
    return None


def kfold_split(items: Sequence, k: int, fold: int):
    """Deterministic k-fold split; returns (train, test) lists.

    Items are assigned to folds round-robin, matching the paper's 4-fold
    cross-validation setup (Section V-B).
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if not 0 <= fold < k:
        raise ValueError(f"fold must be in [0, {k}), got {fold}")
    test = [x for i, x in enumerate(items) if i % k == fold]
    train = [x for i, x in enumerate(items) if i % k != fold]
    return train, test
