"""Evaluation metrics of Section V-D: tolerance-window accuracy,
simulation-level two-region accuracy, timing, and mitigation quality."""

from .confusion import (
    ConfusionCounts,
    DEFAULT_TOLERANCE,
    tolerance_confusion,
    traces_confusion,
)
from .report import format_value, render_table
from .risk_metric import MitigationOutcome, mitigation_outcome, trace_risk_index
from .simulation_level import simulation_confusion
from .timing import (
    ReactionStats,
    first_alert_step,
    hazard_coverage,
    reaction_stats,
    time_to_hazard_stats,
)

__all__ = [
    "ConfusionCounts",
    "DEFAULT_TOLERANCE",
    "tolerance_confusion",
    "traces_confusion",
    "format_value",
    "render_table",
    "MitigationOutcome",
    "mitigation_outcome",
    "trace_risk_index",
    "simulation_confusion",
    "ReactionStats",
    "first_alert_step",
    "hazard_coverage",
    "reaction_stats",
    "time_to_hazard_stats",
]
