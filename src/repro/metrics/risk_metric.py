"""Mitigation-quality metrics: recovery rate, new hazards, average risk.

Eq. 9 of the paper::

    Risk_avg = (1/N) * [ sum over FN cases of RI(i)
                         + sum over mitigation-induced new hazards of RI(i) ]

where ``RI(i)`` is the mean BG risk index of simulation *i*.  FN cases leave
the patient unprotected; false alarms can trigger mitigation that *creates*
a hazard that the unmonitored system would not have had.  Both the recovery
rate and the new-hazard count therefore compare each mitigated run against
its unmonitored twin (same patient, same fault scenario).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hazards import risk

__all__ = ["MitigationOutcome", "mitigation_outcome", "trace_risk_index"]


def trace_risk_index(trace) -> float:
    """Mean unsigned BG risk index of a simulation (its RI(i))."""
    return float(np.mean(risk(trace.true_bg)))


@dataclass
class MitigationOutcome:
    """Table VII row: mitigation performance of one monitor."""

    monitor: str
    n_simulations: int
    baseline_hazards: int
    recovered: int
    new_hazards: int
    missed: int                # FN: hazardous with monitor, never alerted
    average_risk: float

    @property
    def recovery_rate(self) -> float:
        if self.baseline_hazards == 0:
            return float("nan")
        return self.recovered / self.baseline_hazards


def mitigation_outcome(monitor_name: str, baseline_traces: Sequence,
                       mitigated_traces: Sequence) -> MitigationOutcome:
    """Compare mitigated runs against their unmonitored twins.

    ``baseline_traces[i]`` and ``mitigated_traces[i]`` must be the same
    (patient, scenario) pair run without and with the monitor+mitigator.
    """
    if len(baseline_traces) != len(mitigated_traces):
        raise ValueError("baseline and mitigated campaigns differ in size")
    n = len(baseline_traces)
    baseline_hazards = 0
    recovered = 0
    new_hazards = 0
    missed = 0
    risk_sum = 0.0
    for base, mitigated in zip(baseline_traces, mitigated_traces):
        base_hazard = base.hazardous
        mit_hazard = mitigated.hazardous
        if base_hazard:
            baseline_hazards += 1
            if not mit_hazard:
                recovered += 1
        if mit_hazard:
            alerted = bool(mitigated.alert.any())
            if not alerted:
                # FN: hazard happened with no warning or mitigation
                missed += 1
                risk_sum += trace_risk_index(mitigated)
            elif not base_hazard:
                # alert + mitigation created a hazard the plain system avoided
                new_hazards += 1
                risk_sum += trace_risk_index(mitigated)
    return MitigationOutcome(monitor=monitor_name, n_simulations=n,
                             baseline_hazards=baseline_hazards,
                             recovered=recovered, new_hazards=new_hazards,
                             missed=missed, average_risk=risk_sum / n if n else 0.0)
