"""Resilience and timeliness metrics (Section V-D).

- **Hazard coverage**: P(hazard | fault activated) — the FI effectiveness /
  controller-resilience measure of Fig. 7a and Fig. 8.
- **Time-to-Hazard (TTH)**: minutes from fault activation to hazard
  occurrence (Fig. 7b); negative when the hazard pre-dates the fault.
- **Reaction time**: minutes from the first monitor alert to the hazard
  (Fig. 9); positive = early detection.
- **Early-detection rate (EDR)**: fraction of hazardous runs whose first
  alert precedes the hazard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["hazard_coverage", "time_to_hazard_stats", "ReactionStats",
           "reaction_stats", "first_alert_step"]


def hazard_coverage(traces: Iterable) -> float:
    """Fraction of traces that reached a hazardous state."""
    traces = list(traces)
    if not traces:
        raise ValueError("no traces supplied")
    return sum(t.hazardous for t in traces) / len(traces)


def time_to_hazard_stats(traces: Iterable) -> dict:
    """TTH distribution over hazardous faulty traces (minutes).

    Returns mean/std/min/max, the sample list, and the fraction of hazards
    that occurred *before* fault activation (the paper reports 7.1%).
    """
    tths: List[float] = []
    for trace in traces:
        tth = trace.time_to_hazard()
        if tth is not None:
            tths.append(tth)
    if not tths:
        return {"count": 0, "mean": float("nan"), "std": float("nan"),
                "min": float("nan"), "max": float("nan"),
                "negative_fraction": float("nan"), "samples": []}
    arr = np.asarray(tths)
    return {
        "count": len(arr),
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "negative_fraction": float((arr < 0).mean()),
        "samples": tths,
    }


def first_alert_step(alerts: np.ndarray) -> Optional[int]:
    """Index of the first alert in an alert sequence, or None."""
    idx = np.flatnonzero(np.asarray(alerts).astype(bool))
    return int(idx[0]) if idx.size else None


@dataclass
class ReactionStats:
    """Reaction-time summary for one monitor over a campaign."""

    mean: float
    std: float
    early_detection_rate: float
    n_hazardous: int
    n_detected: int
    samples: List[float]


def reaction_stats(traces: Sequence, alerts: Sequence[np.ndarray],
                   dt: float = 5.0) -> ReactionStats:
    """Reaction time (th - td, minutes) across hazardous traces.

    Undetected hazards contribute no reaction-time sample but lower the
    early-detection rate.
    """
    samples: List[float] = []
    n_hazardous = 0
    n_early = 0
    n_detected = 0
    for trace, pred in zip(traces, alerts):
        if not trace.hazardous:
            continue
        n_hazardous += 1
        td = first_alert_step(pred)
        if td is None:
            continue
        n_detected += 1
        th = trace.hazard_label.first_hazard
        reaction = (th - td) * dt
        samples.append(reaction)
        if reaction > 0:
            n_early += 1
    if samples:
        arr = np.asarray(samples)
        mean, std = float(arr.mean()), float(arr.std())
    else:
        mean, std = float("nan"), float("nan")
    edr = n_early / n_hazardous if n_hazardous else float("nan")
    return ReactionStats(mean=mean, std=std, early_detection_rate=edr,
                         n_hazardous=n_hazardous, n_detected=n_detected,
                         samples=samples)
