"""Sample-level hazard-prediction accuracy with a tolerance window.

Implements the paper's Table IV / Fig. 6 evaluation.  Table IV anchors the
prediction look-back window at the positive ground truth ("t - delta't:
start time of a window delta, ending with a positive ground truth, that
includes t"), so detection is credited per hazard *episode*:

- a hazard episode is a maximal run of ground-truth-positive samples
  ``[s, e]``; its anchored window is ``[s - delta, e]``;
- ground truth is *positive* at sample ``t`` when some hazardous sample
  exists in ``[t, t + delta]`` (Fig. 6);
- a positive sample is a **TP** when its episode's anchored window contains
  at least one alert, otherwise an **FN** — "hazard occurs without a
  prediction in the window delta ahead";
- a negative sample is an **FP** when an alert is raised exactly at ``t``
  ("no hazard happens in [0, delta] after an alert"), otherwise a **TN**.

This rewards early detection (the whole point of hazard *prediction*) while
charging every alert that is never followed by a hazard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

__all__ = ["ConfusionCounts", "tolerance_confusion", "traces_confusion",
           "DEFAULT_TOLERANCE"]

#: default tolerance window delta in cycles (2 hours of 5-minute samples —
#: the scale of the paper's observed reaction times)
DEFAULT_TOLERANCE = 24


@dataclass
class ConfusionCounts:
    """Aggregated confusion counts with the standard derived metrics."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(self.tp + other.tp, self.fp + other.fp,
                               self.fn + other.fn, self.tn + other.tn)

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def fpr(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def fnr(self) -> float:
        denom = self.fn + self.tp
        return self.fn / denom if denom else 0.0

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0

    def as_row(self):
        """(FPR, FNR, ACC, F1) — the Table V/VI column order."""
        return (self.fpr, self.fnr, self.accuracy, self.f1)


def _episodes(truth: np.ndarray):
    """Maximal runs of positive ground truth as (start, end) inclusive."""
    episodes = []
    n = len(truth)
    t = 0
    while t < n:
        if truth[t]:
            start = t
            while t + 1 < n and truth[t + 1]:
                t += 1
            episodes.append((start, t))
        t += 1
    return episodes


def tolerance_confusion(pred, truth, delta: int = DEFAULT_TOLERANCE,
                        lookback: Optional[int] = None) -> ConfusionCounts:
    """Tolerance-window confusion counts for one trace (see module docs).

    Parameters
    ----------
    pred:
        Boolean/0-1 alert sequence ``P(t)``.
    truth:
        Boolean/0-1 hazard ground truth ``G(t)``.
    delta:
        Tolerance window (cycles): forward for positives, anchored look-back
        for detection credit.
    lookback:
        Width of the episode-anchored detection window (defaults to
        ``delta``).
    """
    pred = np.asarray(pred).astype(bool)
    truth = np.asarray(truth).astype(bool)
    if pred.shape != truth.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {truth.shape}")
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    lookback = delta if lookback is None else lookback
    n = len(pred)
    counts = ConfusionCounts()
    # hazard within [t, t+delta] for each t (forward window any)
    ground_pos = np.zeros(n, dtype=bool)
    for t in range(n):
        ground_pos[t] = truth[t:min(t + delta + 1, n)].any()
    # per-episode detection: any alert within the anchored window
    detected = np.zeros(n, dtype=bool)  # per-sample: owning episode detected
    for start, end in _episodes(truth):
        hit = pred[max(start - lookback, 0):end + 1].any()
        if hit:
            # every positive sample announcing this episode is credited
            detected[max(start - delta, 0):end + 1] = True
    for t in range(n):
        if ground_pos[t]:
            if detected[t]:
                counts.tp += 1
            else:
                counts.fn += 1
        else:
            if pred[t]:
                counts.fp += 1
            else:
                counts.tn += 1
    return counts


def traces_confusion(traces: Iterable, alerts: Iterable[np.ndarray],
                     delta: int = DEFAULT_TOLERANCE,
                     lookback: Optional[int] = None) -> ConfusionCounts:
    """Aggregate tolerance-window counts over (trace, alert-sequence) pairs."""
    total = ConfusionCounts()
    for trace, pred in zip(traces, alerts):
        total = total + tolerance_confusion(pred, trace.hazard_label.hazardous,
                                            delta=delta, lookback=lookback)
    return total
