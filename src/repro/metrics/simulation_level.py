"""Simulation-level accuracy with two regions (Section V-D).

Each simulation counts as a single case: an alert anywhere during a
hazardous trace is a TP regardless of timing.  To still account for false
alarms raised *before* the fault could have had any effect, the trace is
split at the fault-activation step ``tf``:

- the pre-fault region ``[0, tf)`` is always ground-truth negative — any
  alert there is an FP, silence a TN;
- the post-fault region ``[tf, te]`` inherits the trace's hazard label —
  alert = TP / silence = FN when hazardous, alert = FP / silence = TN
  otherwise.

Fault-free traces consist of the post region only.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .confusion import ConfusionCounts

__all__ = ["simulation_confusion"]


def simulation_confusion(traces: Iterable,
                         alerts: Iterable[np.ndarray]) -> ConfusionCounts:
    """Two-region simulation-level confusion over (trace, alerts) pairs."""
    counts = ConfusionCounts()
    for trace, pred in zip(traces, alerts):
        pred = np.asarray(pred).astype(bool)
        if len(pred) != len(trace):
            raise ValueError(
                f"alert sequence length {len(pred)} != trace length {len(trace)}")
        tf = trace.fault_step if trace.fault_step is not None else 0
        pre, post = pred[:tf], pred[tf:]
        if pre.size:
            if pre.any():
                counts.fp += 1
            else:
                counts.tn += 1
        if trace.hazardous:
            if post.any():
                counts.tp += 1
            else:
                counts.fn += 1
        else:
            if post.any():
                counts.fp += 1
            else:
                counts.tn += 1
    return counts
