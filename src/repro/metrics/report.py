"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value) -> str:
    """Human formatting: floats get sensible precision, rest str()."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width ASCII table."""
    str_rows: List[List[str]] = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
