"""Distributed campaign coordinator: partition, dispatch, retry, merge.

:func:`run_distributed_campaign` scales :func:`~repro.simulation.batch.run_campaign`
past one box without changing what it produces.  The flow:

1. **Partition** — the plan's runs are split into per-host half-open
   ranges by :func:`~repro.parallel.partition_ranges`, i.e. the exact
   chunk boundaries a single-box chunked executor would use: derived
   from ``(n_runs, n_hosts)`` alone, deterministic, disjoint, covering.
2. **Dispatch** — each range goes to a worker entrypoint
   (``python -m repro.distributed.worker``) through a *launcher*.
   :class:`LocalLauncher` runs workers as local subprocesses;
   :class:`SSHLauncher` runs the same command line over ``ssh`` against
   a shared filesystem.  Either way the worker writes its shards and a
   partial manifest into a per-attempt directory under the work dir.
3. **Retry** — a worker that exits non-zero, dies mid-range, or
   straggles past ``timeout_s`` is killed and its range re-dispatched
   into a **fresh attempt directory**, up to ``max_retries`` extra
   attempts; past the budget the campaign raises a typed
   :class:`~repro.distributed.errors.WorkerError`.  Re-execution is
   idempotent because ranges are deterministic — a retry reproduces the
   identical partial, and if a killed straggler had in fact finished,
   :func:`~repro.distributed.merge.merge_manifests` deduplicates the
   exact-duplicate delivery.
4. **Merge** — every valid partial is assembled by ``merge_manifests``
   with ``expect_fingerprint=plan_fingerprint(plan)``, yielding a
   dataset byte-identical to a single-box ``run_campaign`` over the
   same plan (the acceptance criterion the chaos battery pins down).

``n_hosts``, the launcher, timeouts and retry budgets are wall-clock
knobs in the sense of the executor parity contract: they never change
the merged dataset, only how long it takes to exist.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parallel import partition_ranges
from ..simulation.executor import CampaignPlan
from ..simulation.store import plan_fingerprint
from .errors import DistributedCampaignError, WorkerError
from .merge import load_partial, merge_manifests
from .planio import save_plan

__all__ = ["WorkerSpec", "LocalLauncher", "SSHLauncher",
           "DistributedCampaignResult", "run_distributed_campaign"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a launcher needs to start one range attempt."""

    start: int
    stop: int
    attempt: int
    plan_path: str
    out_dir: str
    shard_format: str = "npz"
    workers: Optional[int] = None
    batch_size: Optional[int] = None

    @property
    def range_key(self) -> Tuple[int, int]:
        return (self.start, self.stop)

    def worker_argv(self) -> List[str]:
        """The ``python -m repro.distributed.worker`` arguments (past the
        interpreter) that execute this spec."""
        argv = ["-m", "repro.distributed.worker",
                "--plan", self.plan_path,
                "--start", str(self.start), "--stop", str(self.stop),
                "--out", self.out_dir, "--shard-format", self.shard_format]
        if self.workers is not None:
            argv += ["--workers", str(self.workers)]
        if self.batch_size is not None:
            argv += ["--batch-size", str(self.batch_size)]
        return argv


class WorkerHandle:
    """A launched worker process the coordinator can poll or kill."""

    def __init__(self, proc: subprocess.Popen, log_path: str):
        self.proc = proc
        self.log_path = log_path

    def poll(self) -> Optional[int]:
        """Exit code if the worker finished, else ``None``."""
        return self.proc.poll()

    def kill(self) -> None:
        """Hard-stop the worker (straggler timeout); idempotent."""
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait()

    def log_tail(self, max_chars: int = 800) -> str:
        try:
            with open(self.log_path, "r", encoding="utf-8",
                      errors="replace") as fh:
                return fh.read()[-max_chars:]
        except OSError:
            return "<no worker log>"


def _src_root() -> str:
    """The directory that must be on a worker's ``PYTHONPATH`` for
    ``import repro`` to resolve to this checkout."""
    import repro
    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class LocalLauncher:
    """Run range workers as local subprocesses.

    This is both the single-box multi-process backend and the test
    double for real multi-host dispatch: the command line is identical
    to what :class:`SSHLauncher` ships to a remote shell.  *env* entries
    overlay the inherited environment (the chaos battery injects its
    crash/straggler hooks here); ``PYTHONPATH`` is extended with this
    checkout's ``src`` so workers import the same code the coordinator
    runs.  Worker stdout/stderr land in ``<out_dir>.log`` next to the
    attempt directory.
    """

    def __init__(self, python: Optional[str] = None,
                 env: Optional[Dict[str, str]] = None):
        self.python = python or sys.executable
        self.env = dict(env or {})

    def _worker_env(self, spec: WorkerSpec) -> Dict[str, str]:
        env = dict(os.environ)
        path = _src_root()
        if env.get("PYTHONPATH"):
            path = path + os.pathsep + env["PYTHONPATH"]
        env["PYTHONPATH"] = path
        env.update(self.env)
        return env

    def launch(self, spec: WorkerSpec) -> WorkerHandle:
        os.makedirs(os.path.dirname(spec.out_dir) or ".", exist_ok=True)
        log_path = spec.out_dir + ".log"
        log = open(log_path, "w", encoding="utf-8")
        try:
            proc = subprocess.Popen([self.python] + spec.worker_argv(),
                                    stdout=log, stderr=subprocess.STDOUT,
                                    env=self._worker_env(spec))
        finally:
            log.close()
        return WorkerHandle(proc, log_path)


class SSHLauncher(LocalLauncher):
    """Run range workers over ``ssh`` against a shared filesystem.

    Hosts are used round-robin per launch.  The remote side needs the
    repository checkout and the plan/work directories at the same paths
    as the coordinator (NFS or equivalent); ``remote_src`` overrides the
    ``PYTHONPATH`` root when the checkout lives elsewhere remotely.
    Exit-code and log semantics match :class:`LocalLauncher` — ``ssh``
    propagates the remote exit status — so the coordinator's retry loop
    is launcher-agnostic.
    """

    def __init__(self, hosts: Sequence[str], python: str = "python3",
                 ssh_argv: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
                 remote_src: Optional[str] = None,
                 env: Optional[Dict[str, str]] = None):
        if not hosts:
            raise ValueError("SSHLauncher needs at least one host")
        super().__init__(python=python, env=env)
        self.hosts = list(hosts)
        self.ssh_argv = list(ssh_argv)
        self.remote_src = remote_src
        self._next_host = 0

    def command_for(self, spec: WorkerSpec, host: str) -> List[str]:
        """The full ``ssh`` argv that executes *spec* on *host*."""
        import shlex
        src = self.remote_src or _src_root()
        overlay = {"PYTHONPATH": src, **self.env}
        assigns = " ".join(f"{key}={shlex.quote(value)}"
                           for key, value in sorted(overlay.items()))
        remote = " ".join([assigns, shlex.quote(self.python)]
                          + [shlex.quote(arg) for arg in spec.worker_argv()])
        return self.ssh_argv + [host, remote]

    def launch(self, spec: WorkerSpec) -> WorkerHandle:
        host = self.hosts[self._next_host % len(self.hosts)]
        self._next_host += 1
        os.makedirs(os.path.dirname(spec.out_dir) or ".", exist_ok=True)
        log_path = spec.out_dir + ".log"
        log = open(log_path, "w", encoding="utf-8")
        try:
            proc = subprocess.Popen(self.command_for(spec, host),
                                    stdout=log, stderr=subprocess.STDOUT)
        finally:
            log.close()
        return WorkerHandle(proc, log_path)


@dataclass
class DistributedCampaignResult:
    """What a completed distributed campaign leaves behind."""

    out_dir: str
    manifest: dict
    ranges: List[Tuple[int, int]]
    stats: List[dict] = field(default_factory=list)
    retries: int = 0
    wall_s: float = 0.0


def _attempt_dir(work_dir: str, start: int, stop: int, attempt: int) -> str:
    return os.path.join(work_dir, f"range_{start:09d}_{stop:09d}",
                        f"attempt{attempt}")


def _valid_partial_dir(directory: str) -> bool:
    try:
        load_partial(directory)
    except DistributedCampaignError:
        return False
    return True


def run_distributed_campaign(plan: CampaignPlan, out_dir: str,
                             n_hosts: int = 2,
                             launcher: Optional[LocalLauncher] = None,
                             shard_format: str = "npz",
                             folds: Optional[int] = None,
                             timeout_s: Optional[float] = None,
                             max_retries: int = 2,
                             poll_interval_s: float = 0.05,
                             max_inflight: Optional[int] = None,
                             work_dir: Optional[str] = None,
                             keep_work: bool = False,
                             worker_processes: Optional[int] = None,
                             worker_batch_size: Optional[int] = None
                             ) -> DistributedCampaignResult:
    """Execute *plan* across *n_hosts* range workers into *out_dir*.

    The merged dataset at *out_dir* is byte-identical to a single-box
    ``run_campaign(plan, out_dir, folds=folds, shard_format=shard_format)``
    regardless of *n_hosts*, the launcher, stragglers or retries.

    Parameters beyond the store-facing ones are wall-clock knobs:
    *timeout_s* is the per-attempt straggler budget (``None``: wait
    forever), *max_retries* the extra attempts per range before a
    :class:`WorkerError`, *max_inflight* caps concurrent workers
    (default *n_hosts*), and *worker_processes* / *worker_batch_size*
    set each worker's local fan-out.  The scratch *work_dir* (default
    ``<out_dir>.work``) holds the serialized plan, per-attempt partial
    directories and worker logs; it is removed after a successful merge
    unless *keep_work* is set.

    Raises :class:`DistributedCampaignError` for an empty plan or a
    scratch collision, :class:`WorkerError` when a range exhausts its
    retry budget, and :class:`MergeManifestError` if the collected
    partials cannot be assembled (which, after a clean run, indicates a
    determinism bug rather than an operational failure).
    """
    if not plan.runs:
        raise DistributedCampaignError(
            "cannot distribute an empty campaign plan")
    if n_hosts < 1:
        raise DistributedCampaignError(
            f"n_hosts must be >= 1, got {n_hosts}")
    if max_retries < 0:
        raise DistributedCampaignError(
            f"max_retries must be >= 0, got {max_retries}")
    launcher = launcher if launcher is not None else LocalLauncher()
    work_dir = work_dir or out_dir.rstrip(os.sep) + ".work"
    os.makedirs(work_dir, exist_ok=True)
    plan_path = save_plan(plan, os.path.join(work_dir, "plan.json"))

    started = time.perf_counter()
    ranges = partition_ranges(len(plan.runs), n_hosts)
    max_inflight = max_inflight or n_hosts
    pending: List[Tuple[int, int, int]] = [(a, b, 0) for a, b in ranges]
    running: List[Tuple[WorkerSpec, WorkerHandle, Optional[float]]] = []
    done_dirs: Dict[Tuple[int, int], List[str]] = {key: [] for key in ranges}
    stats: List[dict] = []
    retries = 0

    def dispatch_failure(spec: WorkerSpec, handle: WorkerHandle,
                         why: str) -> None:
        nonlocal retries
        # a killed straggler may have finished before the kill landed —
        # its partial is valid and identical, so accept it (the merge
        # dedups if the retry also completes)
        if _valid_partial_dir(spec.out_dir):
            done_dirs[spec.range_key].append(spec.out_dir)
            return
        if spec.attempt >= max_retries:
            raise WorkerError(
                f"range [{spec.start}, {spec.stop}) failed {why} on "
                f"attempt {spec.attempt} with no retries left "
                f"(max_retries={max_retries}); last log: "
                f"{handle.log_tail()!r}")
        retries += 1
        pending.append((spec.start, spec.stop, spec.attempt + 1))

    try:
        while pending or running:
            while pending and len(running) < max_inflight:
                start, stop, attempt = pending.pop(0)
                spec = WorkerSpec(
                    start=start, stop=stop, attempt=attempt,
                    plan_path=plan_path,
                    out_dir=_attempt_dir(work_dir, start, stop, attempt),
                    shard_format=shard_format, workers=worker_processes,
                    batch_size=worker_batch_size)
                handle = launcher.launch(spec)
                deadline = (time.monotonic() + timeout_s
                            if timeout_s is not None else None)
                running.append((spec, handle, deadline))

            still_running = []
            for spec, handle, deadline in running:
                code = handle.poll()
                if code is None:
                    if deadline is not None and time.monotonic() > deadline:
                        handle.kill()
                        dispatch_failure(spec, handle,
                                         f"as a straggler (> {timeout_s}s)")
                    else:
                        still_running.append((spec, handle, deadline))
                elif code == 0 and _valid_partial_dir(spec.out_dir):
                    done_dirs[spec.range_key].append(spec.out_dir)
                    stats.append({"start": spec.start, "stop": spec.stop,
                                  "attempt": spec.attempt,
                                  **load_partial(spec.out_dir)["stats"]})
                else:
                    dispatch_failure(
                        spec, handle,
                        f"with exit code {code}" if code != 0
                        else "leaving an invalid partial manifest")
            running = still_running
            if running:
                time.sleep(poll_interval_s)
    finally:
        for _spec, handle, _deadline in running:
            handle.kill()

    # merge sees every valid delivery — including exact duplicates from
    # accepted stragglers, which it collapses idempotently
    partial_dirs = [d for key in ranges for d in done_dirs[key]]
    manifest = merge_manifests(partial_dirs, out_dir, folds=folds,
                               expect_fingerprint=plan_fingerprint(plan))
    if not keep_work:
        shutil.rmtree(work_dir, ignore_errors=True)
    return DistributedCampaignResult(
        out_dir=out_dir, manifest=manifest, ranges=ranges, stats=stats,
        retries=retries, wall_s=time.perf_counter() - started)
