"""Fault injection for the distributed campaign battery.

Mirrors ``repro.serve.chaos``: the failure modes a multi-host campaign
meets in practice, packaged as deterministic injectors so the test
battery can assert the recovery contract — every run either merges into
a dataset byte-identical to the single-box reference or raises a typed
:class:`~repro.distributed.errors.DistributedCampaignError`.

:class:`FlakyLauncher` wraps a real launcher and sabotages chosen ranges
on their early attempts through the worker's environment hooks: a
*crash* injection hard-kills the worker mid-range
(``REPRO_DIST_CRASH_AFTER_SHARDS``, ``os._exit`` with no partial
manifest — what a dead host leaves behind), a *stall* injection delays
start-up (``REPRO_DIST_SLEEP_SECONDS``) so the coordinator's straggler
timeout fires.  Attempts past ``fail_attempts`` run clean, so the
default coordinator retry budget recovers.

The file-level helpers corrupt completed partials in place — torn JSON,
truncation, a vanished shard — for asserting that the merge refuses
damaged inputs loudly instead of assembling them.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from .coordinator import LocalLauncher, WorkerHandle, WorkerSpec
from .worker import (CRASH_AFTER_SHARDS_ENV, SLEEP_SECONDS_ENV,
                     partial_manifest_path)

__all__ = ["FlakyLauncher", "corrupt_partial_manifest",
           "truncate_partial_manifest", "delete_shard"]


class FlakyLauncher:
    """Launcher wrapper that sabotages chosen ranges' early attempts.

    *crash_ranges* maps a ``(start, stop)`` range to the number of shards
    its worker writes before hard-exiting; *stall_ranges* maps a range to
    the seconds its worker sleeps before starting (long enough to trip
    the coordinator's ``timeout_s``).  Injections apply to attempts
    ``< fail_attempts``; later attempts are launched untouched, which is
    exactly the recover-by-retry path under test.
    """

    def __init__(self, inner: Optional[LocalLauncher] = None,
                 crash_ranges: Optional[Dict[Tuple[int, int], int]] = None,
                 stall_ranges: Optional[Dict[Tuple[int, int], float]] = None,
                 fail_attempts: int = 1):
        self.inner = inner if inner is not None else LocalLauncher()
        self.crash_ranges = dict(crash_ranges or {})
        self.stall_ranges = dict(stall_ranges or {})
        self.fail_attempts = fail_attempts
        #: every spec launched, in order — lets tests assert retry counts
        self.launched = []

    def launch(self, spec: WorkerSpec) -> WorkerHandle:
        self.launched.append(spec)
        overlay: Dict[str, str] = {}
        if spec.attempt < self.fail_attempts:
            if spec.range_key in self.crash_ranges:
                overlay[CRASH_AFTER_SHARDS_ENV] = str(
                    self.crash_ranges[spec.range_key])
            if spec.range_key in self.stall_ranges:
                overlay[SLEEP_SECONDS_ENV] = str(
                    self.stall_ranges[spec.range_key])
        if not overlay:
            return self.inner.launch(spec)
        saved = dict(self.inner.env)
        self.inner.env.update(overlay)
        try:
            return self.inner.launch(spec)
        finally:
            self.inner.env = saved


def corrupt_partial_manifest(directory: str,
                             garbage: str = '{"format": 1, "entr') -> str:
    """Overwrite a partial manifest with torn JSON; returns its path."""
    path = partial_manifest_path(directory)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(garbage)
    return path


def truncate_partial_manifest(directory: str, keep_bytes: int = 40) -> str:
    """Truncate a partial manifest mid-document (a torn write without the
    store's rename discipline); returns its path."""
    path = partial_manifest_path(directory)
    with open(path, "rb+") as fh:
        fh.truncate(keep_bytes)
    return path


def delete_shard(directory: str, index: int = 0) -> str:
    """Delete the *index*-th shard file of a completed partial; returns
    the deleted path."""
    shards = sorted(name for name in os.listdir(directory)
                    if name.startswith("trace_"))
    if index >= len(shards):
        raise IndexError(
            f"{directory} has {len(shards)} shards, no index {index}")
    path = os.path.join(directory, shards[index])
    os.remove(path)
    return path
