"""Typed failures of the distributed campaign layer.

The distributed coordinator inherits the store's loudness doctrine: a
multi-host campaign either assembles into a dataset that is byte-identical
to a single-box run, or it raises one of these — never a silent gap, a
quietly dropped range, or a half-merged manifest.
"""

from __future__ import annotations

__all__ = ["DistributedCampaignError", "PlanFormatError", "WorkerError",
           "MergeManifestError"]


class DistributedCampaignError(RuntimeError):
    """Root of the distributed campaign layer's typed failures."""


class PlanFormatError(DistributedCampaignError):
    """A serialized campaign plan is unreadable, truncated, or does not
    hash to its recorded fingerprint."""


class WorkerError(DistributedCampaignError):
    """A range worker failed past its retry budget — crashed, timed out
    as a straggler, or kept producing an invalid partial manifest."""


class MergeManifestError(DistributedCampaignError):
    """Partial manifests cannot be assembled into one valid dataset:
    schema-version skew, fingerprint mismatch, overlapping or missing
    ranges, divergent duplicates, or corrupted partial manifests."""
