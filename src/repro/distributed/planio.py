"""Campaign-plan serialization: the coordinator/worker wire format.

A :class:`~repro.simulation.executor.CampaignPlan` is pure data — patient
ids, initial glucose values, fault specs, meals — so it crosses host
boundaries as a JSON document rather than a pickle: any worker (local
subprocess, ssh session, container) can load it with nothing but this
module and re-derive *exactly* the plan the coordinator holds.  The
document embeds the plan's campaign fingerprint
(:func:`~repro.simulation.store.plan_fingerprint`); :func:`load_plan`
recomputes it from the decoded runs and refuses the file on mismatch, so
a truncated upload or a stale plan file is a loud
:class:`~repro.distributed.errors.PlanFormatError`, never a silently
different campaign.
"""

from __future__ import annotations

import json
import os
from typing import List

from ..fi import FaultKind, FaultSpec, FaultTarget
from ..patients import Meal
from ..simulation.executor import CampaignPlan, SimRun
from ..simulation.store import plan_fingerprint
from .errors import PlanFormatError

__all__ = ["PLAN_FORMAT_VERSION", "plan_to_doc", "plan_from_doc",
           "save_plan", "load_plan"]

#: bump when the plan document layout changes
PLAN_FORMAT_VERSION = 1


def _fault_doc(fault):
    if fault is None:
        return None
    return {"kind": fault.kind.value, "target": fault.target.value,
            "start_step": fault.start_step,
            "duration_steps": fault.duration_steps, "value": fault.value}


def _fault_from_doc(doc):
    if doc is None:
        return None
    return FaultSpec(kind=FaultKind(doc["kind"]),
                     target=FaultTarget(doc["target"]),
                     start_step=int(doc["start_step"]),
                     duration_steps=int(doc["duration_steps"]),
                     value=float(doc["value"]))


def plan_to_doc(plan: CampaignPlan) -> dict:
    """The JSON-serializable document describing *plan* exactly."""
    runs: List[dict] = []
    for run in plan.runs:
        runs.append({"patient_id": run.patient_id,
                     "init_glucose": run.init_glucose, "label": run.label,
                     "fault": _fault_doc(run.fault),
                     "meals": [[meal.time, meal.carbs]
                               for meal in run.meals]})
    return {"format": PLAN_FORMAT_VERSION,
            "fingerprint": plan_fingerprint(plan),
            "platform": plan.platform, "n_steps": plan.n_steps,
            "target": plan.target, "dt": plan.dt, "runs": runs}


def plan_from_doc(doc: dict) -> CampaignPlan:
    """Rebuild the :class:`CampaignPlan` a document describes.

    Raises :class:`PlanFormatError` on format-version skew, missing
    fields, or a decoded plan that does not hash to the document's
    recorded fingerprint.
    """
    try:
        version = doc["format"]
        if version != PLAN_FORMAT_VERSION:
            raise PlanFormatError(
                f"plan document has format version {version!r}; this "
                f"reader supports {PLAN_FORMAT_VERSION}")
        runs = tuple(
            SimRun(patient_id=run["patient_id"],
                   init_glucose=float(run["init_glucose"]),
                   label=run["label"], fault=_fault_from_doc(run["fault"]),
                   meals=tuple(Meal(time=float(t), carbs=float(c))
                               for t, c in run["meals"]))
            for run in doc["runs"])
        plan = CampaignPlan(platform=doc["platform"], runs=runs,
                            n_steps=int(doc["n_steps"]),
                            target=float(doc["target"]),
                            dt=float(doc["dt"]))
        recorded = doc["fingerprint"]
    except PlanFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise PlanFormatError(f"malformed plan document: {exc}") from exc
    recomputed = plan_fingerprint(plan)
    if recomputed != recorded:
        raise PlanFormatError(
            f"plan document fingerprint mismatch: records {recorded}, "
            f"decoded runs hash to {recomputed} (file edited, truncated, "
            "or written by an incompatible schema version)")
    return plan


def save_plan(plan: CampaignPlan, path: str) -> str:
    """Write *plan* to *path* atomically (write-then-rename).  Returns
    *path*."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(plan_to_doc(plan), fh, indent=1)
    os.replace(tmp, path)
    return path


def load_plan(path: str) -> CampaignPlan:
    """Load and validate the plan document at *path*."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise PlanFormatError(
            f"unreadable plan document at {path}: {exc}") from exc
    return plan_from_doc(doc)
