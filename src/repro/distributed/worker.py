"""Distributed campaign range worker (``python -m repro.distributed.worker``).

One worker executes one half-open run range ``[start, stop)`` of a shared
:class:`~repro.simulation.executor.CampaignPlan` and leaves behind a
*partial dataset*: shard files named by **global** plan index (so partial
directories merge into one dataset without renaming) plus a
``partial_manifest.json`` recording the range, the plan fingerprint, the
per-trace manifest entries and ``BENCH``-style execution stats (host,
wall time, traces/sec, peak RSS).

The contract that makes the coordinator's retry path safe:

- **Deterministic** — the shards and entries a range produces depend only
  on ``(plan, start, stop, shard_format)``; worker count, batch size,
  host and attempt number never change them (the executor parity
  contract, one level up).  Re-running a range after a crash or
  straggler timeout therefore reproduces the identical partial result.
- **Atomic** — the partial manifest is written via write-then-rename
  *after* every shard, so a killed worker can never leave a directory
  that passes for a completed range; the coordinator treats a missing or
  unreadable partial manifest as "range not done" and re-dispatches.

The chaos battery drives the worker through two environment hooks:
``REPRO_DIST_CRASH_AFTER_SHARDS`` hard-kills the process (``os._exit``)
after that many shards — a mid-range crash — and
``REPRO_DIST_SLEEP_SECONDS`` stalls start-up to simulate a straggler.

Run::

    python -m repro.distributed.worker --plan plan.json \\
        --start 0 --stop 28 --out partials/range_0_28/attempt0
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import socket
import sys
import time
from typing import List, Optional

from ..simulation.executor import (CampaignPlan, NpyDirectorySink,
                                   NpzDirectorySink, TraceSink, get_executor)
from ..simulation.store import SCHEMA_VERSION, plan_fingerprint, trace_entry
from ..simulation.trace import SimulationTrace
from .errors import DistributedCampaignError

__all__ = ["PARTIAL_MANIFEST_NAME", "PARTIAL_FORMAT_VERSION",
           "CRASH_AFTER_SHARDS_ENV", "SLEEP_SECONDS_ENV", "CRASH_EXIT_CODE",
           "partial_manifest_path", "write_partial", "main"]

PARTIAL_MANIFEST_NAME = "partial_manifest.json"

#: bump when the partial-manifest layout changes
PARTIAL_FORMAT_VERSION = 1

#: chaos hook: hard-exit (no partial manifest) after this many shards
CRASH_AFTER_SHARDS_ENV = "REPRO_DIST_CRASH_AFTER_SHARDS"

#: chaos hook: stall this many seconds before simulating (straggler)
SLEEP_SECONDS_ENV = "REPRO_DIST_SLEEP_SECONDS"

#: exit code of an injected crash — distinct from argparse/validation (2)
CRASH_EXIT_CODE = 17

#: shard_format -> directory sink (mirrors the store's writer table)
_SHARD_SINKS = {"npz": NpzDirectorySink, "npy": NpyDirectorySink}


def partial_manifest_path(directory: str) -> str:
    return os.path.join(directory, PARTIAL_MANIFEST_NAME)


def _peak_rss_mb() -> float:
    """Peak resident set size of this process (ru_maxrss is KiB on Linux,
    bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak /= 1024.0
    return peak / 1024.0


class _RangeSink(TraceSink):
    """Stream a range's traces to globally-numbered shards + entries.

    Wraps the shard directory sink with ``index_offset=start`` and
    records one fold-unassigned manifest entry per trace.  Honors the
    crash-injection hook after each shard so a chaos kill lands exactly
    mid-range, between one shard and the next.
    """

    def __init__(self, directory: str, start: int, shard_format: str):
        self._sink = _SHARD_SINKS[shard_format](directory,
                                                index_offset=start)
        self.entries: List[dict] = []
        crash_after = os.environ.get(CRASH_AFTER_SHARDS_ENV)
        self._crash_after = int(crash_after) if crash_after else None

    def write(self, trace: SimulationTrace) -> None:
        index = self._sink.index_offset + self._sink.n_written
        self._sink.write(trace)
        self.entries.append(trace_entry(trace, self._sink.shard_name(index)))
        if (self._crash_after is not None
                and self._sink.n_written >= self._crash_after):
            # the in-process stand-in for `kill -9`: no cleanup, no
            # manifest — exactly what a dead host leaves behind
            os._exit(CRASH_EXIT_CODE)


def write_partial(plan: CampaignPlan, start: int, stop: int, directory: str,
                  shard_format: str = "npz",
                  workers: Optional[int] = None,
                  batch_size: Optional[int] = None) -> dict:
    """Execute runs ``[start, stop)`` of *plan* into *directory*.

    Writes the range's shards (global plan-index names) and finalises
    ``partial_manifest.json``; returns the partial-manifest document.
    *workers* and *batch_size* are the worker's **local** fan-out knobs
    (a beefy host can run its range over its own pool) — by the executor
    parity contract they never change the produced traces.

    Raises :class:`DistributedCampaignError` on an invalid range or a
    directory that already holds a partial result (retries must use a
    fresh attempt directory — idempotency comes from determinism plus
    the merge picking exactly one partial per range, not from
    overwriting).
    """
    if not 0 <= start < stop <= len(plan.runs):
        raise DistributedCampaignError(
            f"range [{start}, {stop}) is not a well-formed slice of the "
            f"{len(plan.runs)}-run plan")
    if shard_format not in _SHARD_SINKS:
        raise DistributedCampaignError(
            f"unknown shard_format {shard_format!r}; available: "
            f"{sorted(_SHARD_SINKS)}")
    if os.path.exists(partial_manifest_path(directory)):
        raise DistributedCampaignError(
            f"{directory} already holds a partial manifest; a retry must "
            "write into a fresh attempt directory")
    sub_plan = CampaignPlan(platform=plan.platform,
                            runs=plan.runs[start:stop],
                            n_steps=plan.n_steps, target=plan.target,
                            dt=plan.dt)
    try:
        sink = _RangeSink(directory, start, shard_format)
    except FileExistsError as exc:
        raise DistributedCampaignError(
            f"{directory} holds trace shards but no partial manifest — "
            "the remains of a crashed attempt; use a fresh attempt "
            "directory") from exc
    started = time.perf_counter()
    get_executor(workers, batch_size).run(sub_plan, sink=sink)
    wall_s = time.perf_counter() - started
    doc = {"format": PARTIAL_FORMAT_VERSION,
           "schema_version": SCHEMA_VERSION,
           "plan_fingerprint": plan_fingerprint(plan),
           "platform": plan.platform, "n_steps": plan.n_steps,
           "dt": plan.dt, "n_runs": len(plan.runs),
           "shard_format": shard_format, "start": start, "stop": stop,
           "entries": sink.entries,
           "stats": {"host": socket.gethostname(), "pid": os.getpid(),
                     "wall_s": round(wall_s, 4),
                     "traces_per_sec": round((stop - start) / wall_s, 2)
                     if wall_s > 0 else float(stop - start),
                     "peak_rss_mb": round(_peak_rss_mb(), 1)}}
    tmp = partial_manifest_path(directory) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    os.replace(tmp, partial_manifest_path(directory))
    return doc


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distributed.worker",
        description="Execute one shard range of a serialized campaign plan.")
    parser.add_argument("--plan", required=True,
                        help="path to the plan JSON written by save_plan")
    parser.add_argument("--start", type=int, required=True)
    parser.add_argument("--stop", type=int, required=True)
    parser.add_argument("--out", required=True,
                        help="fresh directory for shards + partial manifest")
    parser.add_argument("--shard-format", default="npz",
                        choices=sorted(_SHARD_SINKS))
    parser.add_argument("--workers", type=int, default=None,
                        help="local process-pool width for this range")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="local lock-step vectorization width")
    args = parser.parse_args(argv)

    sleep_s = os.environ.get(SLEEP_SECONDS_ENV)
    if sleep_s:
        time.sleep(float(sleep_s))

    from .planio import load_plan
    try:
        plan = load_plan(args.plan)
        doc = write_partial(plan, args.start, args.stop, args.out,
                            shard_format=args.shard_format,
                            workers=args.workers,
                            batch_size=args.batch_size)
    except DistributedCampaignError as exc:
        print(f"worker failed: {exc}", file=sys.stderr)
        return 2
    stats = doc["stats"]
    print(f"range [{args.start}, {args.stop}) done on {stats['host']}: "
          f"{args.stop - args.start} traces in {stats['wall_s']}s "
          f"({stats['traces_per_sec']}/s, peak {stats['peak_rss_mb']} MB)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
