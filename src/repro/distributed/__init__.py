"""Distributed campaign execution: partition → dispatch → retry → merge.

Scales :func:`~repro.simulation.batch.run_campaign` across hosts without
changing what it produces: the plan is split into deterministic,
disjoint, covering ranges (the ``repro.parallel`` chunk boundaries),
each range runs through ``python -m repro.distributed.worker`` into a
partial dataset, failed or straggling ranges are retried idempotently,
and :func:`merge_manifests` assembles a store byte-identical to the
single-box run — or raises a typed
:class:`DistributedCampaignError` explaining exactly why it will not.

See ``docs/distributed_campaigns.md`` for the protocol, the retry and
idempotency rules, and the merge validation matrix.
"""

from .chaos import (FlakyLauncher, corrupt_partial_manifest, delete_shard,
                    truncate_partial_manifest)
from .coordinator import (DistributedCampaignResult, LocalLauncher,
                          SSHLauncher, WorkerHandle, WorkerSpec,
                          run_distributed_campaign)
from .errors import (DistributedCampaignError, MergeManifestError,
                     PlanFormatError, WorkerError)
from .merge import load_partial, merge_manifests, merged_dataset
from .planio import (PLAN_FORMAT_VERSION, load_plan, plan_from_doc,
                     plan_to_doc, save_plan)
from .worker import (CRASH_AFTER_SHARDS_ENV, CRASH_EXIT_CODE,
                     PARTIAL_FORMAT_VERSION, PARTIAL_MANIFEST_NAME,
                     SLEEP_SECONDS_ENV, partial_manifest_path, write_partial)

__all__ = [
    "DistributedCampaignError", "PlanFormatError", "WorkerError",
    "MergeManifestError",
    "PLAN_FORMAT_VERSION", "plan_to_doc", "plan_from_doc", "save_plan",
    "load_plan",
    "PARTIAL_MANIFEST_NAME", "PARTIAL_FORMAT_VERSION",
    "CRASH_AFTER_SHARDS_ENV", "SLEEP_SECONDS_ENV", "CRASH_EXIT_CODE",
    "partial_manifest_path", "write_partial",
    "load_partial", "merge_manifests", "merged_dataset",
    "WorkerSpec", "WorkerHandle", "LocalLauncher", "SSHLauncher",
    "DistributedCampaignResult", "run_distributed_campaign",
    "FlakyLauncher", "corrupt_partial_manifest",
    "truncate_partial_manifest", "delete_shard",
]
