"""Assemble per-range partial datasets into one validated campaign store.

:func:`merge_manifests` is the gatekeeper between "a pile of directories
workers left behind" and "a dataset downstream code may trust".  It
accepts the partial directories in **any order** (completions reorder
freely under retry), validates them against each other and against the
plan fingerprint, and only then hard-links the shards into the output
directory and finalises a manifest through the store's own
:func:`~repro.simulation.store.write_manifest` — so a clean merge is
**byte-identical** to the manifest a single-box
:class:`~repro.simulation.store.CampaignStoreWriter` run over the same
plan would have produced (same entries, same fold assignment, same
fingerprint, same JSON bytes).

The validation matrix (every row a typed
:class:`~repro.distributed.errors.MergeManifestError`):

==========================  ===========================================
missing/unreadable partial  corrupted or truncated ``partial_manifest``
format/schema skew          partial written by another code version
identity disagreement       platform / n_steps / dt / shard_format /
                            n_runs differ across partials
fingerprint mismatch        a partial belongs to a different plan, or
                            the merged entries do not hash to the plan
entry/range mismatch        entry count or shard names disagree with
                            the recorded ``[start, stop)``
divergent duplicates        two partials claim the same range with
                            different entries
overlap / gap               ranges are not a disjoint cover of the plan
missing shard               an entry's shard file is absent on disk
occupied output             the output directory already holds a
                            manifest
==========================  ===========================================

Exact duplicates — the same range delivered twice with identical entries,
the normal outcome of an at-least-once retry path — are deduplicated
silently: re-execution is idempotent *because* it is deterministic, so
either copy is the result.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Dict, List, Optional, Sequence, Tuple

from ..parallel import ranges_defect
from ..simulation.store import (SCHEMA_VERSION, CampaignStoreError,
                                TraceDataset, _entry_cell, assign_folds,
                                campaign_fingerprint, manifest_path,
                                write_manifest)
from .errors import MergeManifestError
from .worker import (PARTIAL_FORMAT_VERSION, _SHARD_SINKS,
                     partial_manifest_path)

__all__ = ["load_partial", "merge_manifests", "merged_dataset"]

#: keys every partial manifest must carry
_REQUIRED_KEYS = ("format", "schema_version", "plan_fingerprint", "platform",
                  "n_steps", "dt", "n_runs", "shard_format", "start", "stop",
                  "entries", "stats")

#: the partial-manifest fields that must agree across every partial of one
#: campaign (the merged dataset's identity)
_IDENTITY_KEYS = ("plan_fingerprint", "platform", "n_steps", "dt", "n_runs",
                  "shard_format")


def load_partial(directory: str) -> dict:
    """Load and structurally validate one partial manifest.

    Raises :class:`MergeManifestError` for every way a partial can be
    unusable on its own: missing, unreadable, truncated (torn JSON),
    format- or schema-version skew, missing keys, an ill-formed range,
    an entry count that disagrees with the range, or shard filenames
    that do not match the range's global indices.
    """
    path = partial_manifest_path(directory)
    if not os.path.exists(path):
        raise MergeManifestError(
            f"no partial manifest at {path}; the range worker did not "
            "finish (crashed or still running)")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise MergeManifestError(
            f"corrupted or truncated partial manifest at {path}: "
            f"{exc}") from exc
    missing = [key for key in _REQUIRED_KEYS if key not in doc]
    if missing:
        raise MergeManifestError(
            f"partial manifest at {path} is missing keys {missing} "
            "(truncated or foreign file)")
    if doc["format"] != PARTIAL_FORMAT_VERSION:
        raise MergeManifestError(
            f"partial manifest at {path} has format version "
            f"{doc['format']!r}; this merger supports "
            f"{PARTIAL_FORMAT_VERSION}")
    if doc["schema_version"] != SCHEMA_VERSION:
        raise MergeManifestError(
            f"schema-version skew: partial at {path} was written for "
            f"store schema {doc['schema_version']!r}, this merger builds "
            f"schema {SCHEMA_VERSION} datasets")
    if doc["shard_format"] not in _SHARD_SINKS:
        raise MergeManifestError(
            f"partial manifest at {path} uses unknown shard format "
            f"{doc['shard_format']!r}")
    start, stop, n_runs = doc["start"], doc["stop"], doc["n_runs"]
    if not 0 <= start < stop <= n_runs:
        raise MergeManifestError(
            f"partial manifest at {path} records range [{start}, {stop}) "
            f"which is not a well-formed slice of the {n_runs}-run plan")
    entries = doc["entries"]
    if len(entries) != stop - start:
        raise MergeManifestError(
            f"partial manifest at {path} covers range [{start}, {stop}) "
            f"but carries {len(entries)} entries (interrupted or edited)")
    sink = _SHARD_SINKS[doc["shard_format"]]
    for offset, entry in enumerate(entries):
        expected = sink.shard_name(start + offset)
        if entry.get("file") != expected:
            raise MergeManifestError(
                f"partial manifest at {path}: entry {offset} names shard "
                f"{entry.get('file')!r} but global plan index "
                f"{start + offset} requires {expected!r} (shards "
                "misaligned with the recorded range)")
    doc["directory"] = directory
    return doc


def _check_identity(partials: Sequence[dict],
                    expect_fingerprint: Optional[str]) -> None:
    reference = partials[0]
    for doc in partials[1:]:
        for key in _IDENTITY_KEYS:
            if doc[key] != reference[key]:
                raise MergeManifestError(
                    f"partial manifests disagree on {key}: "
                    f"{reference['directory']} has {reference[key]!r}, "
                    f"{doc['directory']} has {doc[key]!r} — these ranges "
                    "belong to different campaigns")
    if (expect_fingerprint is not None
            and reference["plan_fingerprint"] != expect_fingerprint):
        raise MergeManifestError(
            f"fingerprint mismatch: partials carry plan fingerprint "
            f"{reference['plan_fingerprint']} but the merge expects "
            f"{expect_fingerprint} — these partials were simulated from "
            "a different campaign plan")


def _dedup_ranges(partials: Sequence[dict]) -> List[dict]:
    """Collapse exact duplicate ranges; refuse divergent ones.

    At-least-once delivery (a straggler finishing after its retry was
    accepted, a duplicated completion message) legitimately hands the
    merge the same range twice; determinism guarantees the copies are
    identical, so the first is kept.  Two partials claiming one range
    with *different* entries mean a worker simulated the wrong thing —
    that is never reconcilable and always loud.
    """
    by_range: Dict[Tuple[int, int], dict] = {}
    for doc in partials:
        key = (doc["start"], doc["stop"])
        kept = by_range.get(key)
        if kept is None:
            by_range[key] = doc
        elif kept["entries"] != doc["entries"]:
            raise MergeManifestError(
                f"divergent duplicates for range [{key[0]}, {key[1]}): "
                f"{kept['directory']} and {doc['directory']} deliver "
                "different entries for the same runs — the workers did "
                "not execute the same plan")
    return [by_range[key] for key in sorted(by_range)]


def merge_manifests(partial_dirs: Sequence[str], out_dir: str,
                    folds: Optional[int] = None,
                    expect_fingerprint: Optional[str] = None) -> dict:
    """Merge per-range partial datasets into a campaign store at *out_dir*.

    Parameters
    ----------
    partial_dirs:
        Directories written by range workers, in any order.  Exact
        duplicate ranges are deduplicated; anything else irregular is a
        typed error (see the module validation matrix).
    out_dir:
        Output directory; must not already hold a campaign manifest.
        Shards are hard-linked in (falling back to copies across
        filesystems) and the manifest is finalised last, atomically —
        an interrupted merge leaves no parsable manifest behind.
    folds:
        Cross-validation fold count recorded in the manifest, assigned
        per patient over the *merged* plan-ordered entries — exactly the
        single-box :class:`CampaignStoreWriter` rule.
    expect_fingerprint:
        The coordinator's :func:`~repro.simulation.store.plan_fingerprint`;
        when given, partials from any other plan are refused.

    Returns the merged manifest document (whose ``fingerprint`` equals
    the plan fingerprint — that equality is itself verified before
    anything is written).
    """
    if not partial_dirs:
        raise MergeManifestError("no partial directories to merge")
    if folds is not None and folds < 2:
        raise ValueError(f"folds must be >= 2, got {folds}")
    partials = [load_partial(directory) for directory in partial_dirs]
    _check_identity(partials, expect_fingerprint)
    partials = _dedup_ranges(partials)
    n_runs = partials[0]["n_runs"]
    defect = ranges_defect([(doc["start"], doc["stop"])
                            for doc in partials], n_runs)
    if defect is not None:
        raise MergeManifestError(
            f"partial ranges do not tile the {n_runs}-run plan: {defect}")

    # every shard must exist before anything is linked — a merge must not
    # discover a hole halfway through populating the output directory
    for doc in partials:
        for entry in doc["entries"]:
            shard = os.path.join(doc["directory"], entry["file"])
            if not os.path.exists(shard):
                raise MergeManifestError(
                    f"missing shard {entry['file']} in {doc['directory']} "
                    f"(range [{doc['start']}, {doc['stop']})) — partial "
                    "dataset incomplete")

    entries = [dict(entry) for doc in partials for entry in doc["entries"]]
    # the fold rule and fingerprint both need the full plan-ordered list
    assign_folds(entries, folds)
    merged_fingerprint = campaign_fingerprint(
        partials[0]["platform"], partials[0]["n_steps"],
        (_entry_cell(e) for e in entries))
    if merged_fingerprint != partials[0]["plan_fingerprint"]:
        raise MergeManifestError(
            f"fingerprint mismatch: merged entries hash to "
            f"{merged_fingerprint} but the partials record plan "
            f"fingerprint {partials[0]['plan_fingerprint']} — a worker "
            "simulated different runs than the plan describes")

    if os.path.exists(manifest_path(out_dir)):
        raise MergeManifestError(
            f"{out_dir} already holds a campaign manifest; merge into a "
            "fresh directory or remove it first")
    os.makedirs(out_dir, exist_ok=True)
    for doc in partials:
        for entry in doc["entries"]:
            src = os.path.join(doc["directory"], entry["file"])
            dst = os.path.join(out_dir, entry["file"])
            if os.path.exists(dst):
                os.remove(dst)  # rerun over a manifest-less directory
            try:
                os.link(src, dst)
            except OSError:
                shutil.copy2(src, dst)
    return write_manifest(out_dir, partials[0]["platform"],
                          partials[0]["n_steps"], folds,
                          partials[0]["shard_format"], entries)


def merged_dataset(out_dir: str, **open_kwargs) -> TraceDataset:
    """Open a merged directory as a :class:`TraceDataset`, translating
    store errors into the distributed layer's typed error."""
    try:
        return TraceDataset.open(out_dir, **open_kwargs)
    except CampaignStoreError as exc:
        raise MergeManifestError(
            f"merged dataset at {out_dir} failed validation: {exc}") from exc
