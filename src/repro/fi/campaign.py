"""Fault-injection campaign generation.

The paper's grid (Section V-B): for every patient, the combination of fault
type, target variable, injection magnitude, one of 9 start-time/duration
choices and 7 initial glucose values yields **882 fault injections per
patient** (7 kinds x 2 targets x 9 timing choices x 7 initial BGs).  This
module reproduces that grid at ``scale="full"`` and deterministic subsamples
at smaller scales so CI-sized runs keep the same coverage structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .faults import FaultKind, FaultSpec, FaultTarget

__all__ = ["CampaignConfig", "InjectionScenario", "generate_campaign",
           "INITIAL_GLUCOSE_VALUES", "TIMING_CHOICES"]

#: the paper's seven initial glucose values in [80, 200] mg/dL
INITIAL_GLUCOSE_VALUES: Tuple[float, ...] = (80.0, 100.0, 120.0, 140.0,
                                             160.0, 180.0, 200.0)

#: nine (start_step, duration_steps) choices; starts span the 150-step
#: simulation (including activation at t=0), durations range from 1 h to 3 h
TIMING_CHOICES: Tuple[Tuple[int, int], ...] = (
    (0, 24), (25, 12), (40, 30), (55, 18), (70, 36),
    (85, 24), (100, 12), (110, 30), (120, 18),
)

#: the 14 (kind, target, value) fault configurations of the campaign,
#: spanning Table II over the controller's input (glucose), outputs (rate)
#: and internal state (IOB).  SCALE at 0.5 reproduces the ``dec*``
#: bit-flip-style faults of Fig. 8.  14 configs x 9 timings x 7 initial BGs
#: = the paper's 882 injections per patient.
CAMPAIGN_FAULTS: Tuple[Tuple[FaultKind, FaultTarget, float], ...] = (
    # controller input: the CGM value as seen by the control software
    (FaultKind.HOLD, FaultTarget.GLUCOSE, 0.0),
    (FaultKind.MAX, FaultTarget.GLUCOSE, 0.0),
    (FaultKind.MIN, FaultTarget.GLUCOSE, 0.0),
    (FaultKind.ADD, FaultTarget.GLUCOSE, 100.0),
    (FaultKind.SUB, FaultTarget.GLUCOSE, 100.0),
    # controller output: commanded basal rate
    (FaultKind.TRUNCATE, FaultTarget.RATE, 0.0),
    (FaultKind.HOLD, FaultTarget.RATE, 0.0),
    (FaultKind.MAX, FaultTarget.RATE, 0.0),
    (FaultKind.ADD, FaultTarget.RATE, 3.0),
    (FaultKind.SCALE, FaultTarget.RATE, 0.5),
    # controller internal state: the IOB estimate
    (FaultKind.TRUNCATE, FaultTarget.IOB, 0.0),
    (FaultKind.HOLD, FaultTarget.IOB, 0.0),
    (FaultKind.MAX, FaultTarget.IOB, 0.0),
    (FaultKind.SUB, FaultTarget.IOB, 3.0),
)


@dataclass(frozen=True)
class InjectionScenario:
    """One campaign entry: a fault plus the simulation's initial glucose."""

    fault: FaultSpec
    init_glucose: float

    @property
    def label(self) -> str:
        return f"{self.fault.label}@{self.fault.start_step}+{self.fault.duration_steps}" \
               f"/bg{self.init_glucose:g}"


@dataclass(frozen=True)
class CampaignConfig:
    """Grid configuration.

    ``stride`` deterministically subsamples the full grid (stride 1 = the
    paper's 882 scenarios per patient).  ``init_glucose_values``,
    ``timing_choices`` and ``faults`` default to the paper's grids.
    """

    stride: int = 1
    init_glucose_values: Sequence[float] = INITIAL_GLUCOSE_VALUES
    timing_choices: Sequence[Tuple[int, int]] = TIMING_CHOICES
    faults: Sequence[Tuple[FaultKind, FaultTarget, float]] = CAMPAIGN_FAULTS

    def __post_init__(self):
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if not self.init_glucose_values:
            raise ValueError("need at least one initial glucose value")
        if not self.timing_choices:
            raise ValueError("need at least one timing choice")
        if not self.faults:
            raise ValueError("need at least one fault configuration")


def generate_campaign(config: CampaignConfig = CampaignConfig()) -> List[InjectionScenario]:
    """Enumerate the (possibly strided) injection grid, deterministically.

    The full grid (stride 1, default grids) has
    ``14 fault configs x 9 timings x 7 initial BGs = 882`` scenarios —
    the paper's per-patient count (Section V-B).
    """
    scenarios: List[InjectionScenario] = []
    for kind, target, value in config.faults:
        for start, duration in config.timing_choices:
            for init_bg in config.init_glucose_values:
                fault = FaultSpec(kind=kind, target=target,
                                  start_step=start, duration_steps=duration,
                                  value=value)
                scenarios.append(InjectionScenario(fault=fault,
                                                   init_glucose=init_bg))
    return scenarios[::config.stride]
