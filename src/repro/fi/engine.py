"""Software fault-injection engine.

Wraps the controller interface of one closed-loop run: the simulation loop
passes the sensed glucose through :meth:`FaultInjector.corrupt_reading`
before the controller sees it and the commanded insulin through
:meth:`FaultInjector.corrupt_command` after the controller produced it
(before monitor and pump).  This matches the paper's source-level FI, which
perturbs the controller software's state variables (Section IV-C1) — the
faults are invisible to the plant and to the ground-truth labeling, which
use the true patient state.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .faults import FaultSpec, FaultTarget

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies one transient :class:`FaultSpec` during a simulation."""

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self._held_reading: Optional[float] = None
        self._held_rate: Optional[float] = None
        self._held_bolus: Optional[float] = None
        self._held_iob: Optional[float] = None
        self.activated_step: Optional[int] = None

    def reset(self) -> None:
        self._held_reading = None
        self._held_rate = None
        self._held_bolus = None
        self._held_iob = None
        self.activated_step = None

    def _mark_active(self, step: int) -> None:
        if self.activated_step is None:
            self.activated_step = step

    def corrupt_reading(self, reading: float, step: int) -> float:
        """Corrupt the controller's glucose input at *step* (if targeted)."""
        if self.spec.target is not FaultTarget.GLUCOSE:
            return reading
        if not self.spec.active(step):
            self._held_reading = reading
            return reading
        self._mark_active(step)
        return self.spec.apply(reading, self._held_reading)

    def corrupt_command(self, rate: float, bolus: float,
                        step: int) -> Tuple[float, float]:
        """Corrupt the controller's output command at *step* (if targeted)."""
        if self.spec.target is FaultTarget.GLUCOSE:
            return rate, bolus
        if not self.spec.active(step):
            self._held_rate = rate
            self._held_bolus = bolus
            return rate, bolus
        self._mark_active(step)
        if self.spec.target is FaultTarget.RATE:
            return self.spec.apply(rate, self._held_rate), bolus
        return rate, self.spec.apply(bolus, self._held_bolus)

    def corrupt_iob(self, iob: float, step: int) -> float:
        """Corrupt the controller's internal IOB estimate (if targeted)."""
        if self.spec.target is not FaultTarget.IOB:
            return iob
        if not self.spec.active(step):
            self._held_iob = iob
            return iob
        self._mark_active(step)
        return self.spec.apply(iob, self._held_iob)

    @property
    def fault_step(self) -> int:
        """The scheduled activation step ``tf`` of the fault."""
        return self.spec.start_step
