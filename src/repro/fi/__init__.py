"""Software fault-injection engine and campaign generator (Table II)."""

from .campaign import (
    CAMPAIGN_FAULTS,
    CampaignConfig,
    INITIAL_GLUCOSE_VALUES,
    InjectionScenario,
    TIMING_CHOICES,
    generate_campaign,
)
from .engine import FaultInjector
from .faults import FaultKind, FaultSpec, FaultTarget, VARIABLE_RANGES

__all__ = [
    "CAMPAIGN_FAULTS",
    "CampaignConfig",
    "INITIAL_GLUCOSE_VALUES",
    "InjectionScenario",
    "TIMING_CHOICES",
    "generate_campaign",
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "FaultTarget",
    "VARIABLE_RANGES",
]
