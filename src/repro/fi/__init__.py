"""Software fault-injection engine and campaign generator (Table II)."""

from .campaign import (
    CAMPAIGN_FAULTS,
    CampaignConfig,
    INITIAL_GLUCOSE_VALUES,
    InjectionScenario,
    TIMING_CHOICES,
    generate_campaign,
)
from .engine import FaultInjector
from .faults import (FaultKind, FaultSpec, FaultTarget, MAX_SCALE_FACTOR,
                     VARIABLE_RANGES, magnitude_bounds)

__all__ = [
    "MAX_SCALE_FACTOR",
    "magnitude_bounds",
    "CAMPAIGN_FAULTS",
    "CampaignConfig",
    "INITIAL_GLUCOSE_VALUES",
    "InjectionScenario",
    "TIMING_CHOICES",
    "generate_campaign",
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "FaultTarget",
    "VARIABLE_RANGES",
]
