"""Fault and attack models (Table II of the paper).

Each :class:`FaultSpec` describes one transient fault: what it corrupts (the
controller's glucose input, its commanded insulin rate, or a commanded
bolus), how (the Table II manipulation types), when (activation step) and for
how long.  The paper's threat model assumes errors are transient and occur
once per simulation, so a spec is a single contiguous window.

Manipulation types and the scenarios they simulate:

==========  =====================================================
truncate    output forced to zero (availability attack)
hold        value frozen at its pre-fault level (DoS attack)
max / min   saturation at the variable's allowed extreme
            (integrity attack, e.g. ``maximize_rate``)
add / sub   constant offset (memory fault / integrity attack)
scale       multiplicative corruption; factor 0.5 reproduces the
            paper's bit-flip-style ``dec*`` faults (Fig. 8)
==========  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["FaultKind", "FaultTarget", "FaultSpec", "VARIABLE_RANGES"]


class FaultKind(enum.Enum):
    TRUNCATE = "truncate"
    HOLD = "hold"
    MAX = "max"
    MIN = "min"
    ADD = "add"
    SUB = "sub"
    SCALE = "scale"


class FaultTarget(enum.Enum):
    """Controller variable the fault corrupts.

    The paper's threat model covers "errors in inputs, outputs, and the
    internal state variables of the APS control software" (Section IV-C1):
    ``GLUCOSE`` is the input, ``RATE``/``BOLUS`` the outputs, and ``IOB`` the
    controller's internal insulin-on-board estimate — corrupting it defeats
    the controller's own compensation logic (e.g. a zeroed IOB makes it keep
    stacking insulin).
    """

    GLUCOSE = "glucose"   # controller input (CGM value as seen by software)
    RATE = "rate"         # controller output basal rate
    BOLUS = "bolus"       # controller output bolus
    IOB = "iob"           # controller-internal IOB estimate (net units)

    @property
    def is_input(self) -> bool:
        return self is FaultTarget.GLUCOSE

    @property
    def is_internal(self) -> bool:
        return self is FaultTarget.IOB


#: acceptable ranges per target, used by MAX/MIN and for clamping the result
#: of ADD/SUB/SCALE — the paper's FI perturbs "within the acceptable range".
#: IOB is in the oref0 net convention, hence the negative floor.
VARIABLE_RANGES: Dict[FaultTarget, Tuple[float, float]] = {
    FaultTarget.GLUCOSE: (40.0, 400.0),
    FaultTarget.RATE: (0.0, 10.0),
    FaultTarget.BOLUS: (0.0, 10.0),
    FaultTarget.IOB: (-2.0, 15.0),
}


@dataclass(frozen=True)
class FaultSpec:
    """One transient fault scenario.

    Attributes
    ----------
    kind:
        The manipulation type.
    target:
        Which interface variable is corrupted.
    start_step:
        Control cycle at which the fault activates.
    duration_steps:
        Number of consecutive cycles the fault stays active.
    value:
        Magnitude for ``ADD``/``SUB`` (same unit as the target) or factor
        for ``SCALE``; ignored by the other kinds.
    """

    kind: FaultKind
    target: FaultTarget
    start_step: int
    duration_steps: int
    value: float = 0.0

    def __post_init__(self):
        if self.start_step < 0:
            raise ValueError(f"start_step must be >= 0, got {self.start_step}")
        if self.duration_steps <= 0:
            raise ValueError(
                f"duration_steps must be positive, got {self.duration_steps}")
        if self.kind is FaultKind.SCALE and self.value < 0:
            raise ValueError(f"scale factor must be >= 0, got {self.value}")

    @property
    def end_step(self) -> int:
        """First step after the fault window."""
        return self.start_step + self.duration_steps

    def active(self, step: int) -> bool:
        return self.start_step <= step < self.end_step

    def apply(self, value: float, held: Optional[float]) -> float:
        """Corrupt *value*; *held* is the last pre-fault value (for HOLD)."""
        lo, hi = VARIABLE_RANGES[self.target]
        if self.kind is FaultKind.TRUNCATE:
            corrupted = 0.0 if not self.target.is_input else lo
        elif self.kind is FaultKind.HOLD:
            corrupted = value if held is None else held
        elif self.kind is FaultKind.MAX:
            corrupted = hi
        elif self.kind is FaultKind.MIN:
            corrupted = lo
        elif self.kind is FaultKind.ADD:
            corrupted = value + self.value
        elif self.kind is FaultKind.SUB:
            corrupted = value - self.value
        elif self.kind is FaultKind.SCALE:
            corrupted = value * self.value
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(f"unhandled fault kind {self.kind}")
        return min(max(corrupted, lo), hi)

    @property
    def label(self) -> str:
        """Short human-readable id, Fig. 8 style (e.g. ``max_rate``)."""
        base = self.kind.value
        if self.kind is FaultKind.SCALE and self.value < 1.0:
            base = "dec"
        return f"{base}_{self.target.value}"
