"""Fault and attack models (Table II of the paper).

Each :class:`FaultSpec` describes one transient fault: what it corrupts (the
controller's glucose input, its commanded insulin rate, or a commanded
bolus), how (the Table II manipulation types), when (activation step) and for
how long.  The paper's threat model assumes errors are transient and occur
once per simulation, so a spec is a single contiguous window.

Manipulation types and the scenarios they simulate:

==========  =====================================================
truncate    output forced to zero (availability attack)
hold        value frozen at its pre-fault level (DoS attack)
max / min   saturation at the variable's allowed extreme
            (integrity attack, e.g. ``maximize_rate``)
add / sub   constant offset (memory fault / integrity attack)
scale       multiplicative corruption; factor 0.5 reproduces the
            paper's bit-flip-style ``dec*`` faults (Fig. 8)
==========  =====================================================
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["FaultKind", "FaultTarget", "FaultSpec", "VARIABLE_RANGES",
           "MAX_SCALE_FACTOR", "magnitude_bounds"]

#: largest multiplicative corruption a SCALE fault may apply — factors past
#: this saturate at the variable range anyway, so larger samples are noise
MAX_SCALE_FACTOR = 10.0


class FaultKind(enum.Enum):
    TRUNCATE = "truncate"
    HOLD = "hold"
    MAX = "max"
    MIN = "min"
    ADD = "add"
    SUB = "sub"
    SCALE = "scale"


class FaultTarget(enum.Enum):
    """Controller variable the fault corrupts.

    The paper's threat model covers "errors in inputs, outputs, and the
    internal state variables of the APS control software" (Section IV-C1):
    ``GLUCOSE`` is the input, ``RATE``/``BOLUS`` the outputs, and ``IOB`` the
    controller's internal insulin-on-board estimate — corrupting it defeats
    the controller's own compensation logic (e.g. a zeroed IOB makes it keep
    stacking insulin).
    """

    GLUCOSE = "glucose"   # controller input (CGM value as seen by software)
    RATE = "rate"         # controller output basal rate
    BOLUS = "bolus"       # controller output bolus
    IOB = "iob"           # controller-internal IOB estimate (net units)

    @property
    def is_input(self) -> bool:
        return self is FaultTarget.GLUCOSE

    @property
    def is_internal(self) -> bool:
        return self is FaultTarget.IOB


#: acceptable ranges per target, used by MAX/MIN and for clamping the result
#: of ADD/SUB/SCALE — the paper's FI perturbs "within the acceptable range".
#: IOB is in the oref0 net convention, hence the negative floor.
VARIABLE_RANGES: Dict[FaultTarget, Tuple[float, float]] = {
    FaultTarget.GLUCOSE: (40.0, 400.0),
    FaultTarget.RATE: (0.0, 10.0),
    FaultTarget.BOLUS: (0.0, 10.0),
    FaultTarget.IOB: (-2.0, 15.0),
}


def magnitude_bounds(kind: FaultKind,
                     target: FaultTarget) -> Optional[Tuple[float, float]]:
    """Valid magnitude interval for a (kind, target) fault configuration.

    ``None`` means the kind takes no magnitude (TRUNCATE/HOLD/MAX/MIN).
    ``ADD``/``SUB`` offsets must be strictly positive (0 is a silent no-op)
    and no larger than the target's full acceptable span — anything bigger
    clamps to the same saturated value, so allowing it would only blur the
    search space.  ``SCALE`` factors live in ``[0, MAX_SCALE_FACTOR]``.
    """
    if kind in (FaultKind.TRUNCATE, FaultKind.HOLD, FaultKind.MAX,
                FaultKind.MIN):
        return None
    if kind is FaultKind.SCALE:
        return (0.0, MAX_SCALE_FACTOR)
    lo, hi = VARIABLE_RANGES[target]
    span = hi - lo
    # smallest meaningful offset: far below any clinically visible error,
    # but strictly positive so a sampled 0.0 is rejected as a no-op
    return (1e-6, span)


@dataclass(frozen=True)
class FaultSpec:
    """One transient fault scenario.

    Attributes
    ----------
    kind:
        The manipulation type.
    target:
        Which interface variable is corrupted.
    start_step:
        Control cycle at which the fault activates.
    duration_steps:
        Number of consecutive cycles the fault stays active.
    value:
        Magnitude for ``ADD``/``SUB`` (same unit as the target) or factor
        for ``SCALE``; ignored by the other kinds.
    """

    kind: FaultKind
    target: FaultTarget
    start_step: int
    duration_steps: int
    value: float = 0.0

    def __post_init__(self):
        if self.start_step < 0:
            raise ValueError(f"start_step must be >= 0, got {self.start_step}")
        if self.duration_steps <= 0:
            raise ValueError(
                f"duration_steps must be positive, got {self.duration_steps}")
        if not math.isfinite(self.value):
            raise ValueError(f"fault value must be finite, got {self.value}")
        if self.kind is FaultKind.SCALE and self.value < 0:
            raise ValueError(f"scale factor must be >= 0, got {self.value}")

    @classmethod
    def from_continuous(cls, kind: FaultKind, target: FaultTarget,
                        start_step: float, duration_steps: float,
                        value: float = 0.0, *, horizon: int) -> "FaultSpec":
        """Build a validated spec from *continuous* scenario parameters.

        Scenario-search proposals (:mod:`repro.search`) sample fault timing
        and magnitude as real numbers; this constructor is the single place
        those samples become discrete specs.  It rejects — loudly, with
        :class:`ValueError` — every degenerate combination that the plain
        constructor cannot see because it lacks the simulation horizon:

        - non-finite or negative timing, zero/negative duration (a fault
          that never activates would silently score as a safe scenario);
        - ``start_step`` at or past *horizon* (the fault window would lie
          entirely outside the simulated trace — a silent no-op);
        - magnitudes outside :func:`magnitude_bounds` for the kind/target
          (an ``ADD`` of 0 or of more than the variable's full range is a
          no-op or pure saturation, either of which corrupts the search
          objective silently).

        Timing is floored to whole control cycles after validation, so any
        sample inside the continuous box maps to exactly one valid spec.
        """
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1 step, got {horizon}")
        if not (math.isfinite(start_step) and math.isfinite(duration_steps)):
            raise ValueError(
                f"fault timing must be finite, got start {start_step}, "
                f"duration {duration_steps}")
        if start_step < 0:
            raise ValueError(f"start_step must be >= 0, got {start_step}")
        if duration_steps < 1:
            raise ValueError(
                f"duration_steps must be >= 1 cycle, got {duration_steps} "
                "(a zero-length fault would simulate as fault-free)")
        start = int(math.floor(start_step))
        duration = int(math.floor(duration_steps))
        if start >= horizon:
            raise ValueError(
                f"start_step {start} is outside the simulation horizon "
                f"({horizon} steps) — the fault would never activate")
        bounds = magnitude_bounds(kind, target)
        if bounds is None:
            if value != 0.0:
                raise ValueError(
                    f"{kind.value} faults take no magnitude, got {value}")
        else:
            lo, hi = bounds
            if not math.isfinite(value) or not lo <= value <= hi:
                raise ValueError(
                    f"{kind.value}_{target.value} magnitude {value} is "
                    f"outside the valid range [{lo}, {hi}]")
        return cls(kind=kind, target=target, start_step=start,
                   duration_steps=duration, value=value)

    @property
    def end_step(self) -> int:
        """First step after the fault window."""
        return self.start_step + self.duration_steps

    def active(self, step: int) -> bool:
        return self.start_step <= step < self.end_step

    def apply(self, value: float, held: Optional[float]) -> float:
        """Corrupt *value*; *held* is the last pre-fault value (for HOLD)."""
        lo, hi = VARIABLE_RANGES[self.target]
        if self.kind is FaultKind.TRUNCATE:
            corrupted = 0.0 if not self.target.is_input else lo
        elif self.kind is FaultKind.HOLD:
            corrupted = value if held is None else held
        elif self.kind is FaultKind.MAX:
            corrupted = hi
        elif self.kind is FaultKind.MIN:
            corrupted = lo
        elif self.kind is FaultKind.ADD:
            corrupted = value + self.value
        elif self.kind is FaultKind.SUB:
            corrupted = value - self.value
        elif self.kind is FaultKind.SCALE:
            corrupted = value * self.value
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(f"unhandled fault kind {self.kind}")
        return min(max(corrupted, lo), hi)

    @property
    def label(self) -> str:
        """Short human-readable id, Fig. 8 style (e.g. ``max_rate``)."""
        base = self.kind.value
        if self.kind is FaultKind.SCALE and self.value < 1.0:
            base = "dec"
        return f"{base}_{self.target.value}"
