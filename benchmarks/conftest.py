"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper at a
configurable scale.  Set ``REPRO_SCALE`` to ``smoke`` (default), ``small``,
``medium`` or ``full`` (the paper's 882 injections x 10 patients — slow).
Simulation data is cached per scale across the whole benchmark session, so
the first benchmark pays the campaign cost and the rest replay it.

Run with ``pytest benchmarks/ --benchmark-only -s`` to also see the
reproduced tables next to the paper's values.
"""

import os

import pytest

from repro.experiments import ExperimentConfig

SCALE = os.environ.get("REPRO_SCALE", "smoke")


@pytest.fixture(scope="session")
def glucosym_config() -> ExperimentConfig:
    return ExperimentConfig.preset(SCALE, platform="glucosym")


@pytest.fixture(scope="session")
def t1d_config() -> ExperimentConfig:
    return ExperimentConfig.preset(SCALE, platform="t1ds2013")


def show(result) -> None:
    """Print a reproduced table (visible with ``-s``)."""
    print()
    print(result.text())
