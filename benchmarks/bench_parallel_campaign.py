"""Serial vs parallel campaign execution throughput (traces/sec).

Runs the ``ci``-scale fault-injection grid (2 patients x 42 scenarios)
through the serial executor and through process pools of 2 and 4 workers,
reporting traces/sec for each.  A final test asserts that the parallel
trace stream is element-wise identical to the serial one, and — on
machines with at least 4 cores — that 4 workers deliver at least a 2.5x
speedup.

Run:  pytest benchmarks/bench_parallel_campaign.py --benchmark-only -s
"""

import dataclasses
import os
import time

import numpy as np
import pytest

from repro.experiments import ExperimentConfig
from repro.fi import CampaignConfig, generate_campaign
from repro.simulation import controller_profile, run_campaign
from repro.patients import make_patient

CONFIG = ExperimentConfig.preset("ci")
SCENARIOS = generate_campaign(CampaignConfig(stride=CONFIG.stride))
N_TRACES = len(CONFIG.patients) * len(SCENARIOS)


def _warm_profiles():
    """Titrate controller profiles up front so forked workers inherit them
    and every timed run measures pure campaign throughput."""
    for pid in CONFIG.patients:
        controller_profile(make_patient(CONFIG.platform, pid))


def _run(workers):
    return run_campaign(CONFIG.platform, CONFIG.patients, SCENARIOS,
                        n_steps=CONFIG.n_steps, workers=workers)


def _timed(workers):
    start = time.perf_counter()
    traces = _run(workers)
    elapsed = time.perf_counter() - start
    return traces, elapsed


def _report(name, elapsed):
    print(f"\n{name}: {N_TRACES} traces in {elapsed:.2f}s "
          f"({N_TRACES / elapsed:.1f} traces/sec)")


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_campaign_throughput(benchmark, workers):
    _warm_profiles()
    traces = benchmark.pedantic(_run, args=(workers,), rounds=1, iterations=1)
    assert len(traces) == N_TRACES
    if benchmark.stats is not None:  # absent under --benchmark-disable
        _report(f"workers={workers}", benchmark.stats.stats.mean)


def test_parallel_parity_and_speedup():
    """4-worker output is byte-identical to serial; on >=4 cores it must
    also be at least 2.5x faster."""
    _warm_profiles()
    serial, t_serial = _timed(1)
    parallel, t_parallel = _timed(4)
    _report("serial", t_serial)
    _report("4 workers", t_parallel)
    print(f"speedup: {t_serial / t_parallel:.2f}x")

    assert len(serial) == len(parallel) == N_TRACES
    for s, p in zip(serial, parallel):
        assert (s.platform, s.patient_id, s.label, s.fault) == \
               (p.platform, p.patient_id, p.label, p.fault)
        for f in dataclasses.fields(s):
            v = getattr(s, f.name)
            if isinstance(v, np.ndarray):
                assert np.array_equal(v, getattr(p, f.name)), f.name

    cores = os.cpu_count() or 1
    if cores >= 4:
        assert t_serial / t_parallel >= 2.5, (
            f"expected >=2.5x speedup at 4 workers on {cores} cores, "
            f"got {t_serial / t_parallel:.2f}x")
    else:
        print(f"(speedup assertion skipped: only {cores} core(s))")
