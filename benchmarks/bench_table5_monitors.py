"""Table V — CAWT vs Guideline/MPC/CAWOT on both platforms."""

from conftest import SCALE, show
from repro.experiments import run_table5


def test_table5_glucosym(benchmark, glucosym_config):
    result = benchmark.pedantic(run_table5, args=(glucosym_config,),
                                rounds=1, iterations=1)
    show(result)
    rows = result.row_dict()
    # paper shape: CAWT holds the lowest FPR of all monitors
    cawt_fpr = rows["CAWT"][3]
    assert cawt_fpr <= min(rows[m][3] for m in ("CAWOT", "Guideline", "MPC"))
    # and beats the context-aware-without-learning baseline on F1
    if SCALE != "smoke":  # smoke folds are too small for CV learning
        assert rows["CAWT"][6] > rows["CAWOT"][6]


def test_table5_t1ds2013(benchmark, t1d_config):
    result = benchmark.pedantic(run_table5, args=(t1d_config,),
                                rounds=1, iterations=1)
    show(result)
    rows = result.row_dict()
    assert rows["CAWT"][3] <= min(rows[m][3] for m in ("CAWOT", "Guideline"))
