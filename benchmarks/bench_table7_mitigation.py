"""Table VII — hazard mitigation with Algorithm 1."""

from conftest import SCALE, show
from repro.experiments import run_table7


def test_table7_mitigation(benchmark, glucosym_config):
    result = benchmark.pedantic(run_table7, args=(glucosym_config,),
                                rounds=1, iterations=1)
    show(result)
    rows = result.row_dict()
    for name in ("CAWT", "DT", "MLP", "MPC"):
        assert name in rows
    if SCALE != "smoke":
        # paper shape: CAWT introduces the fewest new hazards and carries
        # the lowest average risk
        assert rows["CAWT"][2] <= min(rows[m][2] for m in ("DT", "MLP", "MPC"))
        assert rows["CAWT"][3] <= min(rows[m][3] for m in ("DT", "MLP", "MPC")) + 0.05
