"""Scalar vs lock-step batched monitor replay throughput.

Replays the Table V monitor set (CAWT, CAWOT, Guideline, MPC) plus a
trained DT over the ``ci``-scale campaign (2 patients x 42 scenarios x
150 cycles) through the scalar per-cycle loop and through the batched
``observe_batch`` path at several widths.  A final test asserts that the
batched alert streams are element-wise identical to the scalar replay
and — the acceptance bar for the batched replay path — at least 3x
faster at batch_size=32.

Run:  pytest benchmarks/bench_vector_replay.py --benchmark-only -s
"""

import time

import numpy as np
import pytest

from repro.baselines import GuidelineMonitor, MPCMonitor
from repro.core import cawot_monitor, cawt_monitor, learn_thresholds
from repro.experiments import ExperimentConfig
from repro.fi import CampaignConfig, generate_campaign
from repro.ml import train_dt_monitor
from repro.simulation import replay_campaign, run_campaign

CONFIG = ExperimentConfig.preset("ci")
SCENARIOS = generate_campaign(CampaignConfig(stride=CONFIG.stride))
N_TRACES = len(CONFIG.patients) * len(SCENARIOS)

_CACHE = {}


def _traces_and_monitors():
    if not _CACHE:
        traces = run_campaign(CONFIG.platform, CONFIG.patients, SCENARIOS,
                              n_steps=CONFIG.n_steps, batch_size=32)
        _CACHE["traces"] = traces
        _CACHE["monitors"] = {
            "CAWT": cawt_monitor(learn_thresholds(traces,
                                                  batch_size=32).thresholds),
            "CAWOT": cawot_monitor(),
            "Guideline": GuidelineMonitor(),
            "MPC": MPCMonitor(horizon_steps=CONFIG.mpc_horizon),
            "DT": train_dt_monitor(traces),
        }
    return _CACHE["traces"], _CACHE["monitors"]


def _timed(batch_size, workers=1):
    traces, monitors = _traces_and_monitors()
    start = time.perf_counter()
    alerts = replay_campaign(monitors, traces, workers=workers,
                             batch_size=batch_size)
    return alerts, time.perf_counter() - start


def _report(name, elapsed):
    print(f"\n{name}: {N_TRACES} traces x 5 monitors in {elapsed:.2f}s "
          f"({N_TRACES / elapsed:.1f} traces/sec/monitor-set)")


@pytest.mark.parametrize("batch_size", [1, 8, 32, 84])
def test_replay_throughput(benchmark, batch_size):
    traces, monitors = _traces_and_monitors()
    alerts = benchmark.pedantic(
        replay_campaign, args=(monitors, traces),
        kwargs={"batch_size": batch_size}, rounds=1, iterations=1)
    assert all(len(alerts[name]) == N_TRACES for name in monitors)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        _report(f"batch_size={batch_size}", benchmark.stats.stats.mean)


def test_replay_parity_and_speedup():
    """batch_size=32 alert streams are element-wise identical to the
    scalar replay and at least 3x faster (the path's acceptance bar)."""
    serial, t_serial = _timed(1)
    batched, t_batched = _timed(32)
    _report("scalar", t_serial)
    _report("batch_size=32", t_batched)
    print(f"speedup: {t_serial / t_batched:.2f}x")

    for name in serial:
        assert len(batched[name]) == N_TRACES
        for a, b in zip(serial[name], batched[name]):
            assert np.array_equal(a, b), name

    assert t_serial / t_batched >= 3.0, (
        f"expected >=3x batched replay speedup, got "
        f"{t_serial / t_batched:.2f}x")


def test_replay_stacks_with_workers():
    """Batched replay inside pool chunks: still identical alert streams."""
    serial, _ = _timed(1)
    combo, t_combo = _timed(16, workers=2)
    _report("2 workers x batch 16", t_combo)
    for name in serial:
        assert all(np.array_equal(a, b)
                   for a, b in zip(serial[name], combo[name]))
