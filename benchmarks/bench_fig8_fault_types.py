"""Fig. 8 — hazard coverage by fault type and initial glucose."""

from conftest import show
from repro.experiments import run_fig8


def test_fig8_fault_types(benchmark, glucosym_config):
    result = benchmark.pedantic(run_fig8, args=(glucosym_config,),
                                rounds=1, iterations=1)
    show(result)
    rows = result.row_dict()
    # paper: maximize faults are the most damaging fault class
    max_best = max(v[-1] for k, v in rows.items() if k.startswith("max_"))
    others = [v[-1] for k, v in rows.items() if not k.startswith("max_")]
    assert max_best >= max(others)
    assert max_best > 0.5
