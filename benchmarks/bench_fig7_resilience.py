"""Fig. 7 — hazard coverage per patient and Time-to-Hazard distribution."""

from conftest import show
from repro.experiments import run_fig7


def test_fig7_resilience(benchmark, glucosym_config):
    result = benchmark.pedantic(run_fig7, args=(glucosym_config,),
                                rounds=1, iterations=1)
    show(result)
    overall = result.rows[-1][2]
    # paper: 33.9% average hazard coverage on Glucosym; the scaled campaign
    # must land in a sane band around that
    assert 0.05 <= overall <= 0.7
    # TTH note exists and reports hours-scale dynamics
    assert any("TTH" in note for note in result.notes)
