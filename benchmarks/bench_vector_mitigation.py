"""Scalar vs lock-step batched *mitigated* closed-loop throughput.

Runs the ``ci``-scale campaign (2 patients x 42 scenarios x 150 cycles)
with the CAWOT monitor wired to a mitigator — the paper's Table VII
configuration — through the scalar :class:`ClosedLoop` and through the
vectorized engine at several widths, for both benchmarked strategy
families (:class:`FixedMitigator`, Algorithm 1's fixed dose, and the
KnowSafe-style :class:`PredictiveMitigator`).  A final test asserts that
the batched traces are element-wise identical to the scalar run and — the
acceptance bar for the mitigated batch path — at least 3x faster at
batch_size=32.

Run:  pytest benchmarks/bench_vector_mitigation.py --benchmark-only -s
"""

import time

import numpy as np
import pytest

from repro.core import FixedMitigator, PredictiveMitigator, cawot_monitor
from repro.experiments import ExperimentConfig
from repro.fi import CampaignConfig, generate_campaign
from repro.simulation import run_campaign, warm_profiles

CONFIG = ExperimentConfig.preset("ci")
SCENARIOS = generate_campaign(CampaignConfig(stride=CONFIG.stride))
N_SIMS = len(CONFIG.patients) * len(SCENARIOS)

_CACHE = {}


def _monitor_factory(pid):
    return cawot_monitor()


def _run(mitigator, batch_size, workers=1):
    return run_campaign(CONFIG.platform, CONFIG.patients, SCENARIOS,
                        monitor_factory=_monitor_factory,
                        mitigator=mitigator, n_steps=CONFIG.n_steps,
                        workers=workers, batch_size=batch_size)


def _timed(mitigator, batch_size, workers=1):
    warm_profiles(CONFIG.platform, CONFIG.patients)
    start = time.perf_counter()
    traces = _run(mitigator, batch_size, workers=workers)
    return traces, time.perf_counter() - start


def _scalar_reference():
    if "scalar" not in _CACHE:
        _CACHE["scalar"] = _timed(FixedMitigator(), 1)
    return _CACHE["scalar"]


def _report(name, elapsed):
    print(f"\n{name}: {N_SIMS} mitigated sims x {CONFIG.n_steps} cycles "
          f"in {elapsed:.2f}s ({N_SIMS / elapsed:.1f} sims/sec)")


@pytest.mark.parametrize("batch_size", [1, 8, 32, 84])
def test_mitigated_campaign_throughput(benchmark, batch_size):
    warm_profiles(CONFIG.platform, CONFIG.patients)
    traces = benchmark.pedantic(
        _run, args=(FixedMitigator(), batch_size), rounds=1, iterations=1)
    assert len(traces) == N_SIMS
    if benchmark.stats is not None:  # absent under --benchmark-disable
        _report(f"batch_size={batch_size}", benchmark.stats.stats.mean)


@pytest.mark.parametrize("family", [FixedMitigator, PredictiveMitigator])
def test_both_families_batched(benchmark, family):
    """The second strategy family rides the same harness at full width."""
    warm_profiles(CONFIG.platform, CONFIG.patients)
    traces = benchmark.pedantic(
        _run, args=(family(), 32), rounds=1, iterations=1)
    assert len(traces) == N_SIMS
    if benchmark.stats is not None:
        _report(f"{family.__name__} batch_size=32", benchmark.stats.stats.mean)


def test_mitigation_parity_and_speedup():
    """batch_size=32 mitigated traces are element-wise identical to the
    scalar loop and at least 3x faster (the path's acceptance bar)."""
    serial, t_serial = _scalar_reference()
    batched, t_batched = _timed(FixedMitigator(), 32)
    _report("scalar", t_serial)
    _report("batch_size=32", t_batched)
    print(f"speedup: {t_serial / t_batched:.2f}x")

    assert len(batched) == N_SIMS
    for s, v in zip(serial, batched):
        for name in ("true_bg", "cgm", "iob", "final_rate", "final_bolus",
                     "delivered_rate", "delivered_bolus", "alert",
                     "alert_hazard", "mitigated"):
            assert np.array_equal(getattr(s, name), getattr(v, name)), name

    assert t_serial / t_batched >= 3.0, (
        f"expected >=3x batched mitigation speedup, got "
        f"{t_serial / t_batched:.2f}x")


def test_mitigation_stacks_with_workers():
    """Mitigated batches inside pool chunks: still identical traces."""
    serial, _ = _scalar_reference()
    combo, t_combo = _timed(FixedMitigator(), 16, workers=2)
    _report("2 workers x batch 16", t_combo)
    for s, v in zip(serial, combo):
        assert np.array_equal(s.mitigated, v.mitigated)
        assert np.array_equal(s.true_bg, v.true_bg)
