"""Table VIII — patient-specific vs population-based thresholds."""

from conftest import SCALE, show
from repro.experiments import run_table8


def test_table8_patient_specific(benchmark, glucosym_config):
    result = benchmark.pedantic(run_table8, args=(glucosym_config,),
                                rounds=1, iterations=1)
    show(result)
    kinds = {row[1] for row in result.rows}
    assert "patient-specific" in kinds
    if SCALE != "smoke" and "population" in kinds:
        # paper shape: averaged over patients, patient-specific thresholds
        # reach at least the F1 of population thresholds
        spec = [r[5] for r in result.rows if r[1] == "patient-specific"]
        pop = [r[5] for r in result.rows if r[1] == "population"]
        assert sum(spec) / len(spec) >= sum(pop) / len(pop) - 0.05
