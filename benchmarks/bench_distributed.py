"""Distributed campaign coordinator overhead and scaling (traces/sec).

Runs the ``ci``-scale fault-injection grid (2 patients x 42 scenarios)
three ways — in-process serial, single distributed worker, and 2
distributed subprocess workers — reporting traces/sec and the
coordinator's fixed overhead (plan serialization, subprocess start-up,
polling, merge).  A final test asserts the distributed parity contract
on the benchmark grid: the merged manifest is byte-identical to the
single-box store and carries the plan fingerprint, including under an
injected mid-range worker kill + retry.

Run:  pytest benchmarks/bench_distributed.py --benchmark-only -s
"""

import os
import time

import pytest

from repro.distributed import FlakyLauncher, run_distributed_campaign
from repro.experiments import ExperimentConfig
from repro.fi import CampaignConfig, generate_campaign
from repro.parallel import partition_ranges
from repro.patients import make_patient
from repro.simulation import (CampaignStoreWriter, controller_profile,
                              get_executor, plan_campaign, plan_fingerprint)

CONFIG = ExperimentConfig.preset("ci")
SCENARIOS = generate_campaign(CampaignConfig(stride=CONFIG.stride))
PLAN = plan_campaign(CONFIG.platform, CONFIG.patients, SCENARIOS,
                     n_steps=CONFIG.n_steps)
N_TRACES = len(PLAN.runs)


def _warm_profiles():
    for pid in CONFIG.patients:
        controller_profile(make_patient(CONFIG.platform, pid))


def _run_distributed(out_dir, n_hosts, **kwargs):
    return run_distributed_campaign(PLAN, out_dir, n_hosts=n_hosts,
                                    poll_interval_s=0.02, **kwargs)


def _report(name, elapsed):
    print(f"\n{name}: {N_TRACES} traces in {elapsed:.2f}s "
          f"({N_TRACES / elapsed:.1f} traces/sec)")


@pytest.mark.parametrize("n_hosts", [1, 2])
def test_distributed_throughput(benchmark, n_hosts, tmp_path):
    _warm_profiles()
    runs = [0]

    def run():
        out = str(tmp_path / f"out{runs[0]}")
        runs[0] += 1
        return _run_distributed(out, n_hosts)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.manifest["n_traces"] == N_TRACES
    if benchmark.stats is not None:  # absent under --benchmark-disable
        _report(f"n_hosts={n_hosts}", benchmark.stats.stats.mean)
        worker_wall = sum(s["wall_s"] for s in result.stats)
        overhead = benchmark.stats.stats.mean - worker_wall / n_hosts
        print(f"coordinator overhead ~{overhead:.2f}s "
              f"(workers spent {worker_wall:.2f}s total)")


def test_distributed_parity_with_retry(tmp_path):
    """Merged dataset equals the single-box store — fingerprint and
    manifest bytes — even with one worker hard-killed mid-range."""
    _warm_profiles()
    ref_dir = str(tmp_path / "reference")
    start = time.perf_counter()
    with CampaignStoreWriter(ref_dir, PLAN.platform, PLAN.n_steps) as sink:
        get_executor(None, None).run(PLAN, sink=sink)
    _report("single-box store write", time.perf_counter() - start)

    ranges = partition_ranges(N_TRACES, 2)
    launcher = FlakyLauncher(crash_ranges={ranges[0]: 2})
    start = time.perf_counter()
    result = _run_distributed(str(tmp_path / "merged"), 2, launcher=launcher)
    _report("2 hosts + injected kill/retry", time.perf_counter() - start)

    assert result.retries == 1
    assert result.manifest["fingerprint"] == plan_fingerprint(PLAN)
    ref = open(os.path.join(ref_dir, "manifest.json"), "rb").read()
    merged = open(os.path.join(result.out_dir, "manifest.json"), "rb").read()
    assert merged == ref
