"""Online monitor service throughput under synthetic streaming load.

Drives a :class:`~repro.serve.MonitorService` holding the stateless
serving set (CAWT with learned thresholds, CAWOT, a trained DT) with the
deterministic load generator at several fleet sizes, reporting sustained
user-ticks/sec and per-tick latency percentiles.  A final test asserts
the acceptance bar the CI bench gate also enforces: the service sustains
at least 10,000 users per tick on one process, and the replay-from-log
path stays element-wise identical to offline ``replay_campaign``.

A journal-overhead test enforces the crash-safety budget: serving with
the write-ahead tick journal (fsync'd) must stay within 15% of
journal-off throughput — durability is not allowed to eat the serving
headroom.

Run:  pytest benchmarks/bench_serve.py --benchmark-only -s
"""

import numpy as np
import pytest

from repro.core import cawot_monitor, cawt_monitor, learn_thresholds
from repro.experiments import ExperimentConfig
from repro.fi import CampaignConfig, generate_campaign
from repro.ml import train_dt_monitor
from repro.serve import MonitorService, replay_log, run_load
from repro.simulation import replay_campaign, run_campaign

CONFIG = ExperimentConfig.preset("ci")
SCENARIOS = generate_campaign(CampaignConfig(stride=CONFIG.stride))

#: the acceptance bar: one process serves at least this many users/tick
USERS_PER_TICK_FLOOR = 10_000

#: crash safety budget: journal-on throughput loss vs journal-off
JOURNAL_OVERHEAD_CEILING = 0.15

_CACHE = {}


def _traces_and_monitors():
    if not _CACHE:
        traces = run_campaign(CONFIG.platform, CONFIG.patients, SCENARIOS,
                              n_steps=CONFIG.n_steps, batch_size=32)
        _CACHE["traces"] = traces
        _CACHE["monitors"] = {
            "CAWT": cawt_monitor(learn_thresholds(traces,
                                                  batch_size=32).thresholds),
            "CAWOT": cawot_monitor(),
            "DT": train_dt_monitor(traces),
        }
    return _CACHE["traces"], _CACHE["monitors"]


@pytest.mark.parametrize("n_users", [1_000, 10_000, 50_000])
def test_serve_throughput(benchmark, n_users):
    _, monitors = _traces_and_monitors()
    service = MonitorService(monitors)
    report = benchmark.pedantic(
        run_load, args=(service, n_users, 5), kwargs={"seed": 0},
        rounds=1, iterations=1)
    print(f"\n{report.summary()}")
    assert report.n_ticks == 5


def test_serve_floor_and_parity():
    """The bench gate's bar: >=10k users/tick sustained, and served
    replay element-wise identical to offline replay_campaign."""
    traces, monitors = _traces_and_monitors()
    service = MonitorService(monitors)
    report = run_load(service, n_users=USERS_PER_TICK_FLOOR, n_ticks=5,
                      seed=0)
    print(f"\n{report.summary()}")
    assert report.users_per_sec >= USERS_PER_TICK_FLOOR, (
        f"service sustained {report.users_per_sec:,.0f} user-ticks/s, "
        f"below the {USERS_PER_TICK_FLOOR:,} floor")

    offline = replay_campaign(monitors, traces)
    served = replay_log(monitors, traces)
    for name in monitors:
        for a, b in zip(offline[name], served[name]):
            assert np.array_equal(a, b), name


def test_serve_journal_overhead_ceiling(tmp_path):
    """Write-ahead journaling (fsync'd) costs <= 15% of throughput.

    Same fleet, same seed, journal off vs on; the alert streams must
    also be identical — durability is transparent to the parity surface.
    Single 0.1s-scale runs see ±20% scheduler jitter, so each side is
    measured best-of-two, interleaved.
    """
    _, monitors = _traces_and_monitors()
    n_users, n_ticks = USERS_PER_TICK_FLOOR, 5
    plains, journaleds = [], []
    for attempt in range(2):
        plains.append(run_load(MonitorService(monitors), n_users,
                               n_ticks, seed=0))
        journaled_service = MonitorService(
            monitors, persist_dir=str(tmp_path / f"state{attempt}"),
            fsync=True)
        journaleds.append(run_load(journaled_service, n_users, n_ticks,
                                   seed=0))
        journaled_service.close()
    plain = max(plains, key=lambda r: r.users_per_sec)
    journaled = max(journaleds, key=lambda r: r.users_per_sec)
    loss = 1.0 - journaled.users_per_sec / plain.users_per_sec
    print(f"\njournal off: {plain.summary()}")
    print(f"journal on : {journaled.summary()}  (loss {loss:+.1%})")
    assert loss <= JOURNAL_OVERHEAD_CEILING, (
        f"journaling costs {loss:.1%} of throughput, over the "
        f"{JOURNAL_OVERHEAD_CEILING:.0%} ceiling")
    for a, b in zip(plains + [plain], journaleds + [journaled]):
        assert a.n_raw_alerts == b.n_raw_alerts
        assert a.n_events == b.n_events
