"""Table VI — CAWT vs the ML monitors, sample and simulation level.

Reproduction note (see EXPERIMENTS.md): our ML baselines are evaluated
in-distribution (same patients, same fault grid as training) and therefore
score higher than the paper's, where CAWT dominated them outright.  The
robust claims checked here: every monitor reaches usable accuracy, CAWT
keeps a low false-positive rate, and (Section VI-2, bench_discussion) CAWT
generalises to fault-free data where the ML monitors raise false alarms.
"""

from conftest import show
from repro.experiments import run_table6


def test_table6_glucosym(benchmark, glucosym_config):
    result = benchmark.pedantic(run_table6, args=(glucosym_config,),
                                rounds=1, iterations=1)
    show(result)
    rows = result.row_dict()
    assert set(rows) == {"CAWT", "DT", "MLP", "LSTM"}
    # CAWT: low-FPR, usable F1 at every scale
    assert rows["CAWT"][1] < 0.10
    assert rows["CAWT"][4] > 0.45
    # the ML monitors produce valid, non-degenerate classifiers
    for name in ("DT", "MLP", "LSTM"):
        assert rows[name][4] > 0.45
        assert rows[name][1] < 0.25
