"""Fig. 9 — average reaction time per monitor."""

from conftest import SCALE, show
from repro.experiments import run_fig9


def test_fig9_reaction_time(benchmark, glucosym_config):
    result = benchmark.pedantic(run_fig9, args=(glucosym_config,),
                                rounds=1, iterations=1)
    show(result)
    rows = result.row_dict()
    # reaction times are hours-scale (the human body is a slow plant)
    detected = [r for r in result.rows if r[5] > 0]
    assert any(r[1] > 30.0 for r in detected)
    if SCALE != "smoke":
        # paper: CAWT has a stable (low-variance) reaction time
        assert rows["CAWT"][2] <= rows["Guideline"][2]
