"""Serial vs lock-step vectorized campaign throughput (traces/sec).

Runs the ``ci``-scale fault-injection grid (2 patients x 42 scenarios)
through the scalar loop and through the vectorized engine at several batch
widths, reporting traces/sec for each.  A final test asserts that the
vectorized trace stream is element-wise identical to the serial one and —
the acceptance bar for the engine — at least 3x faster at batch_size=32.

Measured on the CI container (see docs/vectorized_engine.md for the
current numbers): the vectorized engine is ~7-8x the scalar loop on
glucosym and ~10x with a 2-worker pool stacked on top, because each pool
chunk becomes one lock-step batch and the speedups multiply.

Run:  pytest benchmarks/bench_vector_campaign.py --benchmark-only -s
"""

import dataclasses
import time

import numpy as np
import pytest

from repro.experiments import ExperimentConfig
from repro.fi import CampaignConfig, generate_campaign
from repro.patients import make_patient
from repro.simulation import controller_profile, run_campaign

CONFIG = ExperimentConfig.preset("ci")
SCENARIOS = generate_campaign(CampaignConfig(stride=CONFIG.stride))
N_TRACES = len(CONFIG.patients) * len(SCENARIOS)


def _warm_profiles():
    for pid in CONFIG.patients:
        controller_profile(make_patient(CONFIG.platform, pid))


def _run(batch_size, workers=1):
    return run_campaign(CONFIG.platform, CONFIG.patients, SCENARIOS,
                        n_steps=CONFIG.n_steps, workers=workers,
                        batch_size=batch_size)


def _timed(batch_size, workers=1):
    start = time.perf_counter()
    traces = _run(batch_size, workers)
    return traces, time.perf_counter() - start


def _report(name, elapsed):
    print(f"\n{name}: {N_TRACES} traces in {elapsed:.2f}s "
          f"({N_TRACES / elapsed:.1f} traces/sec)")


@pytest.mark.parametrize("batch_size", [1, 8, 32, 84])
def test_vector_throughput(benchmark, batch_size):
    _warm_profiles()
    traces = benchmark.pedantic(_run, args=(batch_size,), rounds=1,
                                iterations=1)
    assert len(traces) == N_TRACES
    if benchmark.stats is not None:  # absent under --benchmark-disable
        _report(f"batch_size={batch_size}", benchmark.stats.stats.mean)


def test_vector_parity_and_speedup():
    """batch_size=32 output is element-wise identical to serial and at
    least 3x faster (the engine's acceptance bar)."""
    _warm_profiles()
    serial, t_serial = _timed(1)
    vector, t_vector = _timed(32)
    _report("serial", t_serial)
    _report("batch_size=32", t_vector)
    print(f"speedup: {t_serial / t_vector:.2f}x")

    assert len(serial) == len(vector) == N_TRACES
    for s, v in zip(serial, vector):
        assert (s.platform, s.patient_id, s.label, s.fault) == \
               (v.platform, v.patient_id, v.label, v.fault)
        for f in dataclasses.fields(s):
            value = getattr(s, f.name)
            if isinstance(value, np.ndarray):
                assert np.array_equal(value, getattr(v, f.name)), f.name

    assert t_serial / t_vector >= 3.0, (
        f"expected >=3x vectorized speedup, got {t_serial / t_vector:.2f}x")


def test_vector_stacks_with_workers():
    """Vectorized batches inside pool chunks: still identical traces."""
    _warm_profiles()
    serial, _ = _timed(1)
    combo, t_combo = _timed(16, workers=2)
    _report("2 workers x batch 16", t_combo)
    for s, v in zip(serial, combo):
        for f in dataclasses.fields(s):
            value = getattr(s, f.name)
            if isinstance(value, np.ndarray):
                assert np.array_equal(value, getattr(v, f.name)), f.name
