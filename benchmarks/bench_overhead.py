"""Section V-E6 — per-decision monitor overhead."""

from conftest import show
from repro.experiments import run_overhead


def test_monitor_overhead(benchmark, glucosym_config):
    result = benchmark.pedantic(run_overhead, args=(glucosym_config,),
                                rounds=1, iterations=1)
    show(result)
    rows = result.row_dict()
    # paper shape: the rule-based CAWT is far cheaper than MPC and LSTM
    assert rows["CAWT"][1] < rows["MPC"][1]
    assert rows["CAWT"][1] < rows["LSTM"][1]
