"""Cross-entropy scenario search: discovery efficiency vs the fixed grid.

Benchmarks the ``repro.search`` hazard hunter on the ``ci`` grid scale
(2 patients, the 3x stride-21 campaign as the baseline) and asserts the
acceptance bar for the subsystem: the search must find at least
``EFFICIENCY_FLOOR`` (3x) more hazards per simulation than the paper's
fixed fault-injection grid, per patient and overall, on the batched
vector path.  A determinism test pins bit-identical findings across
executor shapes, mirroring the parity suites.

Run:  pytest benchmarks/bench_search.py --benchmark-only -s
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.data import platform_data
from repro.experiments.search import run_search, search_vs_grid
from repro.search import CrossEntropySearch

CONFIG = ExperimentConfig.preset("ci", batch_size=32)

#: acceptance bar: hazards-per-simulation ratio search / grid
EFFICIENCY_FLOOR = 3.0


def _grid_rate(config, patient_id=None):
    data = platform_data(config)
    if patient_id is not None:
        traces = data.by_patient[patient_id]
    else:
        traces = [t for pid in config.patients for t in data.by_patient[pid]]
    return sum(t.hazardous for t in traces) / len(traces)


@pytest.mark.benchmark(group="search")
def test_search_ci_vector(benchmark):
    """Wall time of one full CE search budget on the batched path."""
    search = CrossEntropySearch(platform=CONFIG.platform,
                                patient_id=CONFIG.patients[0],
                                n_steps=CONFIG.n_steps,
                                population=32, iterations=6,
                                batch_size=32)
    result = benchmark(search.run, 0)
    assert result.n_hazardous >= 1


def test_search_beats_grid_per_patient():
    """The subsystem's acceptance bar, per patient: >= 3x the grid."""
    for pid in CONFIG.patients:
        grid = _grid_rate(CONFIG, pid)
        found = search_vs_grid(CONFIG, pid)
        ratio = found.hazards_per_simulation / grid
        print(f"\n{pid}: grid {grid:.3f}, search "
              f"{found.hazards_per_simulation:.3f} "
              f"({found.summary()}) -> {ratio:.2f}x")
        assert ratio >= EFFICIENCY_FLOOR, (
            f"search found only {ratio:.2f}x the grid's hazards per "
            f"simulation for patient {pid} (floor {EFFICIENCY_FLOOR}x)")


def test_search_experiment_overall_ratio():
    """The experiment table's ALL row clears the floor with margin."""
    result = run_search(CONFIG)
    print()
    print(result.text())
    overall = result.rows[-1]
    assert overall[0] == "ALL"
    assert overall[-1] >= EFFICIENCY_FLOOR


def test_search_deterministic_across_executors():
    """Same seed, different executor shapes: identical findings."""
    kwargs = dict(platform=CONFIG.platform, patient_id=CONFIG.patients[0],
                  n_steps=CONFIG.n_steps, population=16, iterations=2)
    reference = CrossEntropySearch(batch_size=1, **kwargs).run(seed=3)
    for workers, batch_size in ((1, 32), (2, 8)):
        other = CrossEntropySearch(workers=workers, batch_size=batch_size,
                                   **kwargs).run(seed=3)
        assert [f.label for f in other.findings] == \
            [f.label for f in reference.findings]
        assert other.n_simulations == reference.n_simulations
