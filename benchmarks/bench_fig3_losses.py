"""Fig. 3 — loss-function shapes (and evaluation throughput)."""

import numpy as np

from conftest import show
from repro.core import LOSSES
from repro.experiments import run_fig3


def test_fig3_loss_curves(benchmark):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    show(result)
    rows = result.row_dict()
    # the paper's Fig. 3 shape claims
    assert abs(rows["mse"][1]) < 0.1, "MSE minimum must sit at r=0"
    assert abs(rows["mae"][1]) < 0.1, "MAE minimum must sit at r=0"
    assert 0.2 < rows["tmee"][1] < 0.8, "TMEE minimum at small positive slack"
    assert rows["telex"][1] > rows["tmee"][1] + 1.0, "TeLEx looser than TMEE"
    # violation penalty ordering at r = -2
    assert rows["tmee"][2] > rows["mae"][2], "TMEE punishes violations harder"


def test_loss_evaluation_throughput(benchmark):
    """Vectorized loss evaluation speed over a large robustness batch."""
    r = np.linspace(-3, 6, 100_000)

    def evaluate_all():
        return [LOSSES[name](r)[0].sum() for name in sorted(LOSSES)]

    values = benchmark(evaluate_all)
    assert all(np.isfinite(v) for v in values)
