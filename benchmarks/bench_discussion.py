"""Section VI ablations: adversarial training, multi-class heads,
fault-free generalisation."""

from conftest import show
from repro.experiments import (
    run_adversarial_ablation,
    run_fault_free_generalisation,
    run_multiclass_ablation,
)


def test_adversarial_training(benchmark, glucosym_config):
    result = benchmark.pedantic(run_adversarial_ablation,
                                args=(glucosym_config,), rounds=1, iterations=1)
    show(result)
    rows = {row[0]: row for row in result.rows}
    # paper: adversarial (faulty-data) training improves F1 and EDR
    assert rows["adversarial"][4] >= rows["fault-free"][4]


def test_multiclass_ablation(benchmark, glucosym_config):
    result = benchmark.pedantic(run_multiclass_ablation,
                                args=(glucosym_config,), rounds=1, iterations=1)
    show(result)
    assert len(result.rows) == 6


def test_fault_free_generalisation(benchmark, glucosym_config):
    result = benchmark.pedantic(run_fault_free_generalisation,
                                args=(glucosym_config,), rounds=1, iterations=1)
    show(result)
    rows = result.row_dict()
    # paper: the weakly-supervised CAWT stays quiet on fault-free data
    assert rows["CAWT"][1] <= 0.02
