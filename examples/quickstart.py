"""Quickstart: a fault attack on the closed loop, caught by the monitor.

Runs the OpenAPS + Glucosym platform three times from the same start:

1. fault-free (the controller holds glucose at target);
2. with a ``maximize_rate`` attack on the commanded insulin (severe
   hypoglycemia develops — an H1 hazard);
3. the same attack with the context-aware monitor and Algorithm 1
   mitigation in the loop.

Run:  python examples/quickstart.py
"""

from repro.core import FixedMitigator, cawot_monitor
from repro.fi import FaultInjector, FaultKind, FaultSpec, FaultTarget
from repro.simulation import Scenario, make_loop


def sparkline(values, lo=40.0, hi=300.0, width=75):
    """Tiny ASCII glucose strip chart."""
    blocks = " .:-=+*#%@"
    step = max(len(values) // width, 1)
    out = []
    for i in range(0, len(values), step):
        v = values[i]
        idx = int((min(max(v, lo), hi) - lo) / (hi - lo) * (len(blocks) - 1))
        out.append(blocks[idx])
    return "".join(out)


def describe(tag, trace):
    label = trace.hazard_label
    hazard = (f"hazard {label.first_type.name} at t={label.hazard_time():.0f} min"
              if label.any_hazard else "no hazard")
    print(f"{tag:22s} BG [{trace.true_bg.min():5.0f}, {trace.true_bg.max():5.0f}] "
          f"mg/dL  alerts={int(trace.alert.sum()):3d}  {hazard}")
    print(f"{'':22s} {sparkline(trace.true_bg)}")


def main():
    scenario = Scenario(init_glucose=120.0)
    attack = FaultSpec(kind=FaultKind.MAX, target=FaultTarget.RATE,
                       start_step=20, duration_steps=30)

    loop = make_loop("glucosym", "B")
    describe("fault-free", loop.run(scenario))

    loop.injector = FaultInjector(attack)
    describe("max_rate attack", loop.run(scenario))

    guarded = make_loop("glucosym", "B", monitor=cawot_monitor(),
                        mitigator=FixedMitigator())
    guarded.injector = FaultInjector(attack)
    describe("attack + monitor", guarded.run(scenario))


if __name__ == "__main__":
    main()
