"""Hazard mitigation (Algorithm 1) across attack types and both platforms.

For a handful of representative Table II attacks, runs each scenario
unprotected and protected (CAWT monitor trained on a small campaign + fixed
mitigation) and reports the glucose excursions and hazard outcomes.

Run:  python examples/mitigation_demo.py [glucosym|t1ds2013]
"""

import sys

from repro.core import FixedMitigator, cawt_monitor, learn_thresholds
from repro.fi import (
    CampaignConfig,
    FaultInjector,
    FaultKind,
    FaultSpec,
    FaultTarget,
    generate_campaign,
)
from repro.metrics import render_table
from repro.simulation import Scenario, make_loop, run_campaign, run_fault_free

ATTACKS = (
    ("max_rate", FaultSpec(FaultKind.MAX, FaultTarget.RATE, 20, 30)),
    ("max_glucose", FaultSpec(FaultKind.MAX, FaultTarget.GLUCOSE, 20, 30)),
    ("max_iob", FaultSpec(FaultKind.MAX, FaultTarget.IOB, 20, 30)),
    ("truncate_iob", FaultSpec(FaultKind.TRUNCATE, FaultTarget.IOB, 20, 30)),
)


def main():
    platform = sys.argv[1] if len(sys.argv) > 1 else "glucosym"
    patient = {"glucosym": "B", "t1ds2013": "P01"}[platform]

    print(f"training CAWT thresholds for {platform}/{patient} ...")
    campaign = generate_campaign(CampaignConfig(stride=9))
    traces = run_campaign(platform, [patient], campaign)
    fault_free = run_fault_free(platform, [patient], (80.0, 120.0, 200.0))
    thresholds = learn_thresholds(traces + fault_free).thresholds

    rows = []
    for name, spec in ATTACKS:
        plain_loop = make_loop(platform, patient)
        plain_loop.injector = FaultInjector(spec)
        plain = plain_loop.run(Scenario(init_glucose=140.0))

        guarded_loop = make_loop(platform, patient,
                                 monitor=cawt_monitor(thresholds),
                                 mitigator=FixedMitigator())
        guarded_loop.injector = FaultInjector(spec)
        guarded = guarded_loop.run(Scenario(init_glucose=140.0))

        rows.append((
            name,
            f"{plain.true_bg.min():.0f}-{plain.true_bg.max():.0f}",
            "yes" if plain.hazardous else "no",
            f"{guarded.true_bg.min():.0f}-{guarded.true_bg.max():.0f}",
            "yes" if guarded.hazardous else "no",
            int(guarded.mitigated.sum()),
        ))
    print(render_table(("attack", "BG unprotected", "hazard",
                        "BG protected", "hazard", "corrections"), rows))


if __name__ == "__main__":
    main()
