"""Patient-specific STL threshold learning (the paper's core contribution).

For one virtual patient:

1. run a fault-injection campaign to collect hazardous traces
   (adversarial training data, Section IV-C1);
2. mine per-trace robustness statistics for every Table I rule and learn
   tight thresholds with the TMEE loss + L-BFGS-B (Section III-C2);
3. compare the resulting CAWT monitor against the unlearned CAWOT monitor
   on held-out traces.

Run:  python examples/learn_patient_thresholds.py [patient]
"""

import sys

from repro.core import cawot_monitor, cawt_monitor, learn_thresholds
from repro.fi import CampaignConfig, generate_campaign
from repro.metrics import render_table, traces_confusion
from repro.simulation import kfold_split, replay_many, run_campaign, run_fault_free


def main():
    patient = sys.argv[1] if len(sys.argv) > 1 else "B"
    campaign = generate_campaign(CampaignConfig(stride=5))
    print(f"simulating {len(campaign)} fault scenarios on glucosym/{patient} ...")
    traces = run_campaign("glucosym", [patient], campaign)
    fault_free = run_fault_free("glucosym", [patient],
                                (80.0, 120.0, 160.0, 200.0))
    hazards = sum(t.hazardous for t in traces)
    print(f"{hazards}/{len(traces)} scenarios became hazardous\n")

    train, test = kfold_split(traces, 4, 0)
    result = learn_thresholds(train + fault_free)
    print("learned thresholds (rules without hazardous examples fall back "
          "to safe-side bounds):")
    rows = [(f.param, f.value, f.n_samples,
             "default" if f.used_default else "learned")
            for f in result.fits]
    print(render_table(("param", "value", "hazard traces", "source"), rows))

    print("\nheld-out detection accuracy (tolerance window):")
    rows = []
    for name, monitor in (("CAWT", cawt_monitor(result.thresholds)),
                          ("CAWOT", cawot_monitor())):
        alerts = replay_many(monitor, test)
        cm = traces_confusion(test, alerts)
        rows.append((name, cm.fpr, cm.fnr, cm.accuracy, cm.f1))
    print(render_table(("monitor", "FPR", "FNR", "ACC", "F1"), rows))


if __name__ == "__main__":
    main()
