"""Monitor shoot-out: regenerate Table V and Fig. 9 at small scale.

Compares the CAWT monitor against CAWOT, the medical-guidelines monitor
(Table III) and the MPC monitor (Eq. 6) on one platform, reporting the
sample-level accuracy with tolerance window and the reaction-time stats.

Run:  python examples/monitor_comparison.py [glucosym|t1ds2013] [scale] [workers]

The optional third argument fans the fault-injection campaign out over a
process pool (see ``docs/parallel_campaigns.md``); the reproduced numbers
are identical for every worker count.
"""

import sys

from repro.experiments import ExperimentConfig, run_fig9, run_table5


def main():
    platform = sys.argv[1] if len(sys.argv) > 1 else "glucosym"
    scale = sys.argv[2] if len(sys.argv) > 2 else "smoke"
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    config = ExperimentConfig.preset(scale, platform=platform,
                                     workers=workers)
    print(f"platform={platform} scale={scale}: "
          f"{len(config.patients)} patients x "
          f"{config.scenarios_per_patient} scenarios "
          f"({config.workers} worker{'s' if config.workers != 1 else ''})\n")
    print(run_table5(config).text())
    print()
    print(run_fig9(config).text())


if __name__ == "__main__":
    main()
