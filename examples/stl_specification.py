"""Working with the STL engine and the safety-context specification.

Shows the formal side of the framework without any simulation:

1. parse an STL formula with a learnable parameter;
2. build the Table I rule set and print the generated Eq. 1 formulas;
3. check a hand-written trace against a rule, both boolean and
   quantitatively (robustness);
4. express a mitigation requirement with the Eq. 2 since/eventually shape.

Run:  python examples/stl_specification.py
"""

import numpy as np

from repro.core import aps_scs
from repro.stl import Trace, parse, robustness, satisfaction, satisfied


def main():
    # 1. parse a rule-1-like formula with a learnable threshold
    formula = parse("G((BG > 120 & BG' > 0 & IOB' < 0 & IOB < beta1) -> !u1)")
    print("parsed:", formula)
    print("learnable parameters:", sorted(formula.parameters()), "\n")

    # 2. the full Table I specification
    scs = aps_scs()
    print("the 12 generated UCAS formulas (Eq. 1):")
    for name, stl in scs.monitor_formulas().items():
        print(f"  {name:7s} {stl}")
    print()

    # 3. evaluate on a miniature trace: hyperglycemia while the (faulty)
    # controller keeps *decreasing* insulin
    n = 12
    trace = Trace({
        "BG": np.linspace(150, 210, n),
        "IOB": np.linspace(1.0, 0.2, n),
        "u1": np.ones(n),
        "u2": np.zeros(n), "u3": np.zeros(n), "u4": np.zeros(n),
    }, dt=5.0).with_derivative("BG").with_derivative("IOB")

    env = {"beta1": 1.5}
    print("rule-1 satisfied on the overdose-starved trace?",
          satisfied(formula, trace, env))
    body = formula.child  # the implication, evaluated pointwise
    sat = satisfaction(body, trace, env)
    rob = robustness(body, trace, env)
    print("pointwise verdicts:", "".join("T" if s else "F" for s in sat))
    print("pointwise robustness:", np.round(rob, 2), "\n")

    # 4. a mitigation specification: stop insulin within 15 minutes of
    # entering the hypoglycemic context (Eq. 2 shape)
    hms = parse("(F[0,15](u3)) S (BG < 70)")
    recovering = Trace({
        "BG": [80.0, 65.0, 60.0, 58.0, 62.0],
        "u3": [0.0, 0.0, 1.0, 1.0, 0.0],
    }, dt=5.0)
    print("HMS formula:", hms)
    print("mitigation-in-time verdicts:",
          satisfaction(hms, recovering).tolist())


if __name__ == "__main__":
    main()
