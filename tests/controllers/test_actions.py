"""Tests for the control-action taxonomy (u1..u4)."""


from repro.controllers import ControlAction, classify_action


class TestControlAction:
    def test_channel_names(self):
        assert ControlAction.DECREASE.channel == "u1"
        assert ControlAction.INCREASE.channel == "u2"
        assert ControlAction.STOP.channel == "u3"
        assert ControlAction.KEEP.channel == "u4"

    def test_channels_tuple(self):
        assert ControlAction.channels() == ("u1", "u2", "u3", "u4")

    def test_int_values_match_paper(self):
        assert int(ControlAction.DECREASE) == 1
        assert int(ControlAction.KEEP) == 4


class TestClassify:
    def test_stop(self):
        assert classify_action(0.0, 0.0, 1.0) == ControlAction.STOP

    def test_decrease(self):
        assert classify_action(0.5, 0.0, 1.0) == ControlAction.DECREASE

    def test_increase(self):
        assert classify_action(2.0, 0.0, 1.0) == ControlAction.INCREASE

    def test_keep(self):
        assert classify_action(1.0, 0.0, 1.0) == ControlAction.KEEP

    def test_keep_within_tolerance(self):
        assert classify_action(1.005, 0.0, 1.0) == ControlAction.KEEP

    def test_bolus_counts_as_increase(self):
        assert classify_action(1.0, 0.5, 1.0) == ControlAction.INCREASE

    def test_bolus_overrides_stop(self):
        assert classify_action(0.0, 1.0, 1.0) == ControlAction.INCREASE

    def test_tiny_rate_is_stop_not_decrease(self):
        assert classify_action(0.005, 0.0, 1.0) == ControlAction.STOP
