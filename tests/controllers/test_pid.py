"""Tests for the PID extension controller."""

import pytest

from repro.controllers import ControlAction, PIDController


def make_controller(**kwargs):
    defaults = dict(basal=1.0, target=120.0)
    defaults.update(kwargs)
    return PIDController(**defaults)


class TestPID:
    def test_at_target_keeps_basal(self):
        decision = make_controller().decide(120.0, 0.0)
        assert decision.action == ControlAction.KEEP

    def test_proportional_response(self):
        decision = make_controller(kp=0.02).decide(220.0, 0.0)
        assert decision.basal == pytest.approx(1.0 + 0.02 * 100, abs=0.2)

    def test_low_glucose_suspend(self):
        decision = make_controller().decide(60.0, 0.0)
        assert decision.basal == 0.0
        assert decision.action == ControlAction.STOP

    def test_output_clamped(self):
        decision = make_controller(max_basal=2.0).decide(400.0, 0.0)
        assert decision.basal <= 2.0

    def test_integral_accumulates(self):
        c = make_controller()
        first = c.decide(200.0, 0.0)
        c.notify_delivery(first.basal, 0.0, 0.0, 5.0)
        second = c.decide(200.0, 5.0)
        assert second.info["integral"] > first.info["integral"]

    def test_integral_windup_limited(self):
        c = make_controller(integral_limit=100.0)
        for i in range(50):
            c.decide(300.0, 5.0 * i)
        assert c._integral <= 100.0

    def test_derivative_damps_fall(self):
        c = make_controller(kp=0.0, ki=0.0, kd=0.5)
        c.decide(150.0, 0.0)
        decision = c.decide(130.0, 5.0)  # falling fast
        assert decision.basal < 1.0

    def test_reset(self):
        c = make_controller()
        c.decide(300.0, 0.0)
        c.reset()
        assert c._integral == 0.0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            PIDController(basal=1.0, target=0.0)
