"""Tests for the insulin activity curve and IOB calculator."""

import numpy as np
import pytest

from repro.controllers import InsulinActivityCurve, IOBCalculator


class TestActivityCurve:
    def test_iob_fraction_starts_at_one(self):
        curve = InsulinActivityCurve()
        assert curve.iob_fraction(0.0) == 1.0

    def test_iob_fraction_zero_after_dia(self):
        curve = InsulinActivityCurve(dia=300)
        assert curve.iob_fraction(300.0) == 0.0
        assert curve.iob_fraction(400.0) == 0.0

    def test_iob_fraction_monotone_decreasing(self):
        curve = InsulinActivityCurve()
        ts = np.linspace(0, 300, 61)
        fracs = [curve.iob_fraction(t) for t in ts]
        assert all(a >= b - 1e-12 for a, b in zip(fracs, fracs[1:]))

    def test_activity_peaks_at_peak_time(self):
        curve = InsulinActivityCurve(dia=300, peak=75)
        ts = np.linspace(1, 299, 597)
        activities = np.array([curve.activity(t) for t in ts])
        t_peak = ts[np.argmax(activities)]
        assert t_peak == pytest.approx(75, abs=3)

    def test_activity_zero_outside_window(self):
        curve = InsulinActivityCurve()
        assert curve.activity(0.0) == 0.0
        assert curve.activity(300.0) == 0.0

    def test_activity_integrates_to_one(self):
        """Activity is the decay rate of IOB, so it integrates to 1 unit."""
        curve = InsulinActivityCurve()
        ts = np.linspace(0, 300, 3001)
        total = np.trapezoid([curve.activity(t) for t in ts], ts)
        assert total == pytest.approx(1.0, abs=0.01)

    def test_activity_is_minus_iob_derivative(self):
        curve = InsulinActivityCurve()
        h = 1e-3
        for t in (30.0, 75.0, 150.0, 250.0):
            numeric = (curve.iob_fraction(t + h) - curve.iob_fraction(t - h)) / (2 * h)
            assert -numeric == pytest.approx(curve.activity(t), rel=1e-3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            InsulinActivityCurve(dia=0)
        with pytest.raises(ValueError):
            InsulinActivityCurve(dia=300, peak=150)  # peak must be < DIA/2
        with pytest.raises(ValueError):
            InsulinActivityCurve(dia=300, peak=0)


class TestIOBCalculator:
    def test_bolus_appears_in_iob(self):
        calc = IOBCalculator()
        calc.record(0.0, 2.0, t=0.0, duration=5.0)
        assert calc.iob(5.0) == pytest.approx(2.0, abs=0.05)

    def test_iob_decays_to_zero(self):
        calc = IOBCalculator()
        calc.record(0.0, 2.0, t=0.0, duration=5.0)
        assert calc.iob(400.0) == 0.0

    def test_basal_accumulates(self):
        calc = IOBCalculator()
        for i in range(12):  # one hour at 2 U/h
            calc.record(2.0, 0.0, t=5.0 * i, duration=5.0)
        # delivered 2 U over the hour; most still on board
        assert 1.5 <= calc.iob(60.0) <= 2.0

    def test_net_iob_with_basal_offset(self):
        """At scheduled basal, net IOB stays zero."""
        calc = IOBCalculator(basal_offset=1.0)
        for i in range(12):
            calc.record(1.0, 0.0, t=5.0 * i, duration=5.0)
        assert calc.iob(60.0) == pytest.approx(0.0)

    def test_net_iob_negative_when_below_basal(self):
        calc = IOBCalculator(basal_offset=1.0)
        for i in range(12):
            calc.record(0.0, 0.0, t=5.0 * i, duration=5.0)
        assert calc.iob(60.0) < 0

    def test_activity_positive_during_decay(self):
        calc = IOBCalculator()
        calc.record(0.0, 1.0, t=0.0, duration=5.0)
        assert calc.activity(60.0) > 0

    def test_iob_rate_is_minus_activity(self):
        calc = IOBCalculator()
        calc.record(0.0, 1.0, t=0.0, duration=5.0)
        assert calc.iob_rate(60.0) == -calc.activity(60.0)

    def test_old_deliveries_pruned(self):
        calc = IOBCalculator()
        calc.record(0.0, 1.0, t=0.0, duration=5.0)
        calc.record(0.0, 0.5, t=1000.0, duration=5.0)
        assert len(calc._deliveries) == 1

    def test_reset(self):
        calc = IOBCalculator()
        calc.record(0.0, 3.0, t=0.0, duration=5.0)
        calc.reset()
        assert calc.iob(5.0) == 0.0

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            IOBCalculator().record(1.0, 0.0, t=0.0, duration=0.0)

    def test_invalid_offset(self):
        with pytest.raises(ValueError):
            IOBCalculator(basal_offset=-1.0)
