"""Tests for the Basal-Bolus controller."""

import pytest

from repro.controllers import BasalBolusController, ControlAction


def make_controller(**kwargs):
    defaults = dict(basal=1.0, isf=50.0, target=120.0)
    defaults.update(kwargs)
    return BasalBolusController(**defaults)


class TestDecisions:
    def test_normal_range_keeps_basal(self):
        decision = make_controller().decide(120.0, 0.0)
        assert decision.action == ControlAction.KEEP
        assert decision.basal == 1.0
        assert decision.bolus == 0.0

    def test_high_glucose_correction_bolus(self):
        decision = make_controller().decide(220.0, 0.0)
        assert decision.action == ControlAction.INCREASE
        assert decision.bolus == pytest.approx((220 - 120) / 50.0)

    def test_bolus_discounts_iob(self):
        c = make_controller()
        c.notify_delivery(0.0, 1.0, 0.0, 5.0)
        decision = c.decide(220.0, 5.0)
        assert decision.bolus < (220 - 120) / 50.0

    def test_bolus_capped(self):
        decision = make_controller(max_bolus=2.0).decide(500.0, 0.0)
        assert decision.bolus == 2.0

    def test_refractory_period(self):
        c = make_controller(correction_interval=60.0)
        first = c.decide(220.0, 0.0)
        assert first.bolus > 0
        second = c.decide(220.0, 30.0)
        assert second.bolus == 0.0
        third = c.decide(220.0, 60.0)
        assert third.bolus > 0

    def test_low_glucose_reduces_basal(self):
        decision = make_controller().decide(90.0, 0.0)
        assert decision.action == ControlAction.DECREASE
        assert decision.basal == pytest.approx(0.5)

    def test_very_low_glucose_suspends(self):
        decision = make_controller().decide(60.0, 0.0)
        assert decision.action == ControlAction.STOP
        assert decision.basal == 0.0

    def test_no_negative_bolus(self):
        c = make_controller()
        c.notify_delivery(0.0, 5.0, 0.0, 5.0)  # lots of IOB
        decision = c.decide(160.0, 5.0)
        assert decision.bolus == 0.0


class TestValidation:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError, match="thresholds"):
            BasalBolusController(basal=1.0, suspend_threshold=100.0,
                                 reduce_threshold=90.0)

    def test_invalid_isf(self):
        with pytest.raises(ValueError):
            BasalBolusController(basal=1.0, isf=-1.0)

    def test_invalid_reading(self):
        with pytest.raises(ValueError):
            make_controller().decide(-5.0, 0.0)

    def test_reset_clears_refractory(self):
        c = make_controller()
        c.decide(220.0, 0.0)
        c.reset()
        assert c.decide(220.0, 5.0).bolus > 0
