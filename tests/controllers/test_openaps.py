"""Tests for the OpenAPS (oref0 determine-basal) controller port."""

import pytest

from repro.controllers import ControlAction, OpenAPSController


def make_controller(**kwargs):
    defaults = dict(basal=1.5, isf=50.0, target=120.0, max_iob=6.0)
    defaults.update(kwargs)
    return OpenAPSController(**defaults)


def run_cycles(controller, readings, dt=5.0):
    """Feed readings; deliver exactly what the controller asks."""
    decisions = []
    for i, bg in enumerate(readings):
        t = i * dt
        decision = controller.decide(bg, t)
        controller.notify_delivery(decision.basal, decision.bolus, t, dt)
        decisions.append(decision)
    return decisions


class TestDecisions:
    def test_at_target_keeps_basal(self):
        c = make_controller()
        decision = c.decide(120.0, 0.0)
        assert decision.action == ControlAction.KEEP
        assert decision.basal == pytest.approx(1.5)

    def test_high_glucose_high_temp(self):
        c = make_controller()
        decision = c.decide(250.0, 0.0)
        assert decision.action == ControlAction.INCREASE
        assert decision.basal > 1.5

    def test_low_glucose_suspend(self):
        c = make_controller()
        decision = c.decide(60.0, 0.0)
        assert decision.action == ControlAction.STOP
        assert decision.basal == 0.0

    def test_moderately_low_glucose_low_temp(self):
        c = make_controller()
        decision = c.decide(100.0, 0.0)
        assert decision.basal < 1.5
        assert decision.action in (ControlAction.DECREASE, ControlAction.STOP)

    def test_rate_capped_at_max_basal(self):
        c = make_controller(max_basal=3.0)
        decision = c.decide(400.0, 0.0)
        assert decision.basal <= 3.0

    def test_max_iob_blocks_high_temp(self):
        c = make_controller(max_iob=1.0)
        # accumulate IOB well past the cap
        for i in range(12):
            c.notify_delivery(6.0, 0.0, 5.0 * i, 5.0)
        decision = c.decide(250.0, 60.0)
        # insulin_req is clipped to zero -> no more than scheduled basal
        assert decision.basal <= 1.5 + 0.01

    def test_invalid_reading_rejected(self):
        with pytest.raises(ValueError):
            make_controller().decide(0.0, 0.0)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            OpenAPSController(basal=1.0, isf=0.0)
        with pytest.raises(ValueError):
            OpenAPSController(basal=1.0, target=-10)
        with pytest.raises(ValueError):
            OpenAPSController(basal=-1.0)


class TestProjection:
    def test_eventual_bg_reported(self):
        c = make_controller()
        decision = c.decide(180.0, 0.0)
        assert "eventual_bg" in decision.info
        # no IOB, no history: eventualBG == BG
        assert decision.info["eventual_bg"] == pytest.approx(180.0)

    def test_iob_discounts_eventual_bg(self):
        c = make_controller()
        c.notify_delivery(0.0, 2.0, 0.0, 5.0)  # 2 U bolus
        decision = c.decide(180.0, 5.0)
        assert decision.iob > 1.5
        assert decision.info["eventual_bg"] < 120.0  # 2 U * 50 = 100 mg/dL drop

    def test_rising_glucose_raises_deviation(self):
        c = make_controller()
        run_cycles(c, [120.0, 130.0])
        decision = c.decide(140.0, 10.0)
        assert decision.info["deviation"] > 0

    def test_iob_rate_sign_tracks_delivery(self):
        c = make_controller()
        decisions = run_cycles(c, [250.0] * 6)
        # sustained high temp -> IOB rising
        assert decisions[-1].iob_rate > 0

    def test_closed_loop_drives_high_bg_down(self):
        """With a cooperative plant, sustained hyper produces net insulin."""
        c = make_controller()
        decisions = run_cycles(c, [250.0] * 24)
        total_extra = sum(d.basal - 1.5 for d in decisions)
        assert total_extra > 3.0


class TestReset:
    def test_reset_clears_history(self):
        c = make_controller()
        run_cycles(c, [250.0] * 6)
        c.reset()
        decision = c.decide(120.0, 0.0)
        assert decision.iob == 0.0
        assert decision.info["delta"] == 0.0
