"""Tests for the fault injector."""


from repro.fi import FaultInjector, FaultKind, FaultSpec, FaultTarget


def injector(kind, target, start=5, dur=3, value=0.0):
    return FaultInjector(FaultSpec(kind=kind, target=target, start_step=start,
                                   duration_steps=dur, value=value))


class TestReadings:
    def test_inactive_steps_pass_through(self):
        inj = injector(FaultKind.MAX, FaultTarget.GLUCOSE)
        assert inj.corrupt_reading(120.0, 0) == 120.0
        assert inj.corrupt_reading(120.0, 99) == 120.0

    def test_active_steps_corrupt(self):
        inj = injector(FaultKind.MAX, FaultTarget.GLUCOSE)
        assert inj.corrupt_reading(120.0, 5) == 400.0

    def test_rate_fault_leaves_reading_alone(self):
        inj = injector(FaultKind.MAX, FaultTarget.RATE)
        assert inj.corrupt_reading(120.0, 5) == 120.0

    def test_hold_uses_last_pre_fault_reading(self):
        inj = injector(FaultKind.HOLD, FaultTarget.GLUCOSE)
        inj.corrupt_reading(111.0, 4)   # last clean sample
        assert inj.corrupt_reading(200.0, 5) == 111.0
        assert inj.corrupt_reading(250.0, 6) == 111.0

    def test_activation_recorded(self):
        inj = injector(FaultKind.MAX, FaultTarget.GLUCOSE)
        assert inj.activated_step is None
        inj.corrupt_reading(120.0, 5)
        assert inj.activated_step == 5


class TestCommands:
    def test_rate_corruption(self):
        inj = injector(FaultKind.TRUNCATE, FaultTarget.RATE)
        rate, bolus = inj.corrupt_command(2.0, 0.5, 5)
        assert rate == 0.0
        assert bolus == 0.5  # untouched

    def test_bolus_corruption(self):
        inj = injector(FaultKind.MAX, FaultTarget.BOLUS)
        rate, bolus = inj.corrupt_command(2.0, 0.5, 5)
        assert rate == 2.0
        assert bolus == 10.0

    def test_glucose_fault_leaves_command_alone(self):
        inj = injector(FaultKind.MAX, FaultTarget.GLUCOSE)
        assert inj.corrupt_command(2.0, 0.0, 5) == (2.0, 0.0)

    def test_hold_rate(self):
        inj = injector(FaultKind.HOLD, FaultTarget.RATE)
        inj.corrupt_command(1.5, 0.0, 4)
        rate, _ = inj.corrupt_command(0.0, 0.0, 5)
        assert rate == 1.5

    def test_add_rate(self):
        inj = injector(FaultKind.ADD, FaultTarget.RATE, value=2.0)
        rate, _ = inj.corrupt_command(1.0, 0.0, 5)
        assert rate == 3.0


class TestReset:
    def test_reset_clears_held_state(self):
        inj = injector(FaultKind.HOLD, FaultTarget.GLUCOSE)
        inj.corrupt_reading(100.0, 4)
        inj.corrupt_reading(200.0, 5)
        inj.reset()
        assert inj.activated_step is None
        # no held value: passes through even while active
        assert inj.corrupt_reading(222.0, 5) == 222.0

    def test_fault_step_property(self):
        inj = injector(FaultKind.MAX, FaultTarget.RATE, start=7)
        assert inj.fault_step == 7
