"""Tests for fault models (Table II)."""

import pytest

from repro.fi import FaultKind, FaultSpec, FaultTarget, VARIABLE_RANGES


def spec(kind, target=FaultTarget.GLUCOSE, value=0.0, start=10, dur=6):
    return FaultSpec(kind=kind, target=target, start_step=start,
                     duration_steps=dur, value=value)


class TestFaultSpec:
    def test_active_window(self):
        f = spec(FaultKind.MAX, start=10, dur=6)
        assert not f.active(9)
        assert f.active(10)
        assert f.active(15)
        assert not f.active(16)

    def test_end_step(self):
        assert spec(FaultKind.MAX, start=10, dur=6).end_step == 16

    def test_invalid_start(self):
        with pytest.raises(ValueError):
            spec(FaultKind.MAX, start=-1)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            spec(FaultKind.MAX, dur=0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            spec(FaultKind.SCALE, value=-0.5)


class TestApply:
    def test_truncate_rate_to_zero(self):
        f = spec(FaultKind.TRUNCATE, FaultTarget.RATE)
        assert f.apply(2.0, None) == 0.0

    def test_truncate_glucose_clamps_to_range_floor(self):
        """A zeroed CGM value is clamped into the acceptable range."""
        f = spec(FaultKind.TRUNCATE, FaultTarget.GLUCOSE)
        assert f.apply(120.0, None) == VARIABLE_RANGES[FaultTarget.GLUCOSE][0]

    def test_hold_freezes_pre_fault_value(self):
        f = spec(FaultKind.HOLD)
        assert f.apply(200.0, held=120.0) == 120.0

    def test_hold_without_history_passes_through(self):
        f = spec(FaultKind.HOLD)
        assert f.apply(200.0, held=None) == 200.0

    def test_max_saturates(self):
        f = spec(FaultKind.MAX, FaultTarget.GLUCOSE)
        assert f.apply(120.0, None) == 400.0
        f = spec(FaultKind.MAX, FaultTarget.RATE)
        assert f.apply(1.0, None) == 10.0

    def test_min_saturates(self):
        f = spec(FaultKind.MIN, FaultTarget.GLUCOSE)
        assert f.apply(120.0, None) == 40.0

    def test_add_offsets_and_clamps(self):
        f = spec(FaultKind.ADD, FaultTarget.GLUCOSE, value=75.0)
        assert f.apply(120.0, None) == 195.0
        assert f.apply(380.0, None) == 400.0  # clamped

    def test_sub_offsets_and_clamps(self):
        f = spec(FaultKind.SUB, FaultTarget.GLUCOSE, value=75.0)
        assert f.apply(120.0, None) == 45.0
        assert f.apply(60.0, None) == 40.0  # clamped

    def test_scale_halves(self):
        f = spec(FaultKind.SCALE, FaultTarget.RATE, value=0.5)
        assert f.apply(2.0, None) == 1.0

    def test_result_always_in_range(self):
        for kind in FaultKind:
            for target in FaultTarget:
                f = spec(kind, target, value=0.5 if kind is FaultKind.SCALE else 75.0)
                lo, hi = VARIABLE_RANGES[target]
                for value in (lo, (lo + hi) / 2, hi):
                    assert lo <= f.apply(value, held=hi) <= hi


class TestLabels:
    def test_plain_label(self):
        assert spec(FaultKind.MAX, FaultTarget.RATE).label == "max_rate"

    def test_dec_label_for_halving_scale(self):
        f = spec(FaultKind.SCALE, FaultTarget.GLUCOSE, value=0.5)
        assert f.label == "dec_glucose"

    def test_scale_up_keeps_scale_label(self):
        f = spec(FaultKind.SCALE, FaultTarget.GLUCOSE, value=2.0)
        assert f.label == "scale_glucose"
