"""Edge-case validation of FaultSpec and the continuous constructor.

The scenario search feeds real-valued samples into
``FaultSpec.from_continuous``; these tests pin the contract that every
degenerate combination fails loudly with ``ValueError`` instead of
silently simulating as a fault-free (or saturated) run.
"""

import math

import pytest

from repro.fi import (FaultKind, FaultSpec, FaultTarget, MAX_SCALE_FACTOR,
                      VARIABLE_RANGES, magnitude_bounds)

HORIZON = 150


def _make(**overrides):
    kw = dict(kind=FaultKind.ADD, target=FaultTarget.GLUCOSE,
              start_step=10.0, duration_steps=12.0, value=50.0,
              horizon=HORIZON)
    kw.update(overrides)
    return FaultSpec.from_continuous(**kw)


class TestMagnitudeBounds:
    def test_additive_bounds_span_variable_range(self):
        for target in FaultTarget:
            lo, hi = VARIABLE_RANGES[target]
            for kind in (FaultKind.ADD, FaultKind.SUB):
                bounds = magnitude_bounds(kind, target)
                assert bounds == (1e-6, hi - lo)

    def test_scale_bounds(self):
        assert magnitude_bounds(FaultKind.SCALE, FaultTarget.RATE) == \
            (0.0, MAX_SCALE_FACTOR)

    def test_magnitude_free_kinds_have_no_bounds(self):
        for kind in (FaultKind.TRUNCATE, FaultKind.HOLD, FaultKind.MAX,
                     FaultKind.MIN):
            assert magnitude_bounds(kind, FaultTarget.GLUCOSE) is None


class TestFromContinuousTiming:
    def test_valid_sample_floors_to_cycles(self):
        spec = _make(start_step=10.9, duration_steps=12.7)
        assert (spec.start_step, spec.duration_steps) == (10, 12)
        assert spec == FaultSpec(FaultKind.ADD, FaultTarget.GLUCOSE,
                                 start_step=10, duration_steps=12,
                                 value=50.0)

    @pytest.mark.parametrize("duration", [0.0, 0.99, -3.0])
    def test_rejects_zero_or_negative_duration(self, duration):
        with pytest.raises(ValueError, match="duration_steps"):
            _make(duration_steps=duration)

    @pytest.mark.parametrize("start", [float(HORIZON), HORIZON + 0.5,
                                       HORIZON * 10.0])
    def test_rejects_start_outside_horizon(self, start):
        with pytest.raises(ValueError, match="outside the simulation"):
            _make(start_step=start)

    def test_start_just_inside_horizon_is_accepted(self):
        spec = _make(start_step=HORIZON - 0.01)
        assert spec.start_step == HORIZON - 1

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="start_step"):
            _make(start_step=-1.0)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite_timing(self, bad):
        with pytest.raises(ValueError, match="finite"):
            _make(start_step=bad)
        with pytest.raises(ValueError, match="duration|finite"):
            _make(duration_steps=bad)

    @pytest.mark.parametrize("horizon", [0, -5])
    def test_rejects_empty_horizon(self, horizon):
        with pytest.raises(ValueError, match="horizon"):
            _make(horizon=horizon)


class TestFromContinuousMagnitude:
    def test_rejects_zero_additive_magnitude(self):
        # an ADD of exactly 0 would simulate as fault-free
        with pytest.raises(ValueError, match="outside the valid range"):
            _make(value=0.0)

    def test_rejects_magnitude_above_variable_span(self):
        lo, hi = VARIABLE_RANGES[FaultTarget.GLUCOSE]
        with pytest.raises(ValueError, match="outside the valid range"):
            _make(value=(hi - lo) + 1.0)

    def test_rejects_scale_factor_above_cap(self):
        with pytest.raises(ValueError, match="outside the valid range"):
            _make(kind=FaultKind.SCALE, target=FaultTarget.RATE,
                  value=MAX_SCALE_FACTOR + 0.1)

    def test_rejects_non_finite_magnitude(self):
        with pytest.raises(ValueError):
            _make(value=math.nan)

    def test_magnitude_free_kind_rejects_nonzero_value(self):
        with pytest.raises(ValueError, match="no magnitude"):
            _make(kind=FaultKind.HOLD, value=5.0)

    def test_magnitude_free_kind_accepts_zero(self):
        spec = _make(kind=FaultKind.TRUNCATE, value=0.0)
        assert spec.kind is FaultKind.TRUNCATE
        assert spec.value == 0.0

    def test_campaign_fault_values_pass_bounds(self):
        # the paper's own grid must survive its generalised bounds
        from repro.fi.campaign import CAMPAIGN_FAULTS
        for kind, target, value in CAMPAIGN_FAULTS:
            _make(kind=kind, target=target, value=value)


class TestPlainConstructor:
    def test_rejects_non_finite_value(self):
        with pytest.raises(ValueError, match="finite"):
            FaultSpec(FaultKind.ADD, FaultTarget.GLUCOSE, start_step=0,
                      duration_steps=1, value=math.inf)

    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError, match="scale factor"):
            FaultSpec(FaultKind.SCALE, FaultTarget.RATE, start_step=0,
                      duration_steps=1, value=-0.5)
