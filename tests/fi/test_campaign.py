"""Tests for campaign generation (Section V-B grid)."""

import pytest

from repro.fi import (
    CampaignConfig,
    FaultKind,
    FaultTarget,
    INITIAL_GLUCOSE_VALUES,
    TIMING_CHOICES,
    generate_campaign,
)


class TestFullGrid:
    def test_paper_scale_is_882_per_patient(self):
        """7 kinds x 2 targets x 9 timings x 7 initial BGs = 882 (Section V-B)."""
        assert len(generate_campaign()) == 882

    def test_seven_initial_glucose_values_in_range(self):
        assert len(INITIAL_GLUCOSE_VALUES) == 7
        assert all(80 <= bg <= 200 for bg in INITIAL_GLUCOSE_VALUES)

    def test_nine_timing_choices(self):
        assert len(TIMING_CHOICES) == 9

    def test_timings_fit_150_step_simulation(self):
        for start, duration in TIMING_CHOICES:
            assert 0 <= start and start + duration <= 150

    def test_all_kinds_and_targets_present(self):
        campaign = generate_campaign()
        kinds = {s.fault.kind for s in campaign}
        targets = {s.fault.target for s in campaign}
        assert kinds == set(FaultKind) - {FaultKind.MIN} | {FaultKind.MIN}
        # input, output and internal-state targets are all exercised
        assert targets == {FaultTarget.GLUCOSE, FaultTarget.RATE,
                           FaultTarget.IOB}

    def test_deterministic(self):
        first = generate_campaign()
        second = generate_campaign()
        assert [s.label for s in first] == [s.label for s in second]

    def test_offsets_assigned_per_target(self):
        campaign = generate_campaign()
        adds = [s for s in campaign if s.fault.kind is FaultKind.ADD]
        glucose_values = {s.fault.value for s in adds
                          if s.fault.target is FaultTarget.GLUCOSE}
        rate_values = {s.fault.value for s in adds
                       if s.fault.target is FaultTarget.RATE}
        assert glucose_values == {100.0}
        assert rate_values == {3.0}

    def test_scale_faults_are_dec_style(self):
        campaign = generate_campaign()
        scales = [s for s in campaign if s.fault.kind is FaultKind.SCALE]
        assert all(s.fault.value == 0.5 for s in scales)
        assert all(s.label.startswith("dec_") for s in scales)


class TestScaling:
    def test_stride_subsamples(self):
        small = generate_campaign(CampaignConfig(stride=7))
        assert len(small) == 126

    def test_stride_preserves_variety(self):
        small = generate_campaign(CampaignConfig(stride=7))
        kinds = {s.fault.kind for s in small}
        assert len(kinds) >= 5

    def test_custom_grids(self):
        config = CampaignConfig(init_glucose_values=(120.0,),
                                timing_choices=((10, 6),))
        campaign = generate_campaign(config)
        assert len(campaign) == 7 * 2  # kinds x targets

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CampaignConfig(stride=0)
        with pytest.raises(ValueError):
            CampaignConfig(init_glucose_values=())
        with pytest.raises(ValueError):
            CampaignConfig(timing_choices=())

    def test_labels_unique(self):
        campaign = generate_campaign()
        labels = [s.label for s in campaign]
        assert len(set(labels)) == len(labels)
