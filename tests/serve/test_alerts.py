"""AlertManager: dedup window boundaries, escalation, stream isolation."""

import numpy as np
import pytest

from repro.serve import AlertManager


H1, H2 = 1, 2


def manager(**kwargs):
    kwargs.setdefault("window", 120.0)
    kwargs.setdefault("escalate_after", None)
    return AlertManager(**kwargs)


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            AlertManager(window=0.0)

    def test_bad_escalate_after(self):
        with pytest.raises(ValueError, match="escalate_after"):
            AlertManager(escalate_after=1)


class TestDedupWindow:
    def test_first_alert_emits(self):
        m = manager()
        event = m.observe(0.0, "u", "CAWT", True, H1)
        assert event is not None
        assert (event.user_id, event.monitor, event.hazard) == ("u", "CAWT", H1)
        assert event.suppressed == 0 and not event.escalated

    def test_repeat_inside_window_suppressed(self):
        m = manager()
        assert m.observe(0.0, "u", "CAWT", True, H1) is not None
        for t in (5.0, 60.0, 115.0):
            assert m.observe(t, "u", "CAWT", True, H1) is None

    def test_exactly_at_window_emits(self):
        m = manager(window=120.0)
        assert m.observe(0.0, "u", "CAWT", True, H1) is not None
        assert m.observe(119.9, "u", "CAWT", True, H1) is None
        event = m.observe(120.0, "u", "CAWT", True, H1)
        assert event is not None
        assert event.suppressed == 1  # the 119.9 repeat was deduped

    def test_suppressed_count_rides_on_reemission(self):
        m = manager(window=120.0)
        m.observe(0.0, "u", "CAWT", True, H1)
        for t in (5.0, 10.0, 15.0):
            m.observe(t, "u", "CAWT", True, H1)
        event = m.observe(120.0, "u", "CAWT", True, H1)
        assert event.suppressed == 3
        # and the counter resets after the emission
        event2 = m.observe(240.0, "u", "CAWT", True, H1)
        assert event2.suppressed == 0

    def test_window_timer_survives_silent_gaps(self):
        """Dedup is wall-clock: silence does not reopen the window."""
        m = manager(window=120.0)
        m.observe(0.0, "u", "CAWT", True, H1)
        assert m.observe(5.0, "u", "CAWT", False, 0) is None
        assert m.observe(60.0, "u", "CAWT", True, H1) is None  # still inside

    def test_hazard_change_bypasses_dedup(self):
        m = manager(window=120.0)
        m.observe(0.0, "u", "CAWT", True, H1)
        event = m.observe(5.0, "u", "CAWT", True, H2)
        assert event is not None and event.hazard == H2
        # ... and the new hazard starts its own window
        assert m.observe(10.0, "u", "CAWT", True, H2) is None


class TestStreamIsolation:
    def test_interleaved_users_dedup_independently(self):
        m = manager(window=120.0)
        assert m.observe(0.0, "a", "CAWT", True, H1) is not None
        assert m.observe(0.0, "b", "CAWT", True, H1) is not None
        # a's repeat suppressed; b silent; then b's repeat also suppressed
        assert m.observe(5.0, "a", "CAWT", True, H1) is None
        assert m.observe(5.0, "b", "CAWT", False, 0) is None
        assert m.observe(10.0, "b", "CAWT", True, H1) is None
        # windows expire per user
        assert m.observe(120.0, "a", "CAWT", True, H1) is not None
        assert m.observe(120.0, "b", "CAWT", True, H1) is not None

    def test_monitors_dedup_independently(self):
        m = manager()
        assert m.observe(0.0, "u", "CAWT", True, H1) is not None
        assert m.observe(0.0, "u", "DT", True, H1) is not None
        assert m.n_streams == 2

    def test_drop_user_forgets_streams(self):
        m = manager()
        m.observe(0.0, "u", "CAWT", True, H1)
        m.observe(0.0, "v", "CAWT", True, H1)
        m.drop_user("u")
        assert m.n_streams == 1
        # a re-connected user alerts fresh, no window carried over
        assert m.observe(5.0, "u", "CAWT", True, H1) is not None


class TestEscalation:
    def test_streak_escalates_once_per_window(self):
        m = manager(window=120.0, escalate_after=3)
        m.observe(0.0, "u", "CAWT", True, H1)
        assert m.observe(5.0, "u", "CAWT", True, H1) is None   # streak 2
        assert m.observe(10.0, "u", "CAWT", True, H1) is None  # streak since 2
        event = m.observe(15.0, "u", "CAWT", True, H1)         # streak since 3
        assert event is not None and event.escalated
        assert event.suppressed == 2
        # no second escalation inside the same window
        for t in (20.0, 25.0, 30.0, 35.0):
            assert m.observe(t, "u", "CAWT", True, H1) is None

    def test_silent_tick_breaks_the_streak(self):
        m = manager(window=120.0, escalate_after=3)
        m.observe(0.0, "u", "CAWT", True, H1)
        m.observe(5.0, "u", "CAWT", True, H1)
        m.observe(10.0, "u", "CAWT", False, 0)
        # streak restarted: two more alerts stay below the threshold
        assert m.observe(15.0, "u", "CAWT", True, H1) is None
        assert m.observe(20.0, "u", "CAWT", True, H1) is None
        event = m.observe(25.0, "u", "CAWT", True, H1)
        assert event is not None and event.escalated

    def test_escalation_disabled(self):
        m = manager(escalate_after=None)
        m.observe(0.0, "u", "CAWT", True, H1)
        for step in range(1, 20):
            assert m.observe(step * 5.0, "u", "CAWT", True, H1) is None


class TestBulkTick:
    def test_observe_tick_equals_scalar_observe(self):
        rng = np.random.default_rng(3)
        users = tuple(f"u{i}" for i in range(8))
        bulk = AlertManager(window=30.0, escalate_after=3)
        scalar = AlertManager(window=30.0, escalate_after=3)
        for step in range(40):
            t = step * 5.0
            alerts = rng.random(8) < 0.4
            hazards = np.where(rng.random(8) < 0.5, H1, H2) * alerts
            bulk_events = bulk.observe_tick(t, "CAWT", users, alerts, hazards)
            scalar_events = [
                event for j, user in enumerate(users)
                for event in [scalar.observe(t, user, "CAWT",
                                             bool(alerts[j]),
                                             int(hazards[j]))]
                if event is not None]
            assert bulk_events == scalar_events

    def test_absent_user_keeps_its_streak(self):
        m = AlertManager(window=1000.0, escalate_after=3)
        m.observe_tick(0.0, "CAWT", ("a",), np.array([True]), np.array([H1]))
        for t in (5.0, 10.0):  # two suppressed alerts after the emission
            m.observe_tick(t, "CAWT", ("a",), np.array([True]),
                           np.array([H1]))
        # a tick without user "a" at all: streak must NOT reset
        m.observe_tick(15.0, "CAWT", ("b",), np.array([False]), np.array([0]))
        events = m.observe_tick(20.0, "CAWT", ("a",), np.array([True]),
                                np.array([H1]))
        assert len(events) == 1 and events[0].escalated


class TestClockSkew:
    """Non-monotone wall clock per stream: clamp-and-count, never warp."""

    def test_backwards_clock_is_clamped_and_counted(self):
        m = manager()
        assert m.observe(100.0, "u", "CAWT", True, H1) is not None
        assert m.clock_skew_events == 0
        # the clock steps back 90 minutes; without clamping the window
        # arithmetic would treat this as t-last_emit = -90 and keep the
        # stream silent for up to 2x the window
        assert m.observe(10.0, "u", "CAWT", True, H1) is None
        assert m.clock_skew_events == 1
        # window elapses relative to the CLAMPED timeline (last emit at
        # 100), not the skewed source clock
        event = m.observe(220.0, "u", "CAWT", True, H1)
        assert event is not None
        assert m.clock_skew_events == 1

    def test_skewed_hazard_change_emits_with_monotone_timestamp(self):
        m = manager()
        assert m.observe(100.0, "u", "CAWT", True, H1) is not None
        # hazard change bypasses the window even under skew, and the
        # emitted event's timestamp never runs backwards
        event = m.observe(50.0, "u", "CAWT", True, H2)
        assert event is not None
        assert event.t == 100.0
        assert m.clock_skew_events == 1

    def test_skew_counts_only_alerting_streams(self):
        m = manager()
        assert m.observe(100.0, "u", "CAWT", True, H1) is not None
        m.observe(50.0, "u", "CAWT", False, H1)  # silent tick: no skew event
        assert m.clock_skew_events == 0

    def test_service_exposes_the_counter(self):
        from repro.core import cawot_monitor
        from repro.serve import MonitorService, TickBatch

        service = MonitorService({"CAWOT": cawot_monitor()})

        def tick(t, bg):
            return TickBatch(t=t, user_ids=("u",),
                             cgm=np.array([bg]), iob=np.array([1.0]),
                             iob_rate=np.zeros(1), rate=np.array([1.2]),
                             bolus=np.zeros(1), action=np.array([4]))

        service.process(tick(100.0, 40.0))  # emits
        assert service.clock_skew_events == 0
        # a skewed but NEWER-than-last-applied tick passes the stale
        # guard yet lands behind the stream's last emit: counted there
        service.alert_manager.observe(50.0, "u", "CAWOT", True, 1)
        assert service.clock_skew_events == 1
