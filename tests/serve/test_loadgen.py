"""Load generator: determinism in the seed, report plausibility."""

import numpy as np
import pytest

from repro.core import cawot_monitor
from repro.serve import LoadGenerator, MonitorService, run_load


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = LoadGenerator(50, seed=7)
        b = LoadGenerator(50, seed=7)
        for _ in range(5):
            tick_a, tick_b = a.tick(), b.tick()
            assert tick_a.t == tick_b.t
            assert tick_a.user_ids == tick_b.user_ids
            for field in ("cgm", "iob", "iob_rate", "rate", "bolus",
                          "action"):
                np.testing.assert_array_equal(getattr(tick_a, field),
                                              getattr(tick_b, field))

    def test_different_seed_different_stream(self):
        a = LoadGenerator(50, seed=7).tick()
        b = LoadGenerator(50, seed=8).tick()
        assert not np.array_equal(a.cgm, b.cgm)

    def test_service_results_are_seed_deterministic(self):
        results = []
        for _ in range(2):
            service = MonitorService({"CAWOT": cawot_monitor()})
            report = run_load(service, n_users=200, n_ticks=6, seed=3)
            results.append((report.n_raw_alerts, report.n_events))
        assert results[0] == results[1]


class TestReport:
    def test_report_fields_are_plausible(self):
        service = MonitorService({"CAWOT": cawot_monitor()})
        report = run_load(service, n_users=100, n_ticks=5, seed=0)
        assert report.n_users == 100 and report.n_ticks == 5
        assert report.service_seconds > 0
        assert report.users_per_sec > 0
        assert 0 <= report.p50_tick_ms <= report.p99_tick_ms \
            <= report.max_tick_ms
        assert report.n_events <= report.n_raw_alerts
        assert "user-ticks/s" in report.summary()
        # warmup + timed ticks all reached the service
        assert service.ticks_processed == 6

    def test_ticks_are_plausible_glucose(self):
        generator = LoadGenerator(500, seed=1)
        for _ in range(10):
            tick = generator.tick()
        assert tick.cgm.min() > 20.0 and tick.cgm.max() < 400.0
        assert (tick.iob >= 0.0).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="n_users"):
            LoadGenerator(0)
        service = MonitorService({"CAWOT": cawot_monitor()})
        with pytest.raises(ValueError, match="n_ticks"):
            run_load(service, 10, 0)
        with pytest.raises(ValueError, match="warmup"):
            run_load(service, 10, 1, warmup_ticks=-1)
