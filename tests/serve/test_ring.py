"""ContextRing: vectorized appends, wraparound, slot independence."""

import numpy as np
import pytest

from repro.serve import ContextRing


def _row(value, width=3):
    return np.full(width, float(value))


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ContextRing(0, 3)

    def test_bad_width(self):
        with pytest.raises(ValueError, match="width"):
            ContextRing(4, 0)

    def test_bad_slots(self):
        with pytest.raises(ValueError, match="n_slots"):
            ContextRing(4, 3, n_slots=-1)

    def test_append_shape_mismatch(self):
        ring = ContextRing(4, 3, n_slots=2)
        with pytest.raises(ValueError, match="rows must be"):
            ring.append(np.zeros((2, 2)), np.array([0, 1]))

    def test_append_duplicate_slots(self):
        ring = ContextRing(4, 3, n_slots=2)
        with pytest.raises(ValueError, match="duplicate"):
            ring.append(np.zeros((3, 2)), np.array([1, 1]))

    def test_last_on_empty_slot(self):
        ring = ContextRing(4, 3, n_slots=1)
        with pytest.raises(ValueError, match="no rows"):
            ring.last(0)


class TestAppendWindow:
    def test_partial_fill_is_chronological(self):
        ring = ContextRing(capacity=4, width=3, n_slots=1)
        for i in range(3):
            ring.append(_row(i).reshape(3, 1), np.array([0]))
        window = ring.window(0)
        assert window.shape == (3, 3)
        assert list(window[:, 0]) == [0.0, 1.0, 2.0]
        assert ring.count(0) == 3
        assert list(ring.last(0)) == [2.0, 2.0, 2.0]

    def test_wraparound_keeps_newest_rows_in_order(self):
        ring = ContextRing(capacity=4, width=2, n_slots=1)
        for i in range(10):
            ring.append(np.full((2, 1), float(i)), np.array([0]))
        window = ring.window(0)
        assert window.shape == (4, 2)
        # rows 6..9 survive, oldest first, across the physical wrap
        assert list(window[:, 0]) == [6.0, 7.0, 8.0, 9.0]
        assert ring.count(0) == 4

    def test_exactly_full_boundary(self):
        ring = ContextRing(capacity=3, width=1, n_slots=1)
        for i in range(3):
            ring.append(np.array([[float(i)]]), np.array([0]))
        assert list(ring.window(0)[:, 0]) == [0.0, 1.0, 2.0]
        ring.append(np.array([[3.0]]), np.array([0]))
        assert list(ring.window(0)[:, 0]) == [1.0, 2.0, 3.0]

    def test_slots_are_independent(self):
        ring = ContextRing(capacity=3, width=1, n_slots=3)
        # interleave appends: slot 0 gets 5 rows, slot 2 gets 2, slot 1 none
        for i in range(5):
            ring.append(np.array([[float(10 + i)]]), np.array([0]))
            if i < 2:
                ring.append(np.array([[float(20 + i)]]), np.array([2]))
        assert list(ring.window(0)[:, 0]) == [12.0, 13.0, 14.0]
        assert list(ring.window(2)[:, 0]) == [20.0, 21.0]
        assert ring.window(1).shape == (0, 1)
        assert ring.count(1) == 0

    def test_vectorized_append_matches_scalar(self):
        """One multi-slot scatter == the per-slot appends, bit for bit."""
        rng = np.random.default_rng(7)
        batched = ContextRing(capacity=5, width=4, n_slots=6)
        serial = ContextRing(capacity=5, width=4, n_slots=6)
        for _ in range(12):
            rows = rng.normal(size=(4, 6))
            batched.append(rows, np.arange(6))
            for slot in range(6):
                serial.append(rows[:, slot:slot + 1], np.array([slot]))
        for slot in range(6):
            np.testing.assert_array_equal(batched.window(slot),
                                          serial.window(slot))

    def test_window_is_a_copy(self):
        ring = ContextRing(capacity=2, width=1, n_slots=1)
        ring.append(np.array([[1.0]]), np.array([0]))
        window = ring.window(0)
        window[0, 0] = 99.0
        assert ring.window(0)[0, 0] == 1.0


class TestGrowClear:
    def test_ensure_slots_preserves_data(self):
        ring = ContextRing(capacity=3, width=2, n_slots=1)
        ring.append(np.array([[1.0], [2.0]]), np.array([0]))
        ring.ensure_slots(40)
        assert ring.n_slots >= 40
        assert list(ring.window(0)[0]) == [1.0, 2.0]
        ring.append(np.array([[5.0], [6.0]]), np.array([39]))
        assert list(ring.window(39)[0]) == [5.0, 6.0]

    def test_ensure_slots_never_shrinks(self):
        ring = ContextRing(capacity=3, width=2, n_slots=8)
        ring.ensure_slots(2)
        assert ring.n_slots == 8

    def test_clear_slot_resets_only_that_slot(self):
        ring = ContextRing(capacity=2, width=1, n_slots=2)
        ring.append(np.array([[1.0]]), np.array([0]))
        ring.append(np.array([[2.0]]), np.array([1]))
        ring.clear_slot(0)
        assert ring.count(0) == 0
        assert list(ring.window(1)[:, 0]) == [2.0]
