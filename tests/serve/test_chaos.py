"""Fault injection: every crash point recovers bit-exact or fails loud."""

import numpy as np
import pytest

from repro.baselines import GuidelineMonitor, MPCMonitor
from repro.core import cawot_monitor, cawt_monitor
from repro.serve import (JournalCorruptError, MonitorService,
                         SnapshotError)
from repro.serve.chaos import (corrupt_journal_middle, corrupt_snapshot,
                               crash_recovery_run, drive, fleet_ticks,
                               half_written_snapshot, results_equal,
                               skewed_ticks, tear_journal_tail)

N_USERS = 200
N_TICKS = 12


def _monitors():
    # one vectorized stateless monitor + one stateful (per-user clones
    # with a cross-cycle excursion timer): the two restore paths
    return {"CAWT": cawt_monitor({"beta1": 75.0}),
            "CAWOT": cawot_monitor(),
            "Guideline": GuidelineMonitor()}


@pytest.fixture(scope="module")
def ticks():
    return fleet_ticks(N_USERS, N_TICKS, seed=11)


@pytest.fixture(scope="module")
def reference(ticks):
    return drive(MonitorService(_monitors()), ticks)


class TestKillAtEveryTickBoundary:
    """The acceptance criterion: a seeded 200-user load killed at EVERY
    tick boundary recovers to an element-wise identical stream."""

    @pytest.mark.parametrize("kill_after", list(range(1, N_TICKS)))
    def test_recovery_parity(self, tmp_path, ticks, reference, kill_after):
        results, recovered = crash_recovery_run(
            _monitors(), ticks, str(tmp_path / "state"),
            kill_after=kill_after, snapshot_every=4)
        equal, why = results_equal(reference, results)
        assert equal, f"kill after tick {kill_after}: {why}"
        assert recovered.recovery_report is not None
        assert recovered.recovery_report.torn_tail_bytes == 0

    def test_membership_churn_replays(self, tmp_path, ticks, reference):
        """Explicit connects and a mid-run disconnect ride the journal."""
        results, recovered = crash_recovery_run(
            _monitors(), ticks, str(tmp_path / "state"), kill_after=7,
            connect_first=("spectator-1", "spectator-2"),
            disconnect_at=(3, "spectator-1"))
        # spectators never tick, so the ticking fleet's stream is
        # untouched by the membership churn
        equal, why = results_equal(reference, results)
        assert equal, why
        assert recovered.n_users == N_USERS + 1  # spectator-2 survived

    def test_stateful_mpc_clone_state_survives(self, tmp_path):
        """MPC's per-user clones (expensive model state) restore too."""
        monitors = {"MPC": MPCMonitor(), "CAWOT": cawot_monitor()}
        small = fleet_ticks(10, 8, seed=5)
        reference = drive(MonitorService(monitors), small)
        results, _ = crash_recovery_run(
            monitors, small, str(tmp_path / "state"), kill_after=5)
        equal, why = results_equal(reference, results)
        assert equal, why

    def test_second_generation_crash(self, tmp_path, ticks, reference):
        """Crash, recover, snapshot, crash again: recovery composes."""
        directory = str(tmp_path / "state")
        service = MonitorService(_monitors(), persist_dir=directory)
        results = [service.process(tick) for tick in ticks[:4]]
        del service  # first kill
        survivor = MonitorService.recover(directory)
        results += [survivor.process(tick) for tick in ticks[4:8]]
        survivor.snapshot()
        results.append(survivor.process(ticks[8]))
        del survivor  # second kill
        final = MonitorService.recover(directory)
        assert final.recovery_report.snapshot_seq >= 1
        results += [final.process(tick) for tick in ticks[9:]]
        equal, why = results_equal(reference, results)
        assert equal, why


class TestTornWrites:
    def test_torn_tail_discards_only_the_unacknowledged_tick(
            self, tmp_path, ticks, reference):
        """Cut the final record mid-write: recovery reports the torn
        tail, resumes one tick earlier, and re-feeding from there is
        again element-wise identical."""
        directory = str(tmp_path / "state")
        service = MonitorService(_monitors(), persist_dir=directory)
        kill_after = 6
        results = [service.process(tick) for tick in ticks[:kill_after]]
        del service
        tear_journal_tail(directory, 13)  # mid-record cut
        recovered = MonitorService.recover(directory)
        report = recovered.recovery_report
        assert report.torn_tail_bytes > 0
        assert report.ticks_replayed == kill_after - 1  # last tick torn
        assert recovered.ticks_processed == kill_after - 1
        # the torn tick was never acknowledged: the source re-sends it
        results = results[:kill_after - 1]
        results += [recovered.process(tick) for tick in ticks[kill_after - 1:]]
        equal, why = results_equal(reference, results)
        assert equal, why

    def test_mid_journal_corruption_is_loud(self, tmp_path, ticks):
        directory = str(tmp_path / "state")
        service = MonitorService(_monitors(), persist_dir=directory)
        for tick in ticks[:5]:
            service.process(tick)
        del service
        corrupt_journal_middle(directory)
        with pytest.raises(JournalCorruptError):
            MonitorService.recover(directory)


class TestSnapshotFaults:
    def test_corrupted_snapshot_is_loud(self, tmp_path, ticks):
        directory = str(tmp_path / "state")
        service = MonitorService(_monitors(), persist_dir=directory)
        for tick in ticks[:4]:
            service.process(tick)
        service.snapshot()
        del service
        corrupt_snapshot(directory)
        # never a silent fall-back to an older fleet state
        with pytest.raises(SnapshotError, match="checksum"):
            MonitorService.recover(directory)

    def test_half_written_snapshot_is_ignored(self, tmp_path, ticks,
                                              reference):
        directory = str(tmp_path / "state")
        service = MonitorService(_monitors(), persist_dir=directory)
        kill_after = 5
        results = [service.process(tick) for tick in ticks[:kill_after]]
        del service
        half_written_snapshot(directory)  # crash mid-snapshot: tmp only
        recovered = MonitorService.recover(directory)
        assert recovered.recovery_report.snapshot_seq == -1  # tmp unseen
        results += [recovered.process(tick) for tick in ticks[kill_after:]]
        equal, why = results_equal(reference, results)
        assert equal, why


class TestClockSkew:
    def test_backwards_fleet_clock_quarantines_and_recovers(self):
        """A gateway clock stepping back must neither crash the service
        nor double-apply ticks: skewed ticks quarantine as stale and the
        stream resumes once the clock passes its high-water mark."""
        base = fleet_ticks(20, N_TICKS, seed=7)
        skewed = skewed_ticks(base, skew_at=5, skew_minutes=20.0)
        service = MonitorService(_monitors())
        results = drive(service, skewed)
        # ticks 5..8 land at/behind the high-water mark (t=20): stale
        for i in range(5, 9):
            assert len(results[i].rejected) == 20, f"tick {i}"
            assert all(r.reason == "stale-timestamp"
                       for r in results[i].rejected)
        assert service.health == "DEGRADED"
        # tick 9 (t = 45-20 = 25) clears the mark and processes again
        for i in range(9, N_TICKS):
            assert results[i].rejected == []
        assert service.rejected_by_reason == {"stale-timestamp": 80}

    def test_skew_survives_crash_recovery(self, tmp_path):
        """Quarantine decisions are deterministic, so a skewed stream
        recovers bit-exact like any other."""
        base = fleet_ticks(20, N_TICKS, seed=7)
        skewed = skewed_ticks(base, skew_at=5, skew_minutes=20.0)
        reference = drive(MonitorService(_monitors()), skewed)
        results, _ = crash_recovery_run(
            _monitors(), skewed, str(tmp_path / "state"), kill_after=7,
            snapshot_every=3)
        equal, why = results_equal(reference, results)
        assert equal, why