"""MonitorService: offline parity, fleet membership, context windows."""

import numpy as np
import pytest

from repro.baselines import GuidelineMonitor
from repro.core import cawot_monitor, cawt_monitor
from repro.serve import (MonitorService, MonitorRegistry, TickBatch,
                         replay_log)
from repro.simulation import (ContextBatch, iter_trace_ticks,
                              replay_campaign)


def _monitors():
    return {"CAWT": cawt_monitor({"beta1": 75.0}),
            "CAWOT": cawot_monitor(),
            "Guideline": GuidelineMonitor()}


def _tick(t, user_ids, bg, **overrides):
    n = len(user_ids)
    fields = dict(cgm=np.asarray(bg, dtype=float), iob=np.full(n, 1.0),
                  iob_rate=np.zeros(n), rate=np.full(n, 1.2),
                  bolus=np.zeros(n), action=np.full(n, 4))
    fields.update(overrides)
    return TickBatch(t=t, user_ids=tuple(user_ids), **fields)


class TestReplayParity:
    """The tentpole contract: served streams == offline replay_campaign."""

    def test_raw_alert_streams_identical_to_offline(
            self, tiny_campaign_traces):
        traces = tiny_campaign_traces[:12]
        monitors = _monitors()
        offline = replay_campaign(monitors, traces)
        served = replay_log(monitors, traces)
        assert set(served) == set(offline)
        for name in monitors:
            assert len(served[name]) == len(traces)
            for a, b in zip(offline[name], served[name]):
                np.testing.assert_array_equal(a, b)

    def test_two_service_runs_are_identical(self, tiny_campaign_traces):
        traces = tiny_campaign_traces[:6]
        first = replay_log(_monitors(), traces)
        second = replay_log(_monitors(), traces)
        for name in first:
            for a, b in zip(first[name], second[name]):
                np.testing.assert_array_equal(a, b)

    def test_replay_log_validates_input(self, tiny_campaign_traces):
        with pytest.raises(ValueError, match="zero traces"):
            replay_log(_monitors(), [])

    def test_tick_stream_requires_lockstep(self, tiny_campaign_traces):
        trace = tiny_campaign_traces[0]
        with pytest.raises(ValueError, match="zero traces"):
            list(iter_trace_ticks([]))
        import dataclasses
        shifted = dataclasses.replace(trace, t=trace.t + 5.0)
        with pytest.raises(ValueError, match="time grid"):
            list(iter_trace_ticks([trace, shifted]))


class TestFleetMembership:
    def test_connect_is_idempotent_and_autoconnect_works(self):
        service = MonitorService(_monitors())
        service.connect("a")
        service.connect("a")
        assert service.n_users == 1
        service.process(_tick(0.0, ("a", "b"), [120.0, 130.0]))
        assert service.n_users == 2

    def test_duplicate_users_in_one_tick_quarantined(self):
        # degraded-mode ingestion: the duplicated row is quarantined (the
        # first occurrence wins), never a mid-tick exception
        service = MonitorService(_monitors())
        result = service.process(_tick(0.0, ("a", "a", "b"),
                                       [120.0, 125.0, 130.0]))
        assert [r.reason for r in result.rejected] == ["duplicate-user"]
        assert result.rejected[0].user_id == "a"
        assert service.n_users == 2
        assert service.health == "DEGRADED"
        # only the first occurrence advanced user a's state
        assert service.context_window("a").bg[0, 0] == 120.0
        for flags in result.alerts.values():
            assert flags.shape == (3,)

    def test_disconnect_frees_and_recycles_slots(self):
        service = MonitorService(_monitors())
        service.process(_tick(0.0, ("a", "b"), [120.0, 130.0]))
        service.disconnect("a")
        assert service.n_users == 1
        with pytest.raises(KeyError):
            service.disconnect("a")
        # the recycled slot must not leak the old user's history
        service.process(_tick(5.0, ("c",), [200.0]))
        window = service.context_window("c")
        assert window.shape == (1, 1)
        assert window.bg[0, 0] == 200.0
        assert window.bg_rate[0, 0] == 0.0  # fresh user: no rate yet

    def test_midstream_join_gets_zero_first_rate(self):
        service = MonitorService(_monitors())
        service.process(_tick(0.0, ("a",), [120.0]))
        result = service.process(_tick(5.0, ("a", "b"), [130.0, 180.0]))
        window_a = service.context_window("a")
        window_b = service.context_window("b")
        assert window_a.bg_rate[1, 0] == (130.0 - 120.0) / 5.0
        assert window_b.bg_rate[0, 0] == 0.0
        assert result.user_ids == ("a", "b")

    def test_skipped_tick_rate_spans_the_gap(self):
        service = MonitorService(_monitors())
        service.process(_tick(0.0, ("a", "b"), [120.0, 120.0]))
        service.process(_tick(5.0, ("a",), [125.0]))
        service.process(_tick(10.0, ("a", "b"), [125.0, 150.0]))
        window_b = service.context_window("b")
        # b missed the middle tick: its rate is computed from its own
        # previous sample, not the fleet's
        assert window_b.bg_rate[1, 0] == (150.0 - 120.0) / 5.0


class TestPerUserState:
    def test_stateful_monitors_do_not_leak_across_users(self):
        """One user's phi3 excursion timer must not fire for another."""
        service = MonitorService({"Guideline": GuidelineMonitor(
            lambda_10=90.0, alpha=10.0)})
        low, ok = 85.0, 120.0
        for step in range(4):
            t = step * 5.0
            result = service.process(
                _tick(t, ("low", "ok"), [low, ok]))
        # after 15+ minutes below lambda_10, phi3 fires for "low" only
        assert result.alerts["Guideline"][0]
        assert not result.alerts["Guideline"][1]

    def test_registry_monitors_stay_unmutated(self):
        registry = MonitorRegistry({"Guideline": GuidelineMonitor()})
        service = MonitorService(registry)
        service.process(_tick(0.0, ("a",), [40.0]))  # deep hypo alert
        assert registry["Guideline"]._below_since is None

    def test_events_ride_on_results(self):
        service = MonitorService({"CAWOT": cawot_monitor()},
                                 dedup_window=120.0)
        result = service.process(_tick(0.0, ("a",), [40.0]))
        assert result.alerts["CAWOT"][0]
        assert len(result.events) == 1
        # the repeat inside the window is deduped
        repeat = service.process(_tick(5.0, ("a",), [40.0]))
        assert repeat.alerts["CAWOT"][0]
        assert repeat.events == []


class TestContextWindow:
    def test_window_matches_offline_context_matrix(
            self, tiny_campaign_traces):
        """The ring-rebuilt window is the tail of the offline batch."""
        trace = tiny_campaign_traces[0]
        window_ticks = 8
        service = MonitorService(_monitors(), window=window_ticks)
        for tick in iter_trace_ticks([trace]):
            service.process(TickBatch(
                t=tick.t, user_ids=("u",), cgm=tick.cgm, iob=tick.iob,
                iob_rate=tick.iob_rate, rate=tick.rate, bolus=tick.bolus,
                action=tick.action))
        window = service.context_window("u")
        offline = ContextBatch.from_traces([trace])
        assert window.shape == (window_ticks, 1)
        np.testing.assert_array_equal(
            window.features[:, :, 0], offline.features[-window_ticks:, :, 0])
        np.testing.assert_array_equal(
            window.t[:, 0], offline.t[-window_ticks:, 0])
        np.testing.assert_array_equal(
            window.action[:, 0], offline.action[-window_ticks:, 0])

    def test_unknown_user_rejected(self):
        service = MonitorService(_monitors())
        with pytest.raises(KeyError):
            service.context_window("ghost")

    def test_no_ticks_yet_rejected(self):
        service = MonitorService(_monitors())
        service.connect("a")
        with pytest.raises(ValueError, match="no ticks"):
            service.context_window("a")


class TestValidation:
    def test_bad_dt(self):
        with pytest.raises(ValueError, match="dt"):
            MonitorService(_monitors(), dt=0.0)

    def test_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            MonitorService(_monitors(), window=0)

    def test_tick_shape_mismatch(self):
        with pytest.raises(ValueError, match="cgm"):
            TickBatch(t=0.0, user_ids=("a", "b"), cgm=np.zeros(3),
                      iob=np.zeros(2), iob_rate=np.zeros(2),
                      rate=np.zeros(2), bolus=np.zeros(2),
                      action=np.zeros(2))


class TestDegradedMode:
    """Malformed rows quarantine; healthy rows are never held hostage."""

    def test_nan_and_negative_glucose_quarantined(self):
        service = MonitorService(_monitors())
        result = service.process(_tick(0.0, ("a", "b", "c"),
                                       [np.nan, -5.0, 120.0]))
        reasons = {r.user_id: r.reason for r in result.rejected}
        assert reasons == {"a": "bad-glucose", "b": "bad-glucose"}
        assert result.rejected[1].value == -5.0
        # the healthy row processed normally
        assert service.context_window("c").bg[0, 0] == 120.0
        for uid in ("a", "b"):
            with pytest.raises(ValueError, match="no ticks"):
                service.context_window(uid)
        # rejected rows read like silent rows on the parity surface
        for flags in result.alerts.values():
            assert flags.shape == (3,)
            assert not flags[0] and not flags[1]

    def test_non_finite_channel_quarantined(self):
        service = MonitorService(_monitors())
        iob = np.array([np.inf, 1.0])
        result = service.process(_tick(0.0, ("a", "b"), [120.0, 40.0],
                                       iob=iob))
        assert [r.reason for r in result.rejected] == ["bad-channel"]
        # the deep-hypo healthy row still alerts on the same tick
        assert result.alerts["CAWOT"][1]

    def test_non_finite_timestamp_rejects_whole_tick(self):
        service = MonitorService(_monitors())
        result = service.process(_tick(float("nan"), ("a", "b"),
                                       [120.0, 130.0]))
        assert [r.reason for r in result.rejected] == ["bad-time"] * 2
        assert service.health == "DEGRADED"
        assert set(result.alerts) == set(_monitors())
        for flags in result.alerts.values():
            assert not flags.any()

    def test_unknown_user_quarantined_without_autoconnect(self):
        service = MonitorService(_monitors(), auto_connect=False)
        service.connect("a")
        result = service.process(_tick(0.0, ("a", "ghost"), [120.0, 130.0]))
        assert [r.reason for r in result.rejected] == ["unknown-user"]
        assert result.rejected[0].user_id == "ghost"
        assert service.n_users == 1

    def test_stale_timestamp_quarantined(self):
        service = MonitorService(_monitors())
        service.process(_tick(10.0, ("a",), [120.0]))
        replayed = service.process(_tick(10.0, ("a",), [125.0]))
        assert [r.reason for r in replayed.rejected] == ["stale-timestamp"]
        older = service.process(_tick(5.0, ("a",), [125.0]))
        assert [r.reason for r in older.rejected] == ["stale-timestamp"]
        # the redelivered ticks changed nothing
        assert service.context_window("a").bg[-1, 0] == 120.0
        fresh = service.process(_tick(15.0, ("a",), [130.0]))
        assert fresh.rejected == []
        assert service.context_window("a").bg_rate[-1, 0] == 2.0

    def test_health_recovers_after_quiet_window(self):
        service = MonitorService(_monitors(), health_window=3)
        assert service.health == "OK"
        service.process(_tick(0.0, ("a",), [np.nan]))
        assert service.health == "DEGRADED"
        for step in range(1, 3):
            service.process(_tick(step * 5.0, ("a",), [120.0]))
            assert service.health == "DEGRADED"
        service.process(_tick(15.0, ("a",), [120.0]))
        assert service.health == "OK"
        assert service.rejected_total == 1
        assert service.rejected_by_reason == {"bad-glucose": 1}

    def test_dead_letter_log_is_bounded(self):
        service = MonitorService(_monitors(), dead_letter_capacity=4)
        for step in range(10):
            service.process(_tick(step * 5.0, ("a", "b"),
                                  [np.nan, 120.0]))
        assert len(service.dead_letters) == 4
        assert service.rejected_total == 10
        assert all(r.reason == "bad-glucose" for r in service.dead_letters)

    def test_mixed_tick_keeps_healthy_verdicts_identical(self):
        """Quarantine must not perturb healthy rows' verdicts."""
        clean = MonitorService(_monitors())
        degraded = MonitorService(_monitors())
        for step in range(4):
            t = step * 5.0
            bgs = [40.0 + step, 200.0 - step]
            reference = clean.process(_tick(t, ("x", "y"), bgs))
            result = degraded.process(
                _tick(t, ("x", "y", "junk"), bgs + [np.nan]))
            for name in reference.alerts:
                np.testing.assert_array_equal(
                    reference.alerts[name], result.alerts[name][:2])
                np.testing.assert_array_equal(
                    reference.hazards[name], result.hazards[name][:2])


class TestReconnectScrub:
    def test_reconnecting_user_inherits_nothing(self):
        """Regression: disconnect must scrub ring rows, BG memory and
        alert streams so a reconnecting user starts truly fresh."""
        service = MonitorService(_monitors())
        # build up history + an emitted (now suppressed) alert stream
        for step in range(5):
            service.process(_tick(step * 5.0, ("a",), [40.0]))
        service.disconnect("a")
        # reconnect (recycles the same slot) and tick once, healthy
        result = service.process(_tick(25.0, ("a",), [120.0]))
        window = service.context_window("a")
        assert window.shape == (1, 1)  # no stale ring rows
        assert window.bg_rate[0, 0] == 0.0  # first tick, not a delta
        assert result.rejected == []  # last-tick stamp was scrubbed too
        # the old dedup stream is gone: a fresh alert emits immediately
        alert = service.process(_tick(30.0, ("a",), [40.0]))
        assert alert.alerts["CAWOT"][0]
        assert len(alert.events) >= 1

    def test_recycled_slot_scrubbed_for_new_user(self):
        service = MonitorService(_monitors())
        service.process(_tick(0.0, ("old",), [40.0]))
        service.disconnect("old")
        assert service.alert_manager.n_streams == 0  # drop_user ran
        service.connect("new")  # recycles the slot (clear_slot ran)
        result = service.process(_tick(5.0, ("new",), [120.0]))
        window = service.context_window("new")
        assert window.shape == (1, 1)
        assert window.bg[0, 0] == 120.0
        assert result.rejected == []


class TestContextBatchAppend:
    def test_incremental_append_equals_from_traces(
            self, tiny_campaign_traces):
        traces = tiny_campaign_traces[:3]
        whole = ContextBatch.from_traces(traces)
        ticks = [ContextBatch(t=whole.t[s:s + 1],
                              features=whole.features[s:s + 1],
                              action=whole.action[s:s + 1], dt=whole.dt)
                 for s in range(whole.shape[0])]
        folded = ticks[0]
        for tick in ticks[1:]:
            folded = folded.append(tick)
        np.testing.assert_array_equal(folded.features, whole.features)
        np.testing.assert_array_equal(folded.t, whole.t)
        np.testing.assert_array_equal(folded.action, whole.action)
        np.testing.assert_array_equal(folded.dt, whole.dt)

    def test_append_validates_columns_and_dt(self, tiny_campaign_traces):
        batch = ContextBatch.from_traces(tiny_campaign_traces[:2])
        narrow = batch.take_columns(np.array([0]))
        with pytest.raises(ValueError, match="column count"):
            batch.append(narrow)
        other_dt = ContextBatch(t=batch.t, features=batch.features,
                                action=batch.action, dt=batch.dt * 2.0)
        with pytest.raises(ValueError, match="dt mismatch"):
            batch.append(other_dt)
