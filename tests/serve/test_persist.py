"""Persistence primitives: journal framing, atomic snapshots, recovery."""

import os
import pickle
import struct
import zlib

import numpy as np
import pytest

from repro.baselines import GuidelineMonitor
from repro.core import cawot_monitor, cawt_monitor
from repro.core.monitor import NO_ALERT, SafetyMonitor
from repro.serve import (JournalCorruptError, MonitorService,
                         PersistenceError, SnapshotError, TickBatch,
                         TickJournal, replay_log)
from repro.serve.persist import (list_segments, list_snapshots, read_journal,
                                 read_snapshot, segment_path, snapshot_path,
                                 write_snapshot)
from repro.simulation import iter_trace_ticks, replay_campaign


def _monitors():
    return {"CAWT": cawt_monitor({"beta1": 75.0}),
            "CAWOT": cawot_monitor(),
            "Guideline": GuidelineMonitor()}


def _tick(t, user_ids, bg):
    n = len(user_ids)
    return TickBatch(t=t, user_ids=tuple(user_ids),
                     cgm=np.asarray(bg, dtype=float), iob=np.full(n, 1.0),
                     iob_rate=np.zeros(n), rate=np.full(n, 1.2),
                     bolus=np.zeros(n), action=np.full(n, 4))


class TestTickJournal:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "j.wal")
        with TickJournal(path) as journal:
            journal.append("tick", {"t": 0.0, "cgm": np.arange(3.0)})
            journal.append("connect", "user-7")
            journal.append("disconnect", ("tuple", 3))
        result = read_journal(path)
        assert result.torn_tail_bytes == 0
        assert result.next_seq == 3
        kinds = [kind for kind, _ in result.records]
        assert kinds == ["tick", "connect", "disconnect"]
        np.testing.assert_array_equal(result.records[0][1]["cgm"],
                                      np.arange(3.0))
        assert result.records[1][1] == "user-7"

    def test_reopen_resumes_sequence(self, tmp_path):
        path = str(tmp_path / "j.wal")
        with TickJournal(path) as journal:
            journal.append("a", 1)
        with TickJournal(path) as journal:
            assert journal.next_seq == 1
            journal.append("b", 2)
        result = read_journal(path)
        assert [k for k, _ in result.records] == ["a", "b"]

    @pytest.mark.parametrize("cut", [1, 3, 10])
    def test_torn_tail_discarded_and_truncated(self, tmp_path, cut):
        path = str(tmp_path / "j.wal")
        with TickJournal(path) as journal:
            journal.append("keep", {"x": np.ones(4)})
            journal.append("torn", {"y": np.zeros(4)})
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - cut)
        result = read_journal(path, truncate_tail=True)
        assert [k for k, _ in result.records] == ["keep"]
        assert result.torn_tail_bytes > 0
        # physically truncated: appending resumes cleanly after "keep"
        with TickJournal(path, next_seq=result.next_seq) as journal:
            journal.append("after", None)
        again = read_journal(path)
        assert [k for k, _ in again.records] == ["keep", "after"]
        assert again.torn_tail_bytes == 0

    def test_mid_journal_corruption_is_loud(self, tmp_path):
        path = str(tmp_path / "j.wal")
        with TickJournal(path) as journal:
            journal.append("first", b"A" * 64)
            journal.append("second", b"B" * 64)
        # flip a byte inside the FIRST record's payload: valid bytes
        # follow, so this is bit rot, not a torn tail
        with open(path, "r+b") as fh:
            fh.seek(30)
            byte = fh.read(1)
            fh.seek(30)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(JournalCorruptError, match="checksum mismatch"):
            read_journal(path)

    def test_bad_header_is_loud(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_bytes(b"NOPE" + b"\x01\x00\x00\x00")
        with pytest.raises(JournalCorruptError, match="bad magic"):
            read_journal(str(path))
        short = tmp_path / "short.wal"
        short.write_bytes(b"RP")
        with pytest.raises(JournalCorruptError, match="shorter than"):
            read_journal(str(short))

    def test_schema_mismatch_is_loud(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_bytes(struct.pack("<4sI", b"RPWJ", 999))
        with pytest.raises(JournalCorruptError, match="schema"):
            read_journal(str(path))

    def test_sequence_gap_is_loud(self, tmp_path):
        """Hand-crafted journal whose records jump seq 0 -> 2: framing is
        intact, but a record was lost — corruption, not a tail."""
        path = tmp_path / "j.wal"
        frames = b""
        for seq in (0, 2):
            blob = pickle.dumps((seq, "tick", None),
                                protocol=pickle.HIGHEST_PROTOCOL)
            frames += struct.pack("<II", len(blob), zlib.crc32(blob)) + blob
        path.write_bytes(struct.pack("<4sI", b"RPWJ", 1) + frames)
        with pytest.raises(JournalCorruptError, match="sequence gap"):
            read_journal(str(path))

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = TickJournal(str(tmp_path / "j.wal"))
        journal.close()
        with pytest.raises(PersistenceError, match="closed"):
            journal.append("tick", None)


class TestSnapshot:
    def test_round_trip_is_bit_exact(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        state = {"data": np.linspace(0.0, 1.0, 37).reshape(37, 1),
                 "counts": np.arange(5, dtype=np.int64),
                 "nested": {"deque": [1, 2, 3], "t": -np.inf}}
        write_snapshot(path, state)
        loaded = read_snapshot(path)
        np.testing.assert_array_equal(loaded["data"], state["data"])
        assert loaded["data"].dtype == state["data"].dtype
        np.testing.assert_array_equal(loaded["counts"], state["counts"])
        assert loaded["nested"] == state["nested"]
        # no tmp residue after a successful publish
        assert not os.path.exists(path + ".tmp")

    def test_truncated_snapshot_is_loud(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        write_snapshot(path, {"x": np.ones(100)})
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[:len(blob) - 17])
        with pytest.raises(SnapshotError, match="truncated"):
            read_snapshot(path)

    def test_corrupted_snapshot_is_loud(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        write_snapshot(path, {"x": np.ones(100)})
        with open(path, "r+b") as fh:
            fh.seek(os.path.getsize(path) // 2)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(path)

    def test_bad_magic_and_missing_file_are_loud(self, tmp_path):
        path = tmp_path / "s.ckpt"
        path.write_bytes(b"JUNKJUNKJUNKJUNKJUNKJUNK")
        with pytest.raises(SnapshotError, match="bad magic"):
            read_snapshot(str(path))
        with pytest.raises(SnapshotError, match="unreadable"):
            read_snapshot(str(tmp_path / "nowhere.ckpt"))


class TestServicePersistence:
    def test_refuses_dirty_directory(self, tmp_path):
        directory = str(tmp_path / "state")
        service = MonitorService(_monitors(), persist_dir=directory)
        service.process(_tick(0.0, ("a",), [120.0]))
        service.close()
        with pytest.raises(PersistenceError, match="already holds"):
            MonitorService(_monitors(), persist_dir=directory)

    def test_recover_empty_state_directory(self, tmp_path):
        directory = str(tmp_path / "state")
        MonitorService(_monitors(), persist_dir=directory).close()
        recovered = MonitorService.recover(directory)
        assert recovered.ticks_processed == 0
        assert recovered.recovery_report.ticks_replayed == 0
        recovered.process(_tick(0.0, ("a",), [120.0]))  # journal reopened

    def test_recover_missing_directory_is_loud(self, tmp_path):
        with pytest.raises(PersistenceError, match="no service config"):
            MonitorService.recover(str(tmp_path / "nowhere"))

    def test_snapshot_rotates_and_prunes(self, tmp_path):
        directory = str(tmp_path / "state")
        service = MonitorService(_monitors(), persist_dir=directory)
        for step in range(3):
            service.process(_tick(step * 5.0, ("a",), [120.0 + step]))
        service.snapshot()
        for step in range(3, 5):
            service.process(_tick(step * 5.0, ("a",), [120.0 + step]))
        service.snapshot()
        # only the newest checkpoint and its live segment survive
        assert [seq for seq, _ in list_snapshots(directory)] == [2]
        assert [seq for seq, _ in list_segments(directory)] == [2]
        assert service.snapshots_written == 2

    def test_config_round_trips_the_knobs(self, tmp_path):
        directory = str(tmp_path / "state")
        service = MonitorService(
            _monitors(), dt=10.0, window=7, dedup_window=30.0,
            escalate_after=None, auto_connect=False,
            dead_letter_capacity=9, health_window=4,
            persist_dir=directory)
        service.connect("a")
        service.process(_tick(0.0, ("a",), [130.0]))
        service.close()
        recovered = MonitorService.recover(directory)
        assert recovered.dt == 10.0
        assert recovered.window == 7
        assert recovered.alert_manager.window == 30.0
        assert recovered.alert_manager.escalate_after is None
        assert recovered.auto_connect is False
        assert recovered.dead_letters.maxlen == 9
        assert recovered.health_window == 4
        assert recovered.n_users == 1

    def test_degraded_counters_survive_recovery(self, tmp_path):
        directory = str(tmp_path / "state")
        service = MonitorService(_monitors(), persist_dir=directory)
        service.process(_tick(0.0, ("a", "b"), [np.nan, 120.0]))
        service.snapshot()
        service.process(_tick(5.0, ("a", "b"), [-4.0, 121.0]))
        service.close()
        recovered = MonitorService.recover(directory)
        assert recovered.rejected_total == 2
        assert recovered.rejected_by_reason == {"bad-glucose": 2}
        assert len(recovered.dead_letters) == 2
        assert recovered.health == "DEGRADED"

    def test_non_serializable_registry_requires_monitors(self, tmp_path):
        class Custom(SafetyMonitor):
            stateless = True

            def observe(self, ctx):
                return NO_ALERT

        directory = str(tmp_path / "state")
        monitors = {"custom": Custom()}
        service = MonitorService(monitors, persist_dir=directory)
        service.process(_tick(0.0, ("a",), [120.0]))
        service.close()
        with pytest.raises(PersistenceError, match="monitors="):
            MonitorService.recover(directory)
        recovered = MonitorService.recover(directory, monitors=monitors)
        assert recovered.ticks_processed == 1

    def test_process_after_close_is_loud(self, tmp_path):
        service = MonitorService(_monitors(),
                                 persist_dir=str(tmp_path / "state"))
        service.close()
        with pytest.raises(PersistenceError, match="closed"):
            service.process(_tick(0.0, ("a",), [120.0]))

    def test_crash_between_snapshot_and_rotation(self, tmp_path):
        """Snapshot published but the fresh segment never created (the
        narrowest crash window in snapshot()): recovery starts a new
        segment at the checkpoint and loses nothing."""
        directory = str(tmp_path / "state")
        service = MonitorService(_monitors(), persist_dir=directory)
        service.process(_tick(0.0, ("a",), [120.0]))
        service.snapshot()
        service.close()
        os.remove(segment_path(directory, 1))  # the post-rotation segment
        recovered = MonitorService.recover(directory)
        assert recovered.ticks_processed == 1
        result = recovered.process(_tick(5.0, ("a",), [130.0]))
        assert result.rejected == []

    def test_deleted_snapshot_with_orphan_segment_is_loud(self, tmp_path):
        """Segment 1 without snapshot 1 or segment 0: durable history is
        gone and recovery must say so, not serve a fresh fleet."""
        directory = str(tmp_path / "state")
        service = MonitorService(_monitors(), persist_dir=directory)
        service.process(_tick(0.0, ("a",), [120.0]))
        service.snapshot()
        service.process(_tick(5.0, ("a",), [121.0]))
        service.close()
        os.remove(snapshot_path(directory, 1))
        with pytest.raises(JournalCorruptError, match="jump"):
            MonitorService.recover(directory)


class TestRecoveredReplayLog:
    """Satellite: replay_log drives a recovered service byte-identically."""

    def test_recovered_service_continues_byte_identical(
            self, tmp_path, tiny_campaign_traces):
        traces = tiny_campaign_traces[:6]
        monitors = _monitors()
        ticks = list(iter_trace_ticks(traces))
        user_ids = tuple(f"trace-{i}" for i in range(len(traces)))

        def batch(trace_tick):
            return TickBatch(t=trace_tick.t, user_ids=user_ids,
                             cgm=trace_tick.cgm, iob=trace_tick.iob,
                             iob_rate=trace_tick.iob_rate,
                             rate=trace_tick.rate, bolus=trace_tick.bolus,
                             action=trace_tick.action)

        kill_after = len(ticks) // 2
        directory = str(tmp_path / "state")
        service = MonitorService(monitors, persist_dir=directory,
                                 snapshot_every=3)
        for trace_tick in ticks[:kill_after]:
            service.process(batch(trace_tick))
        del service  # hard kill

        # uninterrupted reference over the full log
        reference = MonitorService(monitors)
        ref_results = [reference.process(batch(tt)) for tt in ticks]

        recovered = MonitorService.recover(directory)
        assert recovered.recovery_report.snapshot_seq >= 1
        for i, trace_tick in enumerate(ticks[kill_after:],
                                       start=kill_after):
            result = recovered.process(batch(trace_tick))
            ref = ref_results[i]
            assert result.t == ref.t
            assert result.rejected == []
            for name in ref.alerts:
                np.testing.assert_array_equal(result.alerts[name],
                                              ref.alerts[name])
                np.testing.assert_array_equal(result.hazards[name],
                                              ref.hazards[name])
            assert result.events == ref.events

    def test_replay_log_redelivery_into_recovered_service(
            self, tmp_path, tiny_campaign_traces):
        """At-least-once redelivery of the WHOLE log into a recovered
        service: already-applied ticks quarantine as stale, the rest
        lands byte-identical to offline replay_campaign."""
        traces = tiny_campaign_traces[:6]
        monitors = _monitors()
        ticks = list(iter_trace_ticks(traces))
        user_ids = tuple(f"trace-{i}" for i in range(len(traces)))
        kill_after = len(ticks) // 2
        directory = str(tmp_path / "state")
        service = MonitorService(monitors, persist_dir=directory)
        for trace_tick in ticks[:kill_after]:
            service.process(TickBatch(
                t=trace_tick.t, user_ids=user_ids, cgm=trace_tick.cgm,
                iob=trace_tick.iob, iob_rate=trace_tick.iob_rate,
                rate=trace_tick.rate, bolus=trace_tick.bolus,
                action=trace_tick.action))
        del service  # hard kill

        recovered = MonitorService.recover(directory)
        served = replay_log(monitors, traces, service=recovered)
        offline = replay_campaign(monitors, traces)
        for name in monitors:
            for served_alerts, offline_alerts in zip(served[name],
                                                     offline[name]):
                # redelivered prefix: quarantined, reads silent
                assert not served_alerts[:kill_after].any()
                # the live tail is the offline stream, element-wise
                np.testing.assert_array_equal(
                    served_alerts[kill_after:],
                    offline_alerts[kill_after:])
        assert recovered.rejected_by_reason.get("stale-timestamp", 0) > 0