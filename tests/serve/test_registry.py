"""MonitorRegistry: exact round-trips of trained monitor state."""

import json
import os

import numpy as np
import pytest

from repro.baselines import GuidelineMonitor, MPCMonitor
from repro.core import ContextAwareMonitor, cawot_monitor, cawt_monitor
from repro.core.monitor import SafetyMonitor, NO_ALERT
from repro.core.rules import aps_rules
from repro.ml import train_dt_monitor, train_lstm_monitor, train_mlp_monitor
from repro.ml.training import monitor_state
from repro.serve import MonitorRegistry, RegistryError
from repro.simulation import replay_campaign


@pytest.fixture(scope="module")
def trained(tiny_campaign_traces):
    """Small but genuinely trained ML monitors over the shared campaign."""
    traces = tiny_campaign_traces[:16]
    return {
        "DT": train_dt_monitor(traces, max_depth=4),
        "MLP": train_mlp_monitor(traces, seed=0, max_epochs=2,
                                 hidden=(16, 8)),
        "LSTM": train_lstm_monitor(traces, seed=0, max_epochs=2,
                                   hidden=(8,), k=4),
    }


@pytest.fixture(scope="module")
def registry(trained):
    return MonitorRegistry({
        "CAWT": cawt_monitor({"beta1": 75.0, "beta21": 0.4}),
        "CAWOT": cawot_monitor(),
        "Guideline": GuidelineMonitor(lambda_10=85.0, lambda_90=165.0),
        "MPC": MPCMonitor(horizon_steps=3),
        **trained,
    })


@pytest.fixture(scope="module")
def reloaded(registry, tmp_path_factory):
    directory = tmp_path_factory.mktemp("registry")
    registry.save(str(directory))
    return MonitorRegistry.load(str(directory))


class TestRoundTrip:
    def test_names_and_order_survive(self, registry, reloaded):
        assert reloaded.names == registry.names

    @pytest.mark.parametrize("name", ["DT", "MLP", "LSTM"])
    def test_ml_state_is_bit_identical(self, registry, reloaded, name):
        before = monitor_state(registry[name])
        after = monitor_state(reloaded[name])
        assert len(before) == len(after)
        for a, b in zip(before, after):
            np.testing.assert_array_equal(a, b)

    def test_context_aware_thresholds_survive(self, registry, reloaded):
        assert reloaded["CAWT"].thresholds == registry["CAWT"].thresholds
        assert reloaded["CAWT"].bg_target == registry["CAWT"].bg_target
        assert reloaded["CAWT"].name == "CAWT"
        assert reloaded["CAWOT"].thresholds == registry["CAWOT"].thresholds

    def test_constructor_baselines_survive(self, registry, reloaded):
        for param in ("bg_low", "bg_high", "lambda_10", "lambda_90", "alpha"):
            assert getattr(reloaded["Guideline"], param) == \
                getattr(registry["Guideline"], param)
        assert reloaded["MPC"].horizon_steps == 3

    def test_reloaded_verdicts_replay_identically(self, registry, reloaded,
                                                  tiny_campaign_traces):
        traces = tiny_campaign_traces[:6]
        before = replay_campaign(dict(registry.items()), traces)
        after = replay_campaign(dict(reloaded.items()), traces)
        for name in registry.names:
            for a, b in zip(before[name], after[name]):
                np.testing.assert_array_equal(a, b)

    def test_statelessness_survives(self, registry, reloaded):
        for name in registry.names:
            assert reloaded[name].stateless == registry[name].stateless


class TestErrors:
    def test_empty_registry_refused(self):
        with pytest.raises(RegistryError, match="at least one"):
            MonitorRegistry({})

    def test_unsupported_monitor_refused(self, tmp_path):
        class Custom(SafetyMonitor):
            def observe(self, ctx):
                return NO_ALERT

        with pytest.raises(RegistryError, match="Custom"):
            MonitorRegistry({"custom": Custom()}).save(str(tmp_path))

    def test_custom_rule_subset_refused(self, tmp_path):
        subset = ContextAwareMonitor(rules=aps_rules()[:3])
        with pytest.raises(NotImplementedError, match="rule subset"):
            MonitorRegistry({"subset": subset}).save(str(tmp_path))

    def test_missing_directory(self, tmp_path):
        with pytest.raises(RegistryError, match="no registry manifest"):
            MonitorRegistry.load(str(tmp_path / "nowhere"))

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "registry.json").write_text("{not json")
        with pytest.raises(RegistryError, match="unreadable"):
            MonitorRegistry.load(str(tmp_path))

    def test_schema_mismatch(self, tmp_path):
        (tmp_path / "registry.json").write_text(
            json.dumps({"schema": 999, "monitors": []}))
        with pytest.raises(RegistryError, match="schema"):
            MonitorRegistry.load(str(tmp_path))

    def test_missing_arrays_file(self, registry, tmp_path):
        registry.save(str(tmp_path))
        manifest = json.loads((tmp_path / "registry.json").read_text())
        for entry in manifest["monitors"]:
            if entry["arrays"]:
                os.remove(tmp_path / entry["arrays"])
                break
        with pytest.raises(RegistryError, match="missing arrays"):
            MonitorRegistry.load(str(tmp_path))

    def test_unknown_kind_in_manifest(self, tmp_path):
        (tmp_path / "registry.json").write_text(json.dumps(
            {"schema": 1, "monitors": [{"name": "x", "kind": "quantum",
                                        "config": {}, "arrays": None}]}))
        with pytest.raises(RegistryError, match="unknown monitor kind"):
            MonitorRegistry.load(str(tmp_path))

    def test_truncated_npz_is_a_registry_error(self, registry, tmp_path):
        """A half-written arrays file must surface as RegistryError, not
        whatever zipfile/pickle exception numpy happens to raise."""
        registry.save(str(tmp_path))
        manifest = json.loads((tmp_path / "registry.json").read_text())
        victim = next(entry["arrays"] for entry in manifest["monitors"]
                      if entry["arrays"])
        path = tmp_path / victim
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(RegistryError, match="corrupt arrays"):
            MonitorRegistry.load(str(tmp_path))

    def test_manifest_kind_mismatch_is_a_registry_error(
            self, registry, tmp_path):
        """Arrays saved for one kind, manifest claiming another: the
        rebuild mismatch must be typed, never a bare KeyError."""
        registry.save(str(tmp_path))
        manifest = json.loads((tmp_path / "registry.json").read_text())
        for entry in manifest["monitors"]:
            if entry["kind"] == "dt":
                entry["kind"] = "mlp"  # dt arrays can't rebuild an mlp
        (tmp_path / "registry.json").write_text(json.dumps(manifest))
        with pytest.raises(RegistryError, match="cannot rebuild"):
            MonitorRegistry.load(str(tmp_path))


class TestTreeNodeArrays:
    def test_from_node_arrays_round_trip_predicts_identically(
            self, trained, tiny_campaign_traces):
        from repro.ml.tree import DecisionTreeClassifier

        tree = trained["DT"].model
        rebuilt = DecisionTreeClassifier.from_node_arrays(
            *tree.node_arrays(), tree.classes_)
        rng = np.random.default_rng(0)
        X = rng.normal(scale=100.0, size=(256, 10))
        np.testing.assert_array_equal(rebuilt.predict(X), tree.predict(X))
        for a, b in zip(tree.node_arrays(), rebuilt.node_arrays()):
            np.testing.assert_array_equal(a, b)

    def test_malformed_preorder_rejected(self):
        from repro.ml.tree import DecisionTreeClassifier

        with pytest.raises(ValueError, match="zero nodes"):
            DecisionTreeClassifier.from_node_arrays(
                [], [], np.zeros((0, 2)), [0, 1])
        with pytest.raises(ValueError, match="unclosed"):
            DecisionTreeClassifier.from_node_arrays(
                [0, -1], [1.0, 0.0], np.ones((2, 2)), [0, 1])
        with pytest.raises(ValueError, match="without a parent"):
            DecisionTreeClassifier.from_node_arrays(
                [-1, -1], [0.0, 0.0], np.ones((2, 2)), [0, 1])
