"""The shared tiny-campaign grid definition.

Lives in its own uniquely-named module (not ``conftest``) so test files
in any subdirectory can import it by name: with per-directory
``conftest.py`` files and no ``__init__.py`` packages, the module name
``conftest`` resolves to whichever test directory landed on ``sys.path``
first — a race this module's name sidesteps.
"""

from repro.fi import CampaignConfig, generate_campaign

#: the shared small campaign grid: 14 fault configs x 2 timings x 2 initial
#: BGs = 56 scenarios against Glucosym patient B (hazardous and safe mix)
TINY_CAMPAIGN_CONFIG = CampaignConfig(init_glucose_values=(120.0, 200.0),
                                      timing_choices=((0, 24), (40, 30)))

TINY_PLATFORM = "glucosym"
TINY_PATIENT = "B"


def tiny_campaign_scenarios():
    """The scenario list behind the session ``tiny_campaign_traces``
    fixture (plain helper so tests can rebuild the matching
    CampaignPlan)."""
    return generate_campaign(TINY_CAMPAIGN_CONFIG)
