"""Tests for the parallel campaign execution engine.

Trace equality uses the shared ``assert_traces_equal`` fixture from the
session conftest (the same assertion every parity suite uses).
"""

import numpy as np
import pytest

from repro.controllers import ControlAction
from repro.core.context import ContextVector
from repro.core.mitigation import Mitigator
from repro.core.monitor import MonitorVerdict, NO_ALERT, SafetyMonitor
from repro.fi import CampaignConfig, generate_campaign
from repro.hazards import HazardType
from repro.simulation import (
    BaselineCache,
    CampaignPlan,
    CountingSink,
    ListSink,
    NpzDirectorySink,
    ParallelExecutor,
    ProfileCache,
    SerialExecutor,
    SimRun,
    get_executor,
    plan_campaign,
    plan_fault_free,
    run_campaign,
    run_fault_free,
    shard_plan,
)


def small_campaign(n=6):
    scenarios = generate_campaign(CampaignConfig(
        stride=1, init_glucose_values=(100.0, 160.0),
        timing_choices=((5, 4), (10, 6))))
    return scenarios[:n]


class TestPlanning:
    def test_plan_is_patient_major(self):
        scenarios = small_campaign(3)
        plan = plan_campaign("glucosym", ["A", "B"], scenarios, n_steps=20)
        assert len(plan) == 6
        assert [r.patient_id for r in plan.runs] == ["A"] * 3 + ["B"] * 3
        assert [r.label for r in plan.runs[:3]] == [s.label for s in scenarios]

    def test_fault_free_plan(self):
        plan = plan_fault_free("glucosym", ["A"], (100.0, 160.0), n_steps=20)
        assert all(r.fault is None for r in plan.runs)
        assert [r.init_glucose for r in plan.runs] == [100.0, 160.0]

    def test_invalid_n_steps(self):
        with pytest.raises(ValueError):
            CampaignPlan(platform="glucosym", runs=(), n_steps=0)


class TestSharding:
    def plan(self, n):
        runs = tuple(SimRun(patient_id="A", init_glucose=120.0,
                            label=f"r{i}") for i in range(n))
        return CampaignPlan(platform="glucosym", runs=runs, n_steps=20)

    def test_chunks_concatenate_to_plan(self):
        plan = self.plan(17)
        for n_chunks in (1, 2, 3, 5, 17, 40):
            chunks = shard_plan(plan, n_chunks)
            flat = [r for chunk in chunks for r in chunk]
            assert tuple(flat) == plan.runs

    def test_chunk_sizes_balanced(self):
        chunks = shard_plan(self.plan(10), 3)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 10

    def test_deterministic(self):
        plan = self.plan(23)
        assert shard_plan(plan, 4) == shard_plan(plan, 4)

    def test_never_more_chunks_than_runs(self):
        assert len(shard_plan(self.plan(3), 16)) == 3

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            shard_plan(self.plan(3), 0)


class TestParity:
    """The acceptance property: worker count never changes the traces."""

    def test_serial_vs_parallel_identical(self, assert_traces_equal):
        scenarios = small_campaign()
        plan = plan_campaign("glucosym", ["A", "B"], scenarios, n_steps=25)
        serial = SerialExecutor().run(plan)
        parallel = ParallelExecutor(workers=2).run(plan)
        assert len(serial) == len(parallel) == len(plan)
        for s, p in zip(serial, parallel):
            assert_traces_equal(s, p)

    def test_worker_count_invariance(self, assert_traces_equal):
        scenarios = small_campaign(4)
        plan = plan_campaign("glucosym", ["A"], scenarios, n_steps=25)
        two = ParallelExecutor(workers=2, chunks_per_worker=1).run(plan)
        three = ParallelExecutor(workers=3, chunks_per_worker=2).run(plan)
        for a, b in zip(two, three):
            assert_traces_equal(a, b)

    def test_run_campaign_workers_kwarg(self, assert_traces_equal):
        scenarios = small_campaign(4)
        serial = run_campaign("glucosym", ["A"], scenarios, n_steps=25)
        parallel = run_campaign("glucosym", ["A"], scenarios, n_steps=25,
                                workers=2)
        for s, p in zip(serial, parallel):
            assert_traces_equal(s, p)

    def test_get_executor(self):
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(4), ParallelExecutor)
        with pytest.raises(ValueError):
            get_executor(0)


class TestRunMeals:
    """SimRun-level meal plans (the scenario-search path) keep parity."""

    def meal_plan(self):
        from repro.patients import Meal
        runs = (
            SimRun(patient_id="A", init_glucose=120.0, label="no-meal"),
            SimRun(patient_id="A", init_glucose=120.0, label="meal-early",
                   meals=(Meal(time=25.0, carbs=60.0),)),
            SimRun(patient_id="A", init_glucose=160.0, label="meal-late",
                   meals=(Meal(time=100.0, carbs=40.0),)),
        )
        return CampaignPlan(platform="glucosym", runs=runs, n_steps=40)

    def test_meals_affect_the_trace(self):
        traces = SerialExecutor().run(self.meal_plan())
        base, early, _ = traces
        assert not np.array_equal(base.true_bg, early.true_bg)
        # carbs raise glucose relative to the meal-free run
        assert early.true_bg[10:].max() > base.true_bg[10:].max()

    def test_meal_parity_across_executors(self, assert_traces_equal):
        plan = self.meal_plan()
        scalar = SerialExecutor(batch_size=1).run(plan)
        vector = SerialExecutor(batch_size=8).run(plan)
        parallel = ParallelExecutor(workers=2, batch_size=2).run(plan)
        for s, v, p in zip(scalar, vector, parallel):
            assert_traces_equal(s, v)
            assert_traces_equal(s, p)


class TestSinks:
    def test_list_sink_matches_return_value(self, assert_traces_equal):
        scenarios = small_campaign(3)
        traces = run_campaign("glucosym", ["A"], scenarios, n_steps=20)
        sink = ListSink()
        result = run_campaign("glucosym", ["A"], scenarios, n_steps=20,
                              sink=sink)
        assert result is None
        assert len(sink.traces) == 3
        for a, b in zip(traces, sink.traces):
            assert_traces_equal(a, b)

    def test_counting_sink(self):
        sink = CountingSink()
        run_campaign("glucosym", ["A"], small_campaign(3), n_steps=20,
                     sink=sink, workers=2)
        assert sink.n_traces == 3
        assert 0 <= sink.n_hazardous <= 3
        assert 0.0 <= sink.hazard_fraction <= 1.0

    def test_npz_directory_sink(self, tmp_path):
        scenarios = small_campaign(2)
        traces = run_campaign("glucosym", ["A"], scenarios, n_steps=20)
        with NpzDirectorySink(str(tmp_path)) as sink:
            run_campaign("glucosym", ["A"], scenarios, n_steps=20, sink=sink)
        files = sorted(tmp_path.glob("trace_*.npz"))
        assert len(files) == 2
        payload = np.load(files[0])
        assert str(payload["patient_id"]) == "A"
        assert np.array_equal(payload["true_bg"], traces[0].true_bg)
        assert int(payload["fault_start"]) == traces[0].fault.start_step

    def test_npz_sink_refuses_dirty_directory(self, tmp_path):
        run_campaign("glucosym", ["A"], small_campaign(1), n_steps=20,
                     sink=NpzDirectorySink(str(tmp_path)))
        with pytest.raises(FileExistsError, match="intermix"):
            NpzDirectorySink(str(tmp_path))

    def test_slow_sink_parallel_order_preserved(self, assert_traces_equal):
        """A consumer slower than the workers still sees plan order (the
        bounded in-flight window collects chunks in submission order)."""
        import time

        class SlowSink(ListSink):
            def write(self, trace):
                time.sleep(0.01)
                super().write(trace)

        scenarios = small_campaign(6)
        expected = run_campaign("glucosym", ["A"], scenarios, n_steps=20)
        sink = SlowSink()
        run_campaign("glucosym", ["A"], scenarios, n_steps=20,
                     sink=sink, executor=ParallelExecutor(
                         workers=2, chunks_per_worker=3))
        assert [t.label for t in sink.traces] == [t.label for t in expected]
        for a, b in zip(expected, sink.traces):
            assert_traces_equal(a, b)


class TestCaches:
    def test_profile_cache(self):
        cache = ProfileCache()
        calls = []

        def compute():
            calls.append(1)
            return {"basal": 1.0}

        first = cache.get_or_compute(("p", 120.0), compute)
        second = cache.get_or_compute(("p", 120.0), compute)
        assert first == second == {"basal": 1.0}
        assert len(calls) == 1
        first["basal"] = 99.0  # returned dicts are copies
        assert cache.get_or_compute(("p", 120.0), compute) == {"basal": 1.0}
        cache.clear()
        assert len(cache) == 0

    def test_baseline_cache_hits(self):
        cache = BaselineCache()
        first = run_fault_free("glucosym", ["A"], (100.0,), n_steps=20,
                               cache=cache)
        assert cache.misses == 1 and cache.hits == 0 and len(cache) == 1
        second = run_fault_free("glucosym", ["A"], (100.0,), n_steps=20,
                                cache=cache)
        assert cache.hits == 1
        assert first[0] is second[0]

    def test_baseline_cache_distinguishes_configs(self):
        cache = BaselineCache()
        run_fault_free("glucosym", ["A"], (100.0,), n_steps=20, cache=cache)
        run_fault_free("glucosym", ["A"], (100.0,), n_steps=25, cache=cache)
        run_fault_free("glucosym", ["A"], (120.0,), n_steps=20, cache=cache)
        assert len(cache) == 3 and cache.hits == 0

    def test_monitored_runs_bypass_cache(self):
        from repro.core import cawot_monitor
        cache = BaselineCache()
        run_fault_free("glucosym", ["A"], (100.0,), n_steps=20, cache=cache,
                       monitor_factory=lambda pid: cawot_monitor())
        assert len(cache) == 0

    def test_cache_none_disables(self):
        traces = run_fault_free("glucosym", ["A"], (100.0,), n_steps=20,
                                cache=None)
        assert len(traces) == 1


class StickyMonitor(SafetyMonitor):
    """Latches permanently after the first high reading — until reset."""

    name = "sticky"

    def __init__(self, threshold=180.0):
        self.threshold = threshold
        self.latched = False

    def reset(self):
        self.latched = False

    def observe(self, ctx: ContextVector) -> MonitorVerdict:
        if ctx.bg > self.threshold:
            self.latched = True
        if self.latched:
            return MonitorVerdict(alert=True, hazard=HazardType.H2,
                                  triggered=("sticky",))
        return NO_ALERT


class EscalatingMitigator(Mitigator):
    """Stateful strategy: each correction in a run doses harder."""

    def __init__(self):
        self.n_corrections = 0

    def reset(self):
        self.n_corrections = 0

    def correct(self, verdict, ctx):
        if not verdict.alert:
            return ctx.rate, ctx.bolus
        self.n_corrections += 1
        return min(0.5 * self.n_corrections, 5.0), 0.0


class TestScenarioOrderIndependence:
    """Regression: a late scenario must not inherit monitor/mitigator state
    from an earlier injection in the same campaign (the closed loop resets
    both at the start of every run)."""

    def scenarios(self):
        # a scenario that drives BG high (latches the sticky monitor and
        # triggers escalating mitigation) followed by a benign one
        all_scenarios = generate_campaign(CampaignConfig(
            init_glucose_values=(120.0,), timing_choices=((0, 30),)))
        harsh = next(s for s in all_scenarios
                     if s.label.startswith("truncate_rate"))
        benign = next(s for s in all_scenarios
                      if s.label.startswith("hold_glucose"))
        return harsh, benign

    def run_one(self, scenario_list, mitigator):
        return run_campaign(
            "glucosym", ["A"], scenario_list,
            monitor_factory=lambda pid: StickyMonitor(),
            mitigator=mitigator, n_steps=40)

    def test_monitor_and_mitigator_state_reset_between_scenarios(
            self, assert_traces_equal):
        first, second = self.scenarios()
        alone = self.run_one([second], EscalatingMitigator())[0]
        after_first = self.run_one([first, second], EscalatingMitigator())[1]
        assert_traces_equal(alone, after_first)

    def test_order_permutation_gives_same_traces(self, assert_traces_equal):
        first, second = self.scenarios()
        forward = self.run_one([first, second], EscalatingMitigator())
        backward = self.run_one([second, first], EscalatingMitigator())
        assert_traces_equal(forward[0], backward[1])
        assert_traces_equal(forward[1], backward[0])

    def test_unreset_mitigator_would_diverge(self):
        """The escalating mitigator really is stateful: without the loop's
        reset call its dosing depends on history, which is what this
        regression guards against."""
        mit = EscalatingMitigator()
        verdict = MonitorVerdict(alert=True, hazard=HazardType.H2)
        ctx = ContextVector(t=0.0, bg=200.0, bg_rate=0.0, iob=0.0,
                            iob_rate=0.0, rate=1.0, bolus=0.0,
                            action=ControlAction.KEEP)
        assert mit.correct(verdict, ctx) != mit.correct(verdict, ctx)
        mit.reset()
        assert mit.n_corrections == 0
