"""Tests for Scenario validation and SimulationTrace accessors."""

import numpy as np
import pytest

from repro.fi import FaultKind, FaultSpec, FaultTarget
from repro.patients import Meal
from repro.simulation import Scenario, TraceRecorder


class TestScenario:
    def test_defaults_match_paper(self):
        s = Scenario()
        assert s.n_steps == 150
        assert s.dt == 5.0
        assert s.duration == 750.0
        assert s.meals == ()

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            Scenario(init_glucose=0)
        with pytest.raises(ValueError):
            Scenario(n_steps=1)
        with pytest.raises(ValueError):
            Scenario(dt=0)

    def test_meals_carried(self):
        s = Scenario(meals=(Meal(60.0, 40.0),))
        assert s.meals[0].carbs == 40.0


def build_trace(n=30, alerts=(), hazard_bg=None, fault=None):
    recorder = TraceRecorder(platform="glucosym", patient_id="A",
                             label="test", dt=5.0, fault=fault)
    for i in range(n):
        bg = 120.0 if hazard_bg is None else hazard_bg[i]
        recorder.append(
            t=5.0 * i, true_bg=bg, cgm=bg, reading=bg,
            ctrl_rate=1.0, ctrl_bolus=0.0, cmd_rate=1.0, cmd_bolus=0.0,
            action=4, iob=1.0, iob_rate=0.0, final_rate=1.0, final_bolus=0.0,
            delivered_rate=1.0, delivered_bolus=0.0,
            alert=i in alerts, alert_hazard=1 if i in alerts else 0,
            mitigated=False)
    return recorder.finish()


class TestTraceAccessors:
    def test_empty_recorder_rejected(self):
        recorder = TraceRecorder(platform="glucosym", patient_id="A",
                                 label="", dt=5.0)
        with pytest.raises(ValueError):
            recorder.finish()

    def test_first_alert(self):
        trace = build_trace(alerts={7, 9})
        assert trace.first_alert == 7

    def test_first_alert_none(self):
        assert build_trace().first_alert is None

    def test_reaction_time_requires_hazard(self):
        trace = build_trace(alerts={3})
        assert trace.reaction_time() is None  # safe trace

    def test_reaction_time_positive_for_early_alert(self):
        bg = np.concatenate([np.full(10, 120.0), np.linspace(120, 35, 10),
                             np.full(10, 35.0)])
        trace = build_trace(n=30, alerts={5}, hazard_bg=bg)
        assert trace.hazardous
        rt = trace.reaction_time()
        assert rt == (trace.hazard_label.first_hazard - 5) * 5.0
        assert rt > 0

    def test_time_to_hazard_uses_fault_start(self):
        bg = np.concatenate([np.full(10, 120.0), np.linspace(120, 35, 10),
                             np.full(10, 35.0)])
        fault = FaultSpec(FaultKind.MAX, FaultTarget.RATE, 8, 6)
        trace = build_trace(n=30, hazard_bg=bg, fault=fault)
        assert trace.time_to_hazard() == (trace.hazard_label.first_hazard - 8) * 5.0

    def test_summary_mentions_fault_and_hazard(self):
        fault = FaultSpec(FaultKind.MAX, FaultTarget.RATE, 8, 6)
        trace = build_trace(fault=fault)
        assert "max_rate" in trace.summary()
        assert "safe" in trace.summary()

    def test_hazard_label_cached(self):
        trace = build_trace()
        assert trace.hazard_label is trace.hazard_label
