"""Tests for the closed-loop simulation engine."""

import numpy as np
import pytest

from repro.core import FixedMitigator, cawot_monitor
from repro.fi import FaultInjector, FaultKind, FaultSpec, FaultTarget
from repro.hazards import HazardType
from repro.simulation import Scenario, make_loop


@pytest.fixture(scope="module")
def fault_free_trace():
    loop = make_loop("glucosym", "B")
    return loop.run(Scenario(init_glucose=120.0, n_steps=60))


class TestFaultFree:
    def test_trace_length(self, fault_free_trace):
        assert len(fault_free_trace) == 60

    def test_time_axis(self, fault_free_trace):
        np.testing.assert_allclose(np.diff(fault_free_trace.t), 5.0)

    def test_glucose_stays_euglycemic(self, fault_free_trace):
        assert fault_free_trace.true_bg.min() > 70
        assert fault_free_trace.true_bg.max() < 250

    def test_not_hazardous(self, fault_free_trace):
        assert not fault_free_trace.hazardous

    def test_no_fault_metadata(self, fault_free_trace):
        assert fault_free_trace.fault is None
        assert fault_free_trace.fault_step is None
        assert fault_free_trace.time_to_hazard() is None

    def test_commands_equal_controller_output_without_fi(self, fault_free_trace):
        np.testing.assert_allclose(fault_free_trace.cmd_rate,
                                   fault_free_trace.ctrl_rate)

    def test_delivered_quantized_by_pump(self, fault_free_trace):
        deliveries = fault_free_trace.delivered_rate
        steps = deliveries / 0.05
        np.testing.assert_allclose(steps, np.round(steps), atol=1e-6)

    def test_net_iob_near_zero_under_basal(self, fault_free_trace):
        """Net IOB (above scheduled basal) stays ~0 in steady operation."""
        assert abs(fault_free_trace.iob[12:]).max() < 0.5


class TestFaultInjection:
    def test_overdose_creates_h1_hazard(self):
        loop = make_loop("glucosym", "B")
        loop.injector = FaultInjector(
            FaultSpec(FaultKind.MAX, FaultTarget.RATE, 20, 18))
        trace = loop.run(Scenario(init_glucose=120.0))
        assert trace.hazardous
        assert trace.hazard_label.first_type == HazardType.H1

    def test_tth_positive_for_injected_hazard(self):
        loop = make_loop("glucosym", "B")
        loop.injector = FaultInjector(
            FaultSpec(FaultKind.MAX, FaultTarget.RATE, 20, 18))
        trace = loop.run(Scenario(init_glucose=120.0))
        assert trace.time_to_hazard() > 0

    def test_fault_corrupts_reading_channel_only(self):
        loop = make_loop("glucosym", "B")
        loop.injector = FaultInjector(
            FaultSpec(FaultKind.MAX, FaultTarget.GLUCOSE, 10, 12))
        trace = loop.run(Scenario(init_glucose=120.0, n_steps=40))
        active = slice(10, 22)
        assert (trace.reading[active] == 400.0).all()
        # the monitor's CGM view stays clean
        assert (trace.cgm[active] < 400.0).all()

    def test_plant_unaffected_directly_by_input_fault(self):
        """A held-glucose fault changes dosing, not the plant directly."""
        loop = make_loop("glucosym", "B")
        loop.injector = FaultInjector(
            FaultSpec(FaultKind.HOLD, FaultTarget.GLUCOSE, 10, 6))
        trace = loop.run(Scenario(init_glucose=120.0, n_steps=30))
        np.testing.assert_allclose(trace.true_bg[:11], trace.cgm[:11], atol=0.5)


class TestMonitorIntegration:
    def test_cawot_alerts_on_overdose(self):
        loop = make_loop("glucosym", "B", monitor=cawot_monitor())
        loop.injector = FaultInjector(
            FaultSpec(FaultKind.MAX, FaultTarget.RATE, 20, 18))
        trace = loop.run(Scenario(init_glucose=120.0))
        assert trace.alert.any()
        assert trace.reaction_time() is not None

    def test_alert_hazard_type_recorded(self):
        loop = make_loop("glucosym", "B", monitor=cawot_monitor())
        loop.injector = FaultInjector(
            FaultSpec(FaultKind.MAX, FaultTarget.RATE, 20, 18))
        trace = loop.run(Scenario(init_glucose=120.0))
        alert_types = set(trace.alert_hazard[trace.alert.astype(bool)])
        assert int(HazardType.H1) in alert_types

    def test_monitor_without_mitigator_does_not_change_delivery(self):
        base = make_loop("glucosym", "B")
        spec = FaultSpec(FaultKind.MAX, FaultTarget.RATE, 20, 18)
        base.injector = FaultInjector(spec)
        plain = base.run(Scenario(init_glucose=120.0))
        monitored = make_loop("glucosym", "B", monitor=cawot_monitor())
        monitored.injector = FaultInjector(spec)
        with_mon = monitored.run(Scenario(init_glucose=120.0))
        np.testing.assert_allclose(plain.delivered_rate, with_mon.delivered_rate)

    def test_mitigation_changes_delivery_and_reduces_hazard(self):
        spec = FaultSpec(FaultKind.MAX, FaultTarget.RATE, 20, 18)
        plain_loop = make_loop("glucosym", "B")
        plain_loop.injector = FaultInjector(spec)
        plain = plain_loop.run(Scenario(init_glucose=120.0))

        mit_loop = make_loop("glucosym", "B", monitor=cawot_monitor(),
                             mitigator=FixedMitigator(max_rate=5.0))
        mit_loop.injector = FaultInjector(spec)
        mitigated = mit_loop.run(Scenario(init_glucose=120.0))

        assert mitigated.mitigated.any()
        # H1 mitigation cuts insulin: min BG must improve
        assert mitigated.true_bg.min() > plain.true_bg.min()

    def test_to_stl_trace_channels(self):
        loop = make_loop("glucosym", "B", monitor=cawot_monitor())
        trace = loop.run(Scenario(init_glucose=120.0, n_steps=30))
        stl_trace = trace.to_stl_trace()
        for name in ("BG", "BG'", "IOB", "IOB'", "u1", "u2", "u3", "u4"):
            assert name in stl_trace

    def test_action_one_hot_in_stl_trace(self):
        loop = make_loop("glucosym", "B")
        trace = loop.run(Scenario(init_glucose=120.0, n_steps=30))
        stl_trace = trace.to_stl_trace()
        one_hot_sum = sum(stl_trace[f"u{i}"] for i in range(1, 5))
        np.testing.assert_allclose(one_hot_sum, 1.0)


class TestBothPlatforms:
    @pytest.mark.parametrize("platform,pid", [("glucosym", "A"),
                                              ("t1ds2013", "P01")])
    def test_platform_runs(self, platform, pid):
        loop = make_loop(platform, pid)
        trace = loop.run(Scenario(init_glucose=140.0, n_steps=40))
        assert len(trace) == 40
        assert trace.platform == platform
        assert trace.patient_id == pid

    def test_determinism_across_runs(self):
        spec = FaultSpec(FaultKind.SUB, FaultTarget.GLUCOSE, 10, 12, value=75.0)
        results = []
        for _ in range(2):
            loop = make_loop("glucosym", "C")
            loop.injector = FaultInjector(spec)
            results.append(loop.run(Scenario(init_glucose=160.0, n_steps=50)))
        np.testing.assert_array_equal(results[0].true_bg, results[1].true_bg)
        np.testing.assert_array_equal(results[0].action, results[1].action)
