"""Tests for the on-disk campaign dataset store.

Covers the acceptance properties of the store: lossless write/read
roundtrip of every trace field, manifest/fingerprint integrity, explicit
errors for corrupted / missing / shuffled shards and schema mismatches,
and the bounded-memory guarantee of the lazy reader.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from tiny_grid import (TINY_PATIENT, TINY_PLATFORM,
                       tiny_campaign_scenarios)
from repro.core import cawot_monitor, learn_thresholds, mine_rule_samples
from repro.ml import build_point_dataset, build_window_dataset
from repro.simulation import (
    CampaignStoreError,
    CampaignStoreWriter,
    TraceDataset,
    TraceDatasetView,
    open_dataset,
    plan_campaign,
    plan_fingerprint,
    replay_campaign,
    trace_from_arrays,
    trace_to_arrays,
)
from repro.simulation.store import manifest_path


@pytest.fixture()
def store_dir(tmp_path, tiny_campaign_traces):
    """A complete on-disk copy of the shared tiny campaign."""
    directory = str(tmp_path / "campaign")
    with CampaignStoreWriter(directory, TINY_PLATFORM,
                             len(tiny_campaign_traces[0]),
                             folds=4) as sink:
        for trace in tiny_campaign_traces:
            sink.write(trace)
    return directory


def rewrite_manifest(directory, mutate):
    with open(manifest_path(directory)) as fh:
        manifest = json.load(fh)
    mutate(manifest)
    with open(manifest_path(directory), "w") as fh:
        json.dump(manifest, fh)


@pytest.fixture()
def npy_store_dir(tmp_path, tiny_campaign_traces):
    """The same campaign stored with uncompressed mmap-able shards."""
    directory = str(tmp_path / "campaign-npy")
    with CampaignStoreWriter(directory, TINY_PLATFORM,
                             len(tiny_campaign_traces[0]),
                             folds=4, shard_format="npy") as sink:
        for trace in tiny_campaign_traces:
            sink.write(trace)
    return directory


class TestNpyShards:
    """The zero-copy uncompressed shard format (shard_format="npy")."""

    def test_roundtrip_every_field(self, npy_store_dir, tiny_campaign_traces,
                                   assert_traces_equal):
        dataset = TraceDataset.open(npy_store_dir)
        assert dataset.shard_format == "npy"
        assert len(dataset) == len(tiny_campaign_traces)
        for original, reread in zip(tiny_campaign_traces, dataset):
            assert_traces_equal(original, reread)
            assert original.fault == reread.fault
            assert original.dt == reread.dt

    def test_struct_roundtrip_preserves_dtypes(self, tiny_campaign_traces):
        from repro.simulation import (TRACE_ARRAY_FIELDS, trace_from_struct,
                                      trace_to_struct)
        trace = tiny_campaign_traces[0]
        rebuilt = trace_from_struct(
            trace_to_struct(trace), platform=trace.platform,
            patient_id=trace.patient_id, label=trace.label, dt=trace.dt,
            fault=trace.fault)
        for name in TRACE_ARRAY_FIELDS:
            a, b = getattr(trace, name), getattr(rebuilt, name)
            assert a.dtype == b.dtype, name
            assert np.array_equal(a, b), name

    def test_channels_are_zero_copy_views(self, npy_store_dir):
        """Columns of an npy shard are read-only views of the mapped file,
        not decompressed copies."""
        dataset = TraceDataset.open(npy_store_dir)
        trace = dataset[0]
        assert not trace.cgm.flags.writeable
        assert not trace.cgm.flags.owndata

    def test_shards_are_npy_files(self, npy_store_dir):
        names = sorted(os.listdir(npy_store_dir))
        assert any(n.endswith(".npy") for n in names)
        assert not any(n.endswith(".npz") for n in names)

    def test_fingerprint_matches_npz_store(self, store_dir, npy_store_dir):
        """Shard format is storage, not identity: both stores hold the
        same campaign and must carry the same fingerprint."""
        assert TraceDataset.open(store_dir).fingerprint == \
            TraceDataset.open(npy_store_dir).fingerprint

    def test_corrupted_npy_shard(self, npy_store_dir):
        dataset = TraceDataset.open(npy_store_dir)
        shard = os.path.join(npy_store_dir, dataset.entry(0)["file"])
        with open(shard, "wb") as fh:
            fh.write(b"garbage")
        with pytest.raises(CampaignStoreError, match="corrupted"):
            dataset[0]

    def test_truncated_npy_shard(self, npy_store_dir):
        dataset = TraceDataset.open(npy_store_dir)
        shard = os.path.join(npy_store_dir, dataset.entry(1)["file"])
        data = open(shard, "rb").read()
        with open(shard, "wb") as fh:
            fh.write(data[:-200])
        with pytest.raises(CampaignStoreError, match="corrupted"):
            dataset[1]

    def test_unknown_shard_format_rejected(self, npy_store_dir):
        rewrite_manifest(npy_store_dir,
                         lambda m: m.update(shard_format="parquet"))
        with pytest.raises(CampaignStoreError, match="shard format"):
            TraceDataset.open(npy_store_dir)

    def test_writer_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="shard_format"):
            CampaignStoreWriter(str(tmp_path / "x"), TINY_PLATFORM, 150,
                                shard_format="parquet")

    def test_replay_and_learning_work_on_npy_store(self, npy_store_dir,
                                                   tiny_campaign_traces):
        dataset = TraceDataset.open(npy_store_dir)
        alerts_mem = replay_campaign({"cawot": cawot_monitor()},
                                     tiny_campaign_traces)["cawot"]
        alerts_npy = replay_campaign({"cawot": cawot_monitor()},
                                     dataset)["cawot"]
        for a, b in zip(alerts_mem, alerts_npy):
            assert np.array_equal(a, b)
        learned_mem = learn_thresholds(tiny_campaign_traces)
        learned_npy = learn_thresholds(dataset)
        assert learned_mem.thresholds == learned_npy.thresholds


class TestDatasetViewSubset:
    def test_subset_of_view_is_relative(self, store_dir,
                                        tiny_campaign_traces,
                                        assert_traces_equal):
        dataset = TraceDataset.open(store_dir)
        view = dataset.subset(range(10, 20))
        sub = view.subset([0, 3, 5])
        assert isinstance(sub, TraceDatasetView)
        assert len(sub) == 3
        for got, want_index in zip(sub, (10, 13, 15)):
            assert_traces_equal(got, tiny_campaign_traces[want_index])


class TestTraceSerialization:
    def test_arrays_roundtrip_every_field(self, tiny_campaign_traces,
                                          assert_traces_equal):
        for trace in tiny_campaign_traces[:4]:
            rebuilt = trace_from_arrays(trace_to_arrays(trace))
            assert_traces_equal(trace, rebuilt)
            for f in dataclasses.fields(trace):
                v1, v2 = getattr(trace, f.name), getattr(rebuilt, f.name)
                if isinstance(v1, np.ndarray):
                    assert v1.dtype == v2.dtype, f.name

    def test_fault_free_trace_roundtrips_without_fault(self,
                                                       tiny_fault_free_traces,
                                                       assert_traces_equal):
        trace = tiny_fault_free_traces[0]
        rebuilt = trace_from_arrays(trace_to_arrays(trace))
        assert rebuilt.fault is None
        assert_traces_equal(trace, rebuilt)


class TestFingerprint:
    def plan(self, **kwargs):
        defaults = dict(platform=TINY_PLATFORM, patient_ids=[TINY_PATIENT],
                        scenarios=tiny_campaign_scenarios(), n_steps=150)
        defaults.update(kwargs)
        return plan_campaign(defaults["platform"], defaults["patient_ids"],
                             defaults["scenarios"],
                             n_steps=defaults["n_steps"])

    def test_deterministic(self):
        assert plan_fingerprint(self.plan()) == plan_fingerprint(self.plan())

    def test_sensitive_to_every_identity_axis(self):
        base = plan_fingerprint(self.plan())
        assert plan_fingerprint(self.plan(platform="t1ds2013")) != base
        assert plan_fingerprint(self.plan(patient_ids=["A"])) != base
        assert plan_fingerprint(self.plan(n_steps=99)) != base
        fewer = tiny_campaign_scenarios()[:-1]
        assert plan_fingerprint(self.plan(scenarios=fewer)) != base

    def test_store_fingerprint_matches_plan(self, store_dir):
        dataset = TraceDataset.open(store_dir)
        assert dataset.fingerprint == plan_fingerprint(self.plan())


class TestWriter:
    def test_manifest_contents(self, store_dir, tiny_campaign_traces):
        with open(manifest_path(store_dir)) as fh:
            manifest = json.load(fh)
        from repro.simulation import SCHEMA_VERSION
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["platform"] == TINY_PLATFORM
        assert manifest["n_traces"] == len(tiny_campaign_traces)
        assert len(manifest["traces"]) == len(tiny_campaign_traces)
        assert manifest["shard_format"] == "npz"
        entry = manifest["traces"][0]
        assert set(entry) == {"file", "patient_id", "label", "dt", "fold",
                              "fault"}
        assert os.path.exists(os.path.join(store_dir, entry["file"]))

    def test_fold_keys_are_round_robin_within_patient(self, store_dir):
        dataset = TraceDataset.open(store_dir)
        folds = [dataset.entry(i)["fold"] for i in range(len(dataset))]
        assert folds == [i % 4 for i in range(len(dataset))]

    def test_refuses_directory_with_manifest(self, store_dir):
        with pytest.raises(CampaignStoreError, match="manifest"):
            CampaignStoreWriter(store_dir, TINY_PLATFORM, 150)

    def test_write_after_close_raises(self, tmp_path, tiny_campaign_traces):
        writer = CampaignStoreWriter(str(tmp_path / "w"), TINY_PLATFORM, 150)
        writer.close()
        with pytest.raises(CampaignStoreError, match="closed"):
            writer.write(tiny_campaign_traces[0])

    def test_rejects_wrong_platform_or_length(self, tmp_path,
                                              tiny_campaign_traces):
        trace = tiny_campaign_traces[0]
        with CampaignStoreWriter(str(tmp_path / "p"), "t1ds2013",
                                 len(trace)) as writer:
            with pytest.raises(CampaignStoreError, match="platform"):
                writer.write(trace)
        with CampaignStoreWriter(str(tmp_path / "n"), TINY_PLATFORM,
                                 len(trace) + 1) as writer:
            with pytest.raises(CampaignStoreError, match="steps"):
                writer.write(trace)

    def test_invalid_folds(self, tmp_path):
        with pytest.raises(ValueError, match="folds"):
            CampaignStoreWriter(str(tmp_path / "f"), TINY_PLATFORM, 150,
                                folds=1)

    def test_exception_in_with_body_aborts_without_manifest(
            self, tmp_path, tiny_campaign_traces):
        """A crashed half-written campaign must never look complete."""
        directory = str(tmp_path / "crashed")
        with pytest.raises(RuntimeError, match="simulator died"):
            with CampaignStoreWriter(directory, TINY_PLATFORM,
                                     len(tiny_campaign_traces[0])) as sink:
                sink.write(tiny_campaign_traces[0])
                sink.write(tiny_campaign_traces[1])
                raise RuntimeError("simulator died")
        assert not os.path.exists(manifest_path(directory))
        with pytest.raises(CampaignStoreError, match="manifest"):
            TraceDataset.open(directory)

    def test_shards_without_manifest_reported_explicitly(
            self, tmp_path, tiny_campaign_traces):
        """Rewriting over an interrupted write names the real problem."""
        directory = str(tmp_path / "interrupted")
        writer = CampaignStoreWriter(directory, TINY_PLATFORM,
                                     len(tiny_campaign_traces[0]))
        writer.write(tiny_campaign_traces[0])
        writer.abort()
        with pytest.raises(CampaignStoreError, match="interrupted"):
            CampaignStoreWriter(directory, TINY_PLATFORM,
                                len(tiny_campaign_traces[0]))


class TestRoundtrip:
    """Write a campaign through the store, read it back lazily, and assert
    element-wise equality of every trace field (the acceptance property)."""

    def test_every_trace_field_identical(self, store_dir,
                                         tiny_campaign_traces,
                                         assert_traces_equal):
        dataset = TraceDataset.open(store_dir)
        assert len(dataset) == len(tiny_campaign_traces)
        for original, reread in zip(tiny_campaign_traces, dataset):
            assert_traces_equal(original, reread)

    def test_random_access_and_negative_indexing(self, store_dir,
                                                 tiny_campaign_traces,
                                                 assert_traces_equal):
        dataset = TraceDataset.open(store_dir)
        assert_traces_equal(tiny_campaign_traces[7], dataset[7])
        assert_traces_equal(tiny_campaign_traces[-1], dataset[-1])
        with pytest.raises(IndexError):
            dataset[len(dataset)]

    def test_slice_and_subset_views(self, store_dir, tiny_campaign_traces,
                                    assert_traces_equal):
        dataset = TraceDataset.open(store_dir)
        view = dataset[10:14]
        assert isinstance(view, TraceDatasetView)
        assert len(view) == 4
        for original, reread in zip(tiny_campaign_traces[10:14], view):
            assert_traces_equal(original, reread)
        assert len(dataset.by_patient(TINY_PATIENT)) == len(dataset)
        assert dataset.patient_ids == (TINY_PATIENT,)

    def test_fold_split_matches_manifest(self, store_dir):
        dataset = TraceDataset.open(store_dir)
        train, test = dataset.fold_split(0)
        assert len(train) + len(test) == len(dataset)
        assert len(test) == len(dataset.indices(fold=0))
        with pytest.raises(ValueError):
            dataset.fold_split(99)

    def test_open_dataset_alias(self, store_dir):
        assert len(open_dataset(store_dir)) > 0

    def test_feeds_ml_dataset_builders_identically(self, store_dir,
                                                   tiny_campaign_traces):
        dataset = TraceDataset.open(store_dir, cache_size=2)
        X_mem, y_mem = build_point_dataset(tiny_campaign_traces)
        X_ds, y_ds = build_point_dataset(dataset)
        assert np.array_equal(X_mem, X_ds) and np.array_equal(y_mem, y_ds)
        Xw_mem, yw_mem = build_window_dataset(tiny_campaign_traces, k=6)
        Xw_ds, yw_ds = build_window_dataset(dataset, k=6)
        assert np.array_equal(Xw_mem, Xw_ds) and np.array_equal(yw_mem, yw_ds)

    def test_feeds_threshold_mining_identically(self, store_dir,
                                                tiny_campaign_traces):
        dataset = TraceDataset.open(store_dir, cache_size=2)
        mem = mine_rule_samples(tiny_campaign_traces)
        lazy = mine_rule_samples(dataset)
        for a, b in zip(mem, lazy):
            assert np.array_equal(a.values, b.values)
            assert np.array_equal(a.safe_values, b.safe_values)
        assert (learn_thresholds(tiny_campaign_traces).thresholds
                == learn_thresholds(dataset).thresholds)

    def test_feeds_replay_identically(self, store_dir, tiny_campaign_traces):
        dataset = TraceDataset.open(store_dir, cache_size=2)
        monitor = cawot_monitor()
        mem = replay_campaign({"CAWOT": monitor},
                              tiny_campaign_traces)["CAWOT"]
        lazy = replay_campaign({"CAWOT": monitor}, dataset)["CAWOT"]
        assert all(np.array_equal(a, b) for a, b in zip(mem, lazy))
        # serial replay streams the dataset within its cache window
        assert dataset.stats.max_resident <= 2


class TestBoundedMemory:
    """The lazy reader never holds more than its cache window of traces."""

    def test_full_iteration_stays_within_window(self, store_dir):
        dataset = TraceDataset.open(store_dir, cache_size=3)
        for _ in dataset:
            assert len(dataset._cache) <= 3
        assert dataset.stats.max_resident <= 3
        assert dataset.stats.n_loads == len(dataset)
        assert dataset.stats.evictions == len(dataset) - 3

    def test_repeated_passes_reload_but_stay_bounded(self, store_dir):
        dataset = TraceDataset.open(store_dir, cache_size=4)
        for _ in range(2):
            for _ in dataset:
                pass
        assert dataset.stats.n_loads == 2 * len(dataset)
        assert dataset.stats.max_resident <= 4

    def test_hot_access_hits_cache(self, store_dir):
        dataset = TraceDataset.open(store_dir, cache_size=4)
        dataset[5]
        dataset[5]
        assert dataset.stats.n_loads == 1
        assert dataset.stats.cache_hits == 1

    def test_views_share_the_bounded_cache(self, store_dir):
        dataset = TraceDataset.open(store_dir, cache_size=2)
        view = dataset.by_patient(TINY_PATIENT)
        for _ in view:
            pass
        assert view.stats is dataset.stats
        assert dataset.stats.max_resident <= 2

    def test_invalid_cache_size(self, store_dir):
        with pytest.raises(ValueError, match="cache_size"):
            TraceDataset.open(store_dir, cache_size=0)


class TestErrorPaths:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CampaignStoreError, match="manifest"):
            TraceDataset.open(str(tmp_path / "nowhere"))

    def test_unparsable_manifest(self, store_dir):
        with open(manifest_path(store_dir), "w") as fh:
            fh.write("{not json")
        with pytest.raises(CampaignStoreError, match="unreadable"):
            TraceDataset.open(store_dir)

    def test_schema_version_mismatch(self, store_dir):
        rewrite_manifest(store_dir,
                         lambda m: m.update(schema_version=99))
        with pytest.raises(CampaignStoreError, match="schema version"):
            TraceDataset.open(store_dir)

    def test_tampered_manifest_breaks_fingerprint(self, store_dir):
        def tamper(manifest):
            manifest["traces"][3]["label"] = "something-else"
        rewrite_manifest(store_dir, tamper)
        with pytest.raises(CampaignStoreError, match="fingerprint"):
            TraceDataset.open(store_dir)

    def test_entry_count_mismatch(self, store_dir):
        rewrite_manifest(store_dir, lambda m: m.update(n_traces=3))
        with pytest.raises(CampaignStoreError, match="entries"):
            TraceDataset.open(store_dir)

    def test_missing_shard(self, store_dir):
        dataset = TraceDataset.open(store_dir)
        os.remove(os.path.join(store_dir, dataset.entry(2)["file"]))
        dataset[1]  # other shards still load
        with pytest.raises(CampaignStoreError, match="missing shard"):
            dataset[2]

    def test_corrupted_shard(self, store_dir):
        dataset = TraceDataset.open(store_dir)
        path = os.path.join(store_dir, dataset.entry(4)["file"])
        with open(path, "wb") as fh:
            fh.write(b"\x00garbage\x00" * 32)
        with pytest.raises(CampaignStoreError, match="corrupted shard"):
            dataset[4]

    def test_fold_split_requires_fold_assignments(self, tmp_path,
                                                  tiny_campaign_traces):
        directory = str(tmp_path / "nofolds")
        with CampaignStoreWriter(directory, TINY_PLATFORM,
                                 len(tiny_campaign_traces[0])) as sink:
            sink.write(tiny_campaign_traces[0])
        dataset = TraceDataset.open(directory)
        with pytest.raises(CampaignStoreError, match="fold assignments"):
            dataset.fold_split(0)

    def test_shuffled_shards_detected(self, store_dir):
        dataset = TraceDataset.open(store_dir)
        a = os.path.join(store_dir, dataset.entry(0)["file"])
        b = os.path.join(store_dir, dataset.entry(1)["file"])
        tmp = a + ".swap"
        os.rename(a, tmp)
        os.rename(b, a)
        os.rename(tmp, b)
        with pytest.raises(CampaignStoreError, match="manifest expects"):
            dataset[0]
