"""Tests for platform construction and campaign batches."""

import pytest

from repro.controllers import BasalBolusController, OpenAPSController
from repro.fi import CampaignConfig, generate_campaign
from repro.simulation import (
    controller_profile,
    kfold_split,
    make_controller,
    run_campaign,
    run_fault_free,
)
from repro.patients import make_patient


class TestProfiles:
    def test_profile_fields(self):
        patient = make_patient("glucosym", "B")
        profile = controller_profile(patient)
        assert set(profile) == {"basal", "isf", "target"}
        assert profile["basal"] > 0
        assert profile["isf"] > 0

    def test_isf_inversely_proportional_to_basal(self):
        low = controller_profile(make_patient("glucosym", "G"))   # low basal
        high = controller_profile(make_patient("glucosym", "I"))  # high basal
        assert low["basal"] < high["basal"]
        assert low["isf"] > high["isf"]

    def test_platform_controller_types(self):
        glucosym = make_controller("glucosym", make_patient("glucosym", "A"))
        t1d = make_controller("t1ds2013", make_patient("t1ds2013", "P01"))
        assert isinstance(glucosym, OpenAPSController)
        assert isinstance(t1d, BasalBolusController)

    def test_unknown_platform(self):
        with pytest.raises(KeyError, match="unknown platform"):
            make_controller("nope", make_patient("glucosym", "A"))


class TestCampaignRuns:
    def test_run_campaign_counts(self):
        campaign = generate_campaign(CampaignConfig(
            stride=1, init_glucose_values=(120.0,), timing_choices=((10, 6),)))
        traces = run_campaign("glucosym", ["A", "B"], campaign[:3], n_steps=30)
        assert len(traces) == 6
        assert {t.patient_id for t in traces} == {"A", "B"}

    def test_traces_carry_fault_spec(self):
        campaign = generate_campaign(CampaignConfig(
            init_glucose_values=(120.0,), timing_choices=((5, 4),)))
        traces = run_campaign("glucosym", ["A"], campaign[:2], n_steps=20)
        assert all(t.fault is not None for t in traces)

    def test_monitor_factory_called_per_patient(self):
        calls = []

        def factory(pid):
            calls.append(pid)
            from repro.core import cawot_monitor
            return cawot_monitor()

        campaign = generate_campaign(CampaignConfig(
            init_glucose_values=(120.0,), timing_choices=((5, 4),)))
        run_campaign("glucosym", ["A", "B"], campaign[:1],
                     monitor_factory=factory, n_steps=20)
        assert calls == ["A", "B"]

    def test_run_fault_free(self):
        traces = run_fault_free("glucosym", ["A"], (100.0, 160.0), n_steps=20)
        assert len(traces) == 2
        assert all(t.fault is None for t in traces)


class TestKFold:
    def test_partition(self):
        items = list(range(10))
        train, test = kfold_split(items, k=4, fold=0)
        assert sorted(train + test) == items
        assert set(train).isdisjoint(test)

    def test_folds_cover_everything(self):
        items = list(range(10))
        covered = []
        for fold in range(4):
            _, test = kfold_split(items, k=4, fold=fold)
            covered.extend(test)
        assert sorted(covered) == items

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            kfold_split([1, 2], k=1, fold=0)
        with pytest.raises(ValueError):
            kfold_split([1, 2], k=2, fold=2)

    def test_k_equals_len_items(self):
        """Leave-one-out: every fold's test set is exactly one item."""
        items = list(range(5))
        covered = []
        for fold in range(5):
            train, test = kfold_split(items, k=5, fold=fold)
            assert test == [fold]
            assert sorted(train + test) == items
            covered.extend(test)
        assert sorted(covered) == items

    def test_items_not_divisible_by_k(self):
        items = list(range(11))
        sizes = []
        covered = []
        for fold in range(4):
            train, test = kfold_split(items, k=4, fold=fold)
            assert sorted(train + test) == items
            assert set(train).isdisjoint(test)
            sizes.append(len(test))
            covered.extend(test)
        # 11 = 3 + 3 + 3 + 2: fold sizes differ by at most one
        assert sorted(sizes) == [2, 3, 3, 3]
        assert sorted(covered) == items

    def test_fewer_items_than_k(self):
        train, test = kfold_split([1, 2], k=4, fold=3)
        assert test == []
        assert train == [1, 2]
