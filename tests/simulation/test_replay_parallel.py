"""Parity tests for parallel monitor replay and threshold learning.

In the spirit of the executor parity suite (``test_executor.py``):
``replay_campaign`` and ``learn_thresholds``/``mine_rule_samples`` must be
element-wise identical to their serial counterparts at every worker count —
worker count is a wall-clock knob, never a semantics knob.
"""

import numpy as np
import pytest

from repro.baselines import GuidelineMonitor
from repro.core import (cawot_monitor, cawt_monitor, learn_thresholds,
                        mine_rule_samples)
from repro.ml import context_features, trace_features
from repro.parallel import fork_map_chunks, resolve_workers, shard_indices
from repro.simulation import (iter_contexts, replay_campaign, replay_many,
                              replay_monitor)

WORKER_COUNTS = (2, 4)


@pytest.fixture(scope="module")
def monitors():
    return {"CAWOT": cawot_monitor(), "Guideline": GuidelineMonitor()}


class TestReplayCampaignParity:
    def test_matches_serial_at_every_worker_count(self, monitors,
                                                  tiny_campaign_traces):
        serial = replay_campaign(monitors, tiny_campaign_traces, workers=1)
        for workers in WORKER_COUNTS:
            parallel = replay_campaign(monitors, tiny_campaign_traces,
                                       workers=workers)
            assert set(parallel) == set(serial)
            for name in serial:
                assert len(parallel[name]) == len(tiny_campaign_traces)
                for a, b in zip(serial[name], parallel[name]):
                    assert np.array_equal(a, b)

    def test_matches_per_trace_replay(self, monitors, tiny_campaign_traces):
        campaign = replay_campaign(monitors, tiny_campaign_traces, workers=2)
        for name, monitor in monitors.items():
            for trace, alerts in zip(tiny_campaign_traces, campaign[name]):
                assert np.array_equal(alerts,
                                      replay_monitor(monitor, trace)[0])

    def test_replay_many_workers_kwarg(self, tiny_campaign_traces):
        monitor = cawot_monitor()
        serial = replay_many(monitor, tiny_campaign_traces)
        parallel = replay_many(monitor, tiny_campaign_traces, workers=2)
        assert all(np.array_equal(a, b) for a, b in zip(serial, parallel))

    def test_accepts_plain_iterables(self, monitors, tiny_campaign_traces):
        from_iter = replay_campaign(monitors, iter(tiny_campaign_traces))
        from_list = replay_campaign(monitors, tiny_campaign_traces)
        for name in monitors:
            assert all(np.array_equal(a, b) for a, b in
                       zip(from_iter[name], from_list[name]))

    def test_empty_inputs(self, monitors):
        assert replay_campaign(monitors, []) == {"CAWOT": [],
                                                 "Guideline": []}
        assert replay_campaign({}, []) == {}

    def test_invalid_chunks_per_worker(self, monitors, tiny_campaign_traces):
        with pytest.raises(ValueError, match="chunks_per_worker"):
            replay_campaign(monitors, tiny_campaign_traces,
                            chunks_per_worker=0)


class TestLearnThresholdsParity:
    def test_mined_samples_identical(self, tiny_campaign_traces):
        serial = mine_rule_samples(tiny_campaign_traces, workers=1)
        for workers in WORKER_COUNTS:
            parallel = mine_rule_samples(tiny_campaign_traces,
                                         workers=workers)
            for a, b in zip(serial, parallel):
                assert a.rule.index == b.rule.index
                assert np.array_equal(a.values, b.values)
                assert np.array_equal(a.safe_values, b.safe_values)

    def test_thresholds_byte_identical(self, tiny_campaign_traces,
                                       tiny_fault_free_traces):
        traces = list(tiny_campaign_traces) + list(tiny_fault_free_traces)
        serial = learn_thresholds(traces, workers=1)
        for workers in WORKER_COUNTS:
            parallel = learn_thresholds(traces, workers=workers)
            assert parallel.thresholds == serial.thresholds
            assert parallel.learned_params == serial.learned_params
            for a, b in zip(serial.fits, parallel.fits):
                # NaN losses (un-mined rules) compare unequal under ==
                assert (a.param, a.value, a.n_samples, a.used_default,
                        a.converged, a.violations) == \
                       (b.param, b.value, b.n_samples, b.used_default,
                        b.converged, b.violations)
                assert a.loss == b.loss or (np.isnan(a.loss)
                                            and np.isnan(b.loss))

    def test_learned_monitor_behaves_identically(self, tiny_campaign_traces):
        serial = cawt_monitor(
            learn_thresholds(tiny_campaign_traces, workers=1).thresholds)
        parallel = cawt_monitor(
            learn_thresholds(tiny_campaign_traces, workers=4).thresholds)
        trace = tiny_campaign_traces[0]
        assert np.array_equal(replay_monitor(serial, trace)[0],
                              replay_monitor(parallel, trace)[0])


class TestForkMapChunks:
    """The shared pool protocol itself."""

    def test_shard_indices_reassemble(self):
        for n, k in ((0, 3), (1, 4), (17, 4), (10, 100)):
            chunks = shard_indices(n, k)
            flat = [i for chunk in chunks for i in chunk]
            assert flat == list(range(n))
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1

    def test_shard_indices_invalid(self):
        with pytest.raises(ValueError):
            shard_indices(5, 0)

    def test_results_in_chunk_order(self):
        chunks = shard_indices(20, 7)
        serial = [sum(c) for c in chunks]
        parallel = list(fork_map_chunks(sum, chunks, workers=3))
        assert parallel == serial

    def test_serial_fallback_single_chunk(self):
        assert list(fork_map_chunks(sum, [range(5)], workers=8)) == [10]

    def test_resolve_workers(self, monkeypatch):
        assert resolve_workers(3) == 3
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestSharedContextReconstruction:
    """Regression for the iter_contexts / trace_features duplication drift:
    both sides now delegate to ``repro.simulation.features``, and must agree
    cycle-for-cycle on the same trace."""

    def test_replay_and_ml_features_agree_cycle_for_cycle(
            self, tiny_campaign_traces):
        for trace in tiny_campaign_traces[:8]:
            matrix = trace_features(trace)
            replayed = np.array([context_features(ctx)
                                 for ctx in iter_contexts(trace)])
            assert matrix.shape == replayed.shape
            np.testing.assert_array_equal(matrix, replayed)

    def test_context_stream_metadata(self, tiny_campaign_traces):
        trace = tiny_campaign_traces[0]
        contexts = list(iter_contexts(trace))
        assert len(contexts) == len(trace)
        assert contexts[0].bg_rate == 0.0
        assert contexts[0].t == trace.t[0]
