"""Parity suite for batched (lock-step) monitor replay and titration.

The contract under test is the one the vector simulation engine set:
``batch_size`` (like ``workers``) is a wall-clock knob, never a semantics
knob.  Batched replay must be element-wise identical to the scalar
``replay_campaign`` loop for every monitor kind — the vectorized
overrides (CAWT/CAWOT rules, DT, MLP, Guideline, MPC) and the column-loop
fallback (LSTM, user-defined monitors) alike — across batch sizes and
worker counts, and the batched fault-free titration must reproduce the
scalar ``empirical_isf`` bit for bit.
"""

import numpy as np
import pytest

from repro.baselines import GuidelineMonitor, MPCMonitor
from repro.core import (cawot_monitor, cawt_monitor, learn_thresholds,
                        mine_rule_samples)
from repro.core.monitor import MonitorVerdict, NO_ALERT, SafetyMonitor
from repro.hazards import HazardType
from repro.ml import train_dt_monitor, train_lstm_monitor, train_mlp_monitor
from repro.ml.datasets import trace_features
from repro.simulation import (ContextBatch, PROFILE_CACHE, controller_profile,
                              iter_contexts, iter_trace_batches,
                              replay_campaign, replay_monitor,
                              replay_monitor_batched, titrate_isf_batch,
                              warm_profiles)
from repro.simulation.batch import empirical_isf
from repro.patients import make_patient, patient_ids

BATCH_SIZES = (1, 7, 32)
WORKER_COUNTS = (1, 2)


class RisingStreakMonitor(SafetyMonitor):
    """Stateful user-defined monitor that does NOT override observe_batch:
    alerts after three consecutive rising-BG cycles.  Exercises the
    base-class column-loop fallback."""

    name = "rising-streak"

    def __init__(self):
        self._streak = 0

    def reset(self) -> None:
        self._streak = 0

    def observe(self, ctx) -> MonitorVerdict:
        self._streak = self._streak + 1 if ctx.bg_rate > 0.0 else 0
        if self._streak >= 3:
            return MonitorVerdict(alert=True, hazard=HazardType.H2,
                                  triggered=("rising",))
        return NO_ALERT


@pytest.fixture(scope="module")
def fast_monitors(tiny_campaign_traces):
    """Every monitor kind with a vectorized observe_batch, plus CAWT."""
    thresholds = learn_thresholds(tiny_campaign_traces).thresholds
    return {
        "CAWT": cawt_monitor(thresholds),
        "CAWOT": cawot_monitor(),
        "Guideline": GuidelineMonitor(),
        "MPC": MPCMonitor(),
        "DT": train_dt_monitor(tiny_campaign_traces),
        "DTmc": train_dt_monitor(tiny_campaign_traces, multiclass=True),
        "MLP": train_mlp_monitor(tiny_campaign_traces, max_epochs=3),
    }


@pytest.fixture(scope="module")
def lstm_monitor(tiny_campaign_traces):
    return train_lstm_monitor(tiny_campaign_traces, max_epochs=2)


class TestBatchedReplayParity:
    def test_all_monitor_kinds_all_batch_sizes_and_workers(
            self, fast_monitors, tiny_campaign_traces):
        serial = replay_campaign(fast_monitors, tiny_campaign_traces)
        for batch_size in BATCH_SIZES:
            for workers in WORKER_COUNTS:
                batched = replay_campaign(fast_monitors, tiny_campaign_traces,
                                          workers=workers,
                                          batch_size=batch_size)
                for name in fast_monitors:
                    assert len(batched[name]) == len(tiny_campaign_traces)
                    for a, b in zip(serial[name], batched[name]):
                        assert np.array_equal(a, b), (name, batch_size,
                                                      workers)

    def test_lstm_fallback_parity(self, lstm_monitor, tiny_campaign_traces):
        # the LSTM is stateful over sliding windows and uses the base
        # class's column-loop fallback; a trace subset keeps this fast
        traces = list(tiny_campaign_traces[:10])
        serial = replay_campaign({"LSTM": lstm_monitor}, traces)["LSTM"]
        for batch_size in BATCH_SIZES:
            for workers in WORKER_COUNTS:
                batched = replay_campaign({"LSTM": lstm_monitor}, traces,
                                          workers=workers,
                                          batch_size=batch_size)["LSTM"]
                assert all(np.array_equal(a, b)
                           for a, b in zip(serial, batched))

    def test_hazard_codes_match_scalar_replay(self, fast_monitors,
                                              tiny_campaign_traces):
        traces = list(tiny_campaign_traces[:12])
        for name, monitor in fast_monitors.items():
            batched = replay_monitor_batched(monitor, traces, batch_size=7)
            assert len(batched) == len(traces)
            for trace, (alerts, hazards) in zip(traces, batched):
                ref_alerts, ref_hazards = replay_monitor(monitor, trace)
                assert np.array_equal(alerts, ref_alerts), name
                assert np.array_equal(hazards, ref_hazards), name

    def test_mixed_length_stream_batches(self, fast_monitors,
                                         tiny_campaign_traces,
                                         tiny_fault_free_traces):
        # campaign (150 steps) and fault-free (60 steps) traces interleave
        # into length-homogeneous groups without reordering the stream
        mixed = (list(tiny_campaign_traces[:5]) + list(tiny_fault_free_traces)
                 + list(tiny_campaign_traces[5:9]))
        serial = replay_campaign(fast_monitors, mixed)
        batched = replay_campaign(fast_monitors, mixed, batch_size=4)
        for name in fast_monitors:
            for a, b in zip(serial[name], batched[name]):
                assert np.array_equal(a, b), name

    def test_custom_monitor_fallback(self, tiny_campaign_traces):
        monitor = RisingStreakMonitor()
        serial = replay_campaign({"custom": monitor}, tiny_campaign_traces)
        for batch_size in (7, 32):
            batched = replay_campaign({"custom": monitor},
                                      tiny_campaign_traces,
                                      batch_size=batch_size)
            assert all(np.array_equal(a, b) for a, b in
                       zip(serial["custom"], batched["custom"]))

    def test_generator_input_streams(self, fast_monitors,
                                     tiny_campaign_traces):
        serial = replay_campaign(fast_monitors, tiny_campaign_traces)
        batched = replay_campaign(fast_monitors, iter(tiny_campaign_traces),
                                  batch_size=16)
        for name in fast_monitors:
            assert all(np.array_equal(a, b) for a, b in
                       zip(serial[name], batched[name]))

    def test_env_batch_size(self, monkeypatch, tiny_campaign_traces):
        monitor = cawot_monitor()
        serial = replay_campaign({"m": monitor}, tiny_campaign_traces)
        monkeypatch.setenv("REPRO_BATCH_SIZE", "16")
        from_env = replay_campaign({"m": monitor}, tiny_campaign_traces)
        assert all(np.array_equal(a, b)
                   for a, b in zip(serial["m"], from_env["m"]))


class TestEdgeCases:
    def test_empty_trace_stream(self, fast_monitors):
        out = replay_campaign(fast_monitors, [], batch_size=32)
        assert out == {name: [] for name in fast_monitors}
        assert replay_monitor_batched(cawot_monitor(), [], batch_size=8) == []

    def test_single_column_batch(self, tiny_campaign_traces):
        trace = tiny_campaign_traces[0]
        batch = ContextBatch.from_traces([trace])
        assert batch.shape == (len(trace), 1)
        alerts, hazards = cawot_monitor().observe_batch(batch)
        ref_alerts, ref_hazards = replay_monitor(cawot_monitor(), trace)
        assert np.array_equal(alerts[:, 0], ref_alerts)
        assert np.array_equal(hazards[:, 0], ref_hazards)

    def test_context_batch_rejects_empty_and_ragged(self,
                                                    tiny_campaign_traces,
                                                    tiny_fault_free_traces):
        with pytest.raises(ValueError, match="zero traces"):
            ContextBatch.from_traces([])
        with pytest.raises(ValueError, match="one length"):
            ContextBatch.from_traces([tiny_campaign_traces[0],
                                      tiny_fault_free_traces[0]])

    def test_invalid_batch_size(self, tiny_campaign_traces):
        with pytest.raises(ValueError, match="batch_size"):
            replay_campaign({"m": cawot_monitor()}, tiny_campaign_traces,
                            batch_size=0)
        with pytest.raises(ValueError, match="batch_size"):
            list(iter_trace_batches(tiny_campaign_traces, 0))

    def test_misshapen_observe_batch_fails_loudly(self,
                                                  tiny_campaign_traces):
        class Broken(SafetyMonitor):
            def observe(self, ctx):
                return NO_ALERT

            def observe_batch(self, batch):
                return np.zeros((1, 1), dtype=bool), np.zeros((1, 1), int)

        with pytest.raises(ValueError, match="verdict matrices"):
            replay_campaign({"broken": Broken()}, tiny_campaign_traces,
                            batch_size=8)

    def test_iter_trace_batches_grouping(self, tiny_campaign_traces,
                                         tiny_fault_free_traces):
        mixed = (list(tiny_campaign_traces[:3]) + list(tiny_fault_free_traces)
                 + list(tiny_campaign_traces[3:8]))
        groups = list(iter_trace_batches(mixed, 2))
        flat = [trace for group in groups for trace in group]
        assert [id(t) for t in flat] == [id(t) for t in mixed]
        for group in groups:
            assert len(group) <= 2
            assert len({len(t) for t in group}) == 1


class TestContextBatch:
    def test_columns_match_scalar_context_stream(self, tiny_campaign_traces):
        traces = list(tiny_campaign_traces[:4])
        batch = ContextBatch.from_traces(traces)
        for b, trace in enumerate(traces):
            for ctx_col, ctx_ref in zip(batch.iter_column(b),
                                        iter_contexts(trace)):
                assert ctx_col == ctx_ref
            np.testing.assert_array_equal(batch.column_features(b),
                                          trace_features(trace))

    def test_channel_views(self, tiny_campaign_traces):
        trace = tiny_campaign_traces[0]
        batch = ContextBatch.from_traces([trace, trace])
        np.testing.assert_array_equal(batch.bg[:, 0], trace.cgm)
        np.testing.assert_array_equal(batch.iob[:, 1], trace.iob)
        np.testing.assert_array_equal(batch.action[:, 0], trace.action)
        np.testing.assert_array_equal(batch.t[:, 1], trace.t)
        assert batch.dt.tolist() == [trace.dt, trace.dt]


class TestBatchedMining:
    def test_mined_samples_identical(self, tiny_campaign_traces,
                                     tiny_fault_free_traces):
        # mixed lengths exercise the group-boundary path
        traces = list(tiny_campaign_traces) + list(tiny_fault_free_traces)
        serial = mine_rule_samples(traces)
        for batch_size in (7, 32):
            batched = mine_rule_samples(traces, batch_size=batch_size)
            for a, b in zip(serial, batched):
                assert a.rule.index == b.rule.index
                assert np.array_equal(a.values, b.values)
                assert np.array_equal(a.safe_values, b.safe_values)

    def test_thresholds_byte_identical_with_batch_and_workers(
            self, tiny_campaign_traces, tiny_fault_free_traces):
        traces = list(tiny_campaign_traces) + list(tiny_fault_free_traces)
        serial = learn_thresholds(traces)
        for batch_size in (7, 32):
            for workers in WORKER_COUNTS:
                batched = learn_thresholds(traces, batch_size=batch_size,
                                           workers=workers)
                assert batched.thresholds == serial.thresholds


class TestBatchedTitration:
    @pytest.mark.parametrize("platform", ["glucosym", "t1ds2013"])
    def test_bit_identical_to_scalar_empirical_isf(self, platform):
        ids = patient_ids(platform)
        patients = [make_patient(platform, pid, target_glucose=120.0)
                    for pid in ids]
        batched = titrate_isf_batch(patients, 120.0)
        scalar = np.array([
            empirical_isf(make_patient(platform, pid, target_glucose=120.0),
                          120.0)
            for pid in ids])
        np.testing.assert_array_equal(batched, scalar)

    def test_empty_cohort(self):
        assert titrate_isf_batch([], 120.0).shape == (0,)

    def test_mixed_model_families_rejected(self):
        patients = [make_patient("glucosym", "A"),
                    make_patient("t1ds2013", "P01")]
        with pytest.raises(ValueError, match="one patient model family"):
            titrate_isf_batch(patients, 120.0)

    def test_t1d_off_target_anchor_rejected(self):
        patient = make_patient("t1ds2013", "P01", target_glucose=110.0)
        with pytest.raises(ValueError, match="target_glucose"):
            titrate_isf_batch([patient], 120.0)

    def test_warm_profiles_matches_serial_titration(self):
        PROFILE_CACHE.clear()
        warmed = warm_profiles("glucosym", ["A", "B", "C"])
        PROFILE_CACHE.clear()
        for pid in ("A", "B", "C"):
            patient = make_patient("glucosym", pid, target_glucose=120.0)
            assert warmed[pid] == controller_profile(patient, 120.0), pid

    def test_warm_profiles_seeds_cache(self):
        PROFILE_CACHE.clear()
        warm_profiles("glucosym", ["A", "B"])
        assert ("glucosym/A", 120.0) in PROFILE_CACHE
        assert ("glucosym/B", 120.0) in PROFILE_CACHE
        # a second call is pure lookups and returns the same profiles
        again = warm_profiles("glucosym", ["A", "B"])
        assert set(again) == {"A", "B"}
