"""Tests for the lock-step vectorized simulation engine.

The acceptance property is exact parity: for any batch composition, batch
size and worker count, the vectorized engine must produce traces
element-wise identical to the scalar closed loop (the shared
``assert_traces_equal`` fixture asserts every array channel and all
metadata).
"""

import numpy as np
import pytest

from repro.controllers.iob import InsulinActivityCurve, IOBCalculator
from repro.fi import (CampaignConfig, FaultKind, FaultSpec, FaultTarget,
                      generate_campaign)
from repro.patients import Meal
from repro.simulation import (ParallelExecutor, Scenario, SerialExecutor,
                              get_executor, make_loop, plan_campaign,
                              plan_fault_free, run_batch, run_campaign,
                              run_fault_free)
from repro.simulation.executor import SimRun


def small_campaign(n=8):
    scenarios = generate_campaign(CampaignConfig(
        stride=1, init_glucose_values=(90.0, 160.0),
        timing_choices=((0, 6), (8, 10))))
    return scenarios[:n]


def scalar_reference(platform, runs, n_steps, meals=()):
    """Drive each run through the scalar ClosedLoop, one at a time."""
    traces = []
    for run in runs:
        loop = make_loop(platform, run.patient_id)
        from repro.fi import FaultInjector
        loop.injector = FaultInjector(run.fault) if run.fault else None
        traces.append(loop.run(Scenario(init_glucose=run.init_glucose,
                                        n_steps=n_steps, label=run.label,
                                        meals=tuple(meals))))
    return traces


class TestCampaignParity:
    """run_campaign(batch_size=...) must be invisible in the output."""

    @pytest.mark.parametrize("platform,patients", [
        ("glucosym", ["A", "B"]),
        ("t1ds2013", ["P01", "P02"]),
    ])
    def test_serial_vs_vector_both_platforms(self, platform, patients,
                                             assert_traces_equal):
        scenarios = small_campaign(6)
        serial = run_campaign(platform, patients, scenarios, n_steps=30)
        vector = run_campaign(platform, patients, scenarios, n_steps=30,
                              batch_size=8)
        assert len(serial) == len(vector) == 12
        for s, v in zip(serial, vector):
            assert_traces_equal(s, v)

    def test_any_batch_size_identical(self, assert_traces_equal):
        scenarios = small_campaign(7)  # deliberately awkward sizes
        reference = run_campaign("glucosym", ["A"], scenarios, n_steps=25)
        for batch_size in (2, 3, 7, 50):  # ragged, exact, oversized
            vector = run_campaign("glucosym", ["A"], scenarios, n_steps=25,
                                  batch_size=batch_size)
            for s, v in zip(reference, vector):
                assert_traces_equal(s, v)

    def test_batch_times_workers(self, assert_traces_equal):
        """batch_size and workers compose without changing one bit."""
        scenarios = small_campaign(8)
        plan = plan_campaign("glucosym", ["A", "B"], scenarios, n_steps=25)
        reference = SerialExecutor().run(plan)
        combo = ParallelExecutor(workers=2, chunks_per_worker=2,
                                 batch_size=3).run(plan)
        assert len(combo) == len(reference)
        for s, v in zip(reference, combo):
            assert_traces_equal(s, v)

    def test_non_default_dt_threads_through_plan(self, assert_traces_equal):
        """CampaignPlan.dt reaches both the scalar and vector chunk paths."""
        scenarios = small_campaign(3)
        plan = plan_campaign("glucosym", ["A"], scenarios, n_steps=25,
                             dt=10.0)
        scalar = SerialExecutor().run(plan)
        vector = SerialExecutor(batch_size=4).run(plan)
        assert scalar[0].dt == vector[0].dt == 10.0
        for s, v in zip(scalar, vector):
            assert_traces_equal(s, v)

    def test_fault_free_vectorized(self, assert_traces_equal):
        serial = run_fault_free("glucosym", ["A", "B"], (90.0, 120.0, 180.0),
                                n_steps=30, cache=None)
        vector = run_fault_free("glucosym", ["A", "B"], (90.0, 120.0, 180.0),
                                n_steps=30, cache=None, batch_size=4)
        for s, v in zip(serial, vector):
            assert_traces_equal(s, v)

    def test_monitored_campaign_batches_exactly(self, assert_traces_equal):
        """Monitored runs batch through the vector engine (no scalar
        fallback since the mitigation vectorization): the batched traces
        equal the scalar monitored run in every field, and the dynamics
        match the monitor-less ones (a monitor alone never perturbs)."""
        from repro.core import cawot_monitor
        scenarios = small_campaign(2)
        serial = run_campaign("glucosym", ["A"], scenarios, n_steps=25,
                              monitor_factory=lambda pid: cawot_monitor())
        monitored = run_campaign("glucosym", ["A"], scenarios, n_steps=25,
                                 monitor_factory=lambda pid: cawot_monitor(),
                                 batch_size=8)
        plain = run_campaign("glucosym", ["A"], scenarios, n_steps=25,
                             batch_size=8)
        for s, m, p in zip(serial, monitored, plain):
            assert_traces_equal(s, m)
            assert np.array_equal(m.true_bg, p.true_bg)
            assert m.alert.dtype == np.bool_


class TestFaultKindCoverage:
    """Every manipulation type, across all four targets, stays exact."""

    def _runs(self, kinds_targets, start, duration):
        runs = []
        for kind, target, value in kinds_targets:
            fault = FaultSpec(kind=kind, target=target, start_step=start,
                              duration_steps=duration, value=value)
            runs.append(SimRun(patient_id="A", init_glucose=140.0,
                               label=fault.label, fault=fault))
        return runs

    @pytest.mark.parametrize("start,duration", [(0, 10), (5, 8), (20, 30)])
    def test_all_kinds_all_targets(self, start, duration,
                                   assert_traces_equal):
        grid = []
        for kind in FaultKind:
            for target in FaultTarget:
                value = {FaultKind.ADD: 60.0, FaultKind.SUB: 40.0,
                         FaultKind.SCALE: 0.5}.get(kind, 0.0)
                grid.append((kind, target, value))
        runs = self._runs(grid, start, duration)
        reference = scalar_reference("glucosym", runs, 30)
        vector = run_batch("glucosym", runs, n_steps=30)
        assert len(vector) == len(FaultKind) * len(FaultTarget)
        for s, v in zip(reference, vector):
            assert_traces_equal(s, v)

    def test_bolus_faults_on_basal_bolus_platform(self, assert_traces_equal):
        """BOLUS-target faults only matter where boluses exist (t1ds2013)."""
        grid = [(kind, FaultTarget.BOLUS,
                 {FaultKind.ADD: 2.0, FaultKind.SUB: 1.0,
                  FaultKind.SCALE: 0.5}.get(kind, 0.0))
                for kind in FaultKind]
        runs = [SimRun(patient_id="P01", init_glucose=190.0,
                       label=f"bolus/{kind.value}",
                       fault=FaultSpec(kind=kind, target=FaultTarget.BOLUS,
                                       start_step=2, duration_steps=12,
                                       value=value))
                for kind, _, value in grid]
        reference = scalar_reference("t1ds2013", runs, 30)
        vector = run_batch("t1ds2013", runs, n_steps=30)
        for s, v in zip(reference, vector):
            assert_traces_equal(s, v)


class TestBatchComposition:
    def test_mixed_patients_one_batch(self, assert_traces_equal):
        scenarios = small_campaign(3)
        runs = [SimRun(patient_id=pid, init_glucose=s.init_glucose,
                       label=s.label, fault=s.fault)
                for s in scenarios for pid in ("A", "C", "B")]
        reference = scalar_reference("glucosym", runs, 25)
        vector = run_batch("glucosym", runs, n_steps=25)
        for s, v in zip(reference, vector):
            assert_traces_equal(s, v)

    def test_mixed_fault_and_fault_free_rows(self, assert_traces_equal):
        fault = FaultSpec(FaultKind.MAX, FaultTarget.RATE, 3, 10)
        runs = [
            SimRun(patient_id="A", init_glucose=120.0, label="clean"),
            SimRun(patient_id="A", init_glucose=120.0, label="maxed",
                   fault=fault),
            SimRun(patient_id="B", init_glucose=80.0, label="clean2"),
        ]
        reference = scalar_reference("glucosym", runs, 25)
        vector = run_batch("glucosym", runs, n_steps=25)
        for s, v in zip(reference, vector):
            assert_traces_equal(s, v)

    def test_empty_batch(self):
        assert run_batch("glucosym", [], n_steps=25) == []

    def test_empty_scenario_list_campaign(self):
        assert run_campaign("glucosym", ["A"], [], batch_size=8) == []
        plan = plan_fault_free("glucosym", [], (), n_steps=25)
        assert SerialExecutor(batch_size=4).run(plan) == []

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            run_batch("nope", [SimRun("A", 120.0, "x")], n_steps=25)

    @pytest.mark.parametrize("platform,pid", [("glucosym", "A"),
                                              ("t1ds2013", "P01")])
    def test_meals_batch_parity(self, platform, pid, assert_traces_equal):
        """Scheduled meals run through the precomputed RA / ingestion
        timelines and still match the scalar loop exactly."""
        meals = (Meal(time=20.0, carbs=45.0), Meal(time=60.0, carbs=20.0))
        runs = [SimRun(patient_id=pid, init_glucose=120.0, label="meals"),
                SimRun(patient_id=pid, init_glucose=160.0, label="meals2")]
        reference = scalar_reference(platform, runs, 30, meals=meals)
        vector = run_batch(platform, runs, n_steps=30,
                           meals=[meals, meals])
        for s, v in zip(reference, vector):
            assert_traces_equal(s, v)

    def test_run_level_meals_are_the_default_schedule(self,
                                                      assert_traces_equal):
        """With no explicit ``meals=``, each SimRun's own meal plan applies
        (the scenario-search path through the executors)."""
        meals = (Meal(time=20.0, carbs=45.0),)
        runs = [SimRun(patient_id="A", init_glucose=120.0, label="m",
                       meals=meals),
                SimRun(patient_id="A", init_glucose=160.0, label="n")]
        explicit = run_batch("glucosym", runs, n_steps=30,
                             meals=[meals, ()])
        implicit = run_batch("glucosym", runs, n_steps=30)
        for a, b in zip(explicit, implicit):
            assert_traces_equal(a, b)

    def test_misaligned_meals_rejected(self):
        with pytest.raises(ValueError, match="align"):
            run_batch("glucosym", [SimRun("A", 120.0, "x")], n_steps=10,
                      meals=[(), ()])


class TestExecutorKnobs:
    def test_get_executor_batch_size(self):
        executor = get_executor(1, 16)
        assert isinstance(executor, SerialExecutor)
        assert executor.batch_size == 16
        executor = get_executor(4, 16)
        assert isinstance(executor, ParallelExecutor)
        assert executor.batch_size == 16

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "9")
        assert get_executor(1).batch_size == 9

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            get_executor(1, 0)
        with pytest.raises(ValueError):
            SerialExecutor(batch_size=0)
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, batch_size=-1)

    def test_experiment_config_carries_batch_size(self):
        from repro.experiments import ExperimentConfig
        config = ExperimentConfig.preset("smoke", batch_size=32)
        assert config.batch_size == 32
        # parity-invariant knobs must not change the simulation cache key
        assert config.cache_key() == ExperimentConfig.preset("smoke").cache_key()
        with pytest.raises(ValueError):
            ExperimentConfig(batch_size=0)


class TestVectorizedIOB:
    """Satellite: IOBCalculator.iob_at and the cached curve constants."""

    def test_constants_cached_once(self):
        curve = InsulinActivityCurve()
        assert curve._constants is curve._constants  # cached tuple identity

    def test_iob_at_matches_scalar(self):
        calc = IOBCalculator(basal_offset=1.0)
        for step in range(24):
            calc.record(basal_u_h=1.0 + 0.25 * (step % 5), bolus_u=0.2,
                        t=step * 5.0, duration=5.0)
        times = np.arange(0.0, 180.0, 5.0)
        batch = calc.iob_at(times)
        scalar = np.array([calc.iob(t) for t in times])
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=1e-12)

    def test_curve_array_methods_match_scalar(self):
        curve = InsulinActivityCurve()
        minutes = np.array([-5.0, 0.0, 1.0, 74.9, 150.0, 299.9, 300.0, 400.0])
        np.testing.assert_allclose(
            curve.activity_at(minutes),
            [curve.activity(m) for m in minutes], rtol=1e-12, atol=1e-15)
        np.testing.assert_allclose(
            curve.iob_fraction_at(minutes),
            [curve.iob_fraction(m) for m in minutes], rtol=1e-12)
